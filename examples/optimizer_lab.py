"""Optimizer lab: watch join-order strategies disagree — and pay for it.

Builds a 5-relation star workload, plans the same query with every
strategy, prints each physical plan with its modeled cost, then executes
each plan from a cold buffer pool and reports what it actually cost.

Run with::

    python examples/optimizer_lab.py
"""

from repro import Database
from repro.bench import measure_plan, plan_with_strategy
from repro.workloads import build_star

STRATEGIES = ["dp", "dp-bushy", "greedy", "syntactic", "random", "naive"]


def main() -> None:
    db = Database(buffer_pages=32, work_mem_pages=8)
    workload = build_star(db, 5, fact_rows=4000, dim_base=60, seed=11)
    print(f"workload: {workload.shape} over {workload.tables}")
    print(f"query:\n  {workload.sql}\n")

    results = []
    for strategy in STRATEGIES:
        plan, stats = plan_with_strategy(db, workload.sql, strategy)
        print(f"=== {strategy} (considered {stats.plans_considered} plans) ===")
        print(plan.pretty())
        measurement = measure_plan(db, plan)
        results.append((strategy, measurement))
        print(
            f"  -> modeled cost {measurement.est_cost_total:,.1f}, "
            f"actual I/O {measurement.actual_io}, "
            f"time {measurement.exec_seconds * 1000:.1f} ms\n"
        )

    dp_io = dict(results)["dp"].actual_io
    dp_time = dict(results)["dp"].exec_seconds
    print("=== summary (relative to dp) ===")
    for strategy, m in results:
        print(
            f"  {strategy:10s} I/O x{m.actual_io / max(dp_io, 1):5.2f}   "
            f"time x{m.exec_seconds / max(dp_time, 1e-9):5.2f}"
        )


if __name__ == "__main__":
    main()
