"""Quickstart: create tables, load data, query, and read an EXPLAIN plan.

Run with::

    python examples/quickstart.py
"""

import random

from repro import Database


def main() -> None:
    # A database is fully in-process: a simulated disk, a buffer pool of
    # `buffer_pages` frames, and `work_mem_pages` of memory per blocking
    # operator (sorts, hash joins).
    db = Database(buffer_pages=128, work_mem_pages=16)

    db.execute(
        "CREATE TABLE users (id INT PRIMARY KEY, name TEXT, country TEXT)"
    )
    db.execute(
        "CREATE TABLE purchases (id INT PRIMARY KEY, user_id INT, "
        "amount FLOAT, item TEXT)"
    )

    rng = random.Random(7)
    countries = ["NL", "DE", "FR", "US", "JP"]
    db.insert_rows(
        "users",
        [(i, f"user{i}", rng.choice(countries)) for i in range(1000)],
    )
    db.insert_rows(
        "purchases",
        [
            (i, rng.randrange(1000), rng.random() * 500,
             rng.choice(["book", "game", "tool"]))
            for i in range(20000)
        ],
    )

    # A secondary index gives the optimizer an access path for the join.
    db.execute("CREATE INDEX ix_purchases_user ON purchases (user_id)")

    # ANALYZE gathers row counts, distinct counts, histograms and
    # most-common values — everything the cost-based optimizer consumes.
    db.execute("ANALYZE")

    sql = """
        SELECT u.country, COUNT(*) AS purchases, SUM(p.amount) AS revenue
        FROM purchases p, users u
        WHERE p.user_id = u.id AND p.amount > 100
        GROUP BY u.country
        ORDER BY revenue DESC
    """

    print("=== EXPLAIN ===")
    print(db.explain(sql))

    print("\n=== RESULTS ===")
    result = db.query(sql)
    for row in result.rows:
        print(f"  {row[0]}: {row[1]:5d} purchases, {row[2]:12.2f} revenue")

    print("\n=== METRICS ===")
    print(f"  planning: {result.planning_seconds * 1000:.1f} ms")
    print(f"  execution: {result.execution_seconds * 1000:.1f} ms")
    print(f"  page I/O: {result.io.reads} reads, {result.io.writes} writes")
    print(f"  rows scanned: {result.exec_metrics.rows_scanned}")

    # A point query picks the primary-key index instead of scanning.
    print("\n=== POINT QUERY PLAN ===")
    print(db.explain("SELECT name FROM users WHERE id = 451"))


if __name__ == "__main__":
    main()
