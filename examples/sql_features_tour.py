"""SQL features tour: views, subqueries, decorrelation, DML, composite
indexes and EXPLAIN ANALYZE — the engine's full surface in one script.

Run with::

    python examples/sql_features_tour.py
"""

import random

from repro import Database


def show(db, sql, max_rows=5):
    print(f"sql> {sql.strip()}")
    result = db.execute(sql)
    for row in result.rows[:max_rows]:
        print(f"     {row}")
    if result.rowcount > max_rows:
        print(f"     ... {result.rowcount - max_rows} more rows")
    print()
    return result


def main() -> None:
    db = Database(buffer_pages=128, work_mem_pages=16)
    rng = random.Random(3)

    print("== DDL: tables, composite index, view ==")
    db.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, dept TEXT, grade INT, "
        "salary FLOAT)"
    )
    db.execute("CREATE TABLE review (emp_id INT, year INT, score INT)")
    db.insert_rows(
        "emp",
        [
            (i, rng.choice(["eng", "ops", "hr"]), rng.randrange(1, 6),
             30000.0 + rng.random() * 70000)
            for i in range(400)
        ],
    )
    db.insert_rows(
        "review",
        [
            (rng.randrange(400), 2023 + rng.randrange(3), rng.randrange(1, 6))
            for _ in range(900)
        ],
    )
    # composite index: equality on year + range on score is one index probe
    db.execute("CREATE INDEX ix_review ON review (year, score)")
    db.execute("ANALYZE")
    db.execute(
        "CREATE VIEW seniors AS SELECT id, dept, salary FROM emp "
        "WHERE grade >= 4"
    )

    print("== view merging: the view costs nothing ==")
    show(db, "EXPLAIN SELECT dept FROM seniors WHERE salary > 90000")

    print("== composite-index probe ==")
    show(
        db,
        "EXPLAIN ANALYZE SELECT COUNT(*) AS n FROM review "
        "WHERE year = 2024 AND score BETWEEN 4 AND 5",
    )

    print("== uncorrelated subquery (decomposed to literals) ==")
    show(
        db,
        "SELECT COUNT(*) AS n FROM emp WHERE salary > "
        "(SELECT AVG(salary) AS a FROM emp)",
    )

    print("== correlated EXISTS (decorrelated to a semi-join) ==")
    show(
        db,
        "SELECT e.id, e.dept FROM emp e WHERE e.grade = 5 AND EXISTS "
        "(SELECT r.score FROM review r WHERE r.emp_id = e.id AND r.score = 5)",
    )

    print("== DML with index maintenance ==")
    show(db, "UPDATE emp SET salary = salary * 1.1 WHERE dept = 'eng'")
    show(db, "DELETE FROM review WHERE score = 1")
    show(db, "SELECT COUNT(*) AS remaining FROM review")

    print("== aggregate view (materialized transparently) ==")
    db.execute(
        "CREATE VIEW dept_pay AS SELECT dept, AVG(salary) AS avg_pay "
        "FROM emp GROUP BY dept"
    )
    show(db, "SELECT dept, avg_pay FROM dept_pay ORDER BY avg_pay DESC")


if __name__ == "__main__":
    main()
