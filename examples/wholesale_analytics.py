"""Wholesale analytics: the end-to-end workload from experiment E10.

Loads the TPC-H-flavoured "wholesale" schema and runs its eight analytical
queries, printing each plan and its execution metrics — a realistic tour
of what the optimizer does with multi-join aggregation queries.

Run with::

    python examples/wholesale_analytics.py
"""

from repro import Database
from repro.workloads import WHOLESALE_QUERIES, WholesaleScale, load_wholesale


def main() -> None:
    db = Database(buffer_pages=96, work_mem_pages=16)
    counts = load_wholesale(db, WholesaleScale.small(), seed=42)
    print("loaded wholesale schema:")
    for table, count in counts.items():
        pages = db.table(table).num_pages
        print(f"  {table:10s} {count:7,d} rows  {pages:4d} pages")
    print()

    for name, sql in WHOLESALE_QUERIES.items():
        result = db.query(sql)
        print(f"=== {name} ===")
        print(result.plan.pretty(actuals=True))
        preview = result.rows[:3]
        for row in preview:
            print(f"  {row}")
        if result.rowcount > len(preview):
            print(f"  ... {result.rowcount - len(preview)} more rows")
        print(
            f"  [{result.rowcount} rows, "
            f"{result.io.reads + result.io.writes} page I/Os, "
            f"{result.execution_seconds * 1000:.1f} ms]\n"
        )


if __name__ == "__main__":
    main()
