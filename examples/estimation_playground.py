"""Estimation playground: why optimizers carry histograms and MCV lists.

Loads a table with uniform, Zipf-skewed and correlated columns, then shows
— predicate by predicate — what each estimator tier guesses versus the
true row count.  This is experiment E6 in interactive form.

Run with::

    python examples/estimation_playground.py
"""

from repro.bench.e6_estimation import (
    TIERS,
    _estimate_with,
    load_skew_tables,
    make_queries,
)
from repro.bench.measure import fresh_db
from repro.bench.tables import q_error


def main() -> None:
    db = fresh_db(buffer_pages=256, work_mem_pages=16)
    num_rows, domain = 12000, 200
    load_skew_tables(db, num_rows=num_rows, domain=domain, seed=23)
    print(f"table 'skewed': {num_rows} rows, value domain {domain}")
    print("columns: uni (uniform), zipf (skew 1.1), ca/cb (95% correlated)\n")

    header = f"{'predicate':24s} {'actual':>8s}"
    for tier in TIERS:
        header += f" | {tier:>9s} (q-err)"
    print(header)
    print("-" * len(header))

    for label, sql in make_queries(domain):
        actual = float(db.query(sql).rows[0][0])
        line = f"{label:24s} {actual:8.0f}"
        for tier, config in TIERS.items():
            est = _estimate_with(db, sql, config)
            line += f" | {est:9.0f} ({q_error(est, actual):5.1f})"
        print(line)

    print(
        "\nReading: q-error 1.0 is a perfect estimate."
        "\n  * 'point on zipf head' — only the MCV tier survives skew."
        "\n  * 'range on zipf'      — histograms fix ranges."
        "\n  * 'conjunct correlated'— nothing fixes the independence"
        " assumption; this is the estimator's classic blind spot."
    )


if __name__ == "__main__":
    main()
