"""E4 / Table 3 — plan quality by join-order strategy.

Chain/star/clique queries planned by DP and the baselines, executed cold.
Shape asserted: DP's modeled cost is never beaten; baselines degrade on
the shapes where order matters (star/clique).
"""

from conftest import save_tables

from repro.bench import e4_plan_quality

STRATEGIES = ["dp", "dp-bushy", "greedy", "syntactic", "random"]


def run_experiment():
    return e4_plan_quality.run_plan_quality(
        shapes=["chain", "star", "clique"],
        n=5,
        base_rows=1200,
        buffer_pages=32,
        strategies=STRATEGIES,
    )


def test_bench_e4_plan_quality(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_tables("e4_plan_quality", tables)
    table = tables[0]
    cols = table.columns

    by_shape = {}
    for row in table.rows:
        by_shape.setdefault(row[0], {})[row[1]] = row

    for shape, rows in by_shape.items():
        dp_cost = rows["dp"][cols.index("est cost")]
        for strategy, row in rows.items():
            if strategy == "dp-bushy":
                # bushy searches a superset of left-deep space: it may
                # legitimately beat dp, never lose to it
                assert row[cols.index("est cost")] <= dp_cost * (1 + 1e-9)
                continue
            # dp is modeled-optimal within the shared left-deep space
            assert row[cols.index("est cost")] >= dp_cost * (1 - 1e-9), (
                shape,
                strategy,
            )

    # somewhere in the sweep a baseline actually pays real I/O for its
    # worse order (the whole point of cost-based optimization)
    worst_ratio = max(
        row[cols.index("actual I/O")] / by_shape[row[0]]["dp"][cols.index("actual I/O")]
        for row in table.rows
    )
    assert worst_ratio > 1.2, f"baselines never lost (max ratio {worst_ratio:.2f})"
