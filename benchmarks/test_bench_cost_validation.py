"""E3 / Figure 1 — cost-model validation curve.

Estimated I/O vs measured page reads per access path across the
selectivity sweep.  Shape asserted: the model tracks reality within a
small factor everywhere (it is the same mechanism the planner ranks
plans with, so this is the experiment that justifies everything else).
"""

from conftest import save_tables

from repro.bench import e2_access_paths
from repro.bench.tables import q_error

FRACTIONS = [0.001, 0.01, 0.05, 0.2, 1.0]


def run_experiment():
    return e2_access_paths.run(
        num_rows=12000, fractions=FRACTIONS, buffer_pages=24
    )


def test_bench_e3_cost_validation(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = save_tables("e3_cost_validation", tables[1:])
    validation = tables[1]

    from repro.bench.figures import chart_from_table

    chart = chart_from_table(
        validation, "selectivity",
        ["seq act", "clustered act", "unclustered est", "unclustered act"],
        title="Figure 1 — access-path I/O, model vs measured",
        log_y=True, x_label="selectivity", y_label="page reads",
    )
    print(chart)
    import pathlib
    out = pathlib.Path(__file__).parent / "results" / "e3_cost_validation.txt"
    out.write_text(text + "\n\n" + chart + "\n")
    cols = validation.columns

    pairs = [
        ("seq est", "seq act"),
        ("clustered est", "clustered act"),
        ("unclustered est", "unclustered act"),
    ]
    worst = 1.0
    for row in validation.rows:
        for est_col, act_col in pairs:
            est = float(row[cols.index(est_col)])
            act = float(row[cols.index(act_col)])
            worst = max(worst, q_error(est, act))
    # every prediction within 3x of measurement, across 3 paths x 5 points
    assert worst < 3.0, f"worst q-error {worst:.2f}"

    # and the *ordering* the planner needs is correct at the extremes:
    lo = validation.rows[0]
    hi = validation.rows[-1]
    assert lo[cols.index("unclustered est")] < lo[cols.index("seq est")]
    assert hi[cols.index("unclustered est")] > hi[cols.index("seq est")]
