"""E10 / Table 7 — end-to-end optimizer benefit on the wholesale workload.

All eight analytical queries, cost-based DP vs the syntactic and random
baselines.  Shape asserted: the optimizer never loses meaningfully and
wins overall (geo-mean time ratio > 1); result sets are verified identical
inside the experiment itself.
"""

from conftest import save_tables

from repro.bench import e10_wholesale
from repro.workloads import WholesaleScale


def run_experiment():
    out = []
    for baseline in ("syntactic", "random"):
        out += e10_wholesale.run(
            scale=WholesaleScale.small(),
            baseline=baseline,
            buffer_pages=48,
            repeats=3,
        )
    return out


def test_bench_e10_wholesale(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_tables("e10_wholesale", tables)
    for table in tables:
        cols = table.columns
        ratio_col = cols.index("time ratio")
        dp_io_col = cols.index("dp: I/O")
        base_io_col = [c for c in cols if c.endswith(": I/O") and not c.startswith("dp")]
        base_io_col = cols.index(base_io_col[0])
        # where the baseline picked a genuinely different (heavier-I/O)
        # plan, the optimizer must win on time; identical-plan queries are
        # pure timing noise and only get a loose sanity bound
        for row in table.rows[:-1]:
            ratio = row[ratio_col].value
            if row[base_io_col] > row[dp_io_col] * 1.2:
                assert ratio > 1.0, (table.title, row[0])
            else:
                assert ratio > 0.3, (table.title, row[0])
        # the optimizer wins somewhere decisively...
        ratios = [row[ratio_col].value for row in table.rows[:-1]]
        assert max(ratios) > 2.0, table.title
        # ...and overall
        total = table.rows[-1]
        assert total[ratio_col].value > 1.0, table.title
