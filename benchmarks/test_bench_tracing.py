"""E19 — request-tracing overhead on the serving path.

Shape asserted: span trees at the default level cost at most a few
percent over the same configuration with tracing disabled — the
ISSUE's acceptance bar is <= 5%, asserted here with a small margin for
CI timer noise on the slowest arm.
"""

from conftest import save_tables

from repro.bench import e19_tracing


def run_experiment():
    return e19_tracing.run(statements=600, repeats=3)


def test_bench_e19_tracing(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_tables("e19_tracing", tables)
    (table,) = tables
    by_config = {row[0]: row for row in table.rows}

    # tracing builds a real tree: several spans per statement, none when off
    assert by_config["tracing on"][2] >= 4
    assert by_config["tracing off"][2] == 0

    # the headline number: default tracing within 5% of tracing-off
    # (1.10 asserted: the bar is 1.05, +5pp absorbs shared-CI jitter)
    assert by_config["tracing on"][3].value <= 1.10, by_config["tracing on"]

    # the capture arm runs auto_explain at threshold 0 — every statement
    # also renders its slow-plan capture, a deliberately pathological
    # setting — so it only gets a sanity bound, not the 5% bar
    assert by_config["tracing + capture"][3].value <= 1.6
