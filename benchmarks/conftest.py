"""Shared benchmark plumbing.

Each bench runs one experiment (E1–E10), saves its rendered tables under
``benchmarks/results/`` and asserts the classic *shape* of the result.
Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
tables inline.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_tables(name, tables):
    """Render tables to stdout and to benchmarks/results/<name>.txt."""
    from repro.bench import render_all

    RESULTS_DIR.mkdir(exist_ok=True)
    text = render_all(tables)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
    return text
