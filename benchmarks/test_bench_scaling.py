"""E12 — optimizer benefit vs data scale.

A selective 3-way join written in the worst syntactic order, at three
scale factors.  Shape asserted: the optimizer's plan never loses, and its
wall-clock advantage grows (or at minimum persists) with scale — the
"why pay for an optimizer" closing argument.
"""

from conftest import save_tables

from repro.bench import e12_scaling


def run_experiment():
    return e12_scaling.run(
        scales=["tiny", "small", "medium"], repeats=3, buffer_pages=48
    )


def test_bench_e12_scaling(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_tables("e12_scaling", tables)
    (table,) = tables
    cols = table.columns
    ratio_col = cols.index("time ratio")
    ratios = [row[ratio_col].value for row in table.rows]
    rows_col = cols.index("lineitem rows")

    # data grows by >10x over the sweep
    sizes = table.column_values("lineitem rows")
    assert sizes[-1] > sizes[0] * 10

    # the optimizer never loses meaningfully at any scale
    assert min(ratios) > 0.8, ratios
    # and wins clearly at the largest scale
    assert ratios[-1] > 1.3, ratios
    # the largest-scale win is at least as big as the smallest-scale one
    # (allowing timing noise)
    assert ratios[-1] >= ratios[0] * 0.8, ratios
