"""E18 — WAL commit overhead and group commit.

Shapes asserted: logging without fsync stays close to the no-WAL
ceiling; serial durable commits pay exactly one fsync per COMMIT; group
commit keeps durability while amortizing fsyncs across concurrent
committers (fsyncs/commit strictly below the serial arm's 1.0).
"""

from conftest import save_tables

from repro.bench import e18_wal


def run_experiment():
    return e18_wal.run(txns=200, rows_per_txn=5, threads=8)


def test_bench_e18_wal(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_tables("e18_wal", tables)
    (table,) = tables
    by_config = {row[0]: row for row in table.rows}

    # the durability ladder holds: no log, unsynced log, synced log
    assert by_config["no wal"][2] == 0.0
    assert by_config["wal, no fsync"][2] == 0.0
    assert by_config["wal, fsync"][2] >= 1.0

    # group commit keeps every txn durable but shares fsyncs: strictly
    # fewer syncs per commit than the serial durable arm
    assert 0.0 < by_config["wal, group commit"][2] < by_config["wal, fsync"][2]
