"""E7 / Table 5 — interesting orders.

DP with and without order tracking on queries that want sorted output.
Shape asserted: with tracking, at least one plan avoids an explicit sort
and is never costlier; the ORDER-BY-join-column query gets cheaper in
real I/O.
"""

from conftest import save_tables

from repro.bench import e7_interesting_orders


def run_experiment():
    return e7_interesting_orders.run(rows_a=12000, rows_b=3000)


def test_bench_e7_interesting_orders(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_tables("e7_interesting_orders", tables)
    (table,) = tables
    cols = table.columns
    on_io = cols.index("orders on: I/O")
    off_io = cols.index("orders off: I/O")
    on_sorts = cols.index("orders on: sorts")
    off_sorts = cols.index("orders off: sorts")

    saved_sorts = 0
    for row in table.rows:
        # order tracking never makes actual I/O meaningfully worse
        assert row[on_io] <= row[off_io] * 1.3, row[0]
        if row[on_sorts] is False and row[off_sorts] is True:
            saved_sorts += 1
    assert saved_sorts >= 2

    by_label = {row[0]: row for row in table.rows}
    key = "order by join column"
    # the headline: the sort-free merge plan wins in real I/O and in cost
    assert by_label[key][on_io] < by_label[key][off_io]
    assert (
        by_label[key][cols.index("orders on: cost")]
        < by_label[key][cols.index("orders off: cost")]
    )
