"""E11 — design-choice ablations (histogram resolution/kind, buffer policy).

Shapes asserted:
* equi-depth histograms dominate equi-width at low bucket counts on skewed
  data (equi-depth @4 buckets ≈ equi-width @32);
* equi-width error falls monotonically-ish with resolution;
* MRU beats LRU on sequential rescans of a slightly-too-big inner and
  loses badly on random probes (the classic policy/workload interaction).
"""

from conftest import save_tables

from repro.bench import e11_ablations


def run_experiment():
    return e11_ablations.run_histogram_sweep(
        num_rows=12000, domain=200
    ) + e11_ablations.run_replacement_policies()


def test_bench_e11_ablations(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_tables("e11_ablations", tables)
    hist, policy = tables

    geo = hist.columns.index("geo-mean")
    width = {
        row[1]: row[geo] for row in hist.rows if row[0] == "equi_width"
    }
    depth = {
        row[1]: row[geo] for row in hist.rows if row[0] == "equi_depth"
    }
    # equi-depth at the coarsest setting beats equi-width until high
    # resolution — the reason equi-depth won historically
    assert depth[4] < width[4]
    assert depth[4] < width[16]
    # equi-width improves with resolution
    assert width[64] < width[4]

    rows = {row[0]: row for row in policy.rows}
    seq = policy.columns.index("sequential rescans (BNL)")
    probes = policy.columns.index("random probes (index-NL)")
    # MRU: best-or-equal on sequential flooding, clearly worst on probes
    assert rows["mru"][seq] <= rows["lru"][seq]
    assert rows["mru"][probes] > rows["lru"][probes] * 1.5
    # Clock approximates LRU on probes
    assert rows["clock"][probes] < rows["lru"][probes] * 1.2
