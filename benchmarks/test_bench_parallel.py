"""E14 — intra-query parallel scaling via exchange operators.

Shapes asserted: bit-identity is checked *inside* the experiment (it
raises on any serial/parallel divergence), every pipeline actually
produces a parallel plan at degree > 1, and — only when the machine has
the cores for it — the CPU-bound shapes speed up at degree 4.  On a
single-core CI container the speedup assertion is skipped (forked
workers time-slice one core, so wall clock cannot improve), but the
identity and plan-shape assertions always run.
"""

import os

from conftest import save_tables

from repro.bench import e14_parallel
from repro.workloads import WholesaleScale


def run_experiment():
    return e14_parallel.run(scale=WholesaleScale.small(), repeats=3)


def test_bench_e14_parallel(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_tables("e14_parallel", tables)
    (table,) = tables

    plan_col = len(table.columns) - 1
    by_row = {row[0]: row for row in table.rows}
    assert set(by_row) == set(e14_parallel.QUERIES)

    # every pipeline must actually parallelize (the identity check against
    # serial already ran inside the experiment — it raises on divergence)
    for name, row in by_row.items():
        assert row[plan_col] == "yes", (name, row)

    # wall-clock speedup needs real cores; the parity contract does not
    if (os.cpu_count() or 1) >= 4:
        degree4_col = 2 + list(e14_parallel.DEFAULT_DEGREES).index(4)
        assert by_row["two-phase-agg"][degree4_col].value >= 1.5, by_row
