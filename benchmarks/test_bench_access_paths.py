"""E2 / Table 2 — access-path selection crossover.

Selectivity sweep over seq scan vs clustered vs unclustered index scan.
Shape asserted: indexes win at low selectivity; the unclustered index
crosses over to losing within a few percent; the planner's pick follows.
"""

from conftest import save_tables

from repro.bench import e2_access_paths

FRACTIONS = [0.0005, 0.002, 0.01, 0.05, 0.2, 0.5, 1.0]


def run_experiment():
    return e2_access_paths.run(
        num_rows=12000, fractions=FRACTIONS, buffer_pages=24
    )


def test_bench_e2_access_paths(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_tables("e2_access_paths", tables[:1])
    actual = tables[0]
    cols = actual.columns

    # most selective row: both indexes crush the seq scan
    first = actual.rows[0]
    assert first[cols.index("clustered-index")] < first[cols.index("seq-scan")]
    assert first[cols.index("unclustered-index")] < first[cols.index("seq-scan")]

    # full-table row: seq scan wins against the unclustered index
    last = actual.rows[-1]
    assert last[cols.index("seq-scan")] < last[cols.index("unclustered-index")]

    # the unclustered crossover happens early (the classic surprise)
    cross = e2_access_paths.crossover_fraction(actual, "unclustered-index")
    assert cross is not None and cross <= 0.2

    # the clustered index never loses badly (≤ ~2x of seq even at 100%)
    for row in actual.rows:
        assert row[cols.index("clustered-index")] <= 2.5 * row[cols.index("seq-scan")]

    # planner picks an index for selective predicates, seq for full scans
    assert actual.rows[0][cols.index("planner picks")] == "IndexScan"
    assert actual.rows[-1][cols.index("planner picks")] == "SeqScan"
