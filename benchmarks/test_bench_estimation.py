"""E6 / Table 4 — cardinality-estimation accuracy by estimator tier.

Shape asserted: the classic error hierarchy — uniform assumption fails on
skew; histograms fix ranges; MCVs fix heavy hitters; nothing fixes
correlated conjuncts (independence assumption).
"""

from conftest import save_tables

from repro.bench import e6_estimation


def run_experiment():
    return e6_estimation.run(num_rows=15000, domain=200, histogram_buckets=32)


def test_bench_e6_estimation(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_tables("e6_estimation", tables)
    detail, summary = tables
    geo = {row[0]: row[1] for row in summary.rows}

    # hierarchy on the aggregate
    assert geo["hist+mcv"] <= geo["histogram"] * 1.05
    assert geo["histogram"] <= geo["uniform"] * 1.05
    assert geo["hist+mcv"] < geo["uniform"]

    by_label = {row[0]: row for row in detail.rows}
    cols = detail.columns

    def qerr(label, tier):
        return by_label[label][cols.index(f"{tier} q-err")]

    # zipf head: MCVs fix what uniform butchers
    assert qerr("point on zipf head", "uniform") > 5
    assert qerr("point on zipf head", "hist+mcv") < 2

    # range on skew: histograms fix what uniform butchers
    assert qerr("range on zipf", "uniform") > qerr("range on zipf", "histogram")
    assert qerr("range on zipf", "histogram") < 2

    # correlated conjunct: no tier saves the independence assumption
    assert min(
        qerr("conjunct correlated", t) for t in ("uniform", "histogram", "hist+mcv")
    ) > 3
