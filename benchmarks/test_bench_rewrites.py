"""E9 / Table 6 — predicate-pushdown ablation on wholesale queries.

Shape asserted: pushdown never hurts, and strictly helps (modeled cost) on
queries with selective single-table filters.
"""

from conftest import save_tables

from repro.bench import e9_rewrites
from repro.workloads import WholesaleScale


def run_experiment():
    return e9_rewrites.run(scale=WholesaleScale.small())


def test_bench_e9_rewrites(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_tables("e9_rewrites", tables)
    (table,) = tables
    cols = table.columns
    pd_cost = cols.index("pushdown: cost")
    no_cost = cols.index("no pushdown: cost")
    pd_io = cols.index("pushdown: I/O")
    no_io = cols.index("no pushdown: I/O")

    strict_wins = 0
    for row in table.rows:
        # pushdown never hurts beyond estimation noise (the two modes may
        # choose different join orders off slightly different estimates)
        assert row[no_cost] >= row[pd_cost] * 0.9, row[0]
        assert row[no_io] >= row[pd_io] * 0.95, row[0]
        if row[no_cost] > row[pd_cost] * 1.05:
            strict_wins += 1
    assert strict_wins >= 2, "pushdown should strictly help several queries"
