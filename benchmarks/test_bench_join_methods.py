"""E1 / Table 1 — join-method cost matrix.

Regenerates the classic join-method comparison: actual page I/O for every
join algorithm over relation pairs of growing size, plus the cost model's
prediction.  Shape asserted: nested loops lose at scale, hash/merge win,
index-NL is buffer-sensitive.
"""

from conftest import save_tables

from repro.bench import e1_join_methods

SIZES = [(500, 500), (3000, 3000), (8000, 2000), (2000, 8000)]


def run_experiment():
    return e1_join_methods.run(
        sizes=SIZES,
        buffer_pages=24,
        work_mem_pages=8,
        skip_tuple_nl_above=300_000,
    )


def test_bench_e1_join_methods(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_tables("e1_join_methods", tables)
    actual, estimated = tables
    methods = e1_join_methods.METHODS

    big = dict(zip(methods, actual.rows[1][2:]))  # 3000 x 3000
    # classic shape: blocked/hash/merge all beat index-NL once the working
    # set exceeds the buffer pool
    assert big["hash"] < big["index-NL"]
    assert big["sort-merge"] < big["index-NL"]

    asym = dict(zip(methods, actual.rows[2][2:]))  # 8000 x 2000
    # with a small inner, one extra inner pass is cheap: block-NL competitive
    assert asym["block-NL"] <= asym["sort-merge"]

    # the model agrees on the headline ordering at scale
    model_big = dict(zip(methods, estimated.rows[1][2:]))
    assert model_big["hash"] < model_big["tuple-NL"]
    assert model_big["sort-merge"] < model_big["tuple-NL"]
