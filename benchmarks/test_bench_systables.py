"""E16 — system-statistics overhead and reconciliation.

Shapes asserted: wait-event accounting costs at most 5% throughput on
the scan→filter→aggregate workload (warm and cold), and every aggregate
the ``sys_stat_*`` tables serve through SQL reconciles exactly with the
engine's internal counters.
"""

from conftest import save_tables

from repro.bench import e16_systables
from repro.workloads import WholesaleScale


def run_experiment():
    return e16_systables.run(scale=WholesaleScale.small(), repeats=5)


def test_bench_e16_systables(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_tables("e16_systables", tables)
    overhead, reconciliation = tables

    # wait accounting must cost at most ~5%, warm or cold; the floor
    # carries a little slack below 0.95 because best-of-5 timing on a
    # shared runner still jitters a few percent either way
    for row in overhead.rows:
        ratio = row[-1].value
        assert ratio >= 0.92, (row[0], ratio)

    # every reconciliation check must be exact
    for row in reconciliation.rows:
        assert row[-1] == "True", row
