"""E8 / Figure 3 — buffer-size sensitivity of the join methods.

Shape asserted: block-NL improves steeply with memory then flatlines once
the inner fits; hash join flattens once the build side fits work memory;
index-NL is the most buffer-hungry at small pools.
"""

from conftest import save_tables

from repro.bench import e8_buffer_sweep

BUFFERS = [8, 16, 32, 64, 128]


def run_experiment():
    return e8_buffer_sweep.run(
        outer_rows=6000, inner_rows=6000, buffer_sizes=BUFFERS
    )


def test_bench_e8_buffer_sweep(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = save_tables("e8_buffer_sweep", tables)
    (table,) = tables

    from repro.bench.figures import chart_from_table

    chart = chart_from_table(
        table, "buffer pages", list(e8_buffer_sweep.METHODS),
        title="Figure 3 — join I/O vs buffer pool size",
        log_y=True, x_label="buffer pages", y_label="page I/O",
    )
    print(chart)
    import pathlib
    out = pathlib.Path(__file__).parent / "results" / "e8_buffer_sweep.txt"
    out.write_text(text + "\n\n" + chart + "\n")

    bnl = table.column_values("block-NL")
    hash_io = table.column_values("hash")
    inl = table.column_values("index-NL")
    smj = table.column_values("sort-merge")

    # block-NL monotonically (weakly) improves with memory, strictly from
    # the smallest to the largest pool
    assert all(a >= b for a, b in zip(bnl, bnl[1:]))
    assert bnl[0] > bnl[-1]

    # hash join reaches its floor (two input scans) and stays there
    assert hash_io[-1] == min(hash_io)
    assert hash_io[-2] <= hash_io[0]

    # sort-merge sheds spill passes as memory grows
    assert smj[0] > smj[-1]

    # index-NL is the most buffer-sensitive: worst at the smallest pool
    assert inl[0] == max(inl)
    assert inl[0] > bnl[0]
