"""E5 / Figure 2 — planning effort vs number of relations.

Shape asserted: greedy's considered-plan count grows linearly, DP's
polynomially, exhaustive explodes combinatorially (clique shape makes
every order valid, so the factorial bites).
"""

from conftest import save_tables

from repro.bench import e4_plan_quality


def run_experiment():
    chain = e4_plan_quality.run_planning_time(
        shape="chain",
        max_n=8,
        base_rows=100,
        strategies=["dp", "dp-bushy", "greedy", "exhaustive"],
        exhaustive_limit=7,
    )
    clique = e4_plan_quality.run_planning_time(
        shape="clique",
        max_n=7,
        base_rows=60,
        strategies=["dp", "greedy", "exhaustive"],
        exhaustive_limit=6,
    )
    return chain + clique


def test_bench_e5_planning_time(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = save_tables("e5_planning_time", tables)
    chain_effort = tables[1]
    clique_effort = tables[3]

    from repro.bench.figures import chart_from_table

    chart = chart_from_table(
        clique_effort, "n",
        ["dp plans", "greedy plans", "exhaustive plans"],
        title="Figure 2 — subplans considered vs relations (clique)",
        log_y=True, x_label="relations", y_label="plans",
    )
    print(chart)
    import pathlib
    out = pathlib.Path(__file__).parent / "results" / "e5_planning_time.txt"
    out.write_text(text + "\n\n" + chart + "\n")

    dp = chain_effort.column_values("dp plans")
    greedy = chain_effort.column_values("greedy plans")
    assert dp == sorted(dp)
    # greedy stays near-linear: last/first ratio far below dp's
    assert greedy[-1] / greedy[0] < dp[-1] / dp[0]

    # clique: exhaustive blows past DP well before n=6
    cols = clique_effort.columns
    for row in clique_effort.rows:
        n = row[0]
        ex = row[cols.index("exhaustive plans")]
        dp_n = row[cols.index("dp plans")]
        if n >= 6 and ex is not None:
            assert ex > 3 * dp_n, (n, ex, dp_n)
