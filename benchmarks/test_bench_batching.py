"""E13 — batched execution throughput vs batch size.

Shapes asserted: batching pays — the scan→filter→aggregate pipeline runs
at least 2x faster at batch_size=1024 than at batch_size=1 with
instrumentation OFF; the 3-way hash join also gains; and every
configuration returns identical results (checked inside the experiment).
"""

from conftest import save_tables

from repro.bench import e13_batching
from repro.workloads import WholesaleScale


def run_experiment():
    return e13_batching.run(scale=WholesaleScale.small(), repeats=3)


def test_bench_e13_batching(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_tables("e13_batching", tables)
    (table,) = tables
    speedup_col = len(table.columns) - 1
    by_row = {
        (row[0], row[1]): row[speedup_col].value for row in table.rows
    }

    # the headline claim: batching amortizes per-call overhead at least
    # 2x on the CPU-bound aggregate pipeline, instrumentation off
    assert by_row[("scan-filter-agg", "OFF")] >= 2.0, by_row

    # every configuration must gain from batching (noise margin aside)
    assert all(s > 1.2 for s in by_row.values()), by_row
