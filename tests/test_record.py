"""Tests for record serialization."""

from datetime import date

import pytest
from hypothesis import given, strategies as st

from repro.storage import RecordError, deserialize_row, record_size, serialize_row
from repro.types import DataType, schema_of

SCHEMA = schema_of(
    "t",
    ("a", DataType.INT),
    ("b", DataType.FLOAT),
    ("c", DataType.TEXT),
    ("d", DataType.BOOL),
    ("e", DataType.DATE),
)


def roundtrip(row):
    return deserialize_row(SCHEMA, serialize_row(SCHEMA, row))


class TestRoundtrip:
    def test_simple(self):
        row = (1, 2.5, "hello", True, date(2001, 9, 9))
        assert roundtrip(row) == row

    def test_all_nulls(self):
        row = (None,) * 5
        assert roundtrip(row) == row

    def test_mixed_nulls(self):
        row = (7, None, "", None, date(1, 1, 1))
        assert roundtrip(row) == row

    def test_unicode_text(self):
        row = (0, 0.0, "héllo wörld ☃", False, date(2020, 1, 1))
        assert roundtrip(row) == row

    def test_negative_and_extreme_ints(self):
        for v in (-1, -(2**62), 2**62, 0):
            assert roundtrip((v, 0.0, "", False, date(1970, 1, 1)))[0] == v

    def test_special_floats(self):
        out = roundtrip((0, float("inf"), "", False, date(1970, 1, 1)))
        assert out[1] == float("inf")

    def test_quote_in_text(self):
        assert roundtrip((0, 0.0, "a'b''c", False, date(1970, 1, 1)))[2] == "a'b''c"


values = st.tuples(
    st.one_of(st.none(), st.integers(min_value=-(2**63), max_value=2**63 - 1)),
    st.one_of(st.none(), st.floats(allow_nan=False)),
    st.one_of(st.none(), st.text(max_size=200)),
    st.one_of(st.none(), st.booleans()),
    st.one_of(
        st.none(),
        st.dates(min_value=date(1, 1, 1), max_value=date(9999, 12, 31)),
    ),
)


class TestProperties:
    @given(values)
    def test_roundtrip_any_row(self, row):
        assert roundtrip(row) == row

    @given(values)
    def test_record_size_matches(self, row):
        assert record_size(SCHEMA, row) == len(serialize_row(SCHEMA, row))


class TestErrors:
    def test_truncated_payload(self):
        data = serialize_row(SCHEMA, (1, 2.0, "abc", True, date(2000, 1, 1)))
        with pytest.raises(RecordError):
            deserialize_row(SCHEMA, data[:-2])

    def test_trailing_garbage(self):
        data = serialize_row(SCHEMA, (1, 2.0, "abc", True, date(2000, 1, 1)))
        with pytest.raises(RecordError):
            deserialize_row(SCHEMA, data + b"xx")

    def test_empty_bytes(self):
        with pytest.raises(RecordError):
            deserialize_row(SCHEMA, b"")

    def test_oversized_text(self):
        with pytest.raises(RecordError):
            serialize_row(SCHEMA, (1, 1.0, "x" * 70000, True, date(2000, 1, 1)))
