"""Property-based tests over the optimizer with hypothesis.

Random join graphs and random predicates; invariants:

* DP (left-deep) cost == exhaustive left-deep cost (optimality);
* every strategy's plan returns the same rows as a brute-force reference;
* estimated selectivities are always in [0, 1]; estimated cardinalities
  never negative.
"""

import itertools
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database
from repro.algebra import (
    build_plan,
    extract_join_graph,
    push_down_predicates,
    transform_join_regions,
)
from repro.expr import CmpOp, Comparison, col, lit
from repro.optimizer import (
    DPPlanner,
    Estimator,
    ExhaustivePlanner,
    PlannerOptions,
    StatsResolver,
)
from repro.sql import parse


def make_db(seed: int, num_tables: int, rows_each: int = 60) -> Database:
    """Small database of joinable tables: t0..t{n-1}, each with id/fk/v."""
    db = Database(buffer_pages=64, work_mem_pages=4)
    rng = random.Random(seed)
    for t in range(num_tables):
        db.execute(f"CREATE TABLE t{t} (id INT, fk INT, v INT)")
        size = rows_each + rng.randrange(rows_each)
        db.insert_rows(
            f"t{t}",
            [
                (i, rng.randrange(rows_each), rng.randrange(10))
                for i in range(size)
            ],
        )
        if rng.random() < 0.5:
            db.execute(f"CREATE INDEX ix_t{t} ON t{t} (id)")
    db.execute("ANALYZE")
    return db


def random_query(rng: random.Random, num_tables: int, shape_bits: int):
    """A connected join query over t0..t{n-1} with random edges/filters."""
    tables = [f"t{i}" for i in range(num_tables)]
    edges = []
    for i in range(1, num_tables):
        # connect i to a random earlier table: always connected
        j = rng.randrange(i)
        left_col = rng.choice(["id", "fk"])
        right_col = rng.choice(["id", "fk"])
        edges.append(f"t{i}.{left_col} = t{j}.{right_col}")
    # extra edges from shape bits (clique-ward)
    for i, j in itertools.combinations(range(num_tables), 2):
        if shape_bits & 1 and f"t{i}.fk = t{j}.id" not in edges:
            edges.append(f"t{j}.id = t{i}.fk")
        shape_bits >>= 1
    filters = []
    for t in tables:
        if rng.random() < 0.5:
            filters.append(f"{t}.v {rng.choice(['<', '=', '>'])} {rng.randrange(10)}")
    where = " AND ".join(edges + filters)
    return f"SELECT COUNT(*) AS n FROM {', '.join(tables)} WHERE {where}"


def graph_of(db, sql):
    plan = push_down_predicates(build_plan(parse(sql), db.catalog))
    graphs = []
    transform_join_regions(
        plan, lambda r: graphs.append(extract_join_graph(r)) or r
    )
    return graphs[0]


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10**6),
    num_tables=st.integers(2, 4),
    shape_bits=st.integers(0, 63),
)
def test_dp_matches_exhaustive_on_random_graphs(seed, num_tables, shape_bits):
    rng = random.Random(seed)
    db = make_db(seed, num_tables, rows_each=40)
    sql = random_query(rng, num_tables, shape_bits)
    graph = graph_of(db, sql)
    est = Estimator(StatsResolver(graph))
    dp = DPPlanner(graph, est, db.model)
    ex = ExhaustivePlanner(graph, est, db.model)
    dp_cost = dp.plan().cost.total
    ex_cost = ex.plan().cost.total
    assert dp_cost == pytest.approx(ex_cost, rel=1e-9)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10**6),
    num_tables=st.integers(2, 3),
    shape_bits=st.integers(0, 7),
)
def test_strategies_agree_on_random_queries(seed, num_tables, shape_bits):
    rng = random.Random(seed ^ 0xBEEF)
    db = make_db(seed, num_tables, rows_each=30)
    sql = random_query(rng, num_tables, shape_bits)
    reference = None
    for strategy in ("dp", "dp-bushy", "greedy", "syntactic", "random"):
        db.options = PlannerOptions(strategy=strategy)
        rows = db.query(sql).rows
        if reference is None:
            reference = rows
        else:
            assert rows == reference, (strategy, sql)


@settings(max_examples=30, deadline=None)
@given(
    op=st.sampled_from(list(CmpOp)),
    value=st.integers(-100, 1100),
    seed=st.integers(0, 100),
)
def test_selectivity_always_in_unit_interval(op, value, seed):
    db = make_db(seed % 3, 1, rows_each=50)
    sql = "SELECT COUNT(*) AS n FROM t0"
    graph = graph_of(db, sql)
    est = Estimator(StatsResolver(graph))
    sel = est.selectivity(Comparison(op, col("t0.id"), lit(value)))
    assert 0.0 <= sel <= 1.0


@settings(max_examples=15, deadline=None)
@given(
    left=st.floats(min_value=0, max_value=1e6),
    right=st.floats(min_value=0, max_value=1e6),
    seed=st.integers(0, 10),
)
def test_join_rows_non_negative(left, right, seed):
    db = make_db(seed, 2, rows_each=20)
    sql = "SELECT COUNT(*) AS n FROM t0, t1 WHERE t0.fk = t1.id"
    graph = graph_of(db, sql)
    est = Estimator(StatsResolver(graph))
    conjuncts = graph.edge_conjuncts("t0", "t1")
    assert est.join_rows(left, right, conjuncts) >= 0.0
    assert est.join_rows(left, right, []) == left * right
