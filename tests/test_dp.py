"""Tests for the DP join enumerator.

The load-bearing property: DP (left-deep) finds a plan with the same cost
as exhaustive enumeration of left-deep orders, at far fewer considered
plans — on every join-graph shape.
"""

import pytest

from repro.algebra import extract_join_graph, push_down_predicates, build_plan, transform_join_regions
from repro.engine import Database
from repro.optimizer import DPPlanner, Estimator, ExhaustivePlanner, StatsResolver, count_dp_subsets
from repro.physical import PHashJoin, PIndexNLJoin, PNestedLoopJoin, PSortMergeJoin, walk_plan
from repro.workloads import build_chain, build_clique, build_star


def graph_for(db, sql):
    plan = push_down_predicates(build_plan(__import__("repro.sql", fromlist=["parse"]).parse(sql), db.catalog))
    graphs = []
    transform_join_regions(plan, lambda r: graphs.append(extract_join_graph(r)) or r)
    return graphs[0]


def planners_for(db, sql, **dp_kwargs):
    graph = graph_for(db, sql)
    est = Estimator(StatsResolver(graph))
    dp = DPPlanner(graph, est, db.model, **dp_kwargs)
    ex = ExhaustivePlanner(graph, est, db.model)
    return dp, ex


@pytest.fixture(scope="module")
def chain_db():
    db = Database(buffer_pages=128, work_mem_pages=8)
    build_chain(db, 5, base_rows=300, seed=3, with_indexes=True)
    return db


@pytest.fixture(scope="module")
def star_db():
    db = Database(buffer_pages=128, work_mem_pages=8)
    build_star(db, 5, fact_rows=1500, dim_base=40, seed=4, with_indexes=True)
    return db


@pytest.fixture(scope="module")
def clique_db():
    db = Database(buffer_pages=128, work_mem_pages=8)
    build_clique(db, 4, base_rows=200, seed=5)
    return db


class TestOptimality:
    def test_dp_matches_exhaustive_on_chain(self, chain_db):
        db = chain_db
        sql = (
            "SELECT COUNT(*) AS n FROM c0, c1, c2, c3, c4 WHERE "
            "c0.fk = c1.id AND c1.fk = c2.id AND c2.fk = c3.id "
            "AND c3.fk = c4.id"
        )
        dp, ex = planners_for(db, sql)
        dp_cost = dp.plan().cost.total
        ex_cost = ex.plan().cost.total
        assert dp_cost == pytest.approx(ex_cost, rel=1e-9)

    def test_dp_matches_exhaustive_on_star(self, star_db):
        db = star_db
        sql = (
            "SELECT COUNT(*) AS n FROM sfact, sd0, sd1, sd2 WHERE "
            "sfact.fk0 = sd0.id AND sfact.fk1 = sd1.id AND sfact.fk2 = sd2.id"
        )
        dp, ex = planners_for(db, sql)
        assert dp.plan().cost.total == pytest.approx(
            ex.plan().cost.total, rel=1e-9
        )

    def test_dp_matches_exhaustive_on_clique(self, clique_db):
        db = clique_db
        sql = (
            "SELECT COUNT(*) AS n FROM q0, q1, q2, q3 WHERE "
            "q0.k = q1.k AND q0.k = q2.k AND q0.k = q3.k AND q1.k = q2.k "
            "AND q1.k = q3.k AND q2.k = q3.k"
        )
        dp, ex = planners_for(db, sql)
        assert dp.plan().cost.total <= ex.plan().cost.total * (1 + 1e-9)

    def test_bushy_never_worse_than_left_deep(self, chain_db):
        sql = (
            "SELECT COUNT(*) AS n FROM c0, c1, c2, c3 WHERE "
            "c0.fk = c1.id AND c1.fk = c2.id AND c2.fk = c3.id"
        )
        dp_left, _ = planners_for(chain_db, sql, left_deep=True)
        dp_bushy, _ = planners_for(chain_db, sql, left_deep=False)
        assert (
            dp_bushy.plan().cost.total
            <= dp_left.plan().cost.total * (1 + 1e-9)
        )


class TestSearchBehaviour:
    def test_effort_grows_with_relations(self, chain_db):
        costs = []
        for n in (2, 3, 4, 5):
            tables = ", ".join(f"c{i}" for i in range(n))
            joins = " AND ".join(
                f"c{i}.fk = c{i+1}.id" for i in range(n - 1)
            )
            dp, _ = planners_for(
                chain_db, f"SELECT COUNT(*) AS n FROM {tables} WHERE {joins}"
            )
            dp.plan()
            costs.append(dp.stats.plans_considered)
        assert costs == sorted(costs) and costs[-1] > costs[0]

    def test_cross_products_avoided_on_connected_graph(self, chain_db):
        sql = (
            "SELECT COUNT(*) AS n FROM c0, c1, c2 "
            "WHERE c0.fk = c1.id AND c1.fk = c2.id"
        )
        dp, _ = planners_for(chain_db, sql)
        plan = dp.plan().plan
        for node in walk_plan(plan):
            if isinstance(node, PNestedLoopJoin):
                assert node.condition is not None

    def test_disconnected_graph_still_plans(self, chain_db):
        dp, _ = planners_for(
            chain_db, "SELECT COUNT(*) AS n FROM c0, c1"
        )
        sub = dp.plan()
        assert sub.relations == frozenset({"c0", "c1"})

    def test_join_methods_all_appear_somewhere(self, chain_db):
        """Across candidate generation, every join method gets considered."""
        sql = (
            "SELECT COUNT(*) AS n FROM c0, c1 WHERE c0.fk = c1.id"
        )
        graph = graph_for(chain_db, sql)
        est = Estimator(StatsResolver(graph))
        dp = DPPlanner(graph, est, chain_db.model)
        bases = dp._base_plans("c0"), dp._base_plans("c1")
        left = min(bases[0].values(), key=lambda s: s.cost.total)
        right = min(bases[1].values(), key=lambda s: s.cost.total)
        kinds = {
            type(c.plan) for c in dp.join_candidates(left, right)
        }
        assert PNestedLoopJoin in kinds
        assert PHashJoin in kinds
        assert PSortMergeJoin in kinds
        assert PIndexNLJoin in kinds  # c1.id has an index

    def test_subset_rows_consistent(self, chain_db):
        sql = (
            "SELECT COUNT(*) AS n FROM c0, c1, c2 "
            "WHERE c0.fk = c1.id AND c1.fk = c2.id"
        )
        graph = graph_for(chain_db, sql)
        est = Estimator(StatsResolver(graph))
        dp = DPPlanner(graph, est, chain_db.model)
        s1 = dp._subset_rows(frozenset({"c0", "c1"}))
        s2 = dp._subset_rows(frozenset({"c0", "c1"}))
        assert s1 == s2  # memoized, stable


class TestInterestingOrders:
    def test_ordered_plan_kept(self, chain_db):
        sql = "SELECT COUNT(*) AS n FROM c0, c1 WHERE c0.fk = c1.id"
        graph = graph_for(chain_db, sql)
        est = Estimator(StatsResolver(graph))
        dp = DPPlanner(graph, est, chain_db.model, use_interesting_orders=True)
        table = dp.plan_all_orders()
        assert len(table) >= 1
        # with orders disabled everything collapses to one entry
        dp2 = DPPlanner(
            graph, est, chain_db.model, use_interesting_orders=False
        )
        assert len(dp2.plan_all_orders()) == 1

    def test_merge_join_propagates_order(self, chain_db):
        sql = "SELECT COUNT(*) AS n FROM c0, c1 WHERE c0.fk = c1.id"
        graph = graph_for(chain_db, sql)
        est = Estimator(StatsResolver(graph))
        dp = DPPlanner(graph, est, chain_db.model)
        table = dp.plan_all_orders()
        ordered = {o for o in table if o is not None}
        assert ordered <= {"c0.fk", "c1.id"}

    def test_analytic_subset_counts(self):
        assert count_dp_subsets(4, "chain") == 10
        assert count_dp_subsets(4, "clique") == 15
        assert count_dp_subsets(4, "star") == 11
        with pytest.raises(ValueError):
            count_dp_subsets(4, "ring")
