"""Tests for column statistics and histograms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import (
    HistogramKind,
    analyze_column,
    build_equi_depth,
    build_equi_width,
)
from repro.types import DataType


class TestAnalyzeColumn:
    def test_counts(self):
        values = [1, 2, 2, 3, None, None]
        stats = analyze_column(DataType.INT, values)
        assert stats.num_rows == 6
        assert stats.null_count == 2
        assert stats.num_distinct == 3
        assert stats.min_value == 1 and stats.max_value == 3
        assert abs(stats.null_fraction - 2 / 6) < 1e-9

    def test_empty(self):
        stats = analyze_column(DataType.INT, [])
        assert stats.num_rows == 0
        assert stats.num_distinct == 0
        assert stats.histogram is None

    def test_all_null(self):
        stats = analyze_column(DataType.INT, [None, None])
        assert stats.null_count == 2
        assert stats.num_distinct == 0

    def test_mcvs_on_skew(self):
        values = [0] * 500 + list(range(1, 101))
        stats = analyze_column(DataType.INT, values, num_mcvs=4)
        mcv_values = [v for v, _, _ in stats.mcvs]
        assert 0 in mcv_values
        assert stats.mcv_lookup(0) == pytest.approx(500 / 600)
        assert stats.mcv_lookup(50) is None

    def test_no_mcvs_on_uniform(self):
        values = list(range(100)) * 3
        stats = analyze_column(DataType.INT, values, num_mcvs=4)
        assert stats.mcvs == []

    def test_text_column(self):
        stats = analyze_column(DataType.TEXT, ["a", "b", "b", "c"])
        assert stats.num_distinct == 3
        assert stats.min_value == "a"

    def test_histogram_kinds(self):
        values = list(range(1000))
        ew = analyze_column(
            DataType.INT, values, histogram=HistogramKind.EQUI_WIDTH
        )
        ed = analyze_column(
            DataType.INT, values, histogram=HistogramKind.EQUI_DEPTH
        )
        none = analyze_column(DataType.INT, values, histogram=HistogramKind.NONE)
        assert ew.histogram.kind is HistogramKind.EQUI_WIDTH
        assert ed.histogram.kind is HistogramKind.EQUI_DEPTH
        assert none.histogram is None


class TestHistograms:
    def test_equi_width_uniform_fractions(self):
        hist = build_equi_width([float(i) for i in range(1000)], 20)
        assert hist.total == 1000
        assert hist.fraction_below(500.0, False) == pytest.approx(0.5, abs=0.03)
        assert hist.fraction_below(-1.0, False) == 0.0
        assert hist.fraction_below(2000.0, True) == 1.0

    def test_equi_depth_bucket_sizes(self):
        values = [float(i) for i in range(1000)]
        hist = build_equi_depth(values, 10)
        assert hist.total == 1000
        assert max(hist.counts) - min(hist.counts) <= 110

    def test_equi_depth_handles_heavy_duplicates(self):
        values = [1.0] * 900 + [float(i) for i in range(2, 102)]
        hist = build_equi_depth(values, 10)
        assert hist.total == 1000
        assert hist.fraction_equal(1.0) > 0.5

    def test_single_value_column(self):
        for build in (build_equi_width, build_equi_depth):
            hist = build([5.0] * 10, 4)
            assert hist.fraction_equal(5.0) == pytest.approx(1.0)
            assert hist.fraction_below(5.0, True) == pytest.approx(1.0)
            assert hist.fraction_below(4.0, True) == 0.0

    def test_empty_returns_none(self):
        assert build_equi_width([], 4) is None
        assert build_equi_depth([], 4) is None

    def test_fraction_between(self):
        hist = build_equi_depth([float(i) for i in range(100)], 10)
        frac = hist.fraction_between(20.0, 40.0)
        assert frac == pytest.approx(0.2, abs=0.08)
        assert hist.fraction_between(None, None) == pytest.approx(1.0)

    def test_fraction_equal_skew(self):
        values = [0.0] * 500 + [float(i) for i in range(1, 501)]
        hist = build_equi_depth(values, 16)
        assert hist.fraction_equal(0.0) > hist.fraction_equal(250.0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=300),
        st.integers(2, 32),
    )
    def test_fraction_below_is_monotone(self, values, buckets):
        hist = build_equi_depth(values, buckets)
        lo, hi = min(values), max(values)
        probes = [lo + (hi - lo) * i / 10 for i in range(11)]
        fracs = [hist.fraction_below(p, False) for p in probes]
        assert all(0.0 <= f <= 1.0 for f in fracs)
        assert all(a <= b + 1e-9 for a, b in zip(fracs, fracs[1:]))

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(-100, 100), min_size=1, max_size=300),
        st.integers(2, 16),
    )
    def test_equi_width_total_preserved(self, values, buckets):
        hist = build_equi_width([float(v) for v in values], buckets)
        assert hist.total == len(values)
