"""Property tests for the WAL record codec (repro.wal.records).

The codec is the part of recovery that must never be wrong: every
durability guarantee reduces to "the valid prefix of the log is exactly
the records that were fully written".  Three properties pin that down:

* round-trip — decode(encode(r)) == r for arbitrary records;
* integrity — any single flipped bit in a frame is rejected (the CRC
  covers the body; the length/CRC header protects itself by making the
  CRC check read the wrong range);
* torn tail — truncating a log at *every* byte offset inside its final
  frame yields exactly the preceding records, never garbage, never an
  exception.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.wal.records import (
    FRAME_HEADER_SIZE,
    WalCodecError,
    WalRecord,
    WalRecordType,
    decode_record,
    encode_record,
    iter_records,
    last_record,
    valid_prefix,
)

records = st.builds(
    WalRecord,
    lsn=st.integers(min_value=0, max_value=2**63),
    type=st.sampled_from(list(WalRecordType)),
    txn_id=st.integers(min_value=0, max_value=2**63),
    table=st.text(
        alphabet=st.characters(blacklist_categories=("Cs",)), max_size=40
    ),
    page_no=st.integers(min_value=-1, max_value=2**31 - 1),
    slot_no=st.integers(min_value=-1, max_value=2**31 - 1),
    payload=st.binary(max_size=200),
)


@settings(max_examples=200, deadline=None)
@given(records)
def test_round_trip(rec):
    encoded = encode_record(rec)
    decoded, end = decode_record(encoded)
    assert decoded == rec
    assert end == len(encoded)


@settings(max_examples=100, deadline=None)
@given(st.lists(records, min_size=0, max_size=5))
def test_round_trip_concatenated(recs):
    buf = b"".join(encode_record(r) for r in recs)
    out, end = valid_prefix(buf)
    assert out == recs
    assert end == len(buf)
    assert last_record(buf) == (recs[-1] if recs else None)


@settings(max_examples=200, deadline=None)
@given(records, st.data())
def test_single_bit_flip_rejected(rec, data):
    encoded = bytearray(encode_record(rec))
    bit = data.draw(
        st.integers(min_value=0, max_value=len(encoded) * 8 - 1), label="bit"
    )
    encoded[bit // 8] ^= 1 << (bit % 8)
    with pytest.raises(WalCodecError):
        decode_record(bytes(encoded))


@settings(max_examples=50, deadline=None)
@given(st.lists(records, min_size=1, max_size=3))
def test_torn_tail_every_offset(recs):
    frames = [encode_record(r) for r in recs]
    buf = b"".join(frames)
    prefix_len = len(buf) - len(frames[-1])
    expected = recs[:-1]
    for cut in range(prefix_len, len(buf)):
        got, end = valid_prefix(buf[:cut])
        assert got == expected
        assert end == prefix_len
    # and one byte past the tear (the full final frame) restores it
    got, end = valid_prefix(buf)
    assert got == recs


def test_implausible_length_rejected():
    rec = WalRecord(1, WalRecordType.COMMIT, 7)
    encoded = bytearray(encode_record(rec))
    encoded[0:4] = (2**31).to_bytes(4, "big")  # absurd body_len
    with pytest.raises(WalCodecError):
        decode_record(bytes(encoded))


def test_unknown_type_rejected():
    bad = WalRecord(1, WalRecordType.COMMIT, 7)
    encoded = bytearray(encode_record(bad))
    # type byte sits right after lsn inside the body; patch it and re-CRC
    import struct
    import zlib

    body = bytearray(encoded[FRAME_HEADER_SIZE:])
    body[8] = 200  # no such WalRecordType
    header = struct.pack(">II", len(body), zlib.crc32(bytes(body)))
    with pytest.raises(WalCodecError):
        decode_record(header + bytes(body))


def test_iter_records_stops_at_tear():
    recs = [
        WalRecord(i, WalRecordType.INSERT, 1, "t", 0, i, b"x" * i)
        for i in range(1, 4)
    ]
    buf = b"".join(encode_record(r) for r in recs)
    torn = buf[: len(buf) - 3]
    out = [r for r, _ in iter_records(torn)]
    assert out == recs[:-1]
