"""Tests for the B+-tree index."""

import random

from hypothesis import given, settings, strategies as st

from repro.index import BPlusTree
from repro.storage import BufferPool, DiskManager
from repro.types import DataType


def make_tree(dtype=DataType.INT, pool_pages=300, page_size=512):
    disk = DiskManager(page_size)
    pool = BufferPool(disk, pool_pages)
    return disk, BPlusTree(pool, dtype, "ix")


class TestInsertSearch:
    def test_empty(self):
        _, tree = make_tree()
        assert tree.num_entries == 0
        assert tree.search(5) == []
        assert list(tree.items()) == []

    def test_single(self):
        _, tree = make_tree()
        tree.insert(42, (0, 0))
        assert tree.search(42) == [(0, 0)]
        assert tree.height == 1

    def test_sequential_inserts_split(self):
        _, tree = make_tree()
        for i in range(500):
            tree.insert(i, (i, 0))
        assert tree.height > 1
        tree.validate()
        assert tree.search(250) == [(250, 0)]

    def test_random_inserts(self):
        _, tree = make_tree()
        keys = list(range(800))
        random.Random(4).shuffle(keys)
        for k in keys:
            tree.insert(k, (k, 1))
        tree.validate()
        assert [k for k, _ in tree.items()] == list(range(800))

    def test_duplicates(self):
        _, tree = make_tree()
        for i in range(30):
            tree.insert(7, (i, 0))
        tree.insert(6, (0, 0))
        tree.insert(8, (0, 0))
        assert len(tree.search(7)) == 30
        tree.validate()

    def test_duplicates_across_splits(self):
        _, tree = make_tree()
        for i in range(400):
            tree.insert(i % 5, (i, 0))
        tree.validate()
        assert len(tree.search(3)) == 80

    def test_text_keys(self):
        _, tree = make_tree(DataType.TEXT)
        words = [f"word{i:03d}" for i in range(200)]
        random.Random(1).shuffle(words)
        for i, w in enumerate(words):
            tree.insert(w, (i, 0))
        tree.validate()
        got = [k for k, _ in tree.range_scan("word010", "word019")]
        assert got == [f"word{i:03d}" for i in range(10, 20)]

    def test_null_keys_allowed_in_btree(self):
        _, tree = make_tree()
        tree.insert(None, (1, 0))
        tree.insert(5, (2, 0))
        items = list(tree.items())
        assert items[0][0] is None  # NULLs sort first
        # bounded scans exclude NULLs
        assert [k for k, _ in tree.range_scan(0, 10)] == [5]


class TestRangeScan:
    def setup_method(self):
        _, self.tree = make_tree()
        for i in range(0, 200, 2):  # even keys 0..198
            self.tree.insert(i, (i, 0))

    def test_inclusive_bounds(self):
        keys = [k for k, _ in self.tree.range_scan(10, 20, True, True)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_exclusive_bounds(self):
        keys = [k for k, _ in self.tree.range_scan(10, 20, False, False)]
        assert keys == [12, 14, 16, 18]

    def test_open_low(self):
        keys = [k for k, _ in self.tree.range_scan(None, 6)]
        assert keys == [0, 2, 4, 6]

    def test_open_high(self):
        keys = [k for k, _ in self.tree.range_scan(194, None)]
        assert keys == [194, 196, 198]

    def test_bounds_between_keys(self):
        keys = [k for k, _ in self.tree.range_scan(11, 15)]
        assert keys == [12, 14]

    def test_empty_range(self):
        assert list(self.tree.range_scan(11, 11)) == []
        assert list(self.tree.range_scan(500, 600)) == []

    def test_full_scan_sorted(self):
        keys = [k for k, _ in self.tree.items()]
        assert keys == sorted(keys)


class TestDelete:
    def test_delete_existing(self):
        _, tree = make_tree()
        for i in range(100):
            tree.insert(i, (i, 0))
        assert tree.delete(50, (50, 0)) is True
        assert tree.search(50) == []
        assert tree.num_entries == 99
        tree.validate()

    def test_delete_missing(self):
        _, tree = make_tree()
        tree.insert(1, (1, 0))
        assert tree.delete(2, (2, 0)) is False
        assert tree.delete(1, (9, 9)) is False  # wrong rid

    def test_delete_one_duplicate(self):
        _, tree = make_tree()
        for i in range(5):
            tree.insert(7, (i, 0))
        assert tree.delete(7, (2, 0)) is True
        assert len(tree.search(7)) == 4
        assert (7, (2, 0)) not in list(tree.items())

    def test_delete_then_reinsert(self):
        _, tree = make_tree()
        for i in range(200):
            tree.insert(i, (i, 0))
        for i in range(0, 200, 3):
            tree.delete(i, (i, 0))
        for i in range(0, 200, 3):
            tree.insert(i, (i, 7))
        tree.validate()
        assert tree.search(3) == [(3, 7)]


class TestIOBehaviour:
    def test_search_io_is_logarithmic(self):
        disk, tree = make_tree(pool_pages=400)
        for i in range(2000):
            tree.insert(i, (i, 0))
        tree.pool.clear()
        disk.reset_stats()
        tree.search(1234)
        assert disk.stats.reads <= tree.height + 1

    def test_leaf_count_matches_chain(self):
        _, tree = make_tree()
        for i in range(1000):
            tree.insert(i, (i, 0))
        assert tree.num_leaf_pages() >= 2


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["ins", "del"]), st.integers(0, 50)),
        max_size=120,
    )
)
def test_btree_matches_reference_multiset(ops):
    _, tree = make_tree(page_size=256)
    reference = []
    counter = 0
    for op, key in ops:
        if op == "ins":
            rid = (counter, 0)
            counter += 1
            tree.insert(key, rid)
            reference.append((key, rid))
        elif reference:
            victim = reference[key % len(reference)]
            assert tree.delete(*victim) is True
            reference.remove(victim)
    expected = sorted(reference, key=lambda e: (e[0], e[1]))
    assert list(tree.items()) == expected
    tree.validate()
