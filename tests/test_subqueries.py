"""Tests for uncorrelated subqueries (INGRES-style decomposition)."""

import pytest

from repro import Database
from repro.engine import EngineError


@pytest.fixture
def db():
    db = Database(buffer_pages=64, work_mem_pages=8)
    db.execute("CREATE TABLE emp (id INT PRIMARY KEY, dept INT, salary FLOAT)")
    db.execute("CREATE TABLE dept (id INT, name TEXT, budget FLOAT)")
    db.insert_rows(
        "emp",
        [(i, i % 4, 1000.0 * (i % 10 + 1)) for i in range(40)],
    )
    db.insert_rows(
        "dept",
        [(0, "eng", 100.0), (1, "sales", 50.0), (2, "hr", 20.0), (3, "ops", 80.0)],
    )
    db.execute("ANALYZE")
    return db


class TestInSubquery:
    def test_in_select(self, db):
        r = db.query(
            "SELECT id FROM emp WHERE dept IN "
            "(SELECT id FROM dept WHERE budget > 60)"
        )
        assert sorted(x[0] for x in r.rows) == [
            i for i in range(40) if i % 4 in (0, 3)
        ]

    def test_not_in_select(self, db):
        r = db.query(
            "SELECT id FROM emp WHERE dept NOT IN "
            "(SELECT id FROM dept WHERE budget > 60)"
        )
        assert sorted(x[0] for x in r.rows) == [
            i for i in range(40) if i % 4 in (1, 2)
        ]

    def test_in_empty_subquery(self, db):
        r = db.query(
            "SELECT id FROM emp WHERE dept IN "
            "(SELECT id FROM dept WHERE budget > 9999)"
        )
        assert r.rows == []

    def test_not_in_empty_subquery(self, db):
        r = db.query(
            "SELECT COUNT(*) AS n FROM emp WHERE dept NOT IN "
            "(SELECT id FROM dept WHERE budget > 9999)"
        )
        assert r.rows == [(40,)]

    def test_in_subquery_with_aggregate(self, db):
        r = db.query(
            "SELECT name FROM dept WHERE id IN "
            "(SELECT dept FROM emp WHERE salary >= 10000 GROUP BY dept)"
        )
        assert len(r.rows) > 0

    def test_nested_subqueries(self, db):
        r = db.query(
            "SELECT id FROM emp WHERE dept IN ("
            "  SELECT id FROM dept WHERE budget > ("
            "    SELECT MIN(budget) AS m FROM dept"
            "  )"
            ")"
        )
        # all departments except hr (budget 20 = min)
        assert sorted({x[0] % 4 for x in r.rows}) == [0, 1, 3]


class TestScalarSubquery:
    def test_comparison_with_scalar(self, db):
        r = db.query(
            "SELECT COUNT(*) AS n FROM emp "
            "WHERE salary > (SELECT AVG(salary) AS a FROM emp)"
        )
        avg = db.query("SELECT AVG(salary) AS a FROM emp").rows[0][0]
        expected = db.query(
            f"SELECT COUNT(*) AS n FROM emp WHERE salary > {avg}"
        ).rows
        assert r.rows == expected

    def test_scalar_in_having(self, db):
        r = db.query(
            "SELECT dept, SUM(salary) AS t FROM emp GROUP BY dept "
            "HAVING SUM(salary) > (SELECT AVG(salary) AS a FROM emp) * 8"
        )
        assert all(row[1] > 0 for row in r.rows)

    def test_scalar_empty_is_null(self, db):
        r = db.query(
            "SELECT COUNT(*) AS n FROM emp "
            "WHERE salary > (SELECT salary FROM emp WHERE id = -1)"
        )
        assert r.rows == [(0,)]  # NULL comparison filters everything

    def test_scalar_multirow_rejected(self, db):
        with pytest.raises(EngineError):
            db.query(
                "SELECT id FROM emp WHERE salary > (SELECT salary FROM emp)"
            )

    def test_scalar_multicolumn_rejected(self, db):
        with pytest.raises(EngineError):
            db.query(
                "SELECT id FROM emp "
                "WHERE salary > (SELECT id, salary FROM emp WHERE id = 1)"
            )


class TestExists:
    def test_exists_true(self, db):
        r = db.query(
            "SELECT COUNT(*) AS n FROM emp "
            "WHERE EXISTS (SELECT id FROM dept WHERE budget > 90)"
        )
        assert r.rows == [(40,)]

    def test_exists_false(self, db):
        r = db.query(
            "SELECT COUNT(*) AS n FROM emp "
            "WHERE EXISTS (SELECT id FROM dept WHERE budget > 9000)"
        )
        assert r.rows == [(0,)]

    def test_not_exists(self, db):
        r = db.query(
            "SELECT COUNT(*) AS n FROM emp "
            "WHERE NOT EXISTS (SELECT id FROM dept WHERE budget > 9000)"
        )
        assert r.rows == [(40,)]

    def test_exists_combined_with_predicate(self, db):
        r = db.query(
            "SELECT id FROM emp WHERE id < 4 AND "
            "EXISTS (SELECT id FROM dept WHERE name = 'eng')"
        )
        assert sorted(x[0] for x in r.rows) == [0, 1, 2, 3]


class TestSubqueryInJoinCondition:
    def test_join_on_with_subquery(self, db):
        r = db.query(
            "SELECT e.id FROM emp e JOIN dept d "
            "ON e.dept = d.id AND d.budget > (SELECT MIN(budget) AS m FROM dept) "
            "WHERE e.id < 8"
        )
        assert sorted(x[0] for x in r.rows) == [
            i for i in range(8) if i % 4 != 2
        ]


class TestErrors:
    def test_correlated_rejected(self, db):
        with pytest.raises(EngineError, match="correlated|unknown"):
            db.query(
                "SELECT id FROM emp e WHERE salary > "
                "(SELECT AVG(salary) AS a FROM emp x WHERE x.dept = e.dept)"
            )

    def test_in_subquery_multicolumn_rejected(self, db):
        with pytest.raises(EngineError):
            db.query(
                "SELECT id FROM emp WHERE dept IN (SELECT id, name FROM dept)"
            )


class TestExplainWithSubquery:
    def test_explain_decomposes(self, db):
        text = db.explain(
            "SELECT id FROM emp WHERE dept IN "
            "(SELECT id FROM dept WHERE budget > 60)"
        )
        assert "subquery" not in text  # already substituted with literals
        assert "IN" in text or "=" in text
