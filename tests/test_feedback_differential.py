"""Differential guarantee for feedback-driven planning: with
``use_feedback=True`` the optimizer may pick different plans, but every
query must return exactly the rows the brute-force reference produces.

The feedback store is deliberately *polluted* first — every case runs
once cold so the store holds real est-vs-actual corrections — and then
each case re-runs with corrected estimates.  The tier-1 slice covers 30
cases; the ``slow`` sweep re-checks 150 in nightly CI under a rotating
``REPRO_MATRIX_SEED``.
"""

import os

import pytest

from repro import Database
from repro.optimizer import PlannerOptions
from repro.qa import RandomWorkload
from repro.qa.randomqueries import load_dataset

SEED = int(os.environ.get("REPRO_MATRIX_SEED", "1977"))

_workload = RandomWorkload(SEED)
_reference = _workload.reference()
_db = None


def database() -> Database:
    """One engine, loaded once, with the feedback store pre-warmed on
    the first 30 cases (cold planning, automatic harvest)."""
    global _db
    if _db is None:
        _db = Database(buffer_pages=64, work_mem_pages=4)
        load_dataset(_db, _workload.dataset())
        for index in range(30):
            _db.query(_workload.case(index).sql)
        assert len(_db.feedback) > 0, "warm-up harvested nothing"
    return _db


def check_case(index: int):
    case = _workload.case(index)
    db = database()
    db.options = PlannerOptions(use_feedback=True)
    try:
        corrected = db.query(case.sql).rows
    finally:
        db.options = PlannerOptions()
    plain = db.query(case.sql).rows
    assert case.matches(corrected, _reference), (
        f"feedback-corrected planning changed results for seed={SEED} "
        f"case={index}\n  sql: {case.sql}"
    )
    assert sorted(map(repr, corrected)) == sorted(map(repr, plain)), (
        f"feedback on/off disagree for seed={SEED} case={index}\n"
        f"  sql: {case.sql}"
    )


class TestFeedbackSlice:
    """Tier-1: the warmed-up store must never change any result."""

    @pytest.mark.parametrize("index", range(30))
    def test_case_matches_reference_with_feedback(self, index):
        check_case(index)


@pytest.mark.slow
class TestFeedbackFullSweep:
    """Nightly: wider case range, rotating seed."""

    @pytest.mark.parametrize("index", range(30, 150))
    def test_case_matches_reference_with_feedback(self, index):
        check_case(index)
