"""Tests for correlated-subquery decorrelation (semi-join rewrite)."""

import random

import pytest

from repro import Database
from repro.engine import EngineError


@pytest.fixture
def db():
    db = Database(buffer_pages=64, work_mem_pages=8)
    db.execute("CREATE TABLE emp (id INT PRIMARY KEY, dept INT, salary FLOAT)")
    db.execute("CREATE TABLE bonus (emp_id INT, year INT, amount FLOAT)")
    rng = random.Random(44)
    emp = [(i, i % 5, 1000.0 * rng.randrange(1, 11)) for i in range(60)]
    bonus = [
        (rng.randrange(60), 2020 + rng.randrange(3), 100.0 * rng.randrange(50))
        for _ in range(150)
    ]
    db.insert_rows("emp", emp)
    db.insert_rows("bonus", bonus)
    db.execute("ANALYZE")
    db._emp, db._bonus = emp, bonus
    return db


class TestCorrelatedExists:
    def test_basic(self, db):
        r = db.query(
            "SELECT e.id FROM emp e WHERE EXISTS "
            "(SELECT b.amount FROM bonus b WHERE b.emp_id = e.id)"
        )
        want = sorted({b[0] for b in db._bonus})
        assert sorted(x[0] for x in r.rows) == want

    def test_with_inner_filter(self, db):
        r = db.query(
            "SELECT e.id FROM emp e WHERE EXISTS "
            "(SELECT b.amount FROM bonus b WHERE b.emp_id = e.id "
            "AND b.year = 2021)"
        )
        want = sorted({b[0] for b in db._bonus if b[1] == 2021})
        assert sorted(x[0] for x in r.rows) == want

    def test_no_duplicate_outer_rows(self, db):
        """Semi-join semantics: one output row per outer row regardless of
        how many inner matches exist."""
        r = db.query(
            "SELECT e.id FROM emp e WHERE EXISTS "
            "(SELECT b.year FROM bonus b WHERE b.emp_id = e.id)"
        )
        ids = [x[0] for x in r.rows]
        assert len(ids) == len(set(ids))

    def test_combined_with_outer_filters(self, db):
        r = db.query(
            "SELECT e.id FROM emp e WHERE e.dept = 2 AND EXISTS "
            "(SELECT b.year FROM bonus b WHERE b.emp_id = e.id)"
        )
        with_bonus = {b[0] for b in db._bonus}
        want = sorted(
            e[0] for e in db._emp if e[1] == 2 and e[0] in with_bonus
        )
        assert sorted(x[0] for x in r.rows) == want

    def test_multiple_correlation_links(self, db):
        db.execute("CREATE TABLE ref (a INT, b INT)")
        db.insert_rows("ref", [(i % 5, i % 3) for i in range(30)])
        r = db.query(
            "SELECT e.id FROM emp e WHERE EXISTS "
            "(SELECT r.a FROM ref r WHERE r.a = e.dept AND r.b = e.dept)"
        )
        valid = {(a, b) for a, b in [(i % 5, i % 3) for i in range(30)]}
        want = sorted(
            e[0] for e in db._emp if (e[1], e[1]) in valid
        )
        assert sorted(x[0] for x in r.rows) == want


class TestCorrelatedIn:
    def test_basic(self, db):
        r = db.query(
            "SELECT e.id FROM emp e WHERE e.salary IN "
            "(SELECT b.amount FROM bonus b WHERE b.emp_id = e.id)"
        )
        want = sorted(
            e[0]
            for e in db._emp
            if any(b[0] == e[0] and b[2] == e[2] for b in db._bonus)
        )
        assert sorted(x[0] for x in r.rows) == want

    def test_against_join_rewrite(self, db):
        got = db.query(
            "SELECT e.id FROM emp e WHERE e.dept IN "
            "(SELECT b.year - 2020 FROM bonus b WHERE b.emp_id = e.id)"
        ).rows
        want = sorted(
            e[0]
            for e in db._emp
            if any(b[0] == e[0] and b[1] - 2020 == e[1] for b in db._bonus)
        )
        assert sorted(x[0] for x in got) == want


class TestUnsupportedShapesFallBack:
    def test_correlated_aggregate_rejected(self, db):
        with pytest.raises(EngineError):
            db.query(
                "SELECT e.id FROM emp e WHERE e.salary > "
                "(SELECT AVG(b.amount) AS a FROM bonus b WHERE b.emp_id = e.id)"
            )

    def test_not_exists_correlated_rejected(self, db):
        with pytest.raises(EngineError):
            db.query(
                "SELECT e.id FROM emp e WHERE NOT EXISTS "
                "(SELECT b.year FROM bonus b WHERE b.emp_id = e.id)"
            )

    def test_non_equality_correlation_rejected(self, db):
        with pytest.raises(EngineError):
            db.query(
                "SELECT e.id FROM emp e WHERE EXISTS "
                "(SELECT b.year FROM bonus b WHERE b.amount > e.salary)"
            )

    def test_uncorrelated_still_uses_literal_path(self, db):
        # stays on the substitution path: no transient tables appear
        r = db.query(
            "SELECT COUNT(*) AS n FROM emp WHERE dept IN "
            "(SELECT emp_id FROM bonus WHERE year = 2020)"
        )
        assert r.rowcount == 1
        assert not any(
            t.name.startswith("__decorr") for t in db.catalog.tables()
        )


class TestHygiene:
    def test_transients_cleaned(self, db):
        db.query(
            "SELECT e.id FROM emp e WHERE EXISTS "
            "(SELECT b.year FROM bonus b WHERE b.emp_id = e.id)"
        )
        assert not any(
            t.name.startswith("__decorr") for t in db.catalog.tables()
        )

    def test_explain_shows_join(self, db):
        text = db.explain(
            "SELECT e.id FROM emp e WHERE EXISTS "
            "(SELECT b.year FROM bonus b WHERE b.emp_id = e.id)"
        )
        assert "Join" in text
        db.drop_transients()
