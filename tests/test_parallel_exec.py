"""Intra-query parallelism: exchange/gather execution is bit-identical to
serial execution, and parallel plans carry coherent EXPLAIN ANALYZE
actuals and engine metrics.

Every test compares parallel output with ``==`` on the full row list —
order included — because the gather's contract is *exact* serial
equivalence, not multiset equivalence.
"""

import os
import random

import pytest

from repro import Database, ObsConfig
from repro.optimizer import PlannerOptions
from repro.physical import (
    PAggregate,
    PExchange,
    PGather,
    PSeqScan,
    PSort,
    contains_parallel,
    walk_plan,
)


@pytest.fixture(scope="module")
def db():
    rng = random.Random(17)
    database = Database()
    database.execute(
        "CREATE TABLE r (id INT PRIMARY KEY, k INT, f FLOAT, s TEXT)"
    )
    database.execute("CREATE TABLE s (id INT, k INT, g INT)")
    database.execute("CREATE INDEX ix_s_k ON s (k)")
    database.insert_rows(
        "r",
        [
            (
                i,
                rng.randrange(30),
                round(rng.random() * 100, 3),
                rng.choice(["red", "green", "blue"]),
            )
            for i in range(3000)
        ],
    )
    database.insert_rows(
        "s", [(i, rng.randrange(30), i % 9) for i in range(500)]
    )
    database.execute("ANALYZE")
    return database


def serial_then_parallel(db, sql, degree):
    db.options = PlannerOptions()
    serial = db.query(sql).rows
    db.options = PlannerOptions(parallel_degree=degree, force_parallel=True)
    plan = db.plan(sql)
    parallel = db.query(sql).rows
    db.options = PlannerOptions()
    return serial, parallel, plan


SHAPES = [
    # partitioned scan-filter-project pipeline
    "SELECT r.id, r.f FROM r WHERE r.k < 11",
    # pipeline over the whole table (no filter)
    "SELECT r.id FROM r",
    # replicated-build spine through a join
    "SELECT r.id, s.id FROM r, s WHERE r.k = s.k AND r.id < 900",
    # two-phase aggregation (COUNT/MIN/MAX + integer SUM are exact)
    "SELECT r.s, COUNT(*) AS n, MIN(r.id) AS mn, MAX(r.id) AS mx, "
    "SUM(r.id) AS t FROM r GROUP BY r.s",
    # global aggregate, no groups
    "SELECT COUNT(*) AS n, MAX(r.f) AS mx FROM r WHERE r.k > 4",
    # parallel sort with gather merge
    "SELECT r.id, r.s FROM r WHERE r.k < 17 ORDER BY r.s, r.f DESC",
]


class TestBitIdentity:
    @pytest.mark.parametrize("degree", [1, 2, 4])
    @pytest.mark.parametrize("sql", SHAPES)
    def test_parallel_equals_serial(self, db, sql, degree):
        serial, parallel, _ = serial_then_parallel(db, sql, degree)
        assert parallel == serial

    @pytest.mark.parametrize("degree", [2, 4])
    def test_plans_actually_parallelize(self, db, degree):
        _, _, plan = serial_then_parallel(db, SHAPES[0], degree)
        gathers = [n for n in walk_plan(plan) if isinstance(n, PGather)]
        assert len(gathers) == 1
        assert gathers[0].degree == degree

    def test_degree_one_stays_serial_shaped(self, db):
        """degree=1 must not pay exchange overhead: no gather in the plan."""
        db.options = PlannerOptions(parallel_degree=1)
        try:
            assert not contains_parallel(db.plan(SHAPES[0]))
        finally:
            db.options = PlannerOptions()

    def test_inline_matches_forked(self, db):
        sql = SHAPES[3]
        _, forked, _ = serial_then_parallel(db, sql, 4)
        os.environ["REPRO_PARALLEL_INLINE"] = "1"
        try:
            _, inline, _ = serial_then_parallel(db, sql, 4)
        finally:
            del os.environ["REPRO_PARALLEL_INLINE"]
        assert inline == forked

    def test_float_sum_never_goes_two_phase(self, db):
        """SUM over FLOAT must stay single-phase (non-associative adds)."""
        sql = "SELECT r.s, SUM(r.f) AS t FROM r GROUP BY r.s"
        serial, parallel, plan = serial_then_parallel(db, sql, 4)
        assert parallel == serial
        partials = [
            n
            for n in walk_plan(plan)
            if isinstance(n, PAggregate) and n.mode != "single"
        ]
        assert partials == []


class TestExplainAnalyzeActuals:
    def explain_plan(self, db, sql, degree):
        db.options = PlannerOptions(
            parallel_degree=degree, force_parallel=True
        )
        try:
            physical = db.plan(sql)
            result = db.run_plan(physical, analyze=True)
        finally:
            db.options = PlannerOptions()
        return physical, result

    def test_scan_actuals_sum_over_workers(self, db):
        physical, result = self.explain_plan(db, "SELECT r.id FROM r", 4)
        scans = [n for n in walk_plan(physical) if isinstance(n, PSeqScan)]
        assert len(scans) == 1
        # every worker scanned a disjoint page slice: the per-worker loops
        # sum to the degree and the per-worker rows sum to the table
        assert scans[0].actual_loops == 4
        assert scans[0].actual_rows == 3000

    def test_gather_rows_match_result(self, db):
        physical, result = self.explain_plan(db, SHAPES[0], 2)
        gather = next(
            n for n in walk_plan(physical) if isinstance(n, PGather)
        )
        assert gather.actual_rows == result.rowcount

    def test_exchange_counts_worker_loops(self, db):
        physical, _ = self.explain_plan(db, SHAPES[0], 4)
        exchange = next(
            n for n in walk_plan(physical) if isinstance(n, PExchange)
        )
        assert exchange.actual_loops == 4

    def test_parallel_sort_actuals(self, db):
        physical, result = self.explain_plan(db, SHAPES[5], 2)
        sort = next(n for n in walk_plan(physical) if isinstance(n, PSort))
        assert sort.actual_loops == 2
        assert sort.actual_rows == result.rowcount

    def test_pretty_renders_workers(self, db):
        physical, _ = self.explain_plan(db, SHAPES[0], 2)
        text = physical.pretty(actuals=True)
        assert "Gather" in text and "workers=2" in text
        assert "parallel" in text


class TestMetricsAndLog:
    def test_parallel_counters_and_query_log(self):
        database = Database(obs=ObsConfig(metrics=True))
        database.execute("CREATE TABLE t (id INT, k INT)")
        database.insert_rows("t", [(i, i % 5) for i in range(600)])
        database.execute("ANALYZE")
        database.options = PlannerOptions(
            parallel_degree=3, force_parallel=True
        )
        result = database.query("SELECT t.id FROM t WHERE t.k = 1")
        assert result.exec_metrics.parallel_regions == 1
        assert result.exec_metrics.parallel_workers == 3
        snap = database.metrics_snapshot()
        assert snap["counters"]["parallel_queries_total"] == 1.0
        assert snap["counters"]["parallel_workers_total"] == 3.0
        assert database.query_log.entries()[-1].parallel_workers == 3

    def test_serial_queries_do_not_count_as_parallel(self):
        database = Database(obs=ObsConfig(metrics=True))
        database.execute("CREATE TABLE t (id INT)")
        database.insert_rows("t", [(i,) for i in range(50)])
        database.query("SELECT t.id FROM t")
        snap = database.metrics_snapshot()
        assert "parallel_queries_total" not in snap["counters"]


class TestPlannerChoices:
    def test_cost_gate_keeps_tiny_queries_serial(self, db):
        """Without force_parallel, a small table must not parallelize —
        the per-worker startup charge dominates."""
        db.options = PlannerOptions(parallel_degree=4)
        try:
            plan = db.plan("SELECT s.id FROM s WHERE s.g = 2")
            assert not contains_parallel(plan)
        finally:
            db.options = PlannerOptions()

    def test_invalid_degree_rejected(self):
        with pytest.raises(ValueError):
            PlannerOptions(parallel_degree=0)

    def test_set_strategy_passes_parallel_options(self, db):
        db.set_strategy("dp", parallel_degree=2, force_parallel=True)
        try:
            assert contains_parallel(db.plan(SHAPES[0]))
        finally:
            db.options = PlannerOptions()

    def test_all_strategies_parallelize_identically(self, db):
        for strategy in ("dp", "greedy", "syntactic"):
            db.options = PlannerOptions(strategy=strategy)
            serial = db.query(SHAPES[2]).rows
            db.options = PlannerOptions(
                strategy=strategy, parallel_degree=2, force_parallel=True
            )
            parallel = db.query(SHAPES[2]).rows
            db.options = PlannerOptions()
            assert parallel == serial, strategy


class TestSpillSafety:
    def test_spilling_join_stays_serial(self):
        """A hash join whose build side exceeds work memory must not be
        parallelized: the Grace spill path reorders output."""
        rng = random.Random(5)
        database = Database(work_mem_pages=3)
        database.execute("CREATE TABLE big (id INT, k INT, pad TEXT)")
        database.execute("CREATE TABLE big2 (id INT, k INT, pad TEXT)")
        pad = "x" * 120
        database.insert_rows(
            "big", [(i, rng.randrange(40), pad) for i in range(1500)]
        )
        database.insert_rows(
            "big2", [(i, rng.randrange(40), pad) for i in range(1500)]
        )
        database.execute("ANALYZE")
        sql = "SELECT big.id, big2.id FROM big, big2 WHERE big.k = big2.k"
        database.options = PlannerOptions()
        serial = database.query(sql).rows
        database.options = PlannerOptions(
            parallel_degree=4, force_parallel=True
        )
        assert database.query(sql).rows == serial
