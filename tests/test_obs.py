"""Tests for the observability subsystem: metrics registry, span tracing,
query log, per-operator EXPLAIN ANALYZE actuals, and the Database wiring."""

import json

import pytest

from repro import Database, InstrumentLevel, ObsConfig, Span, Tracer
from repro.obs import MetricsRegistry, plan_fingerprint, q_error


# -- metrics registry ----------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        assert reg.counter("c").value == 3.5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_gauge_up_down(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(10)
        g.dec(3)
        g.inc(1)
        assert g.value == 8.0

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (0.2, 0.4, 3.0, 40.0, 9000.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["min"] == 0.2 and snap["max"] == 9000.0
        assert snap["mean"] == pytest.approx(sum((0.2, 0.4, 3.0, 40.0, 9000.0)) / 5)
        assert snap["p50"] <= snap["p95"] <= snap["p99"]
        assert snap["p99"] == 9000.0  # overflow bucket reports the exact max

    def test_snapshot_shape_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(1)
        reg.histogram("c").observe(1.0)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        json.dumps(snap)  # JSON-safe
        assert reg.names() == ["a", "b", "c"]
        reg.reset()
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


# -- span tracing --------------------------------------------------------------


class TestTracer:
    def test_span_nesting_and_counters(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a") as sp:
                sp.add("n", 2)
                sp.add("n")
            with tracer.span("b"):
                pass
        root = tracer.root
        assert [c.name for c in root.children] == ["a", "b"]
        assert root.find("a").counters["n"] == 3.0

    def test_child_durations_bounded_by_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            for _ in range(3):
                with tracer.span("step"):
                    sum(range(1000))
        for span in tracer.root.walk():
            assert span.child_time_ms() <= span.duration_ms + 1e-6

    def test_json_round_trip(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child") as sp:
                sp.add("k", 7)
        text = tracer.root.to_json()
        back = Span.from_json(text)
        assert back.to_dict() == tracer.root.to_dict()
        assert back.find("child").counters["k"] == 7.0

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("root") as sp:
            sp.add("whatever")
        assert tracer.root is None
        tracer.add("also-nothing")

    def test_second_top_level_span_attaches_to_root(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert tracer.root.name == "first"
        assert [c.name for c in tracer.root.children] == ["second"]


# -- query log helpers ---------------------------------------------------------


class TestQueryLogHelpers:
    def test_q_error_symmetric_and_floored(self):
        assert q_error(10, 100) == pytest.approx(10.0)
        assert q_error(100, 10) == pytest.approx(10.0)
        assert q_error(0.0, 0.0) == 1.0

    def test_fingerprint_ignores_literals(self):
        db = _small_db()
        # same plan shape, different constants → same fingerprint
        a = plan_fingerprint(db.plan("SELECT b FROM t WHERE a < 5"))
        b = plan_fingerprint(db.plan("SELECT b FROM t WHERE a < 8"))
        c = plan_fingerprint(db.plan("SELECT b FROM t"))
        assert a == b
        assert a != c


# -- database wiring -----------------------------------------------------------


def _small_db(**kwargs):
    db = Database(buffer_pages=64, work_mem_pages=8, **kwargs)
    db.execute("CREATE TABLE t (a INT PRIMARY KEY, b FLOAT)")
    db.insert_rows("t", [(i, float(i % 13)) for i in range(200)])
    db.execute("ANALYZE t")
    return db


def _join_db(**kwargs):
    """Three joinable tables sized to overflow a 3-page work memory."""
    db = Database(
        buffer_pages=48, work_mem_pages=3, page_size=512, **kwargs
    )
    db.execute("CREATE TABLE a (id INT PRIMARY KEY, x INT)")
    db.execute("CREATE TABLE b (id INT PRIMARY KEY, a_id INT, y INT)")
    db.execute("CREATE TABLE c (id INT PRIMARY KEY, b_id INT, z INT)")
    db.insert_rows("a", [(i, i % 7) for i in range(300)])
    db.insert_rows("b", [(i, i % 300, i % 11) for i in range(600)])
    db.insert_rows("c", [(i, i % 600, i % 13) for i in range(900)])
    db.execute("ANALYZE")
    return db


class TestExplainAnalyzeActuals:
    def test_three_way_join_with_spill_has_per_node_actuals(self):
        db = _join_db()
        r = db.execute(
            "EXPLAIN ANALYZE SELECT a.x, b.y, c.z FROM a, b, c "
            "WHERE a.id = b.a_id AND b.id = c.b_id AND c.z < 9 "
            "ORDER BY b.y"
        )
        lines = [row[0] for row in r.rows]
        plan_lines = [
            ln for ln in lines if "(actual" in ln
        ]
        assert len(plan_lines) >= 4  # sort + join(s) + scans
        for ln in plan_lines:
            assert "time=" in ln
            assert "rows=" in ln
            assert "loops=" in ln
            assert "q-err=" in ln
            assert "hits=" in ln or "reads=" in ln
        # the run spilled, and the footer reports both phases
        assert r.exec_metrics.spills > 0
        assert any(ln.startswith("planning:") for ln in lines)
        assert any(ln.startswith("execution:") for ln in lines)

    def test_actuals_attributed_inclusively(self):
        db = _join_db()
        r = db.execute(
            "EXPLAIN ANALYZE SELECT a.x, b.y FROM a, b "
            "WHERE a.id = b.a_id"
        )
        root = r.plan
        for node in _walk(root):
            assert node.actual_rows is not None
            assert node.actual_loops >= 1
            assert node.actual_time_ms is not None
            # inclusive timing: parent covers its children
            for child in node.children():
                assert child.actual_time_ms <= node.actual_time_ms + 1e-6

    def test_default_level_counts_rows_without_timing(self):
        db = _small_db()
        r = db.query("SELECT b FROM t WHERE a < 10")
        for node in _walk(r.plan):
            assert node.actual_rows is not None
            assert node.actual_time_ms is None  # FULL only under ANALYZE

    def test_level_off_leaves_plan_bare(self):
        db = _small_db(
            obs=ObsConfig(instrument=InstrumentLevel.OFF)
        )
        r = db.query("SELECT b FROM t WHERE a < 10")
        assert r.rowcount == 10
        for node in _walk(r.plan):
            assert node.actual_rows is None


def _walk(plan):
    yield plan
    for child in plan.children():
        yield from _walk(child)


class TestExplainRegression:
    def test_explain_populates_planning_metadata(self):
        db = _small_db()
        r = db.execute("EXPLAIN SELECT b FROM t WHERE a < 10")
        assert r.planning_seconds > 0.0
        assert r.planner_stats is not None
        assert r.plan is not None

    def test_explain_over_view_leaves_no_transients(self):
        db = _small_db()
        db.execute(
            "CREATE VIEW agg AS SELECT b, COUNT(*) AS n FROM t GROUP BY b"
        )
        db.execute("EXPLAIN SELECT n FROM agg WHERE n > 3")
        db.execute("EXPLAIN ANALYZE SELECT n FROM agg WHERE n > 3")
        db.plan("SELECT n FROM agg WHERE n > 3")
        assert db._live_transients == []
        assert not any(
            info.name.startswith("__view") for info in db.catalog.tables()
        )


class TestDatabaseObservability:
    def test_metrics_snapshot_nontrivial_after_workload(self):
        db = _small_db()
        for cutoff in (5, 50, 150):
            db.query(f"SELECT b FROM t WHERE a < {cutoff}")
        snap = db.metrics_snapshot()
        assert snap["counters"]["queries_total"] == 3.0
        assert snap["counters"]["rows_returned_total"] == 205.0
        assert snap["histograms"]["planning_ms"]["count"] == 3
        assert snap["histograms"]["execution_ms"]["count"] == 3
        assert snap["buffer_pool"]["hits"] > 0
        assert snap["disk"]["reads"] >= 0
        assert snap["query_log_entries"] == 3
        json.dumps(snap)  # JSON-safe end to end

    def test_query_log_records(self):
        db = _small_db()
        db.query("SELECT b FROM t WHERE a < 7")
        db.query("SELECT b FROM t WHERE a < 70")
        entries = db.query_log.entries()
        assert len(entries) == 2
        first = entries[0]
        assert first.sql == "SELECT b FROM t WHERE a < 7"
        assert first.actual_rows == 7
        assert first.q_error >= 1.0
        assert first.fingerprint == entries[1].fingerprint
        grouped = db.query_log.by_fingerprint()
        assert len(grouped[first.fingerprint]) == 2
        worst = db.query_log.worst_estimates(1)
        assert worst[0].q_error == max(e.q_error for e in entries)

    def test_trace_attached_and_last_trace(self):
        db = _small_db()
        r = db.query("SELECT b FROM t WHERE a < 10")
        assert r.trace is not None
        assert r.trace is db.last_trace
        names = [sp.name for sp in r.trace.walk()]
        for expected in (
            "query", "parse", "plan", "view_expansion", "decorrelation",
            "rewrite", "join_enumeration", "costing", "execute",
        ):
            assert expected in names, expected
        for span in r.trace.walk():
            assert span.child_time_ms() <= span.duration_ms + 1e-6

    def test_trace_round_trips_through_json(self):
        db = _small_db()
        r = db.query("SELECT COUNT(*) AS n FROM t")
        back = Span.from_json(r.trace.to_json())
        assert back.to_dict() == r.trace.to_dict()

    def test_obs_off_disables_everything(self):
        db = _small_db(obs=ObsConfig.off())
        r = db.query("SELECT b FROM t WHERE a < 10")
        assert r.rowcount == 10
        assert r.trace is None
        assert db.last_trace is None
        assert len(db.query_log) == 0
        snap = db.metrics_snapshot()
        assert snap["counters"] == {}
        # row counting stays on: the experiments rely on actual_rows
        assert r.plan.actual_rows == 10

    def test_trace_off_restores_baseline_results(self):
        on = _small_db()
        off = _small_db(obs=ObsConfig.off())
        sql = "SELECT b FROM t WHERE a < 25 ORDER BY b"
        assert on.query(sql).rows == off.query(sql).rows


# -- Prometheus text exposition ------------------------------------------------


_HELP_RE = r"^# HELP repro_[a-zA-Z_][a-zA-Z0-9_]* \S.*$"
_TYPE_RE = r"^# TYPE repro_[a-zA-Z_][a-zA-Z0-9_]* (counter|gauge|histogram)$"
# a sample may carry any label set (histogram ``le``, the latency
# families' ``fingerprint``/``quantile``), comma-separated, sorted
_SAMPLE_RE = (
    r"^repro_[a-zA-Z_][a-zA-Z0-9_]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" (\+Inf|-Inf|-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$"
)


def _assert_strict_prom(text):
    """Every line is a HELP, TYPE, or sample line — nothing else."""
    import re

    assert text.endswith("\n")
    for line in text.rstrip("\n").splitlines():
        assert (
            re.match(_HELP_RE, line)
            or re.match(_TYPE_RE, line)
            or re.match(_SAMPLE_RE, line)
        ), f"malformed exposition line: {line!r}"


class TestPrometheusExposition:
    def test_every_family_has_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("queries_total").inc(3)
        registry.gauge("buffer_hit_ratio").set(0.5)
        registry.histogram("planning_ms").observe(1.0)
        text = registry.render_prometheus()
        for name, kind in (
            ("queries_total", "counter"),
            ("buffer_hit_ratio", "gauge"),
            ("planning_ms", "histogram"),
        ):
            assert f"# HELP repro_{name} " in text
            assert f"# TYPE repro_{name} {kind}\n" in text

    def test_strict_line_format(self):
        registry = MetricsRegistry()
        registry.counter("queries_total").inc()
        registry.histogram("execution_ms").observe(0.3)
        registry.gauge("buffer_hit_ratio").set(0.25)
        _assert_strict_prom(
            registry.render_prometheus(extras={"disk_reads": 4.0})
        )

    def test_deterministic_global_ordering(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        # create instruments in different orders: output must not care
        a.counter("zz_total").inc()
        a.histogram("aa_ms").observe(1.0)
        a.gauge("mm_ratio").set(0.5)
        b.gauge("mm_ratio").set(0.5)
        b.histogram("aa_ms").observe(1.0)
        b.counter("zz_total").inc()
        assert a.render_prometheus() == b.render_prometheus()
        families = [
            line.split()[2]
            for line in a.render_prometheus().splitlines()
            if line.startswith("# HELP ")
        ]
        assert families == sorted(families)

    def test_histogram_buckets_cumulative_ending_in_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("execution_ms")
        for value in (0.05, 0.2, 3.0, 9999.0):
            hist.observe(value)
        lines = registry.render_prometheus().splitlines()
        buckets = [ln for ln in lines if "_bucket{" in ln]
        counts = [int(ln.rsplit(" ", 1)[1]) for ln in buckets]
        assert counts == sorted(counts)  # cumulative
        assert buckets[-1].startswith('repro_execution_ms_bucket{le="+Inf"}')
        assert counts[-1] == 4
        assert "repro_execution_ms_sum" in "\n".join(lines)
        assert "repro_execution_ms_count 4" in "\n".join(lines)

    def test_database_snapshot_includes_wait_and_stat_counters(self):
        db = _small_db()
        db.query("SELECT b FROM t WHERE a < 10")
        text = db.metrics_snapshot(format="prom")
        _assert_strict_prom(text)
        for needle in (
            "repro_wait_exec_cpu_count",
            "repro_wait_exec_cpu_seconds",
            "repro_wait_events_total",
            "repro_slow_query_captures 0",
            "repro_buffer_pool_hits",
            "repro_query_log_entries 1",
        ):
            assert needle in text, needle

    def test_database_snapshot_is_byte_stable(self):
        db = _small_db()
        db.query("SELECT b FROM t WHERE a < 10")
        assert db.metrics_snapshot(format="prom") == db.metrics_snapshot(
            format="prom"
        )


# -- query-log record serialization -------------------------------------------


class TestQueryLogRoundTrip:
    def _record(self, **overrides):
        from repro.obs import QueryLogRecord

        values = dict(
            sql="SELECT 1 FROM t",
            fingerprint="abc123",
            est_rows=10.0,
            actual_rows=12,
            q_error=1.2,
            est_cost=42.5,
            actual_reads=7,
            actual_writes=1,
            planning_ms=0.8,
            execution_ms=3.1,
            spills=2,
            temp_files=3,
            parallel_workers=4,
            plan_changed=True,
            baseline_cost_delta=-5.5,
            buffer_hits=19,
        )
        values.update(overrides)
        return QueryLogRecord(**values)

    def test_every_dataclass_field_serializes(self):
        from dataclasses import fields

        from repro.obs import QueryLogRecord

        record = self._record()
        data = record.as_dict()
        # a field added to the dataclass but missing from the dict would
        # silently drop data — enumerate fields() so it fails loudly
        assert set(data) == {f.name for f in fields(QueryLogRecord)}
        for name in (
            "parallel_workers", "plan_changed", "baseline_cost_delta",
            "buffer_hits",
        ):
            assert name in data

    def test_record_round_trips_through_dict_and_json(self):
        from repro.obs import QueryLogRecord

        record = self._record()
        assert QueryLogRecord.from_dict(record.as_dict()) == record
        assert (
            QueryLogRecord.from_dict(json.loads(json.dumps(record.as_dict())))
            == record
        )

    def test_from_dict_rejects_unknown_keys(self):
        from repro.obs import QueryLogRecord

        data = self._record().as_dict()
        data["bogus_field"] = 1
        with pytest.raises(ValueError, match="bogus_field"):
            QueryLogRecord.from_dict(data)

    def test_older_logs_without_new_fields_still_load(self):
        from repro.obs import QueryLogRecord

        data = self._record().as_dict()
        # a log persisted before PR 3/5/6 lacks the newer fields
        for name in (
            "parallel_workers", "plan_changed", "baseline_cost_delta",
            "buffer_hits",
        ):
            del data[name]
        record = QueryLogRecord.from_dict(data)
        assert record.parallel_workers == 0
        assert record.plan_changed is False
        assert record.baseline_cost_delta == 0.0
        assert record.buffer_hits == 0

    def test_query_log_round_trips_through_json(self):
        from repro.obs import QueryLog

        log = QueryLog(capacity=8)
        log.record(self._record())
        log.record(self._record(sql="SELECT 2 FROM t", plan_changed=False))
        back = QueryLog.from_json(log.to_json())
        assert back.entries() == log.entries()
        assert back.entries()[0].parallel_workers == 4
        assert back.entries()[0].baseline_cost_delta == -5.5

    def test_database_populates_buffer_hits(self):
        db = _small_db()
        db.query("SELECT b FROM t WHERE a < 50")  # warms the pool
        db.query("SELECT b FROM t WHERE a < 50")
        entries = db.query_log.entries()
        assert entries[-1].buffer_hits > 0
        # and the whole live log survives a JSON round-trip
        from repro.obs import QueryLog

        assert QueryLog.from_json(db.query_log.to_json()).entries() == entries
