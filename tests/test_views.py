"""Tests for views: merging, materialization, name handling."""

import pytest

from repro import Database
from repro.engine import EngineError
from repro.physical import PSeqScan, walk_plan


@pytest.fixture
def db():
    db = Database(buffer_pages=64, work_mem_pages=8)
    db.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, cust INT, amount FLOAT, "
        "status TEXT)"
    )
    db.insert_rows(
        "orders",
        [
            (i, i % 10, float((i * 7) % 100), "open" if i % 3 else "closed")
            for i in range(200)
        ],
    )
    db.execute("CREATE TABLE cust (id INT, name TEXT)")
    db.insert_rows("cust", [(i, f"c{i}") for i in range(10)])
    db.execute("ANALYZE")
    return db


class TestMergeableViews:
    def test_simple_view(self, db):
        db.execute(
            "CREATE VIEW big AS SELECT id, cust, amount FROM orders "
            "WHERE amount > 50"
        )
        got = db.query("SELECT COUNT(*) AS n FROM big").rows
        want = db.query(
            "SELECT COUNT(*) AS n FROM orders WHERE amount > 50"
        ).rows
        assert got == want

    def test_view_predicates_merge_into_scan(self, db):
        db.execute(
            "CREATE VIEW big AS SELECT id, amount FROM orders WHERE amount > 50"
        )
        plan = db.plan("SELECT id FROM big WHERE amount > 90")
        # merged: one scan carrying both predicates, no extra operators
        scans = [n for n in walk_plan(plan) if isinstance(n, PSeqScan)]
        assert len(scans) == 1
        assert "amount" in str(scans[0].predicate)

    def test_view_with_alias_columns(self, db):
        db.execute(
            "CREATE VIEW renamed AS SELECT id AS order_id, amount AS amt "
            "FROM orders"
        )
        r = db.query("SELECT order_id FROM renamed WHERE amt > 95")
        want = db.query("SELECT id FROM orders WHERE amount > 95").rows
        assert sorted(r.rows) == sorted(want)
        assert r.columns == ["order_id"]

    def test_view_join_with_base_table(self, db):
        db.execute(
            "CREATE VIEW open_orders AS SELECT id, cust, amount FROM orders "
            "WHERE status = 'open'"
        )
        got = db.query(
            "SELECT c.name, COUNT(*) AS n FROM open_orders o, cust c "
            "WHERE o.cust = c.id GROUP BY c.name"
        ).rows
        want = db.query(
            "SELECT c.name, COUNT(*) AS n FROM orders o, cust c "
            "WHERE o.cust = c.id AND o.status = 'open' GROUP BY c.name"
        ).rows
        assert sorted(got) == sorted(want)

    def test_view_over_view(self, db):
        db.execute(
            "CREATE VIEW big AS SELECT id, cust, amount FROM orders "
            "WHERE amount > 50"
        )
        db.execute(
            "CREATE VIEW bigger AS SELECT id, amount FROM big WHERE amount > 80"
        )
        got = db.query("SELECT COUNT(*) AS n FROM bigger").rows
        want = db.query(
            "SELECT COUNT(*) AS n FROM orders WHERE amount > 80"
        ).rows
        assert got == want

    def test_view_star(self, db):
        db.execute("CREATE VIEW vstar AS SELECT * FROM cust")
        got = db.query("SELECT name FROM vstar WHERE id = 3").rows
        assert got == [("c3",)]

    def test_two_uses_of_same_view(self, db):
        db.execute("CREATE VIEW v AS SELECT id, cust FROM orders")
        r = db.query(
            "SELECT a.id FROM v a, v b WHERE a.id = b.id AND a.id < 5"
        )
        assert sorted(x[0] for x in r.rows) == [0, 1, 2, 3, 4]


class TestMaterializedViews:
    def test_aggregate_view(self, db):
        db.execute(
            "CREATE VIEW totals AS SELECT cust, SUM(amount) AS total "
            "FROM orders GROUP BY cust"
        )
        got = db.query(
            "SELECT c.name, t.total FROM totals t, cust c WHERE t.cust = c.id"
        )
        assert len(got.rows) == 10
        want = dict(
            db.query(
                "SELECT cust, SUM(amount) AS total FROM orders GROUP BY cust"
            ).rows
        )
        for name, total in got.rows:
            assert total == pytest.approx(want[int(name[1:])])

    def test_transients_cleaned_up(self, db):
        db.execute(
            "CREATE VIEW totals AS SELECT cust, SUM(amount) AS total "
            "FROM orders GROUP BY cust"
        )
        db.query("SELECT COUNT(*) AS n FROM totals")
        leftovers = [
            t.name for t in db.catalog.tables() if t.name.startswith("__view")
        ]
        assert leftovers == []

    def test_distinct_view_materializes(self, db):
        db.execute("CREATE VIEW vd AS SELECT DISTINCT status FROM orders")
        r = db.query("SELECT COUNT(*) AS n FROM vd")
        assert r.rows == [(2,)]

    def test_limit_view_materializes(self, db):
        db.execute(
            "CREATE VIEW first5 AS SELECT id FROM orders ORDER BY id LIMIT 5"
        )
        r = db.query("SELECT COUNT(*) AS n FROM first5")
        assert r.rows == [(5,)]


class TestViewManagement:
    def test_duplicate_name_rejected(self, db):
        db.execute("CREATE VIEW v AS SELECT id FROM cust")
        with pytest.raises(EngineError):
            db.execute("CREATE VIEW v AS SELECT id FROM cust")
        with pytest.raises(EngineError):
            db.execute("CREATE VIEW orders AS SELECT id FROM cust")

    def test_drop_view(self, db):
        db.execute("CREATE VIEW v AS SELECT id FROM cust")
        db.execute("DROP VIEW v")
        with pytest.raises(Exception):
            db.query("SELECT * FROM v")

    def test_drop_missing_view(self, db):
        with pytest.raises(EngineError):
            db.execute("DROP VIEW nope")

    def test_view_with_subquery_in_where(self, db):
        db.execute(
            "CREATE VIEW vq AS SELECT id FROM orders WHERE cust IN "
            "(SELECT id FROM cust WHERE name LIKE 'c1%')"
        )
        got = db.query("SELECT COUNT(*) AS n FROM vq").rows
        want = db.query(
            "SELECT COUNT(*) AS n FROM orders WHERE cust = 1"
        ).rows
        assert got == want
