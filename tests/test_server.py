"""Socket server + client: wire protocol, per-connection sessions,
transaction isolation, error relay, and rollback-on-disconnect.

The server binds 127.0.0.1 on an ephemeral port; each test builds its own
Database + DatabaseServer and talks to it through the thin Client.
"""

import socket
import struct

import pytest

from repro import Database
from repro.server import (
    Client,
    DatabaseServer,
    ProtocolError,
    ServerError,
    recv_message,
    send_message,
)


@pytest.fixture()
def served():
    db = Database()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    with DatabaseServer(db) as server:
        yield db, server


def connect(server, **kwargs):
    host, port = server.address
    return Client(host, port, **kwargs)


class TestProtocol:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            send_message(a, {"op": "query", "sql": "SELECT 1"})
            assert recv_message(b) == {"op": "query", "sql": "SELECT 1"}
        finally:
            a.close()
            b.close()

    def test_disconnect_raises_connection_error(self):
        a, b = socket.socketpair()
        a.close()
        with pytest.raises(ConnectionError):
            recv_message(b)
        b.close()

    def test_oversized_message_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 2**31))
            with pytest.raises(ProtocolError):
                recv_message(b)
        finally:
            a.close()
            b.close()


class TestServer:
    def test_query_round_trip(self, served):
        _, server = served
        with connect(server) as client:
            result = client.query("SELECT id, v FROM t ORDER BY id")
            assert result.columns == ["id", "v"]
            assert result.rows == [(1, 10), (2, 20), (3, 30)]
            assert result.rowcount == 3
            assert not result.in_transaction

    def test_dml_and_transaction_state(self, served):
        _, server = served
        with connect(server) as client:
            client.execute("BEGIN")
            result = client.execute("INSERT INTO t VALUES (4, 40)")
            assert result.in_transaction
            result = client.execute("COMMIT")
            assert not result.in_transaction
            assert client.query("SELECT COUNT(*) FROM t").rows == [(4,)]

    def test_error_relayed_with_type(self, served):
        _, server = served
        with connect(server) as client:
            with pytest.raises(ServerError) as exc:
                client.query("SELECT * FROM missing")
            assert "missing" in str(exc.value)
            assert exc.value.error_type
            # the connection survives an error
            assert client.query("SELECT id FROM t WHERE id = 1").rows == [(1,)]

    def test_sessions_are_independent(self, served):
        db, server = served
        with connect(server) as c1, connect(server) as c2:
            c1.execute("BEGIN")
            probe = "SELECT id FROM t WHERE id = 1"
            assert c1.execute(probe).in_transaction
            assert not c2.execute(probe).in_transaction
            c1.execute("ROLLBACK")

    def test_disconnect_rolls_back_open_txn(self, served):
        db, server = served
        client = connect(server)
        client.execute("BEGIN")
        client.execute("DELETE FROM t WHERE id > 0")
        client.close()  # dropped connection: server must roll back
        # poll until the server thread finishes the cleanup
        import time

        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if len(db.sessions()) == 1:  # only the default session left
                break
            time.sleep(0.01)
        assert db.query("SELECT COUNT(*) FROM t").rows == [(3,)]

    def test_sessions_appear_in_activity(self, served):
        db, server = served
        with connect(server) as client:
            client.execute("BEGIN")
            client.execute("INSERT INTO t VALUES (9, 90)")
            rows = db.query(
                "SELECT session_id, state FROM sys_stat_activity"
            ).rows
            states = {state for _, state in rows}
            assert "idle in transaction" in states
            client.execute("ROLLBACK")

    def test_malformed_request_gets_error_reply(self, served):
        _, server = served
        host, port = server.address
        sock = socket.create_connection((host, port), timeout=5)
        try:
            send_message(sock, {"op": "query"})  # no "sql"
            reply = recv_message(sock)
            assert reply["ok"] is False
        finally:
            sock.close()

    def test_server_stop_is_idempotent(self):
        db = Database()
        server = DatabaseServer(db)
        server.start()
        server.stop()
        server.stop()
