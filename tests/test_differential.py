"""Differential testing: the whole engine against a brute-force reference.

A seeded generator produces random schemas, data and queries; every query
is executed both by the engine (under the DP planner) and by a naive
pure-Python evaluator over the same rows.  Any divergence — in rows,
duplicates, or aggregate values — is a planner/executor bug.

This is the heavyweight correctness net over the optimizer: wrong join
orders, broken predicate pushdown, bad index bounds or spill bugs all
surface as result mismatches.

The reference evaluator and result canonicalization live in
:mod:`repro.qa.reference` so the random matrix tests
(``test_differential_matrix.py``) and ad-hoc repro scripts share them.
"""

import random

import pytest

from repro import Database
from repro.optimizer import PlannerOptions
from repro.qa import Reference, approx_rows


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(99)
    db = Database(buffer_pages=64, work_mem_pages=4)  # force spills
    db.execute("CREATE TABLE r (id INT PRIMARY KEY, k INT, f FLOAT, s TEXT)")
    db.execute("CREATE TABLE s (id INT, k INT, g FLOAT)")
    db.execute("CREATE INDEX ix_s_k ON s (k)")

    r_rows = []
    for i in range(300):
        r_rows.append(
            {
                "id": i,
                "k": rng.randrange(20) if rng.random() > 0.1 else None,
                "f": round(rng.random() * 100, 3),
                "s": rng.choice(["red", "green", "blue"]),
            }
        )
    s_rows = []
    for i in range(200):
        s_rows.append(
            {
                "id": i,
                "k": rng.randrange(20),
                "g": round(rng.random() * 10, 3),
            }
        )
    db.insert_rows("r", [tuple(x.values()) for x in r_rows])
    db.insert_rows("s", [tuple(x.values()) for x in s_rows])
    db.execute("ANALYZE")
    return db, Reference({"r": r_rows, "s": s_rows})


def eval_predicate(row, fn):
    v = fn(row)
    return v is True


class TestSingleTable:
    def test_filters(self, setup):
        db, ref = setup
        cases = [
            ("r.f > 50", lambda x: x["r.f"] is not None and x["r.f"] > 50),
            ("r.k = 5", lambda x: x["r.k"] == 5),
            (
                "r.k IS NULL",
                lambda x: x["r.k"] is None,
            ),
            (
                "r.s IN ('red', 'blue') AND r.f < 30",
                lambda x: x["r.s"] in ("red", "blue") and x["r.f"] < 30,
            ),
            (
                "r.id BETWEEN 50 AND 99 OR r.f > 95",
                lambda x: 50 <= x["r.id"] <= 99 or x["r.f"] > 95,
            ),
            (
                "NOT (r.k = 3 OR r.k = 4)",
                lambda x: x["r.k"] is not None and not (x["r.k"] in (3, 4)),
            ),
            ("r.s LIKE 'g%'", lambda x: x["r.s"].startswith("g")),
        ]
        for sql_pred, py_pred in cases:
            got = db.query(f"SELECT r.id FROM r WHERE {sql_pred}").rows
            want = [
                (row["r.id"],)
                for row in ref.join([("r", "r")])
                if py_pred(row)
            ]
            assert approx_rows(got) == approx_rows(want), sql_pred

    def test_projection_expressions(self, setup):
        db, ref = setup
        got = db.query(
            "SELECT r.id, r.f * 2 + 1 AS e FROM r WHERE r.id < 20"
        ).rows
        want = [
            (row["r.id"], row["r.f"] * 2 + 1)
            for row in ref.join([("r", "r")])
            if row["r.id"] < 20
        ]
        assert approx_rows(got) == approx_rows(want)


class TestJoins:
    def test_equi_join(self, setup):
        db, ref = setup
        got = db.query(
            "SELECT r.id, s.id FROM r, s WHERE r.k = s.k AND r.f > 80"
        ).rows
        want = [
            (row["r.id"], row["s.id"])
            for row in ref.join([("r", "r"), ("s", "s")])
            if row["r.k"] is not None
            and row["r.k"] == row["s.k"]
            and row["r.f"] > 80
        ]
        assert approx_rows(got) == approx_rows(want)

    def test_join_with_range_condition(self, setup):
        db, ref = setup
        got = db.query(
            "SELECT r.id, s.id FROM r, s "
            "WHERE r.k = s.k AND s.g < r.f / 50 AND r.id < 40"
        ).rows
        want = [
            (row["r.id"], row["s.id"])
            for row in ref.join([("r", "r"), ("s", "s")])
            if row["r.k"] is not None
            and row["r.k"] == row["s.k"]
            and row["s.g"] < row["r.f"] / 50
            and row["r.id"] < 40
        ]
        assert approx_rows(got) == approx_rows(want)

    def test_self_join(self, setup):
        db, ref = setup
        got = db.query(
            "SELECT a.id, b.id FROM s a, s b "
            "WHERE a.k = b.k AND a.id < b.id AND a.g > 9"
        ).rows
        want = [
            (row["a.id"], row["b.id"])
            for row in ref.join([("a", "s"), ("b", "s")])
            if row["a.k"] == row["b.k"]
            and row["a.id"] < row["b.id"]
            and row["a.g"] > 9
        ]
        assert approx_rows(got) == approx_rows(want)

    def test_cross_join_with_filter(self, setup):
        db, ref = setup
        got = db.query(
            "SELECT r.id, s.id FROM r, s WHERE r.id = 5 AND s.id < 3"
        ).rows
        want = [
            (row["r.id"], row["s.id"])
            for row in ref.join([("r", "r"), ("s", "s")])
            if row["r.id"] == 5 and row["s.id"] < 3
        ]
        assert approx_rows(got) == approx_rows(want)


class TestAggregates:
    def test_group_by_with_aggs(self, setup):
        db, ref = setup
        got = db.query(
            "SELECT r.s, COUNT(*) AS n, SUM(r.f) AS t, MIN(r.id) AS mn, "
            "MAX(r.id) AS mx, AVG(r.f) AS a FROM r GROUP BY r.s"
        ).rows
        groups = {}
        for row in ref.join([("r", "r")]):
            groups.setdefault(row["r.s"], []).append(row)
        want = []
        for key, rows in groups.items():
            fs = [r["r.f"] for r in rows]
            ids = [r["r.id"] for r in rows]
            want.append(
                (key, len(rows), sum(fs), min(ids), max(ids), sum(fs) / len(fs))
            )
        assert approx_rows(got) == approx_rows(want)

    def test_join_group_having(self, setup):
        db, ref = setup
        got = db.query(
            "SELECT r.s, COUNT(*) AS n FROM r, s WHERE r.k = s.k "
            "GROUP BY r.s HAVING COUNT(*) > 500"
        ).rows
        groups = {}
        for row in ref.join([("r", "r"), ("s", "s")]):
            if row["r.k"] is not None and row["r.k"] == row["s.k"]:
                groups[row["r.s"]] = groups.get(row["r.s"], 0) + 1
        want = [(k, n) for k, n in groups.items() if n > 500]
        assert approx_rows(got) == approx_rows(want)

    def test_count_distinct_on_nullable(self, setup):
        db, ref = setup
        got = db.query(
            "SELECT COUNT(DISTINCT r.k) AS n, COUNT(r.k) AS c FROM r"
        ).rows
        ks = [row["r.k"] for row in ref.join([("r", "r")]) if row["r.k"] is not None]
        assert got == [(len(set(ks)), len(ks))]


class TestOrderingAndLimits:
    def test_order_by_is_respected(self, setup):
        db, _ = setup
        rows = db.query("SELECT r.f FROM r ORDER BY r.f DESC").rows
        values = [r[0] for r in rows]
        assert values == sorted(values, reverse=True)

    def test_limit_after_order(self, setup):
        db, ref = setup
        got = db.query("SELECT r.id FROM r ORDER BY r.f DESC LIMIT 5").rows
        all_rows = sorted(
            ref.join([("r", "r")]), key=lambda x: -x["r.f"]
        )
        want = [(x["r.id"],) for x in all_rows[:5]]
        assert got == want

    def test_distinct_join(self, setup):
        db, ref = setup
        got = db.query(
            "SELECT DISTINCT r.s FROM r, s WHERE r.k = s.k"
        ).rows
        want = sorted(
            {
                (row["r.s"],)
                for row in ref.join([("r", "r"), ("s", "s")])
                if row["r.k"] is not None and row["r.k"] == row["s.k"]
            }
        )
        assert sorted(got) == want


class TestAllStrategiesDifferentially:
    QUERIES = [
        "SELECT r.id, s.g FROM r, s WHERE r.k = s.k AND r.f > 90",
        "SELECT r.s, SUM(s.g) AS t FROM r, s WHERE r.k = s.k GROUP BY r.s",
        "SELECT a.id, b.id FROM s a, s b WHERE a.k = b.k AND a.g < 1",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    @pytest.mark.parametrize(
        "strategy", ["dp", "dp-bushy", "greedy", "syntactic", "random"]
    )
    def test_strategy_matches_reference(self, setup, sql, strategy):
        db, ref = setup
        saved = db.options
        try:
            db.options = PlannerOptions(strategy=strategy)
            got = db.query(sql).rows
        finally:
            db.options = saved
        db.options = PlannerOptions(strategy="dp")
        reference = db.query(sql).rows
        assert approx_rows(got) == approx_rows(reference)
