"""Tests for logical rewrites: predicate pushdown and projection pruning.

Placement is checked structurally; semantics are checked by executing
queries with rewrites on and off and comparing result sets.
"""

import random

import pytest

from repro.algebra import (
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalNarrow,
    build_plan,
    leaves,
    prune_columns,
    push_down_predicates,
)
from repro.engine import Database
from repro.optimizer import PlannerOptions
from repro.sql import parse


@pytest.fixture
def db():
    db = Database(buffer_pages=100, work_mem_pages=8)
    db.execute("CREATE TABLE orders (id INT, cust_id INT, amount FLOAT)")
    db.execute("CREATE TABLE customers (id INT, name TEXT, region TEXT)")
    rng = random.Random(8)
    db.insert_rows(
        "customers",
        [
            (i, f"c{i}", rng.choice(["east", "west"]))
            for i in range(50)
        ],
    )
    db.insert_rows(
        "orders",
        [
            (i, rng.randrange(50), rng.random() * 100)
            for i in range(400)
        ],
    )
    db.analyze()
    return db


def logical(db, sql):
    return build_plan(parse(sql), db.catalog)


def find_nodes(plan, node_type):
    out = []

    def visit(node):
        if isinstance(node, node_type):
            out.append(node)
        for child in node.children():
            visit(child)

    visit(plan)
    return out


class TestPushdownPlacement:
    def test_single_table_conjunct_lands_on_scan(self, db):
        p = push_down_predicates(
            logical(
                db,
                "SELECT o.id FROM orders o, customers c "
                "WHERE o.cust_id = c.id AND o.amount > 50",
            )
        )
        filters = find_nodes(p, LogicalFilter)
        scan_filters = [
            f for f in filters if isinstance(f.child, LogicalGet)
        ]
        assert any("amount" in str(f.predicate) for f in scan_filters)

    def test_join_conjunct_stays_at_join(self, db):
        p = push_down_predicates(
            logical(
                db,
                "SELECT o.id FROM orders o, customers c "
                "WHERE o.cust_id = c.id",
            )
        )
        joins = find_nodes(p, LogicalJoin)
        assert joins and joins[0].condition is not None

    def test_both_side_conjuncts_split(self, db):
        p = push_down_predicates(
            logical(
                db,
                "SELECT o.id FROM orders o, customers c WHERE "
                "o.cust_id = c.id AND o.amount > 10 AND c.region = 'east'",
            )
        )
        joins = find_nodes(p, LogicalJoin)
        left_leaves = leaves(joins[0].left)
        right_leaves = leaves(joins[0].right)
        assert {g.binding for g in left_leaves} == {"o"}
        assert {g.binding for g in right_leaves} == {"c"}
        # each side has its filter below the join
        left_filters = find_nodes(joins[0].left, LogicalFilter)
        right_filters = find_nodes(joins[0].right, LogicalFilter)
        assert left_filters and right_filters

    def test_no_pushdown_through_limit(self, db):
        # A filter above a LIMIT must not move below it.
        from repro.algebra import LogicalLimit
        from repro.expr import col, gt, lit

        inner = logical(db, "SELECT id, amount FROM orders LIMIT 5")
        outer = LogicalFilter(inner, gt(col("amount"), lit(1.0)))
        rewritten = push_down_predicates(outer)

        def depth_of(plan, node_type, depth=0):
            if isinstance(plan, node_type):
                return depth
            for child in plan.children():
                d = depth_of(child, node_type, depth + 1)
                if d is not None:
                    return d
            return None

        assert depth_of(rewritten, LogicalFilter) < depth_of(
            rewritten, LogicalLimit
        )

    def test_pushdown_through_projection_passthrough(self, db):
        from repro.algebra import LogicalProject
        from repro.expr import col, gt, lit

        inner = logical(db, "SELECT id, amount FROM orders")
        outer = LogicalFilter(inner, gt(col("amount"), lit(1.0)))
        rewritten = push_down_predicates(outer)
        # the filter should now sit below the projection
        assert isinstance(rewritten, LogicalProject)
        assert find_nodes(rewritten.child, LogicalFilter)


class TestPrunePlacement:
    def test_narrow_inserted_above_scans(self, db):
        p = prune_columns(
            push_down_predicates(
                logical(
                    db,
                    "SELECT c.name FROM orders o, customers c "
                    "WHERE o.cust_id = c.id",
                )
            )
        )
        narrows = find_nodes(p, LogicalNarrow)
        assert narrows
        # orders contributes only cust_id above its scan
        order_narrows = [
            n
            for n in narrows
            if {c.table for c in n.schema} == {"o"}
        ]
        assert order_narrows
        assert order_narrows[0].schema.qualified_names() == ["o.cust_id"]

    def test_select_star_prunes_nothing(self, db):
        p = prune_columns(logical(db, "SELECT * FROM orders"))
        assert not find_nodes(p, LogicalNarrow)


QUERIES = [
    "SELECT o.id, c.name FROM orders o, customers c "
    "WHERE o.cust_id = c.id AND o.amount > 30",
    "SELECT c.region, COUNT(*) AS n FROM orders o, customers c "
    "WHERE o.cust_id = c.id GROUP BY c.region",
    "SELECT o.id FROM orders o WHERE o.amount BETWEEN 10 AND 20 "
    "ORDER BY o.id LIMIT 7",
    "SELECT DISTINCT c.region FROM customers c WHERE c.name LIKE 'c1%'",
    "SELECT o.cust_id, SUM(o.amount) AS total FROM orders o "
    "GROUP BY o.cust_id HAVING SUM(o.amount) > 100 ORDER BY total DESC",
]


class TestSemanticsPreserved:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_pushdown_ablation_same_results(self, db, sql):
        db.options = PlannerOptions(strategy="dp", pushdown=True)
        with_rewrite = sorted(db.query(sql).rows, key=repr)
        db.options = PlannerOptions(strategy="dp", pushdown=False)
        without = sorted(db.query(sql).rows, key=repr)
        assert with_rewrite == without
