"""Tests for the benchmark harness: table rendering, metrics, and miniature
runs of every experiment (checking structure and the expected *shape* of
results, not absolute numbers)."""

import pytest

from repro.bench import (
    Ratio,
    ResultTable,
    fresh_db,
    geometric_mean,
    measure_query,
    q_error,
    quantile,
    render_all,
)
from repro.bench import (
    e1_join_methods,
    e2_access_paths,
    e4_plan_quality,
    e6_estimation,
    e7_interesting_orders,
    e8_buffer_sweep,
    e9_rewrites,
    e10_wholesale,
)
from repro.workloads import WholesaleScale


class TestTables:
    def test_add_and_render(self):
        t = ResultTable("demo", ["a", "b"])
        t.add(1, 2.5)
        t.add("x", None)
        text = t.render()
        assert "demo" in text and "2.500" in text and "-" in text

    def test_add_validates_width(self):
        t = ResultTable("demo", ["a"])
        with pytest.raises(ValueError):
            t.add(1, 2)

    def test_ratio_formatting(self):
        t = ResultTable("demo", ["r"])
        t.add(Ratio(2.345))
        assert "2.35x" in t.render()

    def test_markdown(self):
        t = ResultTable("demo", ["a", "b"])
        t.add(1, 2)
        md = t.to_markdown()
        assert md.startswith("| a | b |")

    def test_column_values(self):
        t = ResultTable("demo", ["a", "b"])
        t.add(1, 2)
        t.add(3, 4)
        assert t.column_values("b") == [2, 4]

    def test_render_all(self):
        a = ResultTable("one", ["x"])
        b = ResultTable("two", ["y"])
        assert "one" in render_all([a, b]) and "two" in render_all([a, b])


class TestMetrics:
    def test_q_error_symmetric(self):
        assert q_error(10, 100) == q_error(100, 10) == 10.0
        assert q_error(5, 5) == 1.0
        assert q_error(0, 0) == 1.0  # clamped

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0

    def test_quantile(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert quantile(vals, 0.0) == 1.0
        assert quantile(vals, 1.0) == 4.0
        assert quantile(vals, 0.5) == pytest.approx(2.5)

    def test_measure_query(self):
        db = fresh_db(buffer_pages=32)
        db.execute("CREATE TABLE t (a INT)")
        db.insert_rows("t", [(i,) for i in range(500)])
        db.analyze()
        m = measure_query(db, "SELECT COUNT(*) AS n FROM t")
        assert m.rows == 1
        assert m.actual_reads > 0
        assert m.est_cost_total > 0
        assert m.cardinality_q_error >= 1.0


class TestExperimentsMiniature:
    """Each experiment in miniature: structure + classic shape assertions."""

    def test_e1_join_methods(self):
        tables = e1_join_methods.run(
            sizes=[(300, 300), (2500, 2500)],
            buffer_pages=16,
            work_mem_pages=6,
        )
        assert len(tables) == 2
        actual = tables[0]
        assert len(actual.rows) == 2
        big = actual.rows[1]
        methods = dict(zip(e1_join_methods.METHODS, big[2:]))
        # at sizes exceeding the buffer, index-NL thrashes vs hash/merge
        assert methods["hash"] < methods["index-NL"]

    def test_e2_access_paths_crossovers(self):
        tables = e2_access_paths.run(
            num_rows=4000, fractions=[0.002, 0.05, 0.5], buffer_pages=16
        )
        actual, validation = tables
        # clustered index beats seq at high selectivity
        first = actual.rows[0]
        cols = actual.columns
        assert first[cols.index("clustered-index")] < first[cols.index("seq-scan")]
        # unclustered crosses over somewhere in the sweep
        cross = e2_access_paths.crossover_fraction(actual, "unclustered-index")
        assert cross is not None and cross <= 0.5
        # E3: cost model's unclustered estimate within 2x of actual
        for row in validation.rows:
            est = row[validation.columns.index("unclustered est")]
            act = row[validation.columns.index("unclustered act")]
            assert q_error(est, act) < 3.0

    def test_e4_plan_quality(self):
        tables = e4_plan_quality.run_plan_quality(
            shapes=["chain"], n=4, base_rows=200,
            strategies=["dp", "greedy", "random"],
        )
        table = tables[0]
        assert len(table.rows) == 3
        dp_cost = table.rows[0][2]
        for row in table.rows[1:]:
            assert row[2] >= dp_cost * (1 - 1e-9)  # dp never modeled-worse

    def test_e5_planning_time(self):
        timing, effort = e4_plan_quality.run_planning_time(
            shape="chain", max_n=4, base_rows=60,
            strategies=["dp", "greedy", "exhaustive"],
        )
        assert len(timing.rows) == 3
        dp_plans = effort.column_values("dp plans")
        assert dp_plans == sorted(dp_plans)  # grows with n

    def test_e6_estimation_hierarchy(self):
        detail, summary = e6_estimation.run(num_rows=4000, domain=80)
        tiers = {row[0]: row[1] for row in summary.rows}  # geo-mean
        assert tiers["hist+mcv"] <= tiers["uniform"] * (1 + 1e-9)

    def test_e7_interesting_orders(self):
        (table,) = e7_interesting_orders.run(rows_a=2000, rows_b=500)
        cols = table.columns
        on_sorts = cols.index("orders on: sorts")
        off_sorts = cols.index("orders off: sorts")
        # at least one query avoids a sort only with order tracking
        saved = [
            row
            for row in table.rows
            if row[on_sorts] is False and row[off_sorts] is True
        ]
        assert saved

    def test_e8_buffer_sweep(self):
        (table,) = e8_buffer_sweep.run(
            outer_rows=1500, inner_rows=1500, buffer_sizes=[8, 48]
        )
        cols = table.columns
        bnl = table.column_values("block-NL")
        assert bnl[0] > bnl[-1]  # more memory -> fewer rescans

    def test_e9_rewrites(self):
        (table,) = e9_rewrites.run(
            scale=WholesaleScale.tiny(), queries=["Q5_big_orders_by_segment"]
        )
        row = table.rows[0]
        cols = table.columns
        assert (
            row[cols.index("no pushdown: cost")]
            >= row[cols.index("pushdown: cost")]
        )

    def test_e10_wholesale(self):
        (table,) = e10_wholesale.run(
            scale=WholesaleScale.tiny(),
            queries=["Q2_region_revenue", "Q7_selective_point"],
            buffer_pages=32,
        )
        assert table.rows[-1][0] == "TOTAL"
        assert len(table.rows) == 3


class TestCsvExport:
    def test_to_csv(self):
        t = ResultTable("demo", ["a", "b"])
        t.add(1, Ratio(2.5))
        t.add("x,y", None)
        csv_text = t.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert '"x,y"' in lines[2]


class TestE12Miniature:
    def test_scaling_structure(self):
        from repro.bench import e12_scaling

        (table,) = e12_scaling.run(scales=["tiny"], repeats=1)
        assert table.rows[0][0] == "tiny"
        assert table.rows[0][1] == 1600  # lineitem rows at tiny scale
        ratio = table.rows[0][table.columns.index("time ratio")]
        assert ratio.value > 0
