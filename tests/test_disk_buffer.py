"""Tests for the simulated disk and the buffer pool."""

import pytest

from repro.storage import (
    BufferError_,
    BufferPool,
    DiskError,
    DiskManager,
    PageGuard,
    Replacement,
)


def make_disk():
    return DiskManager(page_size=256)


class TestDisk:
    def test_create_and_allocate(self):
        disk = make_disk()
        f = disk.create_file("t")
        pid = disk.allocate_page(f)
        assert pid == (f, 0)
        assert disk.num_pages(f) == 1
        assert disk.stats.allocations == 1

    def test_read_write_roundtrip(self):
        disk = make_disk()
        f = disk.create_file("t")
        pid = disk.allocate_page(f)
        data = bytearray(b"a" * 256)
        disk.write_page(pid, bytes(data))
        assert disk.read_page(pid) == data

    def test_read_counts_and_sequential_detection(self):
        disk = make_disk()
        f = disk.create_file("t")
        for _ in range(3):
            disk.allocate_page(f)
        disk.read_page((f, 0))
        disk.read_page((f, 1))  # sequential
        disk.read_page((f, 0))  # random
        assert disk.stats.reads == 3
        assert disk.stats.seq_reads == 1

    def test_out_of_range(self):
        disk = make_disk()
        f = disk.create_file("t")
        with pytest.raises(DiskError):
            disk.read_page((f, 0))
        with pytest.raises(DiskError):
            disk.read_page((99, 0))

    def test_wrong_size_write(self):
        disk = make_disk()
        f = disk.create_file("t")
        pid = disk.allocate_page(f)
        with pytest.raises(DiskError):
            disk.write_page(pid, b"short")

    def test_drop_file(self):
        disk = make_disk()
        f = disk.create_file("t")
        disk.drop_file(f)
        with pytest.raises(DiskError):
            disk.num_pages(f)

    def test_stats_delta(self):
        disk = make_disk()
        f = disk.create_file("t")
        disk.allocate_page(f)
        before = disk.stats.snapshot()
        disk.read_page((f, 0))
        delta = disk.stats.delta(before)
        assert delta.reads == 1 and delta.writes == 0


def pool_with_pages(capacity, num_pages, policy=Replacement.LRU):
    disk = make_disk()
    pool = BufferPool(disk, capacity, policy)
    f = disk.create_file("t")
    for _ in range(num_pages):
        disk.allocate_page(f)
    return disk, pool, f


class TestBufferPool:
    def test_hit_and_miss_counting(self):
        disk, pool, f = pool_with_pages(4, 2)
        pool.fix((f, 0))
        pool.unfix((f, 0))
        pool.fix((f, 0))
        pool.unfix((f, 0))
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert disk.stats.reads == 1

    def test_eviction_when_full(self):
        disk, pool, f = pool_with_pages(2, 3)
        for i in range(3):
            pool.fix((f, i))
            pool.unfix((f, i))
        assert pool.stats.evictions == 1
        assert not pool.contains((f, 0))  # LRU victim

    def test_mru_evicts_most_recent(self):
        disk, pool, f = pool_with_pages(2, 3, Replacement.MRU)
        for i in range(2):
            pool.fix((f, i))
            pool.unfix((f, i))
        pool.fix((f, 2))
        pool.unfix((f, 2))
        assert not pool.contains((f, 1))
        assert pool.contains((f, 0))

    def test_clock_second_chance(self):
        disk, pool, f = pool_with_pages(2, 3, Replacement.CLOCK)
        for i in range(3):
            pool.fix((f, i))
            pool.unfix((f, i))
        assert len(list(pool.pinned_pages())) == 0
        assert pool.stats.evictions == 1

    def test_pinned_pages_not_evicted(self):
        disk, pool, f = pool_with_pages(2, 3)
        pool.fix((f, 0))  # stays pinned
        pool.fix((f, 1))
        pool.unfix((f, 1))
        pool.fix((f, 2))  # must evict page 1, not pinned page 0
        assert pool.contains((f, 0))
        assert not pool.contains((f, 1))

    def test_all_pinned_raises(self):
        disk, pool, f = pool_with_pages(2, 3)
        pool.fix((f, 0))
        pool.fix((f, 1))
        with pytest.raises(BufferError_):
            pool.fix((f, 2))

    def test_unfix_without_fix_raises(self):
        disk, pool, f = pool_with_pages(2, 1)
        with pytest.raises(BufferError_):
            pool.unfix((f, 0))

    def test_dirty_writeback_on_eviction(self):
        disk, pool, f = pool_with_pages(1, 2)
        data = pool.fix((f, 0))
        data[0] = 0xAB
        pool.unfix((f, 0), dirty=True)
        pool.fix((f, 1))  # evicts page 0
        pool.unfix((f, 1))
        assert disk.read_page((f, 0))[0] == 0xAB
        assert pool.stats.dirty_writebacks == 1

    def test_clean_eviction_skips_write(self):
        disk, pool, f = pool_with_pages(1, 2)
        pool.fix((f, 0))
        pool.unfix((f, 0))
        writes_before = disk.stats.writes
        pool.fix((f, 1))
        pool.unfix((f, 1))
        assert disk.stats.writes == writes_before

    def test_flush_all(self):
        disk, pool, f = pool_with_pages(4, 1)
        data = pool.fix((f, 0))
        data[0] = 7
        pool.unfix((f, 0), dirty=True)
        pool.flush_all()
        assert disk.read_page((f, 0))[0] == 7

    def test_clear_requires_unpinned(self):
        disk, pool, f = pool_with_pages(4, 1)
        pool.fix((f, 0))
        with pytest.raises(BufferError_):
            pool.clear()
        pool.unfix((f, 0))
        pool.clear()
        assert not pool.contains((f, 0))

    def test_discard_file_drops_dirty_frames(self):
        disk, pool, f = pool_with_pages(4, 2)
        data = pool.fix((f, 0))
        data[0] = 1
        pool.unfix((f, 0), dirty=True)
        pool.discard_file(f)
        disk.drop_file(f)
        # no writeback attempted later
        pool.flush_all()

    def test_new_page_pinned_and_dirty(self):
        disk, pool, f = pool_with_pages(4, 0)
        pid = pool.new_page(f)
        assert list(pool.pinned_pages()) == [pid]
        pool.unfix(pid, dirty=True)

    def test_page_guard_releases_on_exception(self):
        disk, pool, f = pool_with_pages(4, 1)
        with pytest.raises(ValueError):
            with PageGuard(pool, (f, 0)):
                raise ValueError("boom")
        assert list(pool.pinned_pages()) == []

    def test_page_guard_write_marks_dirty(self):
        disk, pool, f = pool_with_pages(1, 2)
        with PageGuard(pool, (f, 0), write=True) as data:
            data[1] = 0x55
        pool.fix((f, 1))
        pool.unfix((f, 1))
        assert disk.read_page((f, 0))[1] == 0x55

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(make_disk(), 0)


class TestBufferStatsAccounting:
    """Hit/miss bookkeeping across replacement policies + reset semantics."""

    def _workload(self, policy):
        """Touch 3 pages through a 2-frame pool: 0, 1, 0, 2, 0."""
        disk, pool, f = pool_with_pages(2, 3, policy)
        for page in (0, 1, 0, 2, 0):
            pool.fix((f, page))
            pool.unfix((f, page))
        return disk, pool, f

    @pytest.mark.parametrize(
        "policy", [Replacement.LRU, Replacement.CLOCK, Replacement.MRU]
    )
    def test_accesses_add_up(self, policy):
        disk, pool, f = self._workload(policy)
        stats = pool.stats
        assert stats.accesses == 5
        assert stats.hits + stats.misses == 5
        assert stats.misses >= 3  # each page faulted in at least once
        assert disk.stats.reads == stats.misses
        assert 0.0 <= stats.hit_rate <= 1.0

    def test_lru_keeps_hot_page(self):
        # LRU: page 0 is re-touched before 2 arrives, so 1 is the victim
        # and the final fix of 0 hits.
        disk, pool, f = self._workload(Replacement.LRU)
        assert pool.stats.hits == 2
        assert pool.stats.misses == 3
        assert pool.contains((f, 0))

    def test_mru_evicts_hot_page(self):
        # MRU: the just-touched page 0 is the victim when 2 arrives, so the
        # final fix of 0 misses again.
        disk, pool, f = self._workload(Replacement.MRU)
        assert pool.stats.hits == 1
        assert pool.stats.misses == 4

    def test_hit_rate_empty_pool_is_zero(self):
        disk = make_disk()
        pool = BufferPool(disk, 2)
        assert pool.stats.hit_rate == 0.0

    def test_reset_stats_clears_counters_not_frames(self):
        disk, pool, f = self._workload(Replacement.LRU)
        resident = [p for p in range(3) if pool.contains((f, p))]
        pool.reset_stats()
        assert pool.stats.accesses == 0
        assert pool.stats.evictions == 0
        assert pool.stats.dirty_writebacks == 0
        # frames stay cached: touching a resident page is a hit
        pool.fix((f, resident[0]))
        pool.unfix((f, resident[0]))
        assert pool.stats.hits == 1 and pool.stats.misses == 0

    def test_snapshot_and_delta(self):
        disk, pool, f = self._workload(Replacement.CLOCK)
        before = pool.stats.snapshot()
        pool.fix((f, 1))
        pool.unfix((f, 1))
        delta = pool.stats.delta(before)
        assert delta.accesses == 1
        # snapshot is a copy, not a view
        assert before.accesses == 5
