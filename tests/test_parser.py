"""Tests for the SQL parser."""

import pytest

from repro.expr import (
    AggCall,
    AggFunc,
    ArithOp,
    Arithmetic,
    Between,
    BoolKind,
    BoolOp,
    CmpOp,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
)
from repro.sql import (
    AnalyzeStmt,
    CreateIndexStmt,
    CreateTableStmt,
    DropTableStmt,
    ExplainStmt,
    InsertStmt,
    ParseError,
    SelectStmt,
    parse,
    parse_expression,
)
from repro.types import DataType


class TestSelect:
    def test_minimal(self):
        s = parse("SELECT * FROM t")
        assert isinstance(s, SelectStmt)
        assert s.items[0].is_star
        assert s.from_tables[0].table == "t"

    def test_aliases(self):
        s = parse("SELECT a AS x, b y FROM t u")
        assert s.items[0].alias == "x"
        assert s.items[1].alias == "y"
        assert s.from_tables[0].binding == "u"

    def test_qualified_star(self):
        s = parse("SELECT t.*, u.a FROM t, u")
        assert s.items[0].star_qualifier == "t"

    def test_multi_table_from(self):
        s = parse("SELECT * FROM a, b, c")
        assert [t.table for t in s.from_tables] == ["a", "b", "c"]

    def test_explicit_join(self):
        s = parse("SELECT * FROM a JOIN b ON a.x = b.y JOIN c ON b.z = c.w")
        assert len(s.joins) == 2
        assert isinstance(s.joins[0].condition, Comparison)

    def test_inner_join_keyword(self):
        s = parse("SELECT * FROM a INNER JOIN b ON a.x = b.y")
        assert len(s.joins) == 1

    def test_cross_join(self):
        s = parse("SELECT * FROM a CROSS JOIN b")
        assert s.joins[0].condition is None

    def test_join_without_on_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM a JOIN b")

    def test_where_group_having_order_limit(self):
        s = parse(
            "SELECT g, COUNT(*) FROM t WHERE x > 0 GROUP BY g "
            "HAVING COUNT(*) > 1 ORDER BY g DESC LIMIT 3"
        )
        assert s.where is not None
        assert len(s.group_by) == 1
        assert s.having is not None
        assert s.order_by[0].ascending is False
        assert s.limit == 3

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_order_by_defaults_asc(self):
        s = parse("SELECT a FROM t ORDER BY a, b DESC, c ASC")
        assert [o.ascending for o in s.order_by] == [True, False, True]

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t LIMIT 2.5")

    def test_trailing_semicolon_ok(self):
        parse("SELECT a FROM t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t WHERE 1 = 1 1")


class TestExpressions:
    def test_precedence_or_and(self):
        e = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(e, BoolOp) and e.kind is BoolKind.OR
        assert isinstance(e.operands[1], BoolOp)
        assert e.operands[1].kind is BoolKind.AND

    def test_precedence_arithmetic(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, Arithmetic) and e.op is ArithOp.ADD
        assert isinstance(e.right, Arithmetic) and e.right.op is ArithOp.MUL

    def test_parens_override(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op is ArithOp.MUL
        assert isinstance(e.left, Arithmetic)

    def test_comparison_chain_not_allowed(self):
        # a = b = c is not valid SQL; second '=' leaves trailing tokens
        with pytest.raises(ParseError):
            parse_expression("a = b = c")

    def test_not_binds_tighter_than_and(self):
        e = parse_expression("NOT a = 1 AND b = 2")
        assert isinstance(e, BoolOp) and e.kind is BoolKind.AND
        assert isinstance(e.operands[0], Not)

    def test_unary_minus_folds_literal(self):
        assert parse_expression("-5") == Literal(-5)
        e = parse_expression("-x")
        assert type(e).__name__ == "Negate"

    def test_is_null(self):
        e = parse_expression("a IS NULL")
        assert isinstance(e, IsNull) and not e.negated
        e = parse_expression("a IS NOT NULL")
        assert e.negated

    def test_in_list(self):
        e = parse_expression("a IN (1, 2, 3)")
        assert isinstance(e, InList) and len(e.items) == 3
        e = parse_expression("a NOT IN (1)")
        assert e.negated

    def test_like(self):
        e = parse_expression("name LIKE 'a%'")
        assert isinstance(e, Like) and e.pattern == "a%"
        assert parse_expression("name NOT LIKE '_'").negated

    def test_like_requires_string(self):
        with pytest.raises(ParseError):
            parse_expression("name LIKE 5")

    def test_between(self):
        e = parse_expression("a BETWEEN 1 AND 10")
        assert isinstance(e, Between)
        assert parse_expression("a NOT BETWEEN 1 AND 2").negated

    def test_between_and_boolean_and(self):
        e = parse_expression("a BETWEEN 1 AND 10 AND b = 2")
        assert isinstance(e, BoolOp) and e.kind is BoolKind.AND

    def test_literals(self):
        assert parse_expression("NULL") == Literal(None)
        assert parse_expression("TRUE") == Literal(True)
        assert parse_expression("FALSE") == Literal(False)
        assert parse_expression("'s'") == Literal("s")

    def test_qualified_column(self):
        assert parse_expression("t.col") == ColumnRef("t.col")

    def test_aggregates(self):
        e = parse_expression("COUNT(*)")
        assert e == AggCall(AggFunc.COUNT, None)
        e = parse_expression("SUM(a * 2)")
        assert e.func is AggFunc.SUM and isinstance(e.arg, Arithmetic)
        e = parse_expression("COUNT(DISTINCT a)")
        assert e.distinct

    def test_modulo(self):
        e = parse_expression("a % 2")
        assert e.op is ArithOp.MOD

    def test_ne_both_spellings(self):
        assert parse_expression("a <> 1").op is CmpOp.NE
        assert parse_expression("a != 1").op is CmpOp.NE


class TestDDLAndDML:
    def test_create_table(self):
        s = parse(
            "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR NOT NULL, "
            "price FLOAT, active BOOLEAN, born DATE)"
        )
        assert isinstance(s, CreateTableStmt)
        assert s.columns[0].primary_key and not s.columns[0].nullable
        assert not s.columns[1].nullable
        assert s.columns[2].dtype is DataType.FLOAT
        assert s.columns[3].dtype is DataType.BOOL
        assert s.columns[4].dtype is DataType.DATE

    def test_create_index_variants(self):
        s = parse("CREATE INDEX ix ON t (col)")
        assert isinstance(s, CreateIndexStmt)
        assert s.using == "btree" and not s.clustered
        s = parse("CREATE CLUSTERED INDEX ix ON t (col) USING hash")
        assert s.clustered and s.using == "hash"

    def test_create_index_bad_using(self):
        with pytest.raises(ParseError):
            parse("CREATE INDEX ix ON t (c) USING rtree")

    def test_insert(self):
        s = parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(s, InsertStmt)
        assert s.columns is None and len(s.rows) == 2

    def test_insert_with_columns(self):
        s = parse("INSERT INTO t (a, b) VALUES (1, 2)")
        assert s.columns == ["a", "b"]

    def test_insert_negative_number(self):
        s = parse("INSERT INTO t VALUES (-5)")
        assert s.rows[0][0] == Literal(-5)

    def test_drop_table(self):
        assert parse("DROP TABLE t") == DropTableStmt("t")

    def test_analyze(self):
        assert parse("ANALYZE t") == AnalyzeStmt("t")
        assert parse("ANALYZE") == AnalyzeStmt(None)

    def test_explain(self):
        s = parse("EXPLAIN SELECT * FROM t")
        assert isinstance(s, ExplainStmt)
        assert isinstance(s.inner, SelectStmt)

    def test_garbage_statement(self):
        with pytest.raises(ParseError):
            parse("FROBNICATE THE DATABASE")
