"""Tests for the SQL tokenizer."""

import pytest

from repro.sql import LexError, tokenize


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql)[:-1]]  # drop EOF


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("select FROM Where") == [
            ("KEYWORD", "SELECT"),
            ("KEYWORD", "FROM"),
            ("KEYWORD", "WHERE"),
        ]

    def test_identifiers_preserve_case(self):
        assert kinds("myTable _x a1") == [
            ("IDENT", "myTable"),
            ("IDENT", "_x"),
            ("IDENT", "a1"),
        ]

    def test_numbers(self):
        assert kinds("1 23 4.5 .5 1e3 2.5E-2") == [
            ("NUMBER", 1),
            ("NUMBER", 23),
            ("NUMBER", 4.5),
            ("NUMBER", 0.5),
            ("NUMBER", 1000.0),
            ("NUMBER", 0.025),
        ]

    def test_int_vs_float_types(self):
        toks = tokenize("1 1.0")
        assert isinstance(toks[0].value, int)
        assert isinstance(toks[1].value, float)

    def test_strings_with_escapes(self):
        assert kinds("'it''s'") == [("STRING", "it's")]
        assert kinds("''") == [("STRING", "")]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_symbols_and_two_char_ops(self):
        assert [v for _, v in kinds("<= >= <> != = < > ( ) , * ;")] == [
            "<=", ">=", "<>", "<>", "=", "<", ">", "(", ")", ",", "*", ";",
        ]

    def test_comments_skipped(self):
        assert kinds("SELECT -- comment here\n 1") == [
            ("KEYWORD", "SELECT"),
            ("NUMBER", 1),
        ]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("SELECT @x")

    def test_eof_token(self):
        toks = tokenize("SELECT")
        assert toks[-1].kind == "EOF"

    def test_dotted_names_tokenize_separately(self):
        assert kinds("a.b") == [
            ("IDENT", "a"),
            ("SYMBOL", "."),
            ("IDENT", "b"),
        ]

    def test_number_then_dot_ident(self):
        # "1.e" should not eat the 'e' as an exponent without digits
        assert kinds("1.5e") == [("NUMBER", 1.5), ("IDENT", "e")]
