"""Tests for baseline planners."""

import pytest

from repro.algebra import build_plan, extract_join_graph, push_down_predicates, transform_join_regions
from repro.engine import Database
from repro.optimizer import (
    Estimator,
    ExhaustivePlanner,
    GreedyPlanner,
    NaiveNLPlanner,
    RandomPlanner,
    StatsResolver,
    SyntacticPlanner,
)
from repro.physical import PNestedLoopJoin, PSeqScan, walk_plan
from repro.sql import parse
from repro.workloads import build_chain


@pytest.fixture(scope="module")
def db():
    db = Database(buffer_pages=128, work_mem_pages=8)
    build_chain(db, 4, base_rows=200, seed=6, with_indexes=True)
    return db


SQL = (
    "SELECT COUNT(*) AS n FROM c0, c1, c2, c3 WHERE "
    "c0.fk = c1.id AND c1.fk = c2.id AND c2.fk = c3.id"
)


def graph_and_est(db, sql=SQL):
    plan = push_down_predicates(build_plan(parse(sql), db.catalog))
    graphs = []
    transform_join_regions(plan, lambda r: graphs.append(extract_join_graph(r)) or r)
    graph = graphs[0]
    return graph, Estimator(StatsResolver(graph))


class TestSyntactic:
    def test_joins_in_from_order(self, db):
        graph, est = graph_and_est(db)
        sub = SyntacticPlanner(graph, est, db.model).plan()
        assert sub.relations == frozenset({"c0", "c1", "c2", "c3"})
        # leftmost leaf must be the first FROM table
        node = sub.plan
        while node.children():
            node = node.children()[0]
        assert "c0" in node.describe()


class TestNaive:
    def test_only_seq_scans_and_nl(self, db):
        graph, est = graph_and_est(db)
        sub = NaiveNLPlanner(graph, est, db.model).plan()
        for node in walk_plan(sub.plan):
            assert isinstance(node, (PSeqScan, PNestedLoopJoin))
        nls = [
            n for n in walk_plan(sub.plan) if isinstance(n, PNestedLoopJoin)
        ]
        assert all(n.block_pages == 1 for n in nls)

    def test_naive_costlier_than_others(self, db):
        graph, est = graph_and_est(db)
        naive = NaiveNLPlanner(graph, est, db.model).plan()
        greedy = GreedyPlanner(graph, est, db.model).plan()
        assert naive.cost.total >= greedy.cost.total


class TestGreedy:
    def test_produces_full_plan(self, db):
        graph, est = graph_and_est(db)
        sub = GreedyPlanner(graph, est, db.model).plan()
        assert sub.relations == frozenset({"c0", "c1", "c2", "c3"})

    def test_never_beats_exhaustive(self, db):
        graph, est = graph_and_est(db)
        greedy = GreedyPlanner(graph, est, db.model).plan()
        exhaustive = ExhaustivePlanner(graph, est, db.model).plan()
        assert greedy.cost.total >= exhaustive.cost.total * (1 - 1e-9)


class TestExhaustive:
    def test_limit_enforced(self, db):
        graph, est = graph_and_est(db)
        planner = ExhaustivePlanner(graph, est, db.model, max_relations=2)
        with pytest.raises(ValueError):
            planner.plan()

    def test_handles_cross_only_graph(self, db):
        graph, est = graph_and_est(db, "SELECT COUNT(*) AS n FROM c0, c1")
        sub = ExhaustivePlanner(graph, est, db.model).plan()
        assert sub.relations == frozenset({"c0", "c1"})


class TestRandom:
    def test_deterministic_given_seed(self, db):
        graph, est = graph_and_est(db)
        a = RandomPlanner(graph, est, db.model, seed=7).plan()
        b = RandomPlanner(graph, est, db.model, seed=7).plan()
        assert a.cost.total == b.cost.total

    def test_different_seeds_vary(self, db):
        graph, est = graph_and_est(db)
        costs = {
            round(RandomPlanner(graph, est, db.model, seed=s).plan().cost.total, 3)
            for s in range(8)
        }
        assert len(costs) >= 2

    def test_order_prefers_connected(self, db):
        graph, est = graph_and_est(db)
        planner = RandomPlanner(graph, est, db.model, seed=1)
        order = planner.random_order()
        placed = {order[0]}
        for b in order[1:]:
            assert graph.join_conjuncts_between(placed, {b})
            placed.add(b)

    def test_plan_many(self, db):
        graph, est = graph_and_est(db)
        plans = RandomPlanner(graph, est, db.model, seed=2).plan_many(3)
        assert len(plans) == 3


class TestExecutionAgreement:
    def test_all_baselines_same_answer(self, db):
        """Every planner's plan computes the same result."""
        graph, est = graph_and_est(db)
        planners = [
            SyntacticPlanner(graph, est, db.model),
            NaiveNLPlanner(graph, est, db.model),
            GreedyPlanner(graph, est, db.model),
            ExhaustivePlanner(graph, est, db.model),
            RandomPlanner(graph, est, db.model, seed=3),
        ]
        answers = []
        for p in planners:
            sub = p.plan()
            result = db.run_plan(sub.plan, cold=True)
            answers.append(len(result.rows))
        assert len(set(answers)) == 1
