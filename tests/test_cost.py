"""Tests for the cost model."""


import pytest
from hypothesis import given, strategies as st

from repro.catalog import IndexInfo, IndexKind
from repro.optimizer import Cost, CostModel, cardenas_pages


def fake_index(kind=IndexKind.BTREE, clustered=False, height=2, leaf_pages=10):
    ix = IndexInfo("ix", "t", "c", kind, clustered, structure=None)
    ix.leaf_pages = leaf_pages
    if kind is IndexKind.BTREE:
        class _S:
            pass

        s = _S()
        s.height = height
        ix.structure = s
    return ix


class TestCost:
    def test_total_weights_cpu(self):
        c = Cost(io=10, cpu=100, cpu_weight=0.01)
        assert c.total == pytest.approx(11.0)

    def test_addition(self):
        c = Cost(1, 2, 0.01) + Cost(3, 4, 0.01)
        assert c.io == 4 and c.cpu == 6

    def test_ordering(self):
        assert Cost(1, 0) < Cost(2, 0)


class TestCardenas:
    def test_zero_fetches(self):
        assert cardenas_pages(100, 0) == 0.0

    def test_single_page(self):
        assert cardenas_pages(1, 50) == 1.0

    def test_monotone_in_fetches(self):
        values = [cardenas_pages(100, k) for k in (1, 10, 100, 1000)]
        assert values == sorted(values)

    def test_caps_at_pages(self):
        assert cardenas_pages(100, 10**6) <= 100.0 + 1e-9

    def test_few_fetches_touch_few_pages(self):
        assert cardenas_pages(1000, 5) == pytest.approx(5.0, rel=0.01)

    @given(st.integers(1, 500), st.integers(0, 5000))
    def test_bounds(self, pages, fetches):
        v = cardenas_pages(pages, fetches)
        assert 0.0 <= v <= pages
        assert v <= fetches or fetches == 0 or v <= pages


class TestScans:
    def setup_method(self):
        self.model = CostModel(work_mem_pages=16, buffer_pages=1000)

    def test_seq_scan_linear_in_pages(self):
        assert self.model.seq_scan(100, 1000).io == 100

    def test_clustered_cheaper_than_unclustered(self):
        clustered = fake_index(clustered=True)
        unclustered = fake_index(clustered=False)
        c = self.model.index_scan(clustered, 100, 10000, 1000)
        u = self.model.index_scan(unclustered, 100, 10000, 1000)
        assert c.io < u.io

    def test_index_scan_monotone_in_matches(self):
        ix = fake_index()
        costs = [
            self.model.index_scan(ix, 100, 10000, k).io
            for k in (1, 10, 100, 1000)
        ]
        assert costs == sorted(costs)

    def test_hash_index_no_descent(self):
        hx = fake_index(kind=IndexKind.HASH)
        bx = fake_index(kind=IndexKind.BTREE, height=3)
        assert (
            self.model.index_scan(hx, 100, 10000, 1).io
            < self.model.index_scan(bx, 100, 10000, 1).io
        )

    def test_index_only_cheaper_than_fetching(self):
        ix = fake_index()
        io_only = self.model.index_only_scan(ix, 10000, 500)
        full = self.model.index_scan(ix, 100, 10000, 500)
        assert io_only.io < full.io

    def test_random_fetch_buffer_effect(self):
        small = CostModel(buffer_pages=10)
        big = CostModel(buffer_pages=10000)
        # table bigger than the small pool: repeated fetches miss
        assert small.random_fetch_pages(100, 5000) > big.random_fetch_pages(
            100, 5000
        )


class TestSort:
    def setup_method(self):
        self.model = CostModel(work_mem_pages=10)

    def test_in_memory_sort_free_io(self):
        assert self.model.sort(5, 100).io == 0.0

    def test_external_sort_pays_io(self):
        assert self.model.sort(100, 10000).io > 0

    def test_more_pages_more_io(self):
        a = self.model.sort(50, 5000).io
        b = self.model.sort(500, 50000).io
        assert b > a


class TestJoins:
    def setup_method(self):
        self.model = CostModel(work_mem_pages=10, buffer_pages=100)

    def test_hash_join_grace_switch(self):
        fits = self.model.hash_join(100, 1000, 5, 50, 1000)
        spills = self.model.hash_join(100, 1000, 50, 500, 1000)
        assert fits.io == 0.0
        assert spills.io > 0.0

    def test_bnl_fewer_blocks_with_memory(self):
        small = CostModel(work_mem_pages=4)
        big = CostModel(work_mem_pages=64)
        rescan = Cost(io=50, cpu=500)
        a = small.block_nested_loop(100, 1000, rescan, 500)
        b = big.block_nested_loop(100, 1000, rescan, 500)
        assert a.io > b.io

    def test_bnl_cached_inner_free_rescans(self):
        model = CostModel(work_mem_pages=10, buffer_pages=100)
        rescan = Cost(io=20, cpu=100)
        cached = model.block_nested_loop(
            100, 1000, rescan, 500, inner_pages=20
        )
        uncached = model.block_nested_loop(
            100, 1000, rescan, 500, inner_pages=99999
        )
        assert cached.io < uncached.io

    def test_merge_join_cpu_only(self):
        c = self.model.merge_join(100, 200, 50)
        assert c.io == 0.0 and c.cpu == 350

    def test_index_nl_scales_with_outer(self):
        ix = fake_index()
        a = self.model.index_nested_loop(10, ix, 100, 10000, 1.0)
        b = self.model.index_nested_loop(10000, ix, 100, 10000, 1.0)
        assert b.io > a.io

    def test_work_mem_validation(self):
        with pytest.raises(ValueError):
            CostModel(work_mem_pages=2)
