"""Tests for the catalog: tables, indexes, ANALYZE."""

import pytest

from repro.catalog import Catalog, CatalogError, IndexKind
from repro.storage import BufferPool, DiskManager
from repro.types import DataType, schema_of


def make_catalog(pool_pages=200):
    disk = DiskManager()
    pool = BufferPool(disk, pool_pages)
    return disk, Catalog(pool)


def orders_schema():
    return schema_of(
        "orders",
        ("id", DataType.INT),
        ("cust", DataType.INT),
        ("amount", DataType.FLOAT),
    )


class TestTables:
    def test_create_and_lookup(self):
        _, cat = make_catalog()
        info = cat.create_table("orders", orders_schema())
        assert cat.table("orders") is info
        assert cat.table("ORDERS") is info  # case-insensitive
        assert cat.has_table("orders")

    def test_duplicate_rejected(self):
        _, cat = make_catalog()
        cat.create_table("t", orders_schema())
        with pytest.raises(CatalogError):
            cat.create_table("T", orders_schema())

    def test_unknown_table(self):
        _, cat = make_catalog()
        with pytest.raises(CatalogError):
            cat.table("missing")

    def test_drop_table(self):
        _, cat = make_catalog()
        cat.create_table("t", orders_schema())
        cat.insert_rows("t", [(1, 2, 3.0)])
        cat.create_index("ix", "t", "id")
        cat.drop_table("t")
        assert not cat.has_table("t")

    def test_tables_listing(self):
        _, cat = make_catalog()
        cat.create_table("a", orders_schema())
        assert [t.name for t in cat.tables()] == ["a"]


class TestInsertAndIndexMaintenance:
    def test_insert_rows_counts(self):
        _, cat = make_catalog()
        cat.create_table("t", orders_schema())
        assert cat.insert_rows("t", [(i, i, float(i)) for i in range(10)]) == 10
        assert cat.table("t").num_rows == 10

    def test_index_built_over_existing_rows(self):
        _, cat = make_catalog()
        cat.create_table("t", orders_schema())
        cat.insert_rows("t", [(i, i % 3, float(i)) for i in range(50)])
        ix = cat.create_index("ix", "t", "cust")
        assert ix.structure.num_entries == 50
        rids = ix.structure.search(1)
        info = cat.table("t")
        assert all(info.heap.fetch(r)[1] == 1 for r in rids)

    def test_inserts_maintain_indexes(self):
        _, cat = make_catalog()
        cat.create_table("t", orders_schema())
        cat.create_index("ix", "t", "id", IndexKind.BTREE)
        cat.insert_rows("t", [(7, 1, 1.0)])
        info = cat.table("t")
        assert len(info.index_on("id").structure.search(7)) == 1

    def test_hash_index_skips_nulls(self):
        _, cat = make_catalog()
        cat.create_table("t", orders_schema())
        cat.create_index("ix", "t", "cust", IndexKind.HASH)
        cat.insert_rows("t", [(1, None, 1.0), (2, 5, 2.0)])
        ix = cat.table("t").index_on("cust")
        assert ix.structure.num_entries == 1

    def test_btree_keeps_nulls(self):
        _, cat = make_catalog()
        cat.create_table("t", orders_schema())
        cat.create_index("ix", "t", "cust", IndexKind.BTREE)
        cat.insert_rows("t", [(1, None, 1.0)])
        assert cat.table("t").index_on("cust").structure.num_entries == 1


class TestIndexRules:
    def test_duplicate_index_rejected(self):
        _, cat = make_catalog()
        cat.create_table("t", orders_schema())
        cat.create_index("a", "t", "id")
        with pytest.raises(CatalogError):
            cat.create_index("b", "t", "id")

    def test_single_clustered_index(self):
        _, cat = make_catalog()
        cat.create_table("t", orders_schema())
        cat.create_index("a", "t", "id", clustered=True)
        with pytest.raises(CatalogError):
            cat.create_index("b", "t", "cust", clustered=True)

    def test_index_metadata(self):
        _, cat = make_catalog()
        cat.create_table("t", orders_schema())
        cat.insert_rows("t", [(i, i, float(i)) for i in range(300)])
        ix = cat.create_index("a", "t", "id", IndexKind.BTREE, clustered=True)
        assert ix.clustered
        assert ix.supports_range
        assert ix.height >= 1
        assert ix.leaf_pages >= 1
        hx = cat.create_index("h", "t", "cust", IndexKind.HASH)
        assert not hx.supports_range
        assert hx.height == 1


class TestAnalyze:
    def test_analyze_fills_stats(self):
        _, cat = make_catalog()
        cat.create_table("t", orders_schema())
        cat.insert_rows("t", [(i, i % 7, float(i)) for i in range(100)])
        stats = cat.analyze("t")
        assert stats.num_rows == 100
        assert stats.column("cust").num_distinct == 7
        assert cat.table("t").column_stats("id").max_value == 99

    def test_analyze_all(self):
        _, cat = make_catalog()
        cat.create_table("a", orders_schema())
        cat.create_table("b", schema_of("b", ("x", DataType.TEXT)))
        cat.insert_rows("a", [(1, 1, 1.0)])
        cat.insert_rows("b", [("hi",)])
        cat.analyze_all()
        assert cat.table("a").stats.num_rows == 1
        assert cat.table("b").stats.num_rows == 1

    def test_stats_none_before_analyze(self):
        _, cat = make_catalog()
        cat.create_table("t", orders_schema())
        assert cat.table("t").stats is None
        assert cat.table("t").column_stats("id") is None

    def test_analyze_refreshes_index_leaf_pages(self):
        _, cat = make_catalog()
        cat.create_table("t", orders_schema())
        ix = cat.create_index("a", "t", "id")
        before = ix.leaf_pages
        cat.insert_rows("t", [(i, i, float(i)) for i in range(2000)])
        cat.analyze("t")
        assert ix.leaf_pages > before
