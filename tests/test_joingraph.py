"""Tests for join-graph extraction and region substitution."""

import pytest

from repro.algebra import (
    JoinGraphError,
    build_plan,
    extract_join_graph,
    is_join_region,
    push_down_predicates,
    rebuild_region,
    transform_join_regions,
)
from repro.catalog import Catalog
from repro.sql import parse
from repro.storage import BufferPool, DiskManager
from repro.types import DataType, schema_of


@pytest.fixture
def catalog():
    cat = Catalog(BufferPool(DiskManager(), 50))
    for name in ("a", "b", "c"):
        cat.create_table(
            name, schema_of(name, ("id", DataType.INT), ("fk", DataType.INT))
        )
    return cat


def region_of(catalog, sql):
    plan = push_down_predicates(build_plan(parse(sql), catalog))
    regions = []
    transform_join_regions(plan, lambda r: regions.append(r) or r)
    assert len(regions) == 1
    return regions[0]


class TestExtraction:
    def test_single_relation(self, catalog):
        g = extract_join_graph(
            region_of(catalog, "SELECT id FROM a WHERE id > 3")
        )
        assert g.bindings() == ["a"]
        assert len(g.filter_conjuncts("a")) == 1
        assert not g.edges

    def test_two_way_join(self, catalog):
        g = extract_join_graph(
            region_of(catalog, "SELECT a.id FROM a, b WHERE a.fk = b.id")
        )
        assert set(g.bindings()) == {"a", "b"}
        assert g.edge_conjuncts("a", "b")
        assert g.neighbors("a") == {"b"}

    def test_chain_edges(self, catalog):
        g = extract_join_graph(
            region_of(
                catalog,
                "SELECT a.id FROM a, b, c "
                "WHERE a.fk = b.id AND b.fk = c.id",
            )
        )
        assert g.edge_conjuncts("a", "b") and g.edge_conjuncts("b", "c")
        assert not g.edge_conjuncts("a", "c")

    def test_filters_assigned_per_relation(self, catalog):
        g = extract_join_graph(
            region_of(
                catalog,
                "SELECT a.id FROM a, b "
                "WHERE a.fk = b.id AND a.id > 1 AND b.id < 9",
            )
        )
        assert len(g.filter_conjuncts("a")) == 1
        assert len(g.filter_conjuncts("b")) == 1

    def test_hyper_conjunct(self, catalog):
        g = extract_join_graph(
            region_of(
                catalog,
                "SELECT a.id FROM a, b, c "
                "WHERE a.fk = b.id AND b.fk = c.id "
                "AND a.id + b.id + c.id > 0",
            )
        )
        assert len(g.hyper) == 1
        tables, _ = g.hyper[0]
        assert tables == frozenset({"a", "b", "c"})

    def test_syntactic_order_preserved(self, catalog):
        g = extract_join_graph(
            region_of(catalog, "SELECT c.id FROM c, a, b WHERE c.fk = a.id AND a.fk = b.id")
        )
        assert g.bindings() == ["c", "a", "b"]

    def test_non_region_rejected(self, catalog):
        plan = build_plan(
            parse("SELECT COUNT(*) AS n FROM a GROUP BY fk"), catalog
        )
        with pytest.raises(JoinGraphError):
            extract_join_graph(plan)


class TestConnectivity:
    def test_connected_subsets(self, catalog):
        g = extract_join_graph(
            region_of(
                catalog,
                "SELECT a.id FROM a, b, c "
                "WHERE a.fk = b.id AND b.fk = c.id",
            )
        )
        assert g.is_connected_subset({"a", "b"})
        assert g.is_connected_subset({"a", "b", "c"})
        assert not g.is_connected_subset({"a", "c"})
        assert g.is_connected_subset({"a"})
        assert not g.is_connected_subset(set())
        assert not g.has_cross_product()

    def test_cross_product_detection(self, catalog):
        g = extract_join_graph(region_of(catalog, "SELECT a.id FROM a, b"))
        assert g.has_cross_product()

    def test_join_conjuncts_between_sets(self, catalog):
        g = extract_join_graph(
            region_of(
                catalog,
                "SELECT a.id FROM a, b, c "
                "WHERE a.fk = b.id AND b.fk = c.id",
            )
        )
        assert len(g.join_conjuncts_between({"a", "b"}, {"c"})) == 1
        assert len(g.join_conjuncts_between({"a"}, {"c"})) == 0


class TestRebuild:
    def test_rebuild_region_roundtrip(self, catalog):
        region = region_of(
            catalog,
            "SELECT a.id FROM a, b, c "
            "WHERE a.fk = b.id AND b.fk = c.id AND a.id > 0",
        )
        g = extract_join_graph(region)
        rebuilt = rebuild_region(g, ["c", "b", "a"])
        g2 = extract_join_graph(rebuilt)
        assert set(g2.bindings()) == set(g.bindings())
        assert g2.edges.keys() == g.edges.keys()

    def test_rebuild_places_hyper_once(self, catalog):
        region = region_of(
            catalog,
            "SELECT a.id FROM a, b, c WHERE a.fk = b.id AND b.fk = c.id "
            "AND a.id + b.id + c.id > 0",
        )
        g = extract_join_graph(region)
        rebuilt = rebuild_region(g, ["a", "b", "c"])
        g2 = extract_join_graph(rebuilt)
        assert len(g2.hyper) == 1

    def test_rebuild_empty_order_rejected(self, catalog):
        region = region_of(catalog, "SELECT id FROM a")
        g = extract_join_graph(region)
        with pytest.raises(JoinGraphError):
            rebuild_region(g, [])


class TestRegionDetection:
    def test_is_join_region(self, catalog):
        region = region_of(
            catalog, "SELECT a.id FROM a, b WHERE a.fk = b.id"
        )
        assert is_join_region(region)

    def test_project_is_not_region(self, catalog):
        plan = build_plan(parse("SELECT id FROM a"), catalog)
        assert not is_join_region(plan)
        assert is_join_region(plan.child)

    def test_transform_rebuilds_above_region(self, catalog):
        plan = build_plan(
            parse("SELECT COUNT(*) AS n FROM a, b WHERE a.fk = b.id"),
            catalog,
        )
        marker = []

        def swap(region):
            marker.append(region)
            return region

        out = transform_join_regions(plan, swap)
        assert len(marker) == 1
        assert type(out) is type(plan)
