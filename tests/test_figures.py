"""Tests for the ASCII figure renderer."""

import pytest

from repro.bench import ResultTable
from repro.bench.figures import chart_from_table, line_chart


class TestLineChart:
    def test_basic_render(self):
        text = line_chart(
            "demo",
            [1, 2, 3],
            {"up": [1.0, 2.0, 3.0], "down": [3.0, 2.0, 1.0]},
            width=30,
            height=8,
        )
        assert "demo" in text
        assert "A=up" in text and "B=down" in text
        assert "A" in text and "B" in text

    def test_log_scale(self):
        text = line_chart(
            "log demo",
            [1, 2, 3],
            {"s": [1.0, 100.0, 10000.0]},
            log_y=True,
        )
        assert "log scale" in text
        assert "10,000" in text

    def test_none_values_skipped(self):
        text = line_chart(
            "gaps", [1, 2, 3], {"s": [1.0, None, 3.0]}
        )
        assert text.count("A") >= 2  # two points + legend

    def test_overlapping_points_star(self):
        text = line_chart(
            "overlap", [1, 2], {"a": [5.0, 1.0], "b": [5.0, 2.0]},
            width=10, height=5,
        )
        assert "*" in text

    def test_single_point(self):
        text = line_chart("one", [5], {"s": [42.0]})
        assert "one" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart("bad", [], {})
        with pytest.raises(ValueError):
            line_chart("bad", [1], {"s": [None]})

    def test_axis_labels(self):
        text = line_chart(
            "lbl", [1, 2], {"s": [1.0, 2.0]},
            x_label="n", y_label="ms",
        )
        assert "ms" in text and text.rstrip().splitlines()[-2].endswith("n")


class TestChartFromTable:
    def test_extracts_series(self):
        table = ResultTable("t", ["x", "a", "b"])
        table.add(1, 10.0, 20.0)
        table.add(2, 30.0, 40.0)
        text = chart_from_table(table, "x", ["a", "b"])
        assert "A=a" in text and "B=b" in text

    def test_handles_none_cells(self):
        table = ResultTable("t", ["x", "a"])
        table.add(1, 10.0)
        table.add(2, None)
        text = chart_from_table(table, "x", ["a"])
        assert "A=a" in text
