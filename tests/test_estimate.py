"""Tests for selectivity/cardinality estimation against ground truth."""

import random

import pytest

from repro.algebra import build_plan, extract_join_graph, push_down_predicates, transform_join_regions
from repro.engine import Database
from repro.expr import (
    Between,
    InList,
    IsNull,
    Like,
    and_,
    col,
    eq,
    gt,
    lit,
    lt,
    or_,
)
from repro.optimizer import Estimator, EstimatorConfig, StatsResolver
from repro.sql import parse


@pytest.fixture(scope="module")
def db():
    db = Database(buffer_pages=200, work_mem_pages=8)
    db.execute(
        "CREATE TABLE t (id INT, uni INT, skew INT, txt TEXT, maybe INT)"
    )
    rng = random.Random(12)
    rows = []
    for i in range(4000):
        rows.append(
            (
                i,
                rng.randrange(100),
                0 if rng.random() < 0.5 else rng.randrange(1, 100),
                rng.choice(["alpha", "beta", "gamma"]) + str(rng.randrange(10)),
                None if rng.random() < 0.25 else rng.randrange(10),
            )
        )
    db.insert_rows("t", rows)
    db.execute("CREATE TABLE u (id INT, grp INT)")
    db.insert_rows("u", [(i, i % 10) for i in range(100)])
    db.analyze()
    return db


def estimator_for(db, sql, config=None):
    plan = push_down_predicates(build_plan(parse(sql), db.catalog))
    graphs = []
    transform_join_regions(plan, lambda r: graphs.append(extract_join_graph(r)) or r)
    graph = graphs[0]
    return Estimator(StatsResolver(graph), config), graph


def actual_fraction(db, where):
    total = db.query("SELECT COUNT(*) AS n FROM t").rows[0][0]
    hits = db.query(f"SELECT COUNT(*) AS n FROM t WHERE {where}").rows[0][0]
    return hits / total


def assert_close(est, actual, rel=0.35, abs_tol=0.02):
    assert est == pytest.approx(actual, rel=rel, abs=abs_tol), (est, actual)


class TestPointAndRange:
    def test_uniform_equality(self, db):
        est, _ = estimator_for(db, "SELECT * FROM t")
        sel = est.selectivity(eq(col("t.uni"), lit(7)))
        assert_close(sel, actual_fraction(db, "uni = 7"))

    def test_skewed_equality_with_mcv(self, db):
        est, _ = estimator_for(db, "SELECT * FROM t")
        sel = est.selectivity(eq(col("t.skew"), lit(0)))
        assert_close(sel, actual_fraction(db, "skew = 0"), rel=0.15)

    def test_skewed_equality_without_mcv_underestimates(self, db):
        config = EstimatorConfig(use_histograms=False, use_mcvs=False)
        est, _ = estimator_for(db, "SELECT * FROM t", config)
        sel = est.selectivity(eq(col("t.skew"), lit(0)))
        assert sel < 0.1  # 1/V(skew) ≈ 0.01, actual ≈ 0.5

    def test_range(self, db):
        est, _ = estimator_for(db, "SELECT * FROM t")
        sel = est.selectivity(lt(col("t.uni"), lit(30)))
        assert_close(sel, actual_fraction(db, "uni < 30"))

    def test_range_ge(self, db):
        est, _ = estimator_for(db, "SELECT * FROM t")
        sel = est.selectivity(gt(col("t.uni"), lit(89)))
        assert_close(sel, actual_fraction(db, "uni > 89"))

    def test_between(self, db):
        est, _ = estimator_for(db, "SELECT * FROM t")
        sel = est.selectivity(Between(col("t.uni"), lit(20), lit(39)))
        assert_close(sel, actual_fraction(db, "uni BETWEEN 20 AND 39"))

    def test_out_of_range_is_tiny(self, db):
        est, _ = estimator_for(db, "SELECT * FROM t")
        assert est.selectivity(gt(col("t.uni"), lit(1000))) < 0.02
        assert est.selectivity(lt(col("t.uni"), lit(-5))) < 0.02

    def test_ne(self, db):
        est, _ = estimator_for(db, "SELECT * FROM t")
        sel = est.selectivity(
            and_(lit(True), lit(True))
        )  # trivially true conjunct
        assert sel == 1.0


class TestSpecialPredicates:
    def test_null_fraction(self, db):
        est, _ = estimator_for(db, "SELECT * FROM t")
        sel = est.selectivity(IsNull(col("t.maybe")))
        assert_close(sel, actual_fraction(db, "maybe IS NULL"), rel=0.1)

    def test_not_null(self, db):
        est, _ = estimator_for(db, "SELECT * FROM t")
        sel = est.selectivity(IsNull(col("t.maybe"), negated=True))
        assert_close(sel, actual_fraction(db, "maybe IS NOT NULL"), rel=0.1)

    def test_in_list_sums(self, db):
        est, _ = estimator_for(db, "SELECT * FROM t")
        sel = est.selectivity(InList(col("t.uni"), (lit(1), lit(2), lit(3))))
        assert_close(sel, actual_fraction(db, "uni IN (1, 2, 3)"))

    def test_like_prefix(self, db):
        est, _ = estimator_for(db, "SELECT * FROM t")
        sel = est.selectivity(Like(col("t.txt"), "alpha%"))
        assert_close(
            sel, actual_fraction(db, "txt LIKE 'alpha%'"), rel=0.4, abs_tol=0.05
        )

    def test_and_multiplies(self, db):
        est, _ = estimator_for(db, "SELECT * FROM t")
        a = est.selectivity(lt(col("t.uni"), lit(50)))
        b = est.selectivity(eq(col("t.skew"), lit(0)))
        both = est.selectivity(
            and_(lt(col("t.uni"), lit(50)), eq(col("t.skew"), lit(0)))
        )
        assert both == pytest.approx(a * b, rel=1e-6)

    def test_or_inclusion_exclusion(self, db):
        est, _ = estimator_for(db, "SELECT * FROM t")
        a = est.selectivity(lt(col("t.uni"), lit(50)))
        b = est.selectivity(eq(col("t.uni"), lit(99)))
        either = est.selectivity(
            or_(lt(col("t.uni"), lit(50)), eq(col("t.uni"), lit(99)))
        )
        assert either == pytest.approx(a + b - a * b, rel=1e-6)

    def test_selectivity_clamped(self, db):
        est, _ = estimator_for(db, "SELECT * FROM t")
        s = est.selectivity(
            InList(col("t.uni"), tuple(lit(i) for i in range(100)))
        )
        assert 0.0 <= s <= 1.0


class TestJoins:
    def test_fk_join_cardinality(self, db):
        sql = "SELECT * FROM t, u WHERE t.maybe = u.grp"
        est, graph = estimator_for(db, sql)
        conj = graph.edge_conjuncts("t", "u")
        rows = est.join_rows(4000, 100, conj)
        actual = db.query(
            "SELECT COUNT(*) AS n FROM t, u WHERE t.maybe = u.grp"
        ).rows[0][0]
        assert rows == pytest.approx(actual, rel=0.35)

    def test_cross_product(self, db):
        est, _ = estimator_for(db, "SELECT * FROM t, u WHERE t.id = u.id")
        assert est.join_rows(10, 20, []) == 200

    def test_matches_per_probe(self, db):
        est, _ = estimator_for(db, "SELECT * FROM t, u WHERE t.maybe = u.grp")
        assert est.matches_per_probe("u.grp", 100) == pytest.approx(10.0)

    def test_distinct_values(self, db):
        est, _ = estimator_for(db, "SELECT * FROM t")
        assert est.distinct_values("t.uni") == 100
        assert est.distinct_values("t.unknown_col") is None


class TestScanRows:
    def test_scan_rows_with_filters(self, db):
        est, graph = estimator_for(
            db, "SELECT * FROM t WHERE uni < 10 AND skew = 0"
        )
        info = db.table("t")
        rows = est.scan_rows(info, graph.filter_conjuncts("t"))
        actual = db.query(
            "SELECT COUNT(*) AS n FROM t WHERE uni < 10 AND skew = 0"
        ).rows[0][0]
        # independence holds here, so this should be decent
        assert rows == pytest.approx(actual, rel=0.5)

    def test_unanalyzed_table_uses_defaults(self):
        db2 = Database(buffer_pages=32)
        db2.execute("CREATE TABLE fresh (x INT)")
        db2.insert_rows("fresh", [(i,) for i in range(100)])
        est, graph = estimator_for(db2, "SELECT * FROM fresh WHERE x = 5")
        sel = est.scan_selectivity(graph.filter_conjuncts("fresh"))
        assert sel == pytest.approx(0.1)  # the magic constant
