"""Property tests for the partitioning primitives under parallel
execution (hypothesis-driven).

Three properties carry the bit-identity argument for parallel plans:

* hash partitioning is an *exact multiset partition* — every row lands in
  exactly one worker, none are lost or duplicated;
* rows with *equal join keys co-partition* — including across numeric
  types (``1`` and ``1.0`` compare equal in SQL, so they must hash
  equal too) — which is what makes the co-partitioned hash join exact;
* the gather's k-way merge over per-worker sorted runs *preserves sort
  order* and equals the serial stable sort.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executor import page_range, partition_hash, partition_of
from repro.executor.sortutil import _KeyPart, SortKey

keys = st.one_of(
    st.none(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)

degrees = st.integers(min_value=1, max_value=8)


class TestHashPartitioning:
    @given(st.lists(keys), degrees)
    def test_exact_multiset_partition(self, values, degree):
        """Each value goes to exactly one partition; the partitions'
        union is the input multiset."""
        parts = [
            [v for v in values if partition_of(v, degree) == w]
            for w in range(degree)
        ]
        assert sum(len(p) for p in parts) == len(values)
        merged = Counter(map(repr, (v for part in parts for v in part)))
        assert merged == Counter(map(repr, values))

    @given(keys, degrees)
    def test_partition_in_range(self, value, degree):
        assert 0 <= partition_of(value, degree) < degree

    @given(keys)
    def test_degree_one_is_identity(self, value):
        assert partition_of(value, 1) == 0

    @given(st.integers(min_value=-(2**31), max_value=2**31), degrees)
    def test_equal_int_float_keys_co_partition(self, n, degree):
        """SQL equality is cross-type (1 = 1.0), so the hash must agree
        across int and integral float representations."""
        assert partition_hash(n) == partition_hash(float(n))
        assert partition_of(n, degree) == partition_of(float(n), degree)

    @given(keys)
    def test_hash_is_deterministic(self, value):
        assert partition_hash(value) == partition_hash(value)

    @given(degrees)
    def test_nulls_land_in_worker_zero(self, degree):
        assert partition_of(None, degree) == 0


class TestPageRanges:
    @given(st.integers(min_value=0, max_value=10_000), degrees)
    def test_slices_tile_the_heap(self, num_pages, degree):
        """Worker page slices are contiguous, disjoint, and cover every
        page in order — concatenation is the serial scan."""
        covered = []
        previous_end = 0
        for worker in range(degree):
            first, last = page_range(num_pages, worker, degree)
            assert first == previous_end
            previous_end = last
            covered.extend(range(first, last))
        assert covered == list(range(num_pages))

    @given(st.integers(min_value=0, max_value=10_000), degrees)
    def test_slices_are_balanced(self, num_pages, degree):
        sizes = [
            last - first
            for first, last in (
                page_range(num_pages, w, degree) for w in range(degree)
            )
        ]
        assert max(sizes) - min(sizes) <= 1


rows = st.lists(
    st.tuples(
        st.integers(min_value=-100, max_value=100),
        st.text(max_size=4),
    ),
    max_size=60,
)


class TestGatherMerge:
    @given(rows, degrees)
    def test_merge_equals_serial_stable_sort(self, data, degree):
        """Per-worker stable sort + k-way merge keyed on (sort key,
        worker index, row index) == one serial stable sort.  This is
        exactly the decoration GatherOp._merge_on_keys applies."""
        import heapq

        def key(row):
            return SortKey([_KeyPart(row[0], True)])

        serial = sorted(data, key=key)
        workers = [
            sorted(
                [r for i, r in enumerate(data) if i % degree == w], key=key
            )
            for w in range(degree)
        ]
        streams = [
            [(key(r), w, i, r) for i, r in enumerate(run)]
            for w, run in enumerate(workers)
        ]
        merged = [entry[3] for entry in heapq.merge(*streams)]
        # the merge is ordered like the serial sort on the key column;
        # the full row lists are permutations within equal keys
        assert [r[0] for r in merged] == [r[0] for r in serial]
        assert Counter(merged) == Counter(serial)

    @given(rows, degrees)
    @settings(max_examples=50)
    def test_contiguous_split_merge_is_bit_identical(self, data, degree):
        """When workers take *contiguous slices* (the page-range split),
        the worker-index tie-break reproduces the serial stable sort
        bit for bit — the stronger property parallel ORDER BY relies on."""
        import heapq

        def key(row):
            return SortKey([_KeyPart(row[0], True)])

        serial = sorted(data, key=key)
        n = len(data)
        slices = [
            data[w * n // degree : (w + 1) * n // degree]
            for w in range(degree)
        ]
        streams = [
            [(key(r), w, i, r) for i, r in enumerate(sorted(run, key=key))]
            for w, run in enumerate(slices)
        ]
        merged = [entry[3] for entry in heapq.merge(*streams)]
        assert merged == serial
