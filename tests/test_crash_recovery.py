"""Crash recovery: WAL replay, torn tails, checkpoints, DDL replay, and
subprocess kill-point sweeps.

Two layers of testing:

* in-process — open a ``data_dir`` database, write, *abandon it without
  close()* (the WAL is durable but no shutdown checkpoint is taken), and
  reopen: recovery must replay exactly the committed transactions.
* out-of-process — ``repro.qa.faults`` runs the seeded workload in a
  subprocess armed with a failpoint (``REPRO_FAILPOINTS=site=N:mode``),
  kills it mid-write, recovers, and checks the committed-prefix oracle.
  Tier-1 covers a smoke slice of kill points; the full sweep (every hit
  of every site × mode) runs under ``-m slow``.
"""

import os

import pytest

from repro import Database
from repro.qa import faults
from repro.wal import WAL_FILE, read_wal


def fresh(data_dir):
    db = Database(data_dir=data_dir)
    if not db.catalog.has_table("t"):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    return db


def rows_of(db):
    return db.query("SELECT id, v FROM t ORDER BY id").rows


class TestReplay:
    def test_commits_replayed_without_close(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = fresh(data_dir)
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        db.execute("UPDATE t SET v = 21 WHERE id = 2")
        db.execute("DELETE FROM t WHERE id = 1")
        # abandon without close(): recovery must rebuild from WAL alone
        db2 = Database(data_dir=data_dir)
        assert rows_of(db2) == [(2, 21)]
        report = db2.last_recovery
        assert not report.checkpoint_found
        assert report.committed_txns >= 4  # CREATE + 3 DML autocommits
        assert report.uncommitted_txns == 0
        db2.close()

    def test_open_explicit_txn_discarded(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = fresh(data_dir)
        db.execute("INSERT INTO t VALUES (1, 10)")
        s = db.create_session()
        s.execute("BEGIN")
        s.execute("INSERT INTO t VALUES (2, 20)")
        db.txn.writer.flush_all()  # records durable, COMMIT absent
        db2 = Database(data_dir=data_dir)
        assert rows_of(db2) == [(1, 10)]
        assert db2.last_recovery.uncommitted_txns == 1
        db2.close()

    def test_torn_tail_discarded(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = fresh(data_dir)
        db.execute("INSERT INTO t VALUES (1, 10)")
        db.execute("INSERT INTO t VALUES (2, 20)")
        db.txn.writer.flush_all()
        wal_path = os.path.join(data_dir, WAL_FILE)
        size = os.path.getsize(wal_path)
        with open(wal_path, "r+b") as f:
            f.truncate(size - 3)  # tear the final frame
        db2 = Database(data_dir=data_dir)
        report = db2.last_recovery
        assert report.torn_bytes > 0
        # the torn record was part of txn 2's body-or-commit: that txn
        # must be wholly absent, the first wholly present
        assert rows_of(db2) in ([(1, 10)], [(1, 10), (2, 20)])
        assert rows_of(db2) == [(1, 10)]
        db2.close()

    def test_checkpoint_truncates_wal_and_recovers(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = fresh(data_dir)
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
        before = os.path.getsize(os.path.join(data_dir, WAL_FILE))
        result = db.execute("CHECKPOINT")
        assert result.columns == ["checkpoint_lsn", "redo_lsn", "active_txns"]
        assert result.rows[0][2] == 0  # nothing in flight here
        after = os.path.getsize(os.path.join(data_dir, WAL_FILE))
        assert after < before
        db.execute("INSERT INTO t VALUES (4, 40)")
        db2 = Database(data_dir=data_dir)
        assert db2.last_recovery.checkpoint_found
        assert rows_of(db2) == [(1, 10), (2, 20), (3, 30), (4, 40)]
        db2.close()

    def test_lsns_filtered_by_checkpoint(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = fresh(data_dir)
        db.execute("INSERT INTO t VALUES (1, 10)")
        db.execute("CHECKPOINT")
        db.execute("INSERT INTO t VALUES (2, 20)")
        db.txn.writer.flush_all()
        records, _, torn = read_wal(os.path.join(data_dir, WAL_FILE))
        assert not torn
        db2 = Database(data_dir=data_dir)
        # only the post-checkpoint records replay
        assert db2.last_recovery.records_scanned == len(records)
        assert rows_of(db2) == [(1, 10), (2, 20)]
        db2.close()

    def test_ddl_index_and_analyze_replayed(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = fresh(data_dir)
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        db.execute("CREATE INDEX idx_v ON t (v)")
        db.execute("ANALYZE t")
        db.execute("CREATE VIEW v_t AS SELECT id FROM t WHERE v > 15")
        db2 = Database(data_dir=data_dir)
        report = db2.last_recovery
        assert report.indexes_rebuilt >= 2  # pk + idx_v
        assert report.tables_analyzed >= 1
        info = db2.catalog.table("t")
        assert any(ix.name == "idx_v" for ix in info.indexes.values())
        assert info.stats is not None
        assert db2.query("SELECT id FROM v_t").rows == [(2,)]
        assert db2.query("SELECT id FROM t WHERE v = 20").rows == [(2,)]
        db2.close()

    def test_drop_table_replayed(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = fresh(data_dir)
        db.execute("INSERT INTO t VALUES (1, 10)")
        db.execute("CREATE TABLE u (a INT)")
        db.execute("DROP TABLE u")
        db2 = Database(data_dir=data_dir)
        assert db2.catalog.has_table("t")
        assert not db2.catalog.has_table("u")
        db2.close()

    def test_fuzzy_checkpoint_does_not_block_open_txn(self, tmp_path):
        """CHECKPOINT runs to completion while a transaction holds an
        uncommitted write — no quiesce, no LockTimeout — and the
        uncommitted rows never reach the snapshot."""
        data_dir = str(tmp_path / "db")
        db = fresh(data_dir)
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        s = db.create_session()
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = -1 WHERE id = 1")
        result = db.execute("CHECKPOINT")
        last_lsn, redo_lsn, active = result.rows[0]
        assert active == 1  # the open txn is in the ATT
        assert redo_lsn <= last_lsn  # its dirty page forces early redo
        # crash here: the uncommitted update must not survive
        db.txn.writer.close()
        db2 = Database(data_dir=data_dir)
        assert rows_of(db2) == [(1, 10), (2, 20)]
        db2.close()

    def test_commit_after_fuzzy_checkpoint_survives(self, tmp_path):
        """A transaction open *across* the checkpoint that commits
        afterwards recovers fully: its pages were skipped by the flush
        pass (stale in the snapshot) and rebuilt by redo from redo_lsn."""
        data_dir = str(tmp_path / "db")
        db = fresh(data_dir)
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        s = db.create_session()
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 11 WHERE id = 1")
        db.execute("CHECKPOINT")
        s.execute("INSERT INTO t VALUES (3, 30)")
        s.execute("COMMIT")
        db.txn.writer.flush_all()
        db2 = Database(data_dir=data_dir)
        assert db2.last_recovery.checkpoint_found
        assert rows_of(db2) == [(1, 11), (2, 20), (3, 30)]
        db2.close()

    def test_close_then_reopen_is_clean(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = fresh(data_dir)
        db.execute("INSERT INTO t VALUES (1, 10)")
        db.close()
        db2 = Database(data_dir=data_dir)
        report = db2.last_recovery
        assert report.checkpoint_found
        assert report.records_applied == 0  # shutdown checkpoint: empty WAL
        assert rows_of(db2) == [(1, 10)]
        db2.close()


class TestWorkloadOracle:
    def test_reference_rows_replays_prefix(self):
        full = faults.reference_rows(seed=3, committed=10)
        partial = faults.reference_rows(seed=3, committed=5)
        assert isinstance(full, list)
        assert full != partial or len(full) == len(partial)

    def test_clean_run_matches_reference(self, tmp_path):
        data_dir = str(tmp_path / "db")
        acks = str(tmp_path / "acks.txt")
        faults.run_workload(data_dir, seed=5, txns=8, acks_path=acks)
        summary = faults.verify_recovery(data_dir, 5, 8, acks)
        assert summary["committed"] == 8
        assert summary["acked"] == 8

    def test_torn_ack_line_ignored(self, tmp_path):
        acks = tmp_path / "acks.txt"
        acks.write_bytes(b"1\n2\n3")  # final line torn (no newline)
        assert faults.read_acks(str(acks)) == [1, 2]


class TestCrashPoints:
    """Subprocess kill-point smoke: a handful of points per site."""

    SEED = 11
    TXNS = 9

    @pytest.fixture(scope="class")
    def hit_counts(self, tmp_path_factory):
        base = str(tmp_path_factory.mktemp("crash-count"))
        return faults.count_workload_hits(base, self.SEED, self.TXNS)

    def test_all_sites_fire(self, hit_counts):
        assert hit_counts.get("wal.append", 0) > 0
        assert hit_counts.get("wal.fsync", 0) > 0
        assert hit_counts.get("checkpoint.page", 0) > 0
        # the fuzzy-checkpoint sites fire once per CHECKPOINT (flush:
        # once per committed-dirty page written back)
        assert hit_counts.get("checkpoint.begin", 0) > 0
        assert hit_counts.get("checkpoint.flush", 0) > 0
        assert hit_counts.get("checkpoint.end", 0) > 0

    def test_crash_smoke(self, hit_counts, tmp_path):
        points = faults.sweep_points(hit_counts, max_points=1)
        assert points, "no kill points derived from counting run"
        killed = 0
        for site, n, mode in points:
            summary = faults.run_crash_point(
                str(tmp_path), self.SEED, self.TXNS, site, n, mode
            )
            assert summary["committed"] >= summary["acked"]
            if not summary["skipped"]:
                killed += 1
        assert killed > 0, "no armed failpoint actually fired"

    def test_kill_mid_commit_keeps_prefix(self, hit_counts, tmp_path):
        # a mid-run fsync sits inside some transaction's COMMIT; killing
        # right before it must lose that transaction and keep the prefix
        n = max(1, hit_counts["wal.fsync"] // 2)
        summary = faults.run_crash_point(
            str(tmp_path), self.SEED, self.TXNS, "wal.fsync", n, "before"
        )
        assert not summary["skipped"]
        assert summary["committed"] < self.TXNS


@pytest.mark.slow
class TestFullSweep:
    def test_every_kill_point(self, tmp_path):
        results = faults.run_crash_sweep(
            str(tmp_path), seed=1, txns=12, max_points=None
        )
        assert results
        fired = [r for r in results if not r["skipped"]]
        assert fired, "sweep never killed the workload"
