"""End-to-end request tracing: span identity, propagated trace contexts,
WAL/lock/MVCC spans, forked-worker span grafting, Chrome trace export,
latency histograms, and the sys_stat_traces/sys_stat_locks tables.

The acceptance bar this file holds the engine to: a statement executed
through the server yields ONE connected span tree — protocol decode →
lock wait → execution (worker spans included) → wal.append → wal.fsync →
commit — exportable as structurally valid Chrome trace-event JSON, and
the number of ``wal.fsync`` spans reconciles exactly with the WAL
writer's ``fsyncs`` counter.
"""

import json

import pytest

from repro import Database
from repro.obs import (
    RequestTrace,
    Span,
    TraceRing,
    Tracer,
    activate_tracer,
    active_tracer,
    chrome_trace_events,
    export_chrome_trace,
    new_trace_id,
    trace_span,
    validate_chrome_trace,
)
from repro.optimizer import PlannerOptions
from repro.server import Client, DatabaseServer


def assert_connected(root):
    """Every non-root span's parent_id resolves inside the tree, and the
    root is the only span without a parent."""
    ids = {s.span_id for s in root.walk()}
    for span in root.walk():
        if span is root:
            continue
        assert span.parent_id, f"span {span.name!r} has no parent_id"
        assert span.parent_id in ids, (
            f"orphan span {span.name!r}: parent {span.parent_id} "
            "not in tree"
        )
    assert len(ids) == sum(1 for _ in root.walk()), "duplicate span ids"


# -- span identity and serialization ------------------------------------------


class TestSpanIdentity:
    def test_span_ids_assigned_and_linked(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        root = tracer.root
        assert root.span_id == 1
        b, d = root.children
        assert b.parent_id == root.span_id
        assert d.parent_id == root.span_id
        assert b.children[0].parent_id == b.span_id
        assert_connected(root)

    def test_ids_survive_dict_round_trip(self):
        tracer = Tracer(trace_id="feedbeeffeedbeef")
        with tracer.span("root"):
            with tracer.span("child") as sp:
                sp.set_attr("table", "t")
                sp.add("wait_ms", 1.5)
        clone = Span.from_dict(tracer.root.to_dict())
        assert clone.span_id == tracer.root.span_id
        child = clone.children[0]
        assert child.parent_id == clone.span_id
        assert child.attrs == {"table": "t"}
        assert child.counters == {"wait_ms": 1.5}

    def test_merged_siblings_accumulate(self):
        tracer = Tracer()
        with tracer.span("root"):
            for _ in range(50):
                with tracer.span("wal.append", merge=True):
                    pass
        root = tracer.root
        appends = root.find_all("wal.append")
        assert len(appends) == 1
        assert appends[0].counters["count"] == 50.0

    def test_trace_id_generated_and_propagated(self):
        tracer = Tracer()
        assert len(tracer.trace_id) == 16
        explicit = Tracer(trace_id="cafe0000cafe0000")
        assert explicit.trace_id == "cafe0000cafe0000"
        assert new_trace_id() != new_trace_id()

    def test_thread_local_activation(self):
        assert active_tracer() is None
        tracer = Tracer()
        with activate_tracer(tracer):
            assert active_tracer() is tracer
            with tracer.span("outer"):
                with trace_span("inner") as sp:
                    sp.add("x", 2.0)
        assert active_tracer() is None
        assert tracer.root.find("inner").counters == {"x": 2.0}

    def test_trace_span_without_tracer_is_noop(self):
        with trace_span("orphan") as sp:
            sp.add("x")
            sp.set_attr("k", "v")  # must not raise

    def test_graft_links_external_subtree(self):
        tracer = Tracer()
        foreign = Tracer(trace_id=tracer.trace_id, id_base=1_000_000)
        with foreign.span("worker"):
            with foreign.span("scan"):
                pass
        with tracer.span("request"):
            tracer.graft(foreign.root)
        root = tracer.root
        worker = root.find("worker")
        assert worker.parent_id == root.span_id
        assert worker.span_id == 1_000_001
        assert_connected(root)

    def test_record_span_clamps_negative_start(self):
        tracer = Tracer()
        with tracer.span("request"):
            sp = tracer.record_span("protocol.decode", 1e6)
        assert sp.start_ms >= 0.0


# -- engine span trees ---------------------------------------------------------


@pytest.fixture()
def db():
    return Database()


class TestEngineSpans:
    def test_dml_trace_tree(self, db):
        db.execute("CREATE TABLE t (id INT, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        root = db.last_trace
        lock = root.find("lock.acquire")
        assert lock is not None
        assert lock.attrs["table"] == "t"
        assert lock.attrs["mode"] == "exclusive"
        execute = root.find("execute")
        assert execute.counters["rows_modified"] == 2.0
        assert root.find("txn.commit") is not None
        assert_connected(root)

    def test_select_has_mvcc_spans(self, db):
        db.execute("CREATE TABLE t (id INT)")
        db.insert_rows("t", [(i,) for i in range(10)])
        db.query("SELECT * FROM t")
        root = db.last_trace
        acquire = root.find("mvcc.acquire")
        assert acquire is not None
        assert acquire.attrs["scope"] == "statement"
        assert root.find("mvcc.release") is not None
        assert_connected(root)

    def test_explicit_txn_commit_traced(self, db):
        db.execute("CREATE TABLE t (id INT)")
        session = db.create_session()
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1)")
        session.execute("COMMIT")
        root = db.last_trace
        commit = root.find("txn.commit")
        assert commit is not None
        assert commit.counters["txn_id"] > 0
        session.close()

    def test_checkpoint_phases_traced(self, tmp_path):
        db = Database(data_dir=str(tmp_path))
        db.execute("CREATE TABLE t (id INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("CHECKPOINT")
        root = db.last_trace
        for phase in (
            "checkpoint.begin",
            "checkpoint.flush",
            "checkpoint.end",
        ):
            assert root.find(phase) is not None, phase
        assert_connected(root)

    def test_wal_fsync_spans_reconcile_with_counter(self, tmp_path):
        """Exactly one ``wal.fsync`` span per physical fsync: the span
        count summed over traces equals the WAL writer's ``fsyncs``
        counter delta (skip paths — already-durable LSNs under group
        commit — record nothing)."""
        db = Database(data_dir=str(tmp_path))
        db.execute("CREATE TABLE t (id INT, v TEXT)")
        db.execute("INSERT INTO t VALUES (0, 'seed')")
        wal = db.txn.writer
        base = wal.fsyncs
        span_fsyncs = 0
        for i in range(8):
            db.execute(f"INSERT INTO t VALUES ({i + 1}, 'x')")
            span_fsyncs += len(db.last_trace.find_all("wal.fsync"))
        assert span_fsyncs == wal.fsyncs - base

    def test_wal_append_spans_merge(self, tmp_path):
        db = Database(data_dir=str(tmp_path))
        db.execute("CREATE TABLE t (id INT)")
        values = ", ".join(f"({i})" for i in range(100))
        db.execute(f"INSERT INTO t VALUES {values}")
        root = db.last_trace
        appends = root.find_all("wal.append")
        # merged: bounded span count no matter how many records
        assert 1 <= len(appends) <= 3
        total = sum(s.counters.get("count", 1.0) for s in appends)
        assert total >= 100

    def test_trace_off_records_nothing(self):
        from repro.obs import ObsConfig

        db = Database(obs=ObsConfig.off())
        db.execute("CREATE TABLE t (id INT)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.last_trace is None
        assert db.last_request_trace is None


# -- forked worker span propagation -------------------------------------------


class TestWorkerSpans:
    def test_worker_spans_graft_under_parent(self):
        db = Database()
        db.execute("CREATE TABLE big (id INT, grp INT)")
        db.insert_rows("big", [(i, i % 7) for i in range(4000)])
        db.options = PlannerOptions(parallel_degree=3, force_parallel=True)
        result = db.execute(
            "SELECT grp, COUNT(*) FROM big GROUP BY grp ORDER BY grp"
        )
        assert result.rowcount == 7
        root = db.last_trace
        workers = root.find_all("worker")
        assert len(workers) == 3
        assert sorted(w.attrs["worker"] for w in workers) == ["0", "1", "2"]
        for w in workers:
            assert w.counters["rows"] > 0
            # worker ids live in their own namespace, still linked
            assert w.span_id >= 1_000_000
        assert_connected(root)

    def test_worker_spans_on_parent_timeline(self):
        db = Database()
        db.execute("CREATE TABLE big (id INT, grp INT)")
        db.insert_rows("big", [(i, i % 5) for i in range(4000)])
        db.options = PlannerOptions(parallel_degree=2, force_parallel=True)
        db.execute("SELECT grp, COUNT(*) FROM big GROUP BY grp")
        root = db.last_trace
        for w in root.find_all("worker"):
            # pinned t0 puts worker offsets inside the request interval
            assert 0.0 <= w.start_ms <= root.duration_ms + 1.0

    def test_untraced_parallel_query_ships_no_spans(self):
        from repro.obs import ObsConfig

        db = Database(obs=ObsConfig.off())
        db.execute("CREATE TABLE big (id INT, grp INT)")
        db.insert_rows("big", [(i, i % 3) for i in range(3000)])
        db.options = PlannerOptions(parallel_degree=2, force_parallel=True)
        result = db.execute("SELECT grp, COUNT(*) FROM big GROUP BY grp")
        assert result.rowcount == 3
        assert db.last_trace is None


# -- the server path -----------------------------------------------------------


@pytest.fixture()
def served():
    db = Database()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    with DatabaseServer(db) as server:
        yield db, server


def connect(server):
    host, port = server.address
    return Client(host, port)


class TestServerTracing:
    def test_response_carries_trace_id(self, served):
        _db, server = served
        with connect(server) as client:
            result = client.execute("SELECT * FROM t")
            assert len(result.trace_id) == 16
            assert result.trace is None  # not asked for

    def test_client_trace_id_propagates(self, served):
        db, server = served
        with connect(server) as client:
            result = client.execute(
                "SELECT * FROM t", trace_id="cafe0000cafe0000"
            )
        assert result.trace_id == "cafe0000cafe0000"
        assert db.last_request_trace.trace_id == "cafe0000cafe0000"

    def test_request_tree_is_connected_end_to_end(self, served):
        db, server = served
        with connect(server) as client:
            result = client.execute(
                "UPDATE t SET v = 99 WHERE id = 2", trace=True
            )
        tree = Span.from_dict(result.trace)
        assert tree.name == "request"
        for name in (
            "protocol.decode",
            "session.dispatch",
            "lock.acquire",
            "execute",
            "txn.commit",
        ):
            assert tree.find(name) is not None, name
        assert_connected(tree)
        # the full server-side tree additionally contains the encode span
        full = db.last_request_trace.root
        assert full.find("protocol.encode") is not None
        assert_connected(full)

    def test_server_trace_attributed_to_session(self, served):
        db, server = served
        with connect(server) as client:
            client.execute("SELECT * FROM t")
            trace = db.last_request_trace
            assert trace.session_id > 0
            assert trace.root.attrs["session"] == str(trace.session_id)

    def test_chrome_export_of_server_request_validates(self, tmp_path):
        db = Database(data_dir=str(tmp_path / "data"))
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        with DatabaseServer(db) as server:
            with connect(server) as client:
                client.execute("INSERT INTO t VALUES (4, 40)")
        path = tmp_path / "trace.json"
        text = db.last_trace_export(str(path))
        obj = json.loads(path.read_text())
        assert json.loads(text) == obj
        assert validate_chrome_trace(obj) == []
        names = [e["name"] for e in obj["traceEvents"]]
        for name in ("request", "wal.append", "wal.fsync", "txn.commit"):
            assert name in names, name

    def test_untraced_server_omits_trace_fields(self):
        from repro.obs import ObsConfig

        db = Database(obs=ObsConfig.off())
        db.execute("CREATE TABLE t (id INT)")
        with DatabaseServer(db) as server:
            with connect(server) as client:
                result = client.execute("SELECT * FROM t", trace=True)
                assert result.trace_id == ""
                assert result.trace is None


# -- Chrome trace-event export -------------------------------------------------


class TestChromeExport:
    def _traced(self, sql_rows=200):
        db = Database()
        db.execute("CREATE TABLE big (id INT, grp INT)")
        db.insert_rows("big", [(i, i % 4) for i in range(4000)])
        db.options = PlannerOptions(parallel_degree=2, force_parallel=True)
        db.execute("SELECT grp, COUNT(*) FROM big GROUP BY grp")
        return db

    def test_workers_get_their_own_track(self):
        db = self._traced()
        trace = RequestTrace("abc", "q", db.last_trace)
        obj = chrome_trace_events(trace)
        assert validate_chrome_trace(obj) == []
        tids = {
            e["tid"] for e in obj["traceEvents"] if e["name"] == "worker"
        }
        assert tids == {2, 3}

    def test_metadata_and_root_args(self):
        tracer = Tracer(trace_id="1234567812345678")
        with tracer.span("request"):
            pass
        trace = RequestTrace("1234567812345678", "SELECT 1", tracer.root)
        obj = chrome_trace_events(trace, process_name="mydb")
        meta = obj["traceEvents"][0]
        assert meta["ph"] == "M"
        assert meta["args"]["name"] == "mydb"
        root_ev = obj["traceEvents"][1]
        assert root_ev["args"]["trace_id"] == "1234567812345678"
        assert root_ev["args"]["sql"] == "SELECT 1"

    def test_validator_flags_malformed(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        bad = {"traceEvents": [{"ph": "Z", "pid": 1, "tid": 1}]}
        problems = validate_chrome_trace(bad)
        assert any("unknown phase" in p for p in problems)
        negative = {
            "traceEvents": [
                {"ph": "X", "pid": 1, "tid": 1, "name": "x", "ts": -1, "dur": 0}
            ]
        }
        assert any(
            "negative" in p for p in validate_chrome_trace(negative)
        )

    def test_export_helper_writes_file(self, tmp_path):
        tracer = Tracer()
        with tracer.span("request"):
            pass
        path = tmp_path / "out.json"
        export_chrome_trace(tracer.root, str(path))
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_export_without_capture_raises(self):
        from repro.engine.database import EngineError

        db = Database()
        with pytest.raises(EngineError):
            db.last_trace_export()


# -- slow-trace ring + system tables -------------------------------------------


class TestTraceRingAndSystables:
    def test_ring_bounded(self):
        ring = TraceRing(capacity=3)
        for i in range(10):
            tracer = Tracer()
            with tracer.span("request"):
                pass
            ring.record(RequestTrace(f"t{i}", "q", tracer.root))
        assert ring.captured == 10
        assert [t.trace_id for t in ring.entries()] == ["t7", "t8", "t9"]
        assert ring.last().trace_id == "t9"

    def test_slow_traces_gated_on_auto_explain(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT)")
        db.execute("INSERT INTO t VALUES (1)")
        assert len(db.traces.entries()) == 0  # auto_explain off
        db.auto_explain.configure(enabled=True, threshold_ms=0.0)
        db.execute("INSERT INTO t VALUES (2)")
        entries = db.traces.entries()
        assert len(entries) == 1
        assert entries[0].sql.startswith("INSERT")

    def test_sys_stat_traces_queryable(self):
        db = Database()
        db.auto_explain.configure(enabled=True, threshold_ms=0.0)
        db.execute("CREATE TABLE t (id INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        result = db.query(
            "SELECT trace_id, sql, duration_ms, spans, top_span "
            "FROM sys_stat_traces"
        )
        assert result.rowcount >= 1
        row = result.rows[-1]
        assert len(row[0]) == 16
        assert row[3] > 1  # more than just the root span
        assert row[4] != ""  # slowest child named

    def test_sys_stat_locks_accumulates(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("INSERT INTO t VALUES (2)")
        result = db.query(
            "SELECT table_name, holder_txn, acquisitions, contended, "
            "wait_ms FROM sys_stat_locks"
        )
        locks = {row[0]: row for row in result.rows}
        assert "t" in locks
        assert locks["t"][1] == 0  # nothing held between statements
        assert locks["t"][2] >= 2
        assert locks["t"][4] >= 0.0

    def test_sys_stat_locks_shows_holder(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT)")
        session = db.create_session()
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1)")
        result = db.query("SELECT holder_txn FROM sys_stat_locks")
        assert result.rows[0][0] > 0
        session.execute("ROLLBACK")
        session.close()


# -- DML in the query log + latency quantiles ----------------------------------


class TestDmlAccounting:
    def test_dml_recorded_in_query_log(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT, v INT)")
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        db.execute("UPDATE t SET v = 0 WHERE id = 1")
        db.execute("DELETE FROM t WHERE id = 2")
        kinds = [r.kind for r in db.query_log.entries()]
        assert kinds == ["insert", "update", "delete"]
        insert = db.query_log.entries()[0]
        assert insert.actual_rows == 2
        assert insert.execution_ms > 0
        assert insert.session_id > 0

    def test_dml_attributed_to_explicit_txn(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT)")
        session = db.create_session()
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1)")
        record = db.query_log.entries()[-1]
        assert record.txn_id > 0
        assert record.session_id == session.id
        session.execute("COMMIT")
        session.close()

    def test_dml_visible_in_sys_stat_statements(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT)")
        for i in range(3):
            db.execute(f"INSERT INTO t VALUES ({i})")
        result = db.query(
            "SELECT statement, calls FROM sys_stat_statements"
        )
        by_stmt = {row[0]: row[1] for row in result.rows}
        insert_calls = [
            calls
            for stmt, calls in by_stmt.items()
            if stmt.startswith("insert")  # statements are normalized
        ]
        assert insert_calls == [3]

    def test_latency_quantiles_in_prom(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT)")
        for i in range(5):
            db.execute(f"INSERT INTO t VALUES ({i})")
        db.query("SELECT COUNT(*) FROM t")
        text = db.metrics_snapshot(format="prom")
        lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_statement_latency_ms{")
        ]
        assert lines, text
        for q in ("0.5", "0.95", "0.99"):
            assert any(f'quantile="{q}"' in line for line in lines)
        # byte-stable: scrapers diff on text
        assert text == db.metrics_snapshot(format="prom")

    def test_latency_store_bounds_fingerprints(self):
        from repro.obs import StatementLatency

        store = StatementLatency(max_fingerprints=2)
        store.observe("a", 1.0)
        store.observe("b", 2.0)
        store.observe("c", 3.0)  # dropped
        assert len(store) == 2
        assert store.dropped == 1
        fps = {fp for fp, _q, _v in store.quantiles()}
        assert fps == {"a", "b"}

    def test_json_snapshot_has_trace_section(self):
        db = Database()
        db.auto_explain.configure(enabled=True, threshold_ms=0.0)
        db.execute("CREATE TABLE t (id INT)")
        db.execute("INSERT INTO t VALUES (1)")
        snap = db.metrics_snapshot()
        # CREATE TABLE and the INSERT both crossed the 0 ms threshold
        assert snap["traces"]["captured_total"] == 2
        assert snap["traces"]["last_trace_id"]
        assert snap["statement_latency"]
