"""Transaction semantics: BEGIN/COMMIT/ROLLBACK, rollback fidelity,
session lifecycle, lock timeouts, and durable commit/rollback.

Rollback here is *logical undo* (repro.wal.manager): every heap mutation
records a compensating op, and ROLLBACK replays them in reverse —
restoring rows at stable RIDs, secondary indexes, and zone maps.  These
tests pin the user-visible contract; the crash-side contract lives in
test_crash_recovery.py.
"""

import pytest

from repro import Database, EngineError
from repro.wal import LockTimeout


def make_db(**kwargs):
    db = Database(**kwargs)
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT, s TEXT)")
    db.execute(
        "INSERT INTO t VALUES "
        + ", ".join(f"({i}, {i * 10}, 'r{i}')" for i in range(1, 6))
    )
    return db


def all_rows(db_or_session):
    return db_or_session.query("SELECT id, v, s FROM t ORDER BY id").rows


BASELINE = [(i, i * 10, f"r{i}") for i in range(1, 6)]


class TestExplicitTransactions:
    def test_commit_publishes_changes(self):
        db = make_db()
        with db.create_session() as s:
            s.execute("BEGIN")
            assert s.in_transaction
            s.execute("INSERT INTO t VALUES (6, 60, 'r6')")
            s.execute("UPDATE t SET v = 999 WHERE id = 1")
            s.execute("COMMIT")
            assert not s.in_transaction
        rows = all_rows(db)
        assert (6, 60, "r6") in rows
        assert rows[0] == (1, 999, "r1")

    def test_rollback_restores_rows(self):
        db = make_db()
        with db.create_session() as s:
            s.execute("BEGIN")
            s.execute("INSERT INTO t VALUES (6, 60, 'r6')")
            s.execute("UPDATE t SET v = -1, s = 'gone' WHERE id <= 3")
            s.execute("DELETE FROM t WHERE id = 5")
            s.execute("ROLLBACK")
            assert not s.in_transaction
        assert all_rows(db) == BASELINE

    def test_own_changes_visible_before_commit(self):
        db = make_db()
        with db.create_session() as s:
            s.execute("BEGIN")
            s.execute("DELETE FROM t WHERE id = 2")
            s.execute("INSERT INTO t VALUES (7, 70, 'r7')")
            rows = all_rows(s)
            assert (2, 20, "r2") not in rows
            assert (7, 70, "r7") in rows
            s.execute("ROLLBACK")

    def test_rollback_restores_secondary_index(self):
        db = make_db()
        db.execute("CREATE INDEX idx_v ON t (v)")
        with db.create_session() as s:
            s.execute("BEGIN")
            s.execute("DELETE FROM t WHERE v = 30")
            s.execute("UPDATE t SET v = 12345 WHERE id = 4")
            s.execute("ROLLBACK")
        # index-driven point lookups must see the restored entries
        assert db.query("SELECT id FROM t WHERE v = 30").rows == [(3,)]
        assert db.query("SELECT id FROM t WHERE v = 40").rows == [(4,)]
        assert db.query("SELECT id FROM t WHERE v = 12345").rows == []

    def test_rollback_keeps_range_scans_correct(self):
        db = make_db()
        db.execute("ANALYZE t")
        with db.create_session() as s:
            s.execute("BEGIN")
            s.execute("INSERT INTO t VALUES (1000, 100000, 'big')")
            s.execute("DELETE FROM t WHERE id = 1")
            s.execute("ROLLBACK")
        assert db.query("SELECT id FROM t WHERE id < 100").rows == [
            (i,) for i in range(1, 6)
        ]
        assert db.query("SELECT COUNT(*) FROM t WHERE v >= 10").rows == [(5,)]

    def test_nested_begin_rejected(self):
        db = make_db()
        with db.create_session() as s:
            s.execute("BEGIN")
            with pytest.raises(EngineError, match="already in a transaction"):
                s.execute("BEGIN")
            s.execute("ROLLBACK")

    def test_commit_rollback_outside_txn_are_noops(self):
        db = make_db()
        db.execute("COMMIT")
        db.execute("ROLLBACK")
        assert all_rows(db) == BASELINE

    def test_ddl_inside_txn_rejected(self):
        db = make_db()
        with db.create_session() as s:
            s.execute("BEGIN")
            with pytest.raises(EngineError, match="autocommit"):
                s.execute("CREATE TABLE u (a INT)")
            with pytest.raises(EngineError, match="autocommit"):
                s.execute("CREATE INDEX idx ON t (v)")
            s.execute("ROLLBACK")

    def test_failed_statement_aborts_txn(self):
        db = make_db()
        with db.create_session() as s:
            s.execute("BEGIN")
            s.execute("INSERT INTO t VALUES (6, 60, 'r6')")
            with pytest.raises(EngineError):
                # non-constant INSERT values fail mid-execution
                s.execute("INSERT INTO t VALUES (id, 0, 'x')")
            assert not s.in_transaction
        assert all_rows(db) == BASELINE

    def test_session_close_rolls_back(self):
        db = make_db()
        s = db.create_session()
        s.execute("BEGIN")
        s.execute("DELETE FROM t WHERE id > 0")
        s.close()
        assert all_rows(db) == BASELINE

    def test_autocommit_failure_rolls_back_statement(self):
        db = make_db()
        with pytest.raises(EngineError):
            db.execute("INSERT INTO t VALUES (6, 60, 'a'), (7, v, 'b')")
        assert all_rows(db) == BASELINE


class TestLocking:
    def test_write_lock_times_out(self):
        db = make_db()
        db.txn.lock_timeout = 0.2
        s1 = db.create_session()
        s2 = db.create_session()
        s1.execute("BEGIN")
        s1.execute("UPDATE t SET v = 0 WHERE id = 1")
        with pytest.raises(LockTimeout):
            s2.execute("INSERT INTO t VALUES (6, 60, 'r6')")
        s1.execute("ROLLBACK")
        # lock released: the same statement now succeeds
        s2.execute("INSERT INTO t VALUES (6, 60, 'r6')")
        assert (6, 60, "r6") in all_rows(db)
        s1.close()
        s2.close()

    def test_read_does_not_block_on_writer_lock(self):
        """MVCC contract: a SELECT against a table whose write lock is
        held by an uncommitted transaction completes immediately — and
        sees the pre-transaction state, not the in-flight delete."""
        db = make_db()
        db.txn.lock_timeout = 0.2  # any lock wait would blow up fast
        s1 = db.create_session()
        s2 = db.create_session()
        s1.execute("BEGIN")
        s1.execute("DELETE FROM t WHERE id = 1")
        assert s2.query("SELECT COUNT(*) FROM t").rows == [(5,)]
        s1.execute("COMMIT")
        assert s2.query("SELECT COUNT(*) FROM t").rows == [(4,)]
        s1.close()
        s2.close()

    def test_read_blocks_when_mvcc_disabled(self):
        """The escape hatch keeps the old semantics: with mvcc=False
        readers take shared locks and time out against a writer."""
        db = make_db(mvcc=False)
        db.txn.lock_timeout = 0.2
        s1 = db.create_session()
        s2 = db.create_session()
        s1.execute("BEGIN")
        s1.execute("DELETE FROM t WHERE id = 1")
        with pytest.raises(LockTimeout):
            s2.query("SELECT COUNT(*) FROM t")
        s1.execute("COMMIT")
        assert s2.query("SELECT COUNT(*) FROM t").rows == [(4,)]
        s1.close()
        s2.close()


class TestDurableTransactions:
    def test_committed_txn_survives_reopen(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = make_db(data_dir=data_dir)
        with db.create_session() as s:
            s.execute("BEGIN")
            s.execute("INSERT INTO t VALUES (6, 60, 'r6')")
            s.execute("COMMIT")
        db.close()

        with Database(data_dir=data_dir) as db2:
            assert all_rows(db2) == BASELINE + [(6, 60, "r6")]

    def test_rolled_back_txn_leaves_no_trace(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = make_db(data_dir=data_dir)
        with db.create_session() as s:
            s.execute("BEGIN")
            s.execute("UPDATE t SET v = -1 WHERE id > 0")
            s.execute("ROLLBACK")
        db.close()

        with Database(data_dir=data_dir) as db2:
            assert all_rows(db2) == BASELINE
