"""Tests for composite (multi-column) B+-tree indexes."""

import random

import pytest

from repro import Database
from repro.catalog import CatalogError, IndexKind
from repro.index import BPlusTree
from repro.index.keys import MAX_KEY, MIN_KEY, key_lt
from repro.physical import PIndexScan, walk_plan
from repro.storage import BufferPool, DiskManager
from repro.types import DataType


class TestCompositeKeys:
    def test_key_lt_lexicographic(self):
        assert key_lt((1, "a"), (1, "b"))
        assert key_lt((1, "z"), (2, "a"))
        assert not key_lt((2, "a"), (1, "z"))

    def test_prefix_sorts_before_extension(self):
        assert key_lt((1,), (1, "a"))
        assert not key_lt((1, "a"), (1,))

    def test_sentinels(self):
        assert key_lt(MIN_KEY, None)
        assert key_lt(MIN_KEY, -(10**18))
        assert key_lt(10**18, MAX_KEY)
        assert key_lt(None, MAX_KEY)
        assert key_lt((1, MIN_KEY), (1, None))
        assert key_lt((1, "zzz"), (1, MAX_KEY))
        assert key_lt(MIN_KEY, MAX_KEY)
        assert not key_lt(MAX_KEY, MAX_KEY)

    def test_null_components(self):
        assert key_lt((1, None), (1, "a"))
        assert not key_lt((1, "a"), (1, None))


class TestCompositeBPlusTree:
    def make(self):
        disk = DiskManager(512)
        pool = BufferPool(disk, 300)
        return BPlusTree(pool, (DataType.INT, DataType.INT), "c")

    def test_roundtrip_and_order(self):
        tree = self.make()
        entries = [((i % 10, i // 10), (i, 0)) for i in range(500)]
        random.Random(3).shuffle(entries)
        for key, rid in entries:
            tree.insert(key, rid)
        tree.validate()
        keys = [k for k, _ in tree.items()]
        assert keys == sorted(keys, key=lambda k: (k[0], k[1]))

    def test_prefix_scan(self):
        tree = self.make()
        for i in range(300):
            tree.insert((i % 10, i), (i, 0))
        got = [k for k, _ in tree.range_scan((4, MIN_KEY), (4, MAX_KEY))]
        assert len(got) == 30 and all(k[0] == 4 for k in got)

    def test_prefix_plus_range(self):
        tree = self.make()
        for i in range(300):
            tree.insert((i % 10, i), (i, 0))
        got = [k for k, _ in tree.range_scan((4, 100), (4, 200))]
        assert all(k[0] == 4 and 100 <= k[1] <= 200 for k in got)
        assert got == sorted(got)

    def test_exact_search_and_delete(self):
        tree = self.make()
        for i in range(100):
            tree.insert((i, i * 2), (i, 0))
        assert tree.search((7, 14)) == [(7, 0)]
        assert tree.delete((7, 14), (7, 0))
        assert tree.search((7, 14)) == []
        tree.validate()

    def test_null_component_storage(self):
        tree = self.make()
        tree.insert((1, None), (1, 0))
        tree.insert((1, 5), (2, 0))
        items = [k for k, _ in tree.items()]
        assert items == [(1, None), (1, 5)]


@pytest.fixture
def db():
    db = Database(buffer_pages=64, work_mem_pages=8)
    db.execute("CREATE TABLE ev (user_id INT, day INT, kind TEXT, amt FLOAT)")
    rng = random.Random(5)
    rows = sorted(
        (
            (rng.randrange(50), rng.randrange(30), rng.choice("ab"), rng.random())
            for _ in range(5000)
        )
    )
    db.insert_rows("ev", rows)
    db.execute("CREATE CLUSTERED INDEX ix_ud ON ev (user_id, day)")
    db.execute("ANALYZE ev")
    db._rows = rows
    return db


def count_where(rows, pred):
    return sum(1 for r in rows if pred(r))


class TestCompositeThroughSQL:
    def test_catalog_metadata(self, db):
        ix = db.table("ev").index_on("user_id")
        assert ix.is_composite
        assert ix.columns == ("user_id", "day")

    def test_prefix_eq_plus_range(self, db):
        r = db.query(
            "SELECT COUNT(*) AS n FROM ev WHERE user_id = 5 "
            "AND day BETWEEN 10 AND 19"
        )
        want = count_where(db._rows, lambda x: x[0] == 5 and 10 <= x[1] <= 19)
        assert r.rows == [(want,)]

    def test_full_prefix_eq(self, db):
        r = db.query("SELECT COUNT(*) AS n FROM ev WHERE user_id = 5 AND day = 3")
        want = count_where(db._rows, lambda x: x[0] == 5 and x[1] == 3)
        assert r.rows == [(want,)]

    def test_leading_only(self, db):
        r = db.query("SELECT COUNT(*) AS n FROM ev WHERE user_id = 7")
        want = count_where(db._rows, lambda x: x[0] == 7)
        assert r.rows == [(want,)]

    def test_planner_uses_composite_index(self, db):
        plan = db.plan(
            "SELECT amt FROM ev WHERE user_id = 5 AND day BETWEEN 10 AND 12"
        )
        scans = [n for n in walk_plan(plan) if isinstance(n, PIndexScan)]
        assert scans and scans[0].index.is_composite

    def test_second_column_alone_not_sargable(self, db):
        plan = db.plan("SELECT COUNT(*) AS n FROM ev WHERE day = 3")
        assert not any(isinstance(n, PIndexScan) for n in walk_plan(plan))
        r = db.query("SELECT COUNT(*) AS n FROM ev WHERE day = 3")
        assert r.rows == [(count_where(db._rows, lambda x: x[1] == 3),)]

    def test_exclusive_bounds_correct(self, db):
        r = db.query(
            "SELECT COUNT(*) AS n FROM ev WHERE user_id = 5 AND day > 10 "
            "AND day < 20"
        )
        want = count_where(db._rows, lambda x: x[0] == 5 and 10 < x[1] < 20)
        assert r.rows == [(want,)]

    def test_composite_sql_create(self, db):
        db.execute("CREATE INDEX ix_kind ON ev (kind, user_id)")
        ix = db.table("ev").index_on("kind")
        assert ix.columns == ("kind", "user_id")
        r = db.query(
            "SELECT COUNT(*) AS n FROM ev WHERE kind = 'a' AND user_id = 3"
        )
        want = count_where(db._rows, lambda x: x[2] == "a" and x[0] == 3)
        assert r.rows == [(want,)]

    def test_index_maintained_by_dml(self, db):
        db.execute("DELETE FROM ev WHERE user_id = 5 AND day = 3")
        r = db.query("SELECT COUNT(*) AS n FROM ev WHERE user_id = 5 AND day = 3")
        assert r.rows == [(0,)]
        db.execute("INSERT INTO ev VALUES (5, 3, 'a', 0.5)")
        r = db.query("SELECT COUNT(*) AS n FROM ev WHERE user_id = 5 AND day = 3")
        assert r.rows == [(1,)]
        db.table("ev").index_on("user_id").structure.validate()

    def test_hash_composite_rejected(self, db):
        with pytest.raises(CatalogError):
            db.catalog.create_index(
                "hx", "ev", ["kind", "day"], IndexKind.HASH
            )

    def test_ordered_output_on_leading_column(self, db):
        plan = db.plan("SELECT user_id FROM ev WHERE user_id = 9 ORDER BY user_id")
        from repro.physical import PSort

        assert not any(isinstance(n, PSort) for n in walk_plan(plan))


class TestCompositeOrderElision:
    def test_multi_key_order_by_rides_composite_index(self, db):
        from repro.physical import PSort, walk_plan

        plan = db.plan(
            "SELECT user_id, day FROM ev WHERE user_id BETWEEN 3 AND 9 "
            "ORDER BY user_id, day"
        )
        assert not any(isinstance(n, PSort) for n in walk_plan(plan))
        rows = db.run_plan(plan).rows
        assert rows == sorted(rows)

    def test_wrong_key_order_still_sorts(self, db):
        from repro.physical import PSort, walk_plan

        plan = db.plan(
            "SELECT user_id, day FROM ev ORDER BY day, user_id"
        )
        assert any(isinstance(n, PSort) for n in walk_plan(plan))

    def test_longer_order_than_index_sorts(self, db):
        from repro.physical import PSort, walk_plan

        plan = db.plan(
            "SELECT user_id, day, amt FROM ev ORDER BY user_id, day, amt"
        )
        assert any(isinstance(n, PSort) for n in walk_plan(plan))


class TestCompositeIndexNL:
    def test_join_probes_leading_component(self, db):
        from repro.physical import walk_plan
        from repro.optimizer import PlannerOptions

        db.execute("CREATE TABLE probe (uid INT)")
        db.insert_rows("probe", [(i,) for i in range(0, 50, 5)])
        db.execute("ANALYZE probe")
        sql = (
            "SELECT probe.uid, ev.day FROM probe, ev "
            "WHERE probe.uid = ev.user_id"
        )
        plan = db.plan(sql)
        got = sorted(db.run_plan(plan).rows)
        db.options = PlannerOptions(strategy="naive")
        want = sorted(db.query(sql).rows)
        db.options = PlannerOptions(strategy="dp")
        assert got == want
