"""Thread-safety of the buffer pool.

Parallel workers are *processes* with private pools, but the pool is
also shared by planner helpers and background readers within one
process, so its public surface must tolerate concurrent callers: no
frame may be evicted while pinned, stats must stay additive, and
concurrent fix/unfix of the same hot set must never corrupt page data.
"""

import random
import threading

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


@pytest.fixture()
def pool():
    disk = DiskManager(page_size=256)
    buffer_pool = BufferPool(disk, capacity=8)
    return disk, buffer_pool


def make_pages(disk, pool, count):
    file_id = disk.create_file("t")
    pages = []
    for i in range(count):
        pid = pool.new_page(file_id)
        data = pool.fix(pid)  # new_page leaves it pinned; pin again to write
        data[:4] = i.to_bytes(4, "big")
        pool.unfix(pid, dirty=True)
        pool.unfix(pid, dirty=True)
        pages.append(pid)
    pool.flush_all()
    return pages


class TestConcurrentAccess:
    def test_concurrent_fix_unfix_preserves_page_contents(self, pool):
        disk, buffer_pool = pool
        pages = make_pages(disk, buffer_pool, 32)
        errors = []

        def reader(seed):
            rng = random.Random(seed)
            try:
                for _ in range(400):
                    index = rng.randrange(len(pages))
                    data = buffer_pool.fix(pages[index])
                    value = int.from_bytes(bytes(data[:4]), "big")
                    if value != index:
                        errors.append((index, value))
                    buffer_pool.unfix(pages[index])
            except Exception as exc:  # noqa: BLE001 - collect, don't die
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(s,)) for s in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert list(buffer_pool.pinned_pages()) == []

    def test_stats_stay_consistent_under_contention(self, pool):
        disk, buffer_pool = pool
        pages = make_pages(disk, buffer_pool, 24)
        buffer_pool.reset_stats()

        per_thread = 300
        threads = 6

        def reader(seed):
            rng = random.Random(seed)
            for _ in range(per_thread):
                pid = pages[rng.randrange(len(pages))]
                buffer_pool.fix(pid)
                buffer_pool.unfix(pid)

        workers = [
            threading.Thread(target=reader, args=(s,)) for s in range(threads)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        stats = buffer_pool.stats
        # every fix is exactly one hit or one miss
        assert stats.hits + stats.misses == per_thread * threads
        assert list(buffer_pool.pinned_pages()) == []

    def test_pinned_frames_survive_concurrent_eviction_pressure(self, pool):
        disk, buffer_pool = pool
        pages = make_pages(disk, buffer_pool, 40)
        hot = pages[0]
        data = buffer_pool.fix(hot)  # stays pinned for the whole test
        want = bytes(data[:4])
        stop = threading.Event()
        errors = []

        def churn(seed):
            rng = random.Random(seed)
            try:
                while not stop.is_set():
                    pid = pages[rng.randrange(1, len(pages))]
                    buffer_pool.fix(pid)
                    buffer_pool.unfix(pid)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        workers = [
            threading.Thread(target=churn, args=(s,)) for s in range(4)
        ]
        for t in workers:
            t.start()
        for _ in range(200):
            assert bytes(data[:4]) == want
            assert buffer_pool.contains(hot)
        stop.set()
        for t in workers:
            t.join()
        buffer_pool.unfix(hot)
        assert errors == []

    def test_concurrent_new_page_allocations_are_unique(self, pool):
        disk, buffer_pool = pool
        file_id = disk.create_file("t")
        allocated = []
        lock = threading.Lock()

        def allocate():
            local = []
            for _ in range(25):
                pid = buffer_pool.new_page(file_id)
                buffer_pool.unfix(pid, dirty=True)
                local.append(pid)
            with lock:
                allocated.extend(local)

        workers = [threading.Thread(target=allocate) for _ in range(4)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert len(allocated) == 100
        assert len(set(allocated)) == 100
