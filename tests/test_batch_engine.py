"""End-to-end checks that the batch size never changes query behaviour.

Every E-suite wholesale query must return identical rows AND identical
ROWS-level actuals (per-node actual_rows / actual_loops) whether the
engine runs tuple-at-a-time (``batch_size=1``) or fully batched
(``batch_size=1024``).  This pins down the invariants the batched
operator engine promises: batching is purely an execution-efficiency
knob, invisible to results, plans, and observability.
"""

import pytest

from repro.engine import Database
from repro.obs import InstrumentLevel
from repro.physical import walk_plan
from repro.workloads import WHOLESALE_QUERIES, WholesaleScale, load_wholesale


def _run_all(batch_size):
    """Run every wholesale query at *batch_size*; return per-query rows,
    per-node ROWS actuals, and executor metrics."""
    db = Database(buffer_pages=64, work_mem_pages=8, batch_size=batch_size)
    load_wholesale(db, WholesaleScale.tiny(), seed=7)
    results = {}
    for name, sql in WHOLESALE_QUERIES.items():
        plan = db.plan(sql)
        r = db.run_plan(plan, cold=True, analyze=True)
        actuals = [
            (n.describe(), n.actual_rows, n.actual_loops)
            for n in walk_plan(plan)
        ]
        results[name] = (r.rows, actuals, r.exec_metrics)
    return results


@pytest.fixture(scope="module")
def batch_size_runs():
    return _run_all(1), _run_all(1024)


class TestBatchSizeInvariance:
    def test_identical_rows(self, batch_size_runs):
        tuple_at_a_time, batched = batch_size_runs
        for name in WHOLESALE_QUERIES:
            assert tuple_at_a_time[name][0] == batched[name][0], name

    def test_identical_rows_actuals(self, batch_size_runs):
        tuple_at_a_time, batched = batch_size_runs
        for name in WHOLESALE_QUERIES:
            assert tuple_at_a_time[name][1] == batched[name][1], name

    def test_identical_spill_counts(self, batch_size_runs):
        # spill behaviour (sort runs, grace partitions) must not depend
        # on how rows are batched through the operators
        tuple_at_a_time, batched = batch_size_runs
        for name in WHOLESALE_QUERIES:
            m1, m2 = tuple_at_a_time[name][2], batched[name][2]
            assert m1.spills == m2.spills, name
            assert m1.temp_files == m2.temp_files, name

    def test_identical_work_metrics(self, batch_size_runs):
        tuple_at_a_time, batched = batch_size_runs
        for name in WHOLESALE_QUERIES:
            m1, m2 = tuple_at_a_time[name][2], batched[name][2]
            assert m1.rows_scanned == m2.rows_scanned, name
            assert m1.rows_emitted == m2.rows_emitted, name
            assert m1.hash_probes == m2.hash_probes, name


class TestBatchSizeConfig:
    def test_batch_size_reaches_context(self):
        db = Database(batch_size=7)
        assert db.batch_size == 7

    def test_invalid_batch_size_rejected(self):
        from repro.executor import ExecContext

        db = Database()
        with pytest.raises(ValueError):
            ExecContext(db.pool, batch_size=0)

    def test_intermediate_batch_sizes_agree(self):
        # a non-power-of-two batch size exercises ragged final batches
        db1 = Database(buffer_pages=64, work_mem_pages=8, batch_size=3)
        db2 = Database(buffer_pages=64, work_mem_pages=8, batch_size=100)
        load_wholesale(db1, WholesaleScale.tiny(), seed=7)
        load_wholesale(db2, WholesaleScale.tiny(), seed=7)
        sql = WHOLESALE_QUERIES["Q3_top_customers"]
        r1 = db1.query(sql)
        r2 = db2.query(sql)
        assert r1.rows == r2.rows


class TestRowsEmittedStreaming:
    def test_rows_emitted_counts_during_drain(self):
        """rows_emitted must grow as execute() is drained, not only after
        the full result is materialized."""
        from repro.executor import ExecContext, execute

        db = Database(batch_size=4)
        load_wholesale(db, WholesaleScale.tiny(), seed=7)
        plan = db.plan("SELECT * FROM customer")
        ctx = ExecContext(
            db.pool,
            db.work_mem_pages,
            instrument=InstrumentLevel.OFF,
            batch_size=4,
        )
        it = execute(plan, ctx)
        drained = 0
        for _ in it:
            drained += 1
            if drained == 8:
                break
        # two 4-row batches drained: the counter reflects them already
        assert 0 < ctx.metrics.rows_emitted <= 8
        it.close()
        ctx.cleanup()
