"""Tests for workload generators and shape/wholesale builders."""

import pytest

from repro import Database
from repro.workloads import (
    Rng,
    WHOLESALE_QUERIES,
    WholesaleScale,
    build_chain,
    build_clique,
    build_cycle,
    build_shape,
    build_star,
    categorical,
    correlated_pair,
    load_wholesale,
    prefixed_words,
    sequential_ints,
    shuffled_ints,
    uniform_floats,
    uniform_ints,
    with_nulls,
    words,
    zipf_ints,
)


class TestGenerators:
    def test_determinism(self):
        a = uniform_ints(Rng(5), 100, 0, 50)
        b = uniform_ints(Rng(5), 100, 0, 50)
        assert a == b

    def test_different_seeds_differ(self):
        assert uniform_ints(Rng(1), 50, 0, 1000) != uniform_ints(
            Rng(2), 50, 0, 1000
        )

    def test_uniform_bounds(self):
        vals = uniform_ints(Rng(3), 500, 10, 20)
        assert all(10 <= v <= 20 for v in vals)

    def test_uniform_floats_range(self):
        vals = uniform_floats(Rng(3), 500, -1.0, 1.0)
        assert all(-1.0 <= v <= 1.0 for v in vals)

    def test_sequential_and_shuffled(self):
        assert sequential_ints(5, 10) == [10, 11, 12, 13, 14]
        shuffled = shuffled_ints(Rng(4), 100)
        assert sorted(shuffled) == list(range(100))
        assert shuffled != list(range(100))

    def test_zipf_is_skewed(self):
        vals = zipf_ints(Rng(6), 5000, 100, skew=1.2)
        from collections import Counter

        counts = Counter(vals)
        assert counts[0] > counts.get(50, 0) * 3
        assert all(0 <= v < 100 for v in vals)

    def test_zipf_zero_skew_roughly_uniform(self):
        vals = zipf_ints(Rng(6), 10000, 10, skew=0.0)
        from collections import Counter

        counts = Counter(vals)
        assert max(counts.values()) < 2 * min(counts.values())

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_ints(Rng(1), 10, 0)

    def test_correlated_pair(self):
        a, b = correlated_pair(Rng(7), 2000, 20, correlation=1.0)
        assert a == b
        a, b = correlated_pair(Rng(7), 2000, 20, correlation=0.0)
        agree = sum(1 for x, y in zip(a, b) if x == y)
        assert agree < 400  # ~1/20 by chance

    def test_categorical_weights(self):
        vals = categorical(Rng(8), 5000, ["a", "b"], [9, 1])
        assert vals.count("a") > vals.count("b") * 4

    def test_words_and_prefixes(self):
        ws = words(Rng(9), 10, length=5)
        assert all(len(w) == 5 for w in ws)
        pws = prefixed_words(Rng(9), 20, ["x", "y"])
        assert all(w.split("-")[0] in ("x", "y") for w in pws)

    def test_with_nulls(self):
        vals = with_nulls(Rng(10), list(range(1000)), 0.3)
        frac = sum(1 for v in vals if v is None) / 1000
        assert 0.2 < frac < 0.4


class TestShapes:
    def test_chain_builds_and_runs(self):
        db = Database(buffer_pages=128)
        w = build_chain(db, 3, base_rows=100, seed=1)
        assert w.shape == "chain" and w.num_relations == 3
        r = db.query(w.sql)
        assert r.rows[0][0] > 0

    def test_chain_with_filter(self):
        db = Database(buffer_pages=128)
        w = build_chain(db, 3, base_rows=100, seed=1, selectivity=0.5)
        full = build_chain(
            db, 3, base_rows=100, seed=1, prefix="d"
        )
        filtered = db.query(w.sql).rows[0][0]
        unfiltered = db.query(full.sql).rows[0][0]
        assert filtered <= unfiltered

    def test_chain_validation(self):
        with pytest.raises(ValueError):
            build_chain(Database(), 1)

    def test_star(self):
        db = Database(buffer_pages=128)
        w = build_star(db, 4, fact_rows=500, dim_base=20, seed=2)
        # every fact row joins exactly once to each dimension
        assert db.query(w.sql).rows == [(500,)]

    def test_clique(self):
        db = Database(buffer_pages=128)
        w = build_clique(db, 3, base_rows=80, seed=3)
        assert db.query(w.sql).rows[0][0] >= 0

    def test_cycle_has_closing_edge(self):
        db = Database(buffer_pages=128)
        w = build_cycle(db, 3, base_rows=60, seed=4)
        assert w.sql.count("=") == 3  # two chain edges + closing edge
        db.query(w.sql)

    def test_build_shape_dispatch(self):
        db = Database(buffer_pages=128)
        w = build_shape(db, "chain", 2, base_rows=50)
        assert w.shape == "chain"
        with pytest.raises(ValueError):
            build_shape(db, "moebius", 3)

    def test_same_seed_same_data(self):
        db1, db2 = Database(), Database()
        build_chain(db1, 2, base_rows=50, seed=9)
        build_chain(db2, 2, base_rows=50, seed=9)
        a = db1.query("SELECT * FROM c0").rows
        b = db2.query("SELECT * FROM c0").rows
        assert a == b


class TestWholesale:
    @pytest.fixture(scope="class")
    def wh(self):
        db = Database(buffer_pages=256, work_mem_pages=16)
        counts = load_wholesale(db, WholesaleScale.tiny(), seed=5)
        return db, counts

    def test_row_counts(self, wh):
        db, counts = wh
        for table, count in counts.items():
            assert db.query(f"SELECT COUNT(*) AS n FROM {table}").rows == [
                (count,)
            ]

    def test_foreign_keys_resolve(self, wh):
        db, counts = wh
        orphan = db.query(
            "SELECT COUNT(*) AS n FROM orders o, customer c "
            "WHERE o.cust_id = c.id"
        ).rows[0][0]
        assert orphan == counts["orders"]

    def test_statuses_skewed(self, wh):
        db, _ = wh
        rows = dict(
            db.query(
                "SELECT o.status, COUNT(*) AS n FROM orders o GROUP BY o.status"
            ).rows
        )
        assert rows["delivered"] > rows["open"]

    def test_all_queries_run(self, wh):
        db, _ = wh
        for name, sql in WHOLESALE_QUERIES.items():
            result = db.query(sql)
            assert result.rowcount >= 0, name

    def test_indexes_created(self, wh):
        db, _ = wh
        assert db.table("orders").index_on("cust_id") is not None
        assert db.table("lineitem").index_on("order_id") is not None

    def test_stats_analyzed(self, wh):
        db, _ = wh
        assert db.table("orders").stats is not None
