"""Tests for heap files."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage import BufferPool, DiskManager, HeapError, HeapFile
from repro.types import DataType, schema_of


def make_heap(pool_pages=16, page_size=512):
    disk = DiskManager(page_size)
    pool = BufferPool(disk, pool_pages)
    schema = schema_of("t", ("id", DataType.INT), ("name", DataType.TEXT))
    return disk, pool, HeapFile(pool, schema, "t")


class TestHeapBasics:
    def test_insert_fetch(self):
        _, _, heap = make_heap()
        rid = heap.insert((1, "one"))
        assert heap.fetch(rid) == (1, "one")
        assert heap.num_rows == 1

    def test_insert_many_and_scan(self):
        _, _, heap = make_heap()
        rows = [(i, f"n{i}") for i in range(100)]
        heap.insert_many(rows)
        assert list(heap.scan_rows()) == rows
        assert heap.num_rows == 100
        assert heap.num_pages > 1  # spilled over several 512B pages

    def test_rids_are_stable_and_unique(self):
        _, _, heap = make_heap()
        rids = heap.insert_many([(i, "x") for i in range(50)])
        assert len(set(rids)) == 50
        for i, rid in enumerate(rids):
            assert heap.fetch(rid) == (i, "x")

    def test_delete(self):
        _, _, heap = make_heap()
        rids = heap.insert_many([(i, "x") for i in range(10)])
        assert heap.delete(rids[3]) is True
        assert heap.fetch(rids[3]) is None
        assert heap.delete(rids[3]) is False
        assert heap.num_rows == 9
        assert len(list(heap.scan_rows())) == 9

    def test_update_in_place_keeps_rid(self):
        _, _, heap = make_heap()
        rid = heap.insert((1, "abcdef"))
        new_rid = heap.update(rid, (1, "ab"))
        assert new_rid == rid
        assert heap.fetch(rid) == (1, "ab")

    def test_update_grow_relocates(self):
        _, _, heap = make_heap()
        rid = heap.insert((1, "ab"))
        heap.insert((2, "cd"))
        new_rid = heap.update(rid, (1, "a much longer name"))
        assert heap.fetch(new_rid) == (1, "a much longer name")
        assert heap.num_rows == 2

    def test_null_values(self):
        _, _, heap = make_heap()
        rid = heap.insert((None, None))
        assert heap.fetch(rid) == (None, None)

    def test_scan_yields_rids(self):
        _, _, heap = make_heap()
        rids = heap.insert_many([(i, "x") for i in range(20)])
        scanned = [rid for rid, _ in heap.scan()]
        assert scanned == rids

    def test_type_validation_on_insert(self):
        from repro.types import TypeError_

        _, _, heap = make_heap()
        with pytest.raises(TypeError_):
            heap.insert(("not-int", "x"))

    def test_oversized_record_rejected(self):
        _, _, heap = make_heap()
        with pytest.raises(HeapError):
            heap.insert((1, "x" * 600))  # page is 512B

    def test_bad_rid(self):
        _, _, heap = make_heap()
        with pytest.raises(HeapError):
            heap.fetch((99, 0))

    def test_data_survives_pool_clear(self):
        _, pool, heap = make_heap(pool_pages=4)
        rows = [(i, f"r{i}") for i in range(200)]
        heap.insert_many(rows)
        pool.clear()
        assert list(heap.scan_rows()) == rows

    def test_cold_scan_io_equals_pages(self):
        disk, pool, heap = make_heap(pool_pages=64)
        heap.insert_many([(i, "abc") for i in range(300)])
        pool.clear()
        disk.reset_stats()
        list(heap.scan_rows())
        assert disk.stats.reads == heap.num_pages


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.integers(0, 1000)),
            st.tuples(st.just("delete"), st.integers(0, 40)),
        ),
        max_size=80,
    )
)
def test_heap_model_based(ops):
    """Insert/delete sequences match a dict model keyed by RID."""
    _, _, heap = make_heap(pool_pages=32)
    model = {}
    rids = []
    for op, arg in ops:
        if op == "insert":
            rid = heap.insert((arg, f"v{arg}"))
            model[rid] = (arg, f"v{arg}")
            rids.append(rid)
        elif rids:
            rid = rids[arg % len(rids)]
            heap.delete(rid)
            model.pop(rid, None)
    assert dict(heap.scan()) == model
    assert heap.num_rows == len(model)
