"""Zone-map scan skipping: pages proven empty of matches are never
fixed into the buffer pool, counters reconcile exactly, and skipping
never changes results."""

import pytest

from repro import Database
from repro.storage.zonemap import ZoneMaps, page_skipper


def make_db(columnar: bool = True) -> Database:
    db = Database(buffer_pages=64, columnar=columnar)
    db.execute("CREATE TABLE t (id INT, v INT, label TEXT)")
    # id is inserted in order, so page zones on id are tight and disjoint
    db.insert_rows(
        "t", [(i, i % 7, f"row{i}") for i in range(2000)]
    )
    db.execute("ANALYZE t")
    return db


class TestSkipping:
    def test_selective_scan_skips_pages(self):
        db = make_db()
        access0 = db.table("t").access.snapshot()
        result = db.query("SELECT id FROM t WHERE id >= 1900")
        assert sorted(result.rows) == [(i,) for i in range(1900, 2000)]
        _, _, _, _, _, skipped = db.table("t").access.delta(access0)
        assert skipped > 0
        assert result.exec_metrics.pages_skipped == skipped

    def test_counters_reconcile(self):
        # pages_hit + pages_read + pages_skipped == pages of the table,
        # on a cold pool: every page is either fetched or proven away
        db = make_db()
        db.pool.clear()
        access0 = db.table("t").access.snapshot()
        db.query("SELECT COUNT(*) FROM t WHERE id < 100")
        _, _, _, hit, read, skipped = db.table("t").access.delta(access0)
        assert hit + read + skipped == db.table("t").num_pages
        assert skipped > 0

    def test_skipped_pages_cause_no_buffer_traffic(self):
        db = make_db()
        db.pool.clear()
        buf0 = db.pool.stats.snapshot()
        db.query("SELECT COUNT(*) FROM t WHERE id >= 1990")
        delta = db.pool.stats.delta(buf0)
        fetched = delta.hits + delta.misses
        assert fetched < db.table("t").num_pages

    def test_results_match_row_engine(self):
        row_db, col_db = make_db(columnar=False), make_db(columnar=True)
        for sql in (
            "SELECT id, v FROM t WHERE id BETWEEN 500 AND 520",
            "SELECT COUNT(*) FROM t WHERE id = 1234",
            "SELECT v, COUNT(*) FROM t WHERE id > 1800 GROUP BY v",
            "SELECT id FROM t WHERE id IN (3, 999, 1999)",
            "SELECT COUNT(*) FROM t WHERE id < 0",
        ):
            assert col_db.query(sql).rows == row_db.query(sql).rows, sql

    def test_row_engine_never_skips(self):
        db = make_db(columnar=False)
        db.query("SELECT COUNT(*) FROM t WHERE id >= 1990")
        assert db.table("t").access.pages_skipped == 0

    def test_inserts_widen_zones(self):
        # a post-ANALYZE insert must make its page unskippable
        db = make_db()
        db.execute("INSERT INTO t VALUES (100000, 1, 'new')")
        result = db.query("SELECT id FROM t WHERE id >= 99999")
        assert result.rows == [(100000,)]

    def test_update_widens_zones(self):
        db = make_db()
        db.execute("UPDATE t SET id = 50000 WHERE id = 3")
        result = db.query("SELECT id FROM t WHERE id >= 49999")
        assert result.rows == [(50000,)]

    def test_sys_stat_tables_pages_skipped(self):
        db = make_db()
        db.query("SELECT COUNT(*) FROM t WHERE id >= 1900")
        rows = db.query(
            "SELECT pages_skipped FROM sys_stat_tables "
            "WHERE table_name = 't'"
        ).rows
        assert rows and rows[0][0] > 0


class TestZoneMapUnit:
    def test_widen_and_entry(self):
        zones = ZoneMaps(2)
        zones.widen(0, (5, "a"))
        zones.widen(0, (9, "c"))
        zones.widen(2, (1, None))
        assert zones.entry(0, 0) == (5, 9)
        assert zones.entry(0, 1) == ("a", "c")
        assert zones.entry(1, 0) is None  # gap page: no values
        assert zones.entry(2, 1) is None  # all-NULL column
        assert zones.num_pages == 3

    def test_summary(self):
        zones = ZoneMaps(2)
        zones.widen(0, (5, "a"))
        zones.widen(1, (7, None))
        assert zones.summary() == (2, 3)

    @pytest.mark.parametrize(
        "predicate,skipped_pages",
        [
            ("id > 15", {0}),  # page 0 holds 0..9
            ("id < 10", {1, 2}),
            ("id = 25", {0, 1}),
            ("id >= 10 AND id <= 19", {0, 2}),
        ],
    )
    def test_page_skipper_conjuncts(self, predicate, skipped_pages):
        from repro.sql import parse

        db = Database()
        db.execute("CREATE TABLE z (id INT)")
        schema = db.table("z").schema
        zones = ZoneMaps(1)
        for page in range(3):  # page p holds 10p .. 10p+9
            zones.widen(page, (10 * page,))
            zones.widen(page, (10 * page + 9,))
        stmt = parse(f"SELECT id FROM z WHERE {predicate}")
        skip = page_skipper(stmt.where, schema, zones)
        assert skip is not None
        assert {p for p in range(3) if skip(p)} == skipped_pages

    def test_unprovable_predicate_gives_no_skipper(self):
        from repro.sql import parse

        db = Database()
        db.execute("CREATE TABLE z (id INT, v INT)")
        schema = db.table("z").schema
        zones = ZoneMaps(2)
        stmt = parse("SELECT id FROM z WHERE id + v > 3")
        assert page_skipper(stmt.where, schema, zones) is None
