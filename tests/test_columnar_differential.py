"""Columnar-engine differential tests: the columnar batch engine must be
bit-identical to the row engine — same rows, same order, same per-node
actuals — on the seeded random-query matrix, across batch sizes and
parallel degrees.

Tier-1 runs a rotating slice; the ``slow``-marked sweep covers the full
matrix in nightly CI under the rotating ``REPRO_MATRIX_SEED``.
"""

import itertools
import os

import pytest

from repro import Database
from repro.optimizer import PlannerOptions
from repro.physical import walk_plan
from repro.qa import RandomWorkload
from repro.qa.randomqueries import load_dataset

SEED = int(os.environ.get("REPRO_MATRIX_SEED", "1977"))

BATCH_SIZES = [1, 64, 1024]
DEGREES = [1, 2]
CELLS = list(itertools.product(BATCH_SIZES, DEGREES))

_workload = RandomWorkload(SEED)
_reference = _workload.reference()
_databases = {}


def engines_for(batch_size: int):
    """A (row, columnar) engine pair sharing dataset and batch size.

    Both are ANALYZEd by the loader, so plans are identical and the only
    varying dimension is the execution engine."""
    if batch_size not in _databases:
        pair = []
        for columnar in (False, True):
            db = Database(
                buffer_pages=64,
                work_mem_pages=4,
                batch_size=batch_size,
                columnar=columnar,
            )
            # pin the cost model: a columnar Database discounts per-row
            # CPU (vector_cpu_factor), which can legitimately flip join
            # orders; the bit-identity differential must vary only the
            # execution engine, so both sides price plans identically
            db.model.vector_cpu_factor = 1.0
            load_dataset(db, _workload.dataset())
            pair.append(db)
        _databases[batch_size] = tuple(pair)
    return _databases[batch_size]


def actuals_of(plan):
    """(node type, actual rows) per node, in walk order."""
    return [
        (type(node).__name__, node.actual_rows)
        for node in walk_plan(plan)
    ]


def check_case(index: int, batch_size: int, degree: int):
    case = _workload.case(index)
    row_db, col_db = engines_for(batch_size)
    options = PlannerOptions(
        parallel_degree=degree, force_parallel=degree > 1
    )
    try:
        row_db.options = options
        col_db.options = options
        row_result = row_db.query(case.sql)
        col_result = col_db.query(case.sql)
    finally:
        row_db.options = PlannerOptions()
        col_db.options = PlannerOptions()
    assert col_result.rows == row_result.rows, (
        f"columnar rows differ from row engine for seed={SEED} "
        f"case={index} (batch={batch_size}, degree={degree})\n"
        f"  sql: {case.sql}"
    )
    assert case.matches(col_result.rows, _reference), (
        f"columnar rows differ from reference for seed={SEED} "
        f"case={index}\n  sql: {case.sql}"
    )
    assert actuals_of(col_result.plan) == actuals_of(row_result.plan), (
        f"per-node actuals differ between engines for seed={SEED} "
        f"case={index} (batch={batch_size}, degree={degree})\n"
        f"  sql: {case.sql}"
    )


class TestColumnarSlice:
    """Tier-1 slice: 30 cases, each under a rotating (batch, degree)
    cell, so every combination is hit on every run."""

    @pytest.mark.parametrize("index", range(30))
    def test_case_matches_row_engine(self, index):
        batch_size, degree = CELLS[index % len(CELLS)]
        check_case(index, batch_size, degree)


@pytest.mark.slow
class TestColumnarFullMatrix:
    """Nightly sweep: 200 cases, every (batch, degree) cell per case."""

    @pytest.mark.parametrize("index", range(200))
    def test_case_matches_row_engine_all_cells(self, index):
        for batch_size, degree in CELLS:
            check_case(index, batch_size, degree)
