"""Tests for expression normalization, decomposition and classification."""

from hypothesis import given, strategies as st

from repro.expr import (
    Between,
    BoolKind,
    BoolOp,
    CmpOp,
    ColCmpConst,
    ColEqCol,
    InList,
    IsNull,
    Like,
    and_,
    classify_conjunct,
    col,
    compile_expr,
    conjoin,
    contains_aggregate,
    eq,
    gt,
    lit,
    lt,
    normalize,
    not_,
    or_,
    referenced_columns,
    referenced_tables,
    split_conjuncts,
)
from repro.expr.nodes import AggCall, AggFunc
from repro.types import DataType, schema_of

SCHEMA = schema_of("t", ("a", DataType.INT), ("b", DataType.INT))


class TestNormalize:
    def test_between_desugars(self):
        e = normalize(Between(col("a"), lit(1), lit(10)))
        assert isinstance(e, BoolOp) and e.kind is BoolKind.AND
        ops = [(c.op, c.right.value) for c in e.operands]
        assert (CmpOp.GE, 1) in ops and (CmpOp.LE, 10) in ops

    def test_not_between(self):
        e = normalize(Between(col("a"), lit(1), lit(10), negated=True))
        assert isinstance(e, BoolOp) and e.kind is BoolKind.OR

    def test_de_morgan_and(self):
        e = normalize(not_(and_(eq(col("a"), lit(1)), eq(col("b"), lit(2)))))
        assert isinstance(e, BoolOp) and e.kind is BoolKind.OR
        assert all(c.op is CmpOp.NE for c in e.operands)

    def test_de_morgan_or(self):
        e = normalize(not_(or_(lt(col("a"), lit(1)), gt(col("a"), lit(9)))))
        assert isinstance(e, BoolOp) and e.kind is BoolKind.AND
        assert {c.op for c in e.operands} == {CmpOp.GE, CmpOp.LE}

    def test_double_negation(self):
        e = normalize(not_(not_(eq(col("a"), lit(1)))))
        assert e == eq(col("a"), lit(1))

    def test_not_pushes_into_is_null(self):
        e = normalize(not_(IsNull(col("a"))))
        assert isinstance(e, IsNull) and e.negated

    def test_not_pushes_into_in_and_like(self):
        e = normalize(not_(InList(col("a"), (lit(1),))))
        assert e.negated
        e = normalize(not_(Like(col("a"), "x%")))
        assert e.negated

    @given(
        st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5)
    )
    def test_normalize_preserves_semantics(self, a, b, x):
        exprs = [
            not_(and_(lt(col("a"), lit(a)), gt(col("b"), lit(b)))),
            not_(or_(eq(col("a"), lit(a)), not_(eq(col("b"), lit(b))))),
            Between(col("a"), lit(min(a, b)), lit(max(a, b)), negated=True),
        ]
        row = (x, b)
        for e in exprs:
            original = compile_expr(e, SCHEMA)(row)
            normalized = compile_expr(normalize(e), SCHEMA)(row)
            assert original == normalized


class TestConjuncts:
    def test_split_flat(self):
        e = and_(eq(col("a"), lit(1)), gt(col("b"), lit(2)), lt(col("a"), lit(9)))
        assert len(split_conjuncts(e)) == 3

    def test_split_nested(self):
        e = and_(eq(col("a"), lit(1)), and_(gt(col("b"), lit(2)), lt(col("a"), lit(9))))
        assert len(split_conjuncts(e)) == 3

    def test_split_none(self):
        assert split_conjuncts(None) == []

    def test_split_between_becomes_two(self):
        assert len(split_conjuncts(Between(col("a"), lit(1), lit(2)))) == 2

    def test_or_stays_single(self):
        e = or_(eq(col("a"), lit(1)), eq(col("b"), lit(2)))
        assert split_conjuncts(e) == [e]

    def test_conjoin_roundtrip(self):
        conjuncts = [eq(col("a"), lit(1)), gt(col("b"), lit(2))]
        rebuilt = conjoin(conjuncts)
        assert split_conjuncts(rebuilt) == conjuncts
        assert conjoin([]) is None
        assert conjoin([conjuncts[0]]) == conjuncts[0]


class TestReferences:
    def test_referenced_columns(self):
        e = and_(eq(col("t.a"), lit(1)), gt(col("b"), col("t.a")))
        assert referenced_columns(e) == {"t.a", "b"}

    def test_referenced_tables(self):
        s = SCHEMA.concat(schema_of("u", ("c", DataType.INT)))
        e = eq(col("t.a"), col("u.c"))
        assert referenced_tables(e, s) == frozenset({"t", "u"})

    def test_contains_aggregate(self):
        assert contains_aggregate(AggCall(AggFunc.SUM, col("a")))
        assert contains_aggregate(gt(AggCall(AggFunc.COUNT, None), lit(1)))
        assert not contains_aggregate(eq(col("a"), lit(1)))


class TestClassification:
    def test_col_cmp_const(self):
        c = classify_conjunct(gt(col("a"), lit(5)))
        assert c == ColCmpConst("a", CmpOp.GT, 5)

    def test_const_cmp_col_flips(self):
        c = classify_conjunct(gt(lit(5), col("a")))
        assert c == ColCmpConst("a", CmpOp.LT, 5)

    def test_col_eq_col(self):
        c = classify_conjunct(eq(col("t.a"), col("u.c")))
        assert c == ColEqCol("t.a", "u.c")

    def test_null_constant_not_sargable(self):
        assert classify_conjunct(eq(col("a"), lit(None))) is None

    def test_complex_not_classified(self):
        from repro.expr.nodes import ArithOp, Arithmetic

        e = eq(Arithmetic(ArithOp.ADD, col("a"), lit(1)), lit(5))
        assert classify_conjunct(e) is None

    def test_col_lt_col_not_equijoin(self):
        assert classify_conjunct(lt(col("a"), col("b"))) is None
