"""Tests for the interactive shell (python -m repro), driven via stdin."""

import subprocess
import sys



def run_repl(script: str, timeout: int = 60) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro"],
        input=script,
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestRepl:
    def test_create_insert_select(self):
        out = run_repl(
            "CREATE TABLE t (a INT, b TEXT);\n"
            "INSERT INTO t VALUES (1, 'x'), (2, 'y');\n"
            "SELECT * FROM t WHERE a = 2;\n"
            "\\q\n"
        )
        assert "y" in out
        assert "(1 rows)" in out

    def test_describe(self):
        out = run_repl(
            "CREATE TABLE t (a INT PRIMARY KEY);\n"
            "INSERT INTO t VALUES (1);\n"
            "\\d\n"
            "\\q\n"
        )
        assert "t: 1 rows" in out
        assert "pk_t_a" in out

    def test_timing_toggle(self):
        out = run_repl(
            "\\timing\n"
            "CREATE TABLE t (a INT);\n"
            "INSERT INTO t VALUES (1);\n"
            "SELECT a FROM t;\n"
            "\\q\n"
        )
        assert "timing on" in out
        assert "exec" in out

    def test_strategy_switch(self):
        out = run_repl("\\strategy greedy\n\\q\n")
        assert "strategy = greedy" in out
        out = run_repl("\\strategy bogus\n\\q\n")
        assert "usage:" in out

    def test_multiline_statement(self):
        out = run_repl(
            "CREATE TABLE t (a INT);\n"
            "INSERT INTO t\n"
            "VALUES (41),\n"
            "(42);\n"
            "SELECT COUNT(*) AS n FROM t;\n"
            "\\q\n"
        )
        assert "2" in out

    def test_error_does_not_kill_shell(self):
        out = run_repl(
            "SELECT * FROM missing;\n"
            "CREATE TABLE t (a INT);\n"
            "INSERT INTO t VALUES (7);\n"
            "SELECT a FROM t;\n"
            "\\q\n"
        )
        assert "error:" in out
        assert "7" in out

    def test_unknown_meta(self):
        out = run_repl("\\bogus\n\\q\n")
        assert "unknown meta-command" in out

    def test_explain_in_repl(self):
        out = run_repl(
            "CREATE TABLE t (a INT PRIMARY KEY);\n"
            "INSERT INTO t VALUES (1);\n"
            "ANALYZE t;\n"
            "EXPLAIN SELECT a FROM t WHERE a = 1;\n"
            "\\q\n"
        )
        assert "IndexScan" in out or "SeqScan" in out
