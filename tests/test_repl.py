"""Tests for the interactive shell (python -m repro), driven via stdin."""

import subprocess
import sys



def run_repl(script: str, timeout: int = 60) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro"],
        input=script,
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestRepl:
    def test_create_insert_select(self):
        out = run_repl(
            "CREATE TABLE t (a INT, b TEXT);\n"
            "INSERT INTO t VALUES (1, 'x'), (2, 'y');\n"
            "SELECT * FROM t WHERE a = 2;\n"
            "\\q\n"
        )
        assert "y" in out
        assert "(1 rows)" in out

    def test_describe(self):
        out = run_repl(
            "CREATE TABLE t (a INT PRIMARY KEY);\n"
            "INSERT INTO t VALUES (1);\n"
            "\\d\n"
            "\\q\n"
        )
        assert "t: 1 rows" in out
        assert "pk_t_a" in out

    def test_timing_toggle(self):
        out = run_repl(
            "\\timing\n"
            "CREATE TABLE t (a INT);\n"
            "INSERT INTO t VALUES (1);\n"
            "SELECT a FROM t;\n"
            "\\q\n"
        )
        assert "timing on" in out
        assert "exec" in out

    def test_strategy_switch(self):
        out = run_repl("\\strategy greedy\n\\q\n")
        assert "strategy = greedy" in out
        out = run_repl("\\strategy bogus\n\\q\n")
        assert "usage:" in out

    def test_multiline_statement(self):
        out = run_repl(
            "CREATE TABLE t (a INT);\n"
            "INSERT INTO t\n"
            "VALUES (41),\n"
            "(42);\n"
            "SELECT COUNT(*) AS n FROM t;\n"
            "\\q\n"
        )
        assert "2" in out

    def test_error_does_not_kill_shell(self):
        out = run_repl(
            "SELECT * FROM missing;\n"
            "CREATE TABLE t (a INT);\n"
            "INSERT INTO t VALUES (7);\n"
            "SELECT a FROM t;\n"
            "\\q\n"
        )
        assert "error:" in out
        assert "7" in out

    def test_unknown_meta(self):
        out = run_repl("\\bogus\n\\q\n")
        assert "unknown meta-command" in out

    def test_explain_in_repl(self):
        out = run_repl(
            "CREATE TABLE t (a INT PRIMARY KEY);\n"
            "INSERT INTO t VALUES (1);\n"
            "ANALYZE t;\n"
            "EXPLAIN SELECT a FROM t WHERE a = 1;\n"
            "\\q\n"
        )
        assert "IndexScan" in out or "SeqScan" in out

    def test_search_meta_command(self):
        out = run_repl(
            "\\search\n"
            "CREATE TABLE t (a INT, b INT);\n"
            "CREATE TABLE u (a INT, c INT);\n"
            "INSERT INTO t VALUES (1, 2), (2, 3);\n"
            "INSERT INTO u VALUES (1, 7), (2, 8);\n"
            "ANALYZE;\n"
            "EXPLAIN (SEARCH) SELECT t.b, u.c FROM t, u WHERE t.a = u.a;\n"
            "\\search\n"
            "\\q\n"
        )
        assert "no search trace yet" in out
        assert "ranked alternatives" in out
        assert "chosen:" in out

    def test_qlog_meta_command(self):
        out = run_repl(
            "\\qlog\n"
            "CREATE TABLE t (a INT);\n"
            "INSERT INTO t VALUES (1), (2), (3);\n"
            "SELECT a FROM t WHERE a > 1;\n"
            "\\qlog 5\n"
            "\\q\n"
        )
        assert "query log is empty" in out
        assert "q-err=" in out
        assert "SELECT a FROM t WHERE a > 1" in out

    def test_metrics_prom(self):
        out = run_repl(
            "CREATE TABLE t (a INT);\n"
            "INSERT INTO t VALUES (1);\n"
            "SELECT a FROM t;\n"
            "\\metrics prom\n"
            "\\q\n"
        )
        assert "# TYPE repro_queries_total counter" in out
        assert "repro_buffer_pool_hit_rate" in out
