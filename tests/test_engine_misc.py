"""Tests for engine odds and ends: EXPLAIN ANALYZE, transient hygiene,
strategy switching, view-expander internals."""

import pytest

from repro import Database
from repro.engine import EngineError
from repro.engine.views import ViewError, is_mergeable
from repro.sql import parse


@pytest.fixture
def db():
    db = Database(buffer_pages=64, work_mem_pages=8)
    db.execute("CREATE TABLE t (a INT PRIMARY KEY, b FLOAT)")
    db.insert_rows("t", [(i, float(i)) for i in range(200)])
    db.execute("ANALYZE t")
    return db


class TestExplainAnalyze:
    def test_shows_actuals(self, db):
        r = db.execute("EXPLAIN ANALYZE SELECT b FROM t WHERE a < 10")
        text = "\n".join(x[0] for x in r.rows)
        assert "actual time=" in text
        assert "rows=10" in text
        assert "execution:" in text
        assert "planning:" in text

    def test_plain_explain_has_no_actuals(self, db):
        r = db.execute("EXPLAIN SELECT b FROM t WHERE a < 10")
        text = "\n".join(x[0] for x in r.rows)
        assert "(actual" not in text

    def test_analyse_spelling(self, db):
        r = db.execute("EXPLAIN ANALYSE SELECT COUNT(*) AS n FROM t")
        assert any("(actual" in x[0] for x in r.rows)


class TestStrategyAndMetrics:
    def test_set_strategy(self, db):
        db.set_strategy("greedy")
        assert db.options.strategy == "greedy"
        db.query("SELECT COUNT(*) AS n FROM t")
        db.set_strategy("dp", use_interesting_orders=False)
        assert not db.options.use_interesting_orders

    def test_reset_io(self, db):
        db.query("SELECT COUNT(*) AS n FROM t")
        db.reset_io()
        assert db.disk.stats.reads == 0
        assert db.pool.stats.accesses == 0

    def test_as_dicts(self, db):
        r = db.query("SELECT a, b FROM t WHERE a = 1")
        assert r.as_dicts() == [{"a": 1, "b": 1.0}]

    def test_plan_cleans_up_transients(self, db):
        db.execute(
            "CREATE VIEW agg AS SELECT COUNT(*) AS n FROM t"
        )
        # plan()/explain()/EXPLAIN on a materialized-view query used to leak
        # the transient backing table; all of them must clean up now
        db.plan("SELECT n FROM agg")
        assert not any(
            x.name.startswith("__view") for x in db.catalog.tables()
        )
        db.explain("SELECT n FROM agg")
        db.execute("EXPLAIN SELECT n FROM agg")
        assert not any(
            x.name.startswith("__view") for x in db.catalog.tables()
        )
        assert db._live_transients == []
        db.drop_transients()  # still safe to call with nothing to drop


class TestViewExpanderInternals:
    def test_is_mergeable(self):
        assert is_mergeable(parse("SELECT a, b FROM t WHERE a > 1"))
        assert is_mergeable(parse("SELECT * FROM t"))
        assert not is_mergeable(parse("SELECT a FROM t GROUP BY a"))
        assert not is_mergeable(parse("SELECT DISTINCT a FROM t"))
        assert not is_mergeable(parse("SELECT a FROM t LIMIT 3"))
        assert not is_mergeable(parse("SELECT a FROM t ORDER BY a"))
        assert not is_mergeable(parse("SELECT a + 1 AS x FROM t"))

    def test_view_nesting_depth_guard(self, db):
        # self-referential views are impossible to create in order, but a
        # long chain must not recurse forever
        db.execute("CREATE VIEW v0 AS SELECT a FROM t")
        for i in range(1, 20):
            db.execute(f"CREATE VIEW v{i} AS SELECT a FROM v{i-1}")
        with pytest.raises((ViewError, EngineError, RecursionError)):
            db.query("SELECT a FROM v19")

    def test_moderate_nesting_works(self, db):
        db.execute("CREATE VIEW w0 AS SELECT a FROM t WHERE a < 100")
        for i in range(1, 5):
            db.execute(f"CREATE VIEW w{i} AS SELECT a FROM w{i-1} WHERE a < {100 - i}")
        r = db.query("SELECT COUNT(*) AS n FROM w4")
        assert r.rows == [(96,)]


class TestResultColumnsOnDDL:
    def test_ddl_returns_empty(self, db):
        r = db.execute("CREATE TABLE z (q INT)")
        assert r.rows == [] and r.columns == []

    def test_delete_returns_count_column(self, db):
        r = db.execute("DELETE FROM t WHERE a < 5")
        assert r.columns == ["deleted"] and r.rows == [(5,)]

    def test_update_returns_count_column(self, db):
        r = db.execute("UPDATE t SET b = 0.0 WHERE a < 10")
        assert r.columns == ["updated"]
