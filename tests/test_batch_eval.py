"""Property tests: batch expression evaluation matches row-at-a-time.

``compile_expr_batch`` / ``compile_predicate_batch`` must agree with
``compile_expr`` / ``compile_predicate`` on every row, including the
tricky corners: three-valued NULL logic, IN lists with NULLs, BETWEEN,
LIKE, and arithmetic edge cases (division by zero yields NULL).
"""

from hypothesis import given, settings, strategies as st

from repro.expr import (
    Between,
    InList,
    IsNull,
    Like,
    and_,
    col,
    compile_expr,
    compile_expr_batch,
    compile_predicate,
    compile_predicate_batch,
    eq,
    ge,
    gt,
    le,
    lit,
    lt,
    ne,
    not_,
    or_,
)
from repro.expr.nodes import ArithOp, Arithmetic, Negate
from repro.types import DataType, schema_of

SCHEMA = schema_of(
    "t",
    ("i", DataType.INT),
    ("j", DataType.INT),
    ("f", DataType.FLOAT),
    ("s", DataType.TEXT),
)

# NULL-heavy value pools: roughly a third of all values are NULL so
# three-valued logic paths get exercised constantly
ints = st.one_of(st.none(), st.none(), st.integers(-5, 5), st.integers(-5, 5))
floats = st.one_of(st.none(), st.floats(-4, 4, allow_nan=False))
texts = st.one_of(st.none(), st.sampled_from(["", "a", "ab", "ba%", "a_c"]))

rows = st.tuples(ints, ints, floats, texts)
row_lists = st.lists(rows, min_size=0, max_size=40)

int_leaf = st.one_of(
    st.sampled_from([col("i"), col("j")]),
    st.integers(-5, 5).map(lit),
)

int_exprs = st.recursive(
    int_leaf,
    lambda inner: st.builds(
        Arithmetic,
        st.sampled_from(list(ArithOp)),
        inner,
        inner,
    )
    | inner.map(Negate),
    max_leaves=6,
)

comparisons = st.builds(
    lambda make, a, b: make(a, b),
    st.sampled_from([eq, ne, lt, le, gt, ge]),
    int_exprs,
    int_exprs,
)

in_lists = st.builds(
    InList,
    int_exprs,
    st.lists(st.integers(-5, 5).map(lit), min_size=1, max_size=4).map(tuple),
    st.booleans(),
)

betweens = st.builds(Between, int_exprs, int_exprs, int_exprs, st.booleans())

likes = st.builds(
    Like,
    st.just(col("s")),
    st.sampled_from(["%", "a%", "%b", "_", "a_", "%a%", "ba\\%", ""]),
    st.booleans(),
)

null_tests = st.builds(
    IsNull,
    st.one_of(int_exprs, st.just(col("s")), st.just(col("f"))),
    st.booleans(),
)

predicates = st.recursive(
    st.one_of(comparisons, in_lists, betweens, likes, null_tests),
    lambda inner: st.builds(and_, inner, inner)
    | st.builds(or_, inner, inner)
    | inner.map(not_),
    max_leaves=8,
)


@settings(max_examples=300, deadline=None)
@given(expr=predicates, batch=row_lists)
def test_predicate_batch_matches_rows(expr, batch):
    row_fn = compile_expr(expr, SCHEMA)
    batch_fn = compile_expr_batch(expr, SCHEMA)
    assert batch_fn(batch) == [row_fn(row) for row in batch]

    row_pred = compile_predicate(expr, SCHEMA)
    batch_pred = compile_predicate_batch(expr, SCHEMA)
    assert batch_pred(batch) == [row_pred(row) for row in batch]


@settings(max_examples=300, deadline=None)
@given(expr=int_exprs, batch=row_lists)
def test_arithmetic_batch_matches_rows(expr, batch):
    row_fn = compile_expr(expr, SCHEMA)
    batch_fn = compile_expr_batch(expr, SCHEMA)
    assert batch_fn(batch) == [row_fn(row) for row in batch]


def test_empty_batch():
    expr = eq(col("i"), lit(1))
    assert compile_expr_batch(expr, SCHEMA)([]) == []
    assert compile_predicate_batch(expr, SCHEMA)([]) == []


def test_division_by_zero_is_null_in_batch():
    expr = Arithmetic(ArithOp.DIV, col("i"), col("j"))
    fn = compile_expr_batch(expr, SCHEMA)
    assert fn([(6, 0, None, None), (6, 3, None, None)]) == [None, 2]
    mod = Arithmetic(ArithOp.MOD, col("i"), col("j"))
    assert compile_expr_batch(mod, SCHEMA)([(6, 0, None, None)]) == [None]
