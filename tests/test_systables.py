"""System statistics through the engine's own SQL: the ``sys_stat_*``
virtual tables, wait-event accounting, and auto_explain capture.

The load-bearing property throughout: system tables are materialized
through the ordinary planner/executor path, so every SQL feature
(filters, joins, ORDER BY, aggregation, EXPLAIN) composes with them
with zero special cases — and the wait/access counters they expose
reconcile exactly with the storage layer's own statistics.
"""

import json

import pytest

from repro import Database, ObsConfig
from repro.obs import SYSTEM_TABLE_NAMES, AutoExplainConfig, WaitEventStats
from repro.optimizer import PlannerOptions


def _db(**kwargs):
    db = Database(buffer_pages=64, work_mem_pages=8, **kwargs)
    db.execute("CREATE TABLE t (a INT PRIMARY KEY, b FLOAT)")
    db.insert_rows("t", [(i, float(i % 13)) for i in range(200)])
    db.execute("ANALYZE t")
    return db


# -- the system tables compose with ordinary SQL -------------------------------


class TestSystemTableQueries:
    def test_every_system_table_is_selectable(self):
        db = _db()
        db.query("SELECT b FROM t WHERE a < 10")
        for name in SYSTEM_TABLE_NAMES:
            result = db.query(f"SELECT * FROM {name}")
            assert result.columns, name

    def test_stat_statements_aggregates_by_normalized_statement(self):
        db = _db()
        # three literal variants of one statement, one distinct statement
        for cutoff in (5, 50, 150):
            db.query(f"SELECT b FROM t WHERE a < {cutoff}")
        db.query("SELECT COUNT(*) AS n FROM t")
        r = db.query(
            "SELECT statement, calls, total_ms, mean_ms, p95_ms, rows "
            "FROM sys_stat_statements ORDER BY calls DESC"
        )
        assert r.rows[0][0] == "select b from t where a < ?"
        assert r.rows[0][1] == 3
        assert r.rows[0][2] > 0.0  # total_ms
        assert r.rows[0][2] == pytest.approx(r.rows[0][3] * 3)  # mean*calls
        assert r.rows[0][5] == 5 + 50 + 150  # rows across the three calls
        assert any(row[0] == "select count(*) as n from t" for row in r.rows)

    def test_stat_statements_worked_example_from_docs(self):
        db = _db()
        db.query("SELECT b FROM t WHERE a < 10")
        r = db.query(
            "SELECT * FROM sys_stat_statements ORDER BY total_ms DESC LIMIT 5"
        )
        assert len(r.rows) >= 1
        assert "total_ms" in r.columns and "statement" in r.columns

    def test_stat_tables_counts_scans_and_rows(self):
        db = _db()
        db.query("SELECT b FROM t WHERE b < 100.0")  # seq scan, all 200 rows
        db.query("SELECT b FROM t WHERE a = 7")  # index scan on the pk
        r = db.query(
            "SELECT table_name, seq_scans, index_scans, rows_read "
            "FROM sys_stat_tables WHERE table_name = 't'"
        )
        assert len(r.rows) == 1
        _, seq_scans, index_scans, rows_read = r.rows[0]
        assert seq_scans >= 1
        assert index_scans >= 1
        assert rows_read >= 200

    def test_stat_tables_hides_system_and_transient_tables(self):
        db = _db()
        r = db.query("SELECT table_name FROM sys_stat_tables")
        names = {row[0] for row in r.rows}
        assert names == {"t"}

    def test_stat_metrics_exposes_registry_instruments(self):
        db = _db()
        db.query("SELECT COUNT(*) AS n FROM t")
        r = db.query(
            "SELECT name, kind, value FROM sys_stat_metrics "
            "WHERE name = 'queries_total'"
        )
        assert r.rows == [("queries_total", "counter", 1.0)]
        r = db.query(
            "SELECT name FROM sys_stat_metrics WHERE kind = 'histogram'"
        )
        names = {row[0] for row in r.rows}
        assert "execution_ms.count" in names and "execution_ms.p95" in names

    def test_activity_shows_the_observing_statement_itself(self):
        db = _db()
        r = db.query("SELECT query_id, phase, sql FROM sys_stat_activity")
        # the snapshot is taken while the observing statement plans, so it
        # sees exactly one live statement: itself, still in 'planning'
        assert len(r.rows) == 1
        assert r.rows[0][1] == "planning"
        assert "sys_stat_activity" in r.rows[0][2]
        # and nothing is live once the statement finished
        assert len(db.activity) == 0

    def test_joins_and_order_by_compose(self):
        db = _db()
        db.query("SELECT b FROM t WHERE a < 10")
        r = db.query(
            "SELECT w.event, m.value FROM sys_stat_waits w, sys_stat_metrics m "
            "WHERE m.name = 'queries_total' ORDER BY w.event"
        )
        events = [row[0] for row in r.rows]
        assert events == sorted(events) and len(events) >= 1
        # self-join: one consistent snapshot on both sides
        r = db.query(
            "SELECT a.event FROM sys_stat_waits a JOIN sys_stat_waits b "
            "ON a.event = b.event"
        )
        assert len(r.rows) == len(events)

    def test_aggregation_over_system_table(self):
        db = _db()
        db.query("SELECT b FROM t WHERE a < 10")
        r = db.query(
            "SELECT wait_class, SUM(total_ms) AS ms FROM sys_stat_waits "
            "GROUP BY wait_class"
        )
        classes = {row[0] for row in r.rows}
        assert "exec" in classes

    def test_explain_prices_system_table_like_a_real_scan(self):
        db = _db()
        text = db.explain("SELECT * FROM sys_stat_waits ORDER BY total_ms DESC")
        assert "SeqScan(sys_stat_waits" in text

    def test_transients_are_dropped_after_the_statement(self):
        db = _db()
        db.query("SELECT * FROM sys_stat_waits")
        assert not db.catalog.has_table("sys_stat_waits")
        assert db.catalog.is_system_table("sys_stat_waits")

    def test_user_table_shadows_the_provider(self):
        db = _db()
        db.execute("CREATE TABLE sys_stat_waits (event TEXT, n INT)")
        db.execute("INSERT INTO sys_stat_waits VALUES ('mine', 1)")
        r = db.query("SELECT event, n FROM sys_stat_waits")
        assert r.rows == [("mine", 1)]
        assert not db.catalog.is_system_table("sys_stat_waits")
        # the user table survives the statement (it is not a transient)
        assert db.catalog.has_table("sys_stat_waits")

    def test_subquery_over_system_table(self):
        db = _db()
        db.query("SELECT b FROM t WHERE a < 10")
        r = db.query(
            "SELECT event FROM sys_stat_waits WHERE total_ms >= "
            "(SELECT MIN(total_ms) FROM sys_stat_waits)"
        )
        assert len(r.rows) >= 1

    def test_system_tables_report_zero_when_obs_off(self):
        db = _db(obs=ObsConfig.off())
        db.query("SELECT b FROM t WHERE a < 10")
        assert db.pool.waits is None
        r = db.query("SELECT * FROM sys_stat_waits")
        assert r.rows == []
        r = db.query("SELECT * FROM sys_stat_statements")
        assert r.rows == []  # query log disabled


# -- wait-event accounting ----------------------------------------------------


class TestWaitAccounting:
    def test_io_read_waits_reconcile_exactly_with_disk_reads(self):
        db = _db()
        db.pool.clear()
        db.reset_io()
        db.waits.reset()
        result = db.query("SELECT b FROM t WHERE b < 100.0")
        assert result.io.reads > 0
        assert db.waits.count("io.read") == result.io.reads
        assert db.waits.seconds("io.read") > 0.0

    def test_io_read_waits_reconcile_with_explain_analyze_actuals(self):
        db = _db()
        db.pool.clear()
        db.waits.reset()
        before = db.waits.snapshot()
        result = db._run_select(
            __import__("repro.sql", fromlist=["parse"]).parse(
                "SELECT b FROM t WHERE b < 100.0"
            ),
            sql="SELECT b FROM t WHERE b < 100.0",
            analyze=True,
        )
        delta = db.waits.delta(before)
        # the plan root's inclusive actual_reads is every page the
        # execution read — the same events the wait registry timed
        count, seconds = delta["io.read"]
        assert count == result.plan.actual_reads == result.io.reads
        assert seconds > 0.0

    def test_exec_cpu_recorded_per_user_query(self):
        db = _db()
        db.waits.reset()
        db.query("SELECT COUNT(*) AS n FROM t")
        assert db.waits.count("exec.cpu") == 1
        db.query("SELECT COUNT(*) AS n FROM t")
        assert db.waits.count("exec.cpu") == 2

    def test_exchange_waits_and_worker_deltas_fold_into_parent(self):
        db = _db(options=PlannerOptions(parallel_degree=2, force_parallel=True))
        db.pool.clear()
        db.reset_io()
        db.waits.reset()
        access0 = db.table("t").access.snapshot()
        result = db.query("SELECT b FROM t WHERE b < 100.0")
        if not result.exec_metrics.parallel_workers:
            pytest.skip("no parallel plan chosen for this shape")
        # worker I/O waits shipped back: counts reconcile exactly
        assert db.waits.count("io.read") == db.disk.stats.reads
        # the parallel region's lifecycle events were timed
        workers = result.exec_metrics.parallel_workers
        assert db.waits.count("exchange.startup") == workers
        assert db.waits.count("exchange.recv") == workers
        assert db.waits.count("exchange.send") == workers
        # per-table access deltas folded: the workers' scans are visible
        seq, _, rows_read, _, _, _ = db.table("t").access.delta(access0)
        assert seq == workers
        assert rows_read == 200

    def test_wait_registry_round_trips_and_renders_rows(self):
        stats = WaitEventStats()
        stats.record("io.read", 0.25, count=5)
        stats.record("lock.buffer", 0.01)
        back = WaitEventStats.from_json(stats.to_json())
        assert back.snapshot() == stats.snapshot()
        rows = stats.rows()
        assert [r[0] for r in rows] == ["io.read", "lock.buffer"]
        event, count, total_ms, mean_ms = rows[0]
        assert count == 5
        assert total_ms == pytest.approx(250.0)
        assert mean_ms == pytest.approx(50.0)

    def test_metrics_snapshot_carries_waits(self):
        db = _db()
        db.query("SELECT COUNT(*) AS n FROM t")
        snap = db.metrics_snapshot()
        assert "exec.cpu" in snap["waits"]
        json.dumps(snap)  # stays JSON-safe
        prom = db.metrics_snapshot(format="prom")
        assert "repro_wait_exec_cpu_seconds" in prom
        assert "repro_wait_exec_cpu_count" in prom


# -- auto_explain -------------------------------------------------------------


class TestAutoExplain:
    def test_disabled_by_default(self):
        db = _db()
        db.query("SELECT b FROM t WHERE a < 10")
        assert len(db.auto_explain) == 0

    def test_captures_exactly_statements_at_or_above_threshold(self):
        db = _db()
        db.auto_explain.configure(enabled=True, threshold_ms=0.0)
        db.query("SELECT b FROM t WHERE a < 10")
        assert len(db.auto_explain) == 1
        db.auto_explain.configure(threshold_ms=1e9)  # nothing is this slow
        db.query("SELECT b FROM t WHERE a < 20")
        assert len(db.auto_explain) == 1  # unchanged: below threshold
        entry = db.auto_explain.entries()[0]
        assert entry["sql"] == "SELECT b FROM t WHERE a < 10"
        assert entry["rows"] == 10
        assert "SeqScan" in entry["plan"] or "IndexScan" in entry["plan"]

    def test_capture_carries_per_node_timing_when_analyze(self):
        db = _db()
        db.auto_explain.configure(enabled=True, threshold_ms=0.0, analyze=True)
        db.query("SELECT b FROM t WHERE a < 10")
        entry = db.auto_explain.entries()[0]
        # FULL instrumentation was forced, so actuals include timing
        assert "actual" in entry["plan"]
        assert "ms" in entry["plan"]

    def test_internal_statements_are_not_captured(self):
        db = _db()
        db.auto_explain.configure(enabled=True, threshold_ms=0.0)
        db.execute("CREATE VIEW v AS SELECT a, b FROM t WHERE b < 3.0")
        db.query("SELECT COUNT(*) AS n FROM v")
        captured = [e["sql"] for e in db.auto_explain.entries()]
        # only the user-issued statement, not the view materialization
        assert captured == ["SELECT COUNT(*) AS n FROM v"]

    def test_capture_counter_in_metrics(self):
        db = _db()
        db.auto_explain.configure(enabled=True, threshold_ms=0.0)
        db.query("SELECT b FROM t WHERE a < 10")
        snap = db.metrics_snapshot()
        assert snap["counters"]["slow_queries_captured_total"] == 1.0
        assert snap["auto_explain"]["captured_total"] == 1

    def test_ring_is_bounded(self):
        db = _db()
        db.auto_explain.configure(enabled=True, threshold_ms=0.0, capacity=3)
        for i in range(6):
            db.query(f"SELECT b FROM t WHERE a < {i + 1}")
        assert len(db.auto_explain) == 3
        assert db.auto_explain.captured_total == 6

    def test_jsonl_persistence_and_compaction(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        db = _db(
            obs=ObsConfig(
                auto_explain=AutoExplainConfig(
                    enabled=True, threshold_ms=0.0, path=path, capacity=2
                )
            )
        )
        from repro.obs import AutoExplain

        for i in range(7):  # > 2x capacity: forces a compaction
            db.query(f"SELECT b FROM t WHERE a < {i + 1}")
        on_disk = AutoExplain.load(path)
        assert 1 <= len(on_disk) <= 2 * 2 + 1  # bounded, never unbounded
        assert all("plan" in e and "sql" in e for e in on_disk)
        # the ring holds the 2 most recent; the tail of the file agrees
        ring = db.auto_explain.entries()
        assert on_disk[-len(ring):] == ring

    def test_configure_rejects_unknown_options(self):
        db = _db()
        with pytest.raises(ValueError):
            db.auto_explain.configure(nonsense=True)

    def test_slow_queries_queryable_through_sql_metrics(self):
        db = _db()
        db.auto_explain.configure(enabled=True, threshold_ms=0.0)
        db.query("SELECT b FROM t WHERE a < 10")
        r = db.query(
            "SELECT value FROM sys_stat_metrics "
            "WHERE name = 'slow_queries_captured_total'"
        )
        assert r.rows == [(1.0,)]


# -- activity progress --------------------------------------------------------


class TestActivityProgress:
    def test_run_plan_updates_activity_entry(self):
        db = _db()
        entry = db.activity.begin("SELECT b FROM t")
        entry.phase = "executing"
        plan = db.plan("SELECT b FROM t")
        result = db.run_plan(plan, activity=entry)
        assert entry.rows_produced == result.rowcount == 200
        assert entry.current_operator != ""
        assert entry.elapsed_ms >= 0.0
        db.activity.finish(entry)
        assert len(db.activity) == 0
