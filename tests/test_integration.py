"""Cross-module integration tests: the whole stack under one roof.

The heavyweight invariant: for a pool of nontrivial queries over the
wholesale schema, every join-order strategy, both DP modes, pushdown
on/off, and different memory configurations all produce identical result
sets — while the instrumentation (I/O counters, actual-row annotations)
stays consistent with reality.
"""

import math

import pytest

from repro import Database
from repro.optimizer import PlannerOptions
from repro.physical import walk_plan
from repro.workloads import WHOLESALE_QUERIES, WholesaleScale, load_wholesale


def rows_equal(a, b, rel_tol=1e-9):
    if len(a) != len(b):
        return False
    for ra, rb in zip(sorted(a, key=repr), sorted(b, key=repr)):
        for x, y in zip(ra, rb):
            if isinstance(x, float) and isinstance(y, float):
                if not math.isclose(x, y, rel_tol=rel_tol, abs_tol=1e-9):
                    return False
            elif x != y:
                return False
    return True


@pytest.fixture(scope="module")
def wh():
    db = Database(buffer_pages=96, work_mem_pages=8)
    load_wholesale(db, WholesaleScale.tiny(), seed=13)
    return db


class TestStrategyAgreementOnWholesale:
    @pytest.mark.parametrize("name", sorted(WHOLESALE_QUERIES))
    def test_strategies_agree(self, wh, name):
        sql = WHOLESALE_QUERIES[name]
        reference = None
        for strategy in ("dp", "dp-bushy", "greedy", "syntactic", "random"):
            wh.options = PlannerOptions(strategy=strategy)
            rows = wh.query(sql).rows
            if reference is None:
                reference = rows
            else:
                assert rows_equal(rows, reference), strategy

    @pytest.mark.parametrize(
        "name", ["Q2_region_revenue", "Q6_five_way", "Q7_selective_point"]
    )
    def test_memory_configs_agree(self, name):
        sql = WHOLESALE_QUERIES[name]
        results = []
        for buffer_pages, work_mem in ((16, 4), (64, 8), (512, 64)):
            db = Database(buffer_pages=buffer_pages, work_mem_pages=work_mem)
            load_wholesale(db, WholesaleScale.tiny(), seed=13)
            results.append(db.query(sql).rows)
        assert rows_equal(results[0], results[1])
        assert rows_equal(results[1], results[2])


class TestInstrumentationConsistency:
    def test_actual_rows_match_result(self, wh):
        wh.options = PlannerOptions(strategy="dp")
        plan = wh.plan(WHOLESALE_QUERIES["Q3_top_customers"])
        result = wh.run_plan(plan, cold=True)
        assert plan.actual_rows == result.rowcount

    def test_cold_io_at_least_table_pages(self, wh):
        plan = wh.plan("SELECT COUNT(*) AS n FROM lineitem")
        result = wh.run_plan(plan, cold=True)
        assert result.io.reads >= wh.table("lineitem").num_pages

    def test_warm_run_cheaper_than_cold(self, wh):
        plan = wh.plan("SELECT COUNT(*) AS n FROM orders")
        cold = wh.run_plan(plan, cold=True)
        warm = wh.run_plan(plan, cold=False)
        assert warm.io.reads <= cold.io.reads

    def test_every_node_annotated(self, wh):
        plan = wh.plan(WHOLESALE_QUERIES["Q6_five_way"])
        for node in walk_plan(plan):
            assert node.est_cost is not None
            assert node.est_rows >= 0

    def test_explain_renders_all_nodes(self, wh):
        plan = wh.plan(WHOLESALE_QUERIES["Q6_five_way"])
        text = plan.pretty()
        assert text.count("\n") + 1 == sum(1 for _ in walk_plan(plan))


class TestMixedWorkload:
    def test_ddl_dml_query_cycle(self):
        db = Database(buffer_pages=64, work_mem_pages=8)
        db.execute("CREATE TABLE log (id INT PRIMARY KEY, level TEXT, ts INT)")
        for batch in range(5):
            values = ", ".join(
                f"({batch * 100 + i}, 'info', {batch})" for i in range(100)
            )
            db.execute(f"INSERT INTO log VALUES {values}")
        db.execute("ANALYZE log")
        assert db.query("SELECT COUNT(*) AS n FROM log").rows == [(500,)]
        r = db.query("SELECT id FROM log WHERE id BETWEEN 250 AND 259")
        assert len(r.rows) == 10
        db.execute("DROP TABLE log")
        assert not db.catalog.has_table("log")

    def test_deletes_reflected_through_sql(self):
        db = Database(buffer_pages=64)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.insert_rows("t", [(i, i * 2) for i in range(100)])
        info = db.table("t")
        # delete via storage layer, maintaining the index by hand
        pos = info.schema.index_of("id")
        doomed = [
            (rid, row) for rid, row in info.heap.scan() if row[pos] < 10
        ]
        for rid, row in doomed:
            info.heap.delete(rid)
            info.index_on("id").structure.delete(row[pos], rid)
        db.execute("ANALYZE t")
        assert db.query("SELECT COUNT(*) AS n FROM t").rows == [(90,)]
        assert db.query("SELECT v FROM t WHERE id = 5").rows == []
        assert db.query("SELECT v FROM t WHERE id = 50").rows == [(100,)]

    def test_growing_table_replans(self):
        db = Database(buffer_pages=128, work_mem_pages=8)
        db.execute("CREATE TABLE g (id INT PRIMARY KEY, v INT)")
        db.insert_rows("g", [(i, i) for i in range(50)])
        db.execute("ANALYZE g")
        small_plan = db.plan("SELECT COUNT(*) AS n FROM g WHERE id < 10")
        db.insert_rows("g", [(i, i) for i in range(50, 20050)])
        db.execute("ANALYZE g")
        big_plan = db.plan("SELECT COUNT(*) AS n FROM g WHERE id < 10")
        # the big table should pick an index path (clustered range scan, or
        # index-only when the key covers the query) for the narrow range
        assert "Index" in big_plan.pretty()
        assert db.query("SELECT COUNT(*) AS n FROM g WHERE id < 10").rows == [
            (10,)
        ]
        assert small_plan.total_est_cost() <= big_plan.total_est_cost() * 10


class TestBufferPolicyEndToEnd:
    @pytest.mark.parametrize("policy", ["lru", "clock", "mru", "fifo"])
    def test_policies_answer_identically(self, policy):
        from repro.storage import Replacement

        db = Database(
            buffer_pages=8,
            work_mem_pages=4,
            replacement=Replacement(policy),
        )
        db.execute("CREATE TABLE t (id INT, v FLOAT)")
        db.insert_rows("t", [(i, float(i)) for i in range(2000)])
        db.execute("ANALYZE t")
        r = db.query("SELECT COUNT(*) AS n, SUM(v) AS s FROM t")
        assert r.rows[0][0] == 2000
        assert r.rows[0][1] == pytest.approx(sum(range(2000)))
