"""Optimizer observability: search traces, plan baselines/diffs, the
feedback store, q-error edge cases, and the Prometheus exporter."""

import json
import math

import pytest

from repro import Database
from repro.obs import (
    FeedbackStore,
    MetricsRegistry,
    PlanBaselineStore,
    SearchTrace,
    feedback_key,
    normalize_statement,
    normalized_predicate,
    plan_diff,
    scan_key,
    statement_fingerprint,
)
from repro.obs.querylog import q_error


@pytest.fixture()
def db():
    db = Database(buffer_pages=64, work_mem_pages=8)
    db.execute("CREATE TABLE a (id INT PRIMARY KEY, bid INT, v INT)")
    db.execute("CREATE TABLE b (id INT PRIMARY KEY, cid INT)")
    db.execute("CREATE TABLE c (id INT PRIMARY KEY, w INT)")
    for i in range(200):
        db.execute(
            f"INSERT INTO a VALUES ({i}, {i % 40}, {i % 7})"
        )
    for i in range(40):
        db.execute(f"INSERT INTO b VALUES ({i}, {i % 10})")
    for i in range(10):
        db.execute(f"INSERT INTO c VALUES ({i}, {i * 3})")
    db.execute("ANALYZE")
    return db


THREE_WAY = (
    "SELECT a.id FROM a, b, c "
    "WHERE a.bid = b.id AND b.cid = c.id AND a.v = 3"
)


def explain_text(db, sql):
    """EXPLAIN emits one output row per line; join them back."""
    return "\n".join(row[0] for row in db.execute(sql).rows)


class TestSearchTrace:
    def test_explain_verbose_search_ranks_alternatives(self, db):
        text = explain_text(db, f"EXPLAIN (VERBOSE SEARCH) {THREE_WAY}")
        assert "Search:" in text
        assert "ranked alternatives" in text
        assert "access paths:" in text
        assert "<= chosen" in text
        # at least two ranked, costed alternatives for the full join set
        assert "  1. " in text and "  2. " in text
        assert text.count("cost=") >= 2
        # verbose adds the intermediate memo
        assert "memo (intermediate subsets):" in text

    def test_plain_explain_has_no_search_section(self, db):
        text = explain_text(db, f"EXPLAIN {THREE_WAY}")
        assert "Search:" not in text

    def test_last_search_populated_and_json_round_trips(self, db):
        db.execute(f"EXPLAIN (SEARCH) {THREE_WAY}")
        trace = db.last_search
        assert trace is not None and len(trace) >= 1
        region = trace.regions[0]
        assert len(region.relations) == 3
        assert any(alt.kept for alt in region.alts)
        assert any(not alt.kept for alt in region.alts)

        clone = SearchTrace.from_json(trace.to_json())
        assert clone.to_dict() == trace.to_dict()
        assert clone.render(verbose=True) == trace.render(verbose=True)

    def test_kept_and_pruned_reasons_recorded(self, db):
        db.execute(f"EXPLAIN (SEARCH) {THREE_WAY}")
        reasons = {a.reason for a in db.last_search.regions[0].alts}
        assert any("first plan" in r for r in reasons)
        assert any("dominated" in r for r in reasons)


class TestPlanBaselines:
    def test_same_plan_never_flags_change(self, db):
        sql = "SELECT a.id FROM a WHERE a.v = 3"
        for _ in range(3):
            db.query(sql)
        assert len(db.baselines) == 1
        assert db.baselines.changes() == []
        assert all(not r.plan_changed for r in db.query_log.entries())

    def test_literals_share_one_baseline(self, db):
        db.query("SELECT a.id FROM a WHERE a.v = 3")
        db.query("SELECT a.id FROM a WHERE a.v = 5")
        assert len(db.baselines) == 1

    def test_store_emits_change_and_advances(self):
        store = PlanBaselineStore()
        fp = statement_fingerprint("SELECT 1")
        assert store.observe(fp, "SELECT 1", "planA", 10.0, "A", 5.0) is None
        change = store.observe(fp, "SELECT 1", "planB", 25.0, "B", 9.0)
        assert change is not None
        assert change.is_regression and change.cost_delta == pytest.approx(15.0)
        # the new plan becomes the baseline: re-observing it is quiet
        assert store.observe(fp, "SELECT 1", "planB", 25.0, "B", 9.0) is None
        improvement = store.observe(fp, "SELECT 1", "planA", 10.0, "A", 4.0)
        assert improvement is not None and not improvement.is_regression
        assert store.regressions() == [change]

    def test_explain_diff_without_baseline(self, db):
        text = explain_text(
            db, "EXPLAIN DIFF SELECT a.id FROM a WHERE a.v = 3"
        )
        assert "no stored baseline" in text

    def test_explain_diff_identical_after_run(self, db):
        sql = "SELECT a.id FROM a WHERE a.v = 3"
        db.query(sql)
        text = explain_text(db, f"EXPLAIN DIFF {sql}")
        assert "(plans are identical)" in text
        # read-only: the diff itself must not advance the baseline
        assert len(db.baselines) == 1

    def test_normalize_statement(self):
        a = normalize_statement("SELECT x FROM t WHERE a = 5 AND s = 'hi'")
        b = normalize_statement(
            "select X  from T where A = 9   and S = 'it''s'"
        )
        assert a == b
        assert "?" in a and "5" not in a
        assert statement_fingerprint(
            "EXPLAIN ANALYZE SELECT x FROM t"
        ) == statement_fingerprint("SELECT x FROM t")


class TestPlanDiff:
    def test_diff_marks_added_and_removed_lines(self):
        out = plan_diff(
            "SeqScan(a)\n  Filter(x)", "IndexScan(a)\n  Filter(x)",
            old_cost=10.0, new_cost=4.0,
        )
        assert "- SeqScan(a)" in out
        assert "+ IndexScan(a)" in out
        assert "cost: 10.0 -> 4.0 (-6.0)" in out

    def test_identical_plans(self):
        out = plan_diff("SeqScan(a)", "SeqScan(a)")
        assert "(plans are identical)" in out


class TestFeedback:
    def test_keys_are_literal_free_and_order_insensitive(self, db):
        from repro.sql import parse_expression

        k1 = feedback_key(
            ["a AS a", "b AS b"],
            [parse_expression("a.v = 3"), parse_expression("a.bid = b.id")],
        )
        k2 = feedback_key(
            ["b AS b", "a AS a"],
            [parse_expression("a.bid = b.id"), parse_expression("a.v = 99")],
        )
        assert k1 == k2
        assert scan_key("a", "a", []) != k1
        pred = normalized_predicate(parse_expression("a.v = 3"))
        assert "3" not in pred and "?" in pred

    def test_store_learns_and_round_trips(self):
        store = FeedbackStore()
        for _ in range(4):
            store.record("k1", estimated=10.0, actual=200.0)
        assert store.correction("k1") == pytest.approx(20.0)
        assert store.correction("unknown") == 1.0
        # clamped to the configured bound
        store.record("k2", estimated=1.0, actual=10_000.0)
        assert store.correction("k2") == 64.0
        clone = FeedbackStore.from_json(store.to_json())
        assert clone.correction("k1") == pytest.approx(20.0)
        assert len(clone) == len(store)

    def test_database_harvests_after_queries(self, db):
        db.query("SELECT a.id FROM a WHERE a.v = 3")
        assert len(db.feedback) >= 1
        keys = list(db.feedback.entries())
        assert all(len(k) == 16 for k in keys)

    def test_limit_queries_are_not_harvested(self, db):
        before = len(db.feedback)
        db.query("SELECT a.id FROM a WHERE a.v = 3 LIMIT 2")
        assert len(db.feedback) == before

    def test_feedback_corrects_estimate_not_result(self, db):
        from repro.optimizer import PlannerOptions

        sql = "SELECT a.id FROM a WHERE a.v = 3"
        cold = db.query(sql)
        db.options = PlannerOptions(use_feedback=True)
        warm = db.query(sql)
        db.options = PlannerOptions()
        assert sorted(warm.rows) == sorted(cold.rows)
        assert warm.plan.q_error() <= cold.plan.q_error()


class TestQErrorEdgeCases:
    def test_exact(self):
        assert q_error(50.0, 50.0) == 1.0

    def test_zero_counts_as_one_row(self):
        assert q_error(0.0, 0.0) == 1.0
        assert q_error(0.0, 10.0) == 10.0
        assert q_error(10.0, 0.0) == 10.0

    def test_non_finite_inputs(self):
        assert q_error(math.nan, 5.0) == math.inf
        assert q_error(5.0, math.inf) == math.inf
        assert q_error(math.inf, math.inf) == math.inf

    def test_top_misestimates_alias(self, db):
        db.query("SELECT a.id FROM a WHERE a.v = 3")
        assert db.query_log.top_misestimates(5) == db.query_log.worst_estimates(5)


class TestPrometheusExport:
    def test_render_format(self):
        registry = MetricsRegistry()
        registry.counter("queries_total").inc(3)
        registry.histogram("latency_ms").observe(5.0)
        registry.histogram("latency_ms").observe(5_000_000.0)
        text = registry.render_prometheus()
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_queries_total 3" in text
        assert '# TYPE repro_latency_ms histogram' in text
        assert 'repro_latency_ms_bucket{le="+Inf"} 2' in text
        assert "repro_latency_ms_count 2" in text
        assert text.endswith("\n")
        # buckets are cumulative: every count <= the +Inf count
        bucket_counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_latency_ms_bucket")
        ]
        assert bucket_counts == sorted(bucket_counts)

    def test_database_snapshot_prom(self, db):
        db.query("SELECT a.id FROM a WHERE a.v = 3")
        text = db.metrics_snapshot(format="prom")
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_buffer_pool_hit_rate" in text
        assert "repro_feedback_entries" in text

    def test_unknown_format_rejected(self, db):
        from repro.engine import EngineError

        with pytest.raises(EngineError):
            db.metrics_snapshot(format="xml")


class TestQueryLogPlanFields:
    def test_records_carry_plan_change_fields(self, db):
        db.query("SELECT a.id FROM a WHERE a.v = 3")
        record = db.query_log.entries()[-1]
        assert record.plan_changed is False
        assert record.baseline_cost_delta == 0.0
        assert db.query_log.plan_changes() == []
