"""Property tests: columnar kernels match row-at-a-time evaluation.

``compile_expr_columnar`` / ``compile_predicate_columnar`` must agree
with ``compile_expr`` / ``compile_predicate`` on every row — values AND
Python types (an ``int`` result must stay ``int``, never ``float`` or
``numpy.int64``) — including three-valued NULL logic, IN lists with
NULLs, BETWEEN, LIKE, mixed INT/FLOAT coercion, and division by zero
yielding NULL.  The round-trip ``from_rows``/``to_rows`` conversion is
asserted loss-free on the same batches.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.executor.columnar import ColumnBatch, as_row_batch
from repro.expr import (
    Between,
    InList,
    IsNull,
    Like,
    and_,
    col,
    compile_expr,
    compile_predicate,
    eq,
    ge,
    gt,
    le,
    lit,
    lt,
    ne,
    not_,
    or_,
)
from repro.expr.nodes import ArithOp, Arithmetic, Negate
from repro.expr.vector import (
    compile_expr_columnar,
    compile_predicate_columnar,
)
from repro.types import DataType, schema_of

SCHEMA = schema_of(
    "t",
    ("i", DataType.INT),
    ("j", DataType.INT),
    ("f", DataType.FLOAT),
    ("s", DataType.TEXT),
)

# NULL-heavy value pools: roughly a third of all values are NULL so
# three-valued logic paths get exercised constantly
ints = st.one_of(st.none(), st.none(), st.integers(-5, 5), st.integers(-5, 5))
floats = st.one_of(st.none(), st.floats(-4, 4, allow_nan=False))
texts = st.one_of(st.none(), st.sampled_from(["", "a", "ab", "ba%", "a_c"]))

rows = st.tuples(ints, ints, floats, texts)
row_lists = st.lists(rows, min_size=0, max_size=40)

# numeric leaves mix INT columns, a FLOAT column and both literal kinds,
# so coercion edges (INT op FLOAT) are constantly exercised
num_leaf = st.one_of(
    st.sampled_from([col("i"), col("j"), col("f")]),
    st.integers(-5, 5).map(lit),
    st.floats(-4, 4, allow_nan=False).map(lit),
)

num_exprs = st.recursive(
    num_leaf,
    lambda inner: st.builds(
        Arithmetic,
        st.sampled_from(list(ArithOp)),
        inner,
        inner,
    )
    | inner.map(Negate),
    max_leaves=6,
)

comparisons = st.builds(
    lambda make, a, b: make(a, b),
    st.sampled_from([eq, ne, lt, le, gt, ge]),
    num_exprs,
    num_exprs,
)

text_comparisons = st.builds(
    lambda make, b: make(col("s"), b),
    st.sampled_from([eq, ne, lt, le, gt, ge]),
    st.sampled_from(["", "a", "ab", "zz"]).map(lit),
)

in_lists = st.builds(
    InList,
    num_exprs,
    st.lists(
        st.one_of(st.integers(-5, 5).map(lit), st.just(lit(None))),
        min_size=1,
        max_size=4,
    ).map(tuple),
    st.booleans(),
)

text_in_lists = st.builds(
    InList,
    st.just(col("s")),
    st.lists(
        st.one_of(
            st.sampled_from(["", "a", "ab"]).map(lit), st.just(lit(None))
        ),
        min_size=1,
        max_size=3,
    ).map(tuple),
    st.booleans(),
)

betweens = st.builds(Between, num_exprs, num_exprs, num_exprs, st.booleans())

likes = st.builds(
    Like,
    st.just(col("s")),
    st.sampled_from(["%", "a%", "%b", "_", "a_", "%a%", "ba\\%", ""]),
    st.booleans(),
)

null_tests = st.builds(
    IsNull,
    st.one_of(num_exprs, st.just(col("s"))),
    st.booleans(),
)

predicates = st.recursive(
    st.one_of(
        comparisons,
        text_comparisons,
        in_lists,
        text_in_lists,
        betweens,
        likes,
        null_tests,
    ),
    lambda inner: st.builds(and_, inner, inner)
    | st.builds(or_, inner, inner)
    | inner.map(not_),
    max_leaves=8,
)


def eval_columnar(expr, batch):
    """Run the columnar kernel and normalize to a Python value list."""
    kernel = compile_expr_columnar(expr, SCHEMA)
    data, valid = kernel(ColumnBatch.from_rows(SCHEMA, batch))
    values = data.tolist()
    if valid is not None:
        for i in np.flatnonzero(~valid).tolist():
            values[i] = None
    return values


def assert_identical(got, expected):
    assert got == expected
    # bit-identity includes Python types: 1 vs 1.0 vs True must not mix
    assert [type(v) for v in got] == [type(v) for v in expected]


@settings(max_examples=300, deadline=None)
@given(expr=predicates, batch=row_lists)
def test_predicate_columnar_matches_rows(expr, batch):
    row_fn = compile_expr(expr, SCHEMA)
    assert_identical(eval_columnar(expr, batch), [row_fn(r) for r in batch])

    row_pred = compile_predicate(expr, SCHEMA)
    mask = compile_predicate_columnar(expr, SCHEMA)(
        ColumnBatch.from_rows(SCHEMA, batch)
    )
    assert mask.tolist() == [row_pred(r) for r in batch]


@settings(max_examples=300, deadline=None)
@given(expr=num_exprs, batch=row_lists)
def test_arithmetic_columnar_matches_rows(expr, batch):
    row_fn = compile_expr(expr, SCHEMA)
    assert_identical(eval_columnar(expr, batch), [row_fn(r) for r in batch])


@settings(max_examples=200, deadline=None)
@given(batch=row_lists)
def test_row_round_trip_is_lossless(batch):
    cb = ColumnBatch.from_rows(SCHEMA, batch)
    assert len(cb) == len(batch)
    back = cb.to_rows()
    assert back == batch
    for row, orig in zip(back, batch):
        assert [type(v) for v in row] == [type(v) for v in orig]
    # as_row_batch passes lists through untouched and converts batches
    assert as_row_batch(batch) is batch
    assert as_row_batch(cb) == batch


def test_empty_batch():
    expr = eq(col("i"), lit(1))
    assert eval_columnar(expr, []) == []
    cb = ColumnBatch.from_rows(SCHEMA, [])
    assert not cb
    assert cb.to_rows() == []


def test_division_by_zero_is_null():
    expr = Arithmetic(ArithOp.DIV, col("i"), col("j"))
    got = eval_columnar(expr, [(6, 0, None, None), (6, 3, None, None)])
    assert got == [None, 2.0]
    mod = Arithmetic(ArithOp.MOD, col("i"), col("j"))
    assert eval_columnar(mod, [(6, 0, None, None)]) == [None]


def test_big_ints_degrade_to_object_lanes():
    huge = 2**70
    batch = [(huge, 1, None, None), (None, 2, None, None)]
    cb = ColumnBatch.from_rows(SCHEMA, batch)
    assert cb.to_rows() == batch
    expr = Arithmetic(ArithOp.ADD, col("i"), col("j"))
    assert eval_columnar(expr, batch) == [huge + 1, None]


def test_take_filter_slice_concat():
    batch = [(1, 10, 1.5, "a"), (2, None, None, "b"), (3, 30, 3.5, None)]
    cb = ColumnBatch.from_rows(SCHEMA, batch)
    assert cb.take(np.array([2, 0])).to_rows() == [batch[2], batch[0]]
    assert cb.filter(np.array([True, False, True])).to_rows() == [
        batch[0],
        batch[2],
    ]
    assert cb.slice(1, 3).to_rows() == batch[1:3]
    assert ColumnBatch.concat([cb, cb.slice(0, 1)]).to_rows() == (
        batch + batch[:1]
    )
