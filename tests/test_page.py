"""Tests for the slotted-page layout."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage import PAGE_SIZE, PageError, SlottedPage


def fresh_page(size=PAGE_SIZE):
    return SlottedPage.format(bytearray(size))


class TestBasics:
    def test_empty_page(self):
        page = fresh_page()
        assert page.num_slots == 0
        assert page.live_count() == 0
        assert list(page.records()) == []

    def test_insert_and_read(self):
        page = fresh_page()
        s0 = page.insert(b"hello")
        s1 = page.insert(b"world!")
        assert (s0, s1) == (0, 1)
        assert page.read(s0) == b"hello"
        assert page.read(s1) == b"world!"

    def test_records_iteration_order(self):
        page = fresh_page()
        for i in range(5):
            page.insert(bytes([i]) * 3)
        assert [slot for slot, _ in page.records()] == list(range(5))

    def test_delete_tombstones(self):
        page = fresh_page()
        s = page.insert(b"x")
        assert page.delete(s) is True
        assert page.read(s) is None
        assert page.delete(s) is False  # already dead
        assert page.live_count() == 0
        # slot numbers are never reused
        assert page.insert(b"y") == s + 1

    def test_update_in_place(self):
        page = fresh_page()
        s = page.insert(b"abcdef")
        assert page.update(s, b"xyz") is True  # shrinking fits
        assert page.read(s) == b"xyz"

    def test_update_too_big_reports_false(self):
        page = fresh_page()
        s = page.insert(b"ab")
        assert page.update(s, b"toolong") is False
        assert page.read(s) == b"ab"

    def test_update_deleted_raises(self):
        page = fresh_page()
        s = page.insert(b"ab")
        page.delete(s)
        with pytest.raises(PageError):
            page.update(s, b"x")

    def test_out_of_range_slot(self):
        page = fresh_page()
        with pytest.raises(PageError):
            page.read(0)


class TestCapacity:
    def test_page_full(self):
        page = fresh_page(256)
        count = 0
        while page.can_fit(16):
            page.insert(b"r" * 16)
            count += 1
        assert count > 0
        with pytest.raises(PageError):
            page.insert(b"r" * 16)

    def test_free_space_decreases(self):
        page = fresh_page()
        before = page.free_space()
        page.insert(b"12345678")
        assert page.free_space() == before - 8 - 4  # record + slot

    def test_compact_reclaims_space(self):
        page = fresh_page(512)
        slots = [page.insert(b"x" * 40) for _ in range(8)]
        for s in slots[::2]:
            page.delete(s)
        freed_before = page.free_space()
        page.compact()
        assert page.free_space() > freed_before
        # survivors unchanged, same slot numbers
        for s in slots[1::2]:
            assert page.read(s) == b"x" * 40
        for s in slots[::2]:
            assert page.read(s) is None


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.binary(min_size=1, max_size=60)),
            st.tuples(st.just("delete"), st.integers(0, 30)),
        ),
        max_size=60,
    )
)
def test_model_based_ops(ops):
    """Random insert/delete sequences match a dict model."""
    page = fresh_page(1024)
    model = {}
    for op, arg in ops:
        if op == "insert":
            if page.can_fit(len(arg)):
                slot = page.insert(arg)
                model[slot] = arg
        else:
            if arg < page.num_slots:
                page.delete(arg)
                model.pop(arg, None)
    assert dict(page.records()) == model
    page.compact()
    assert dict(page.records()) == model
