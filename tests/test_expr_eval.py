"""Tests for expression evaluation: three-valued logic and SQL semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.expr import (
    Between,
    ExprError,
    InList,
    IsNull,
    Like,
    and_,
    col,
    compile_expr,
    compile_predicate,
    eq,
    fold_constants,
    ge,
    gt,
    infer_expr_type,
    le,
    like_to_regex,
    lit,
    lt,
    ne,
    not_,
    or_,
)
from repro.expr.nodes import AggCall, AggFunc, ArithOp, Arithmetic, Negate
from repro.types import DataType, schema_of

SCHEMA = schema_of(
    "t",
    ("i", DataType.INT),
    ("f", DataType.FLOAT),
    ("s", DataType.TEXT),
    ("b", DataType.BOOL),
)


def run(expr, row):
    return compile_expr(expr, SCHEMA)(row)


R = (5, 2.5, "hello", True)
RN = (None, None, None, None)


class TestComparisons:
    def test_all_operators(self):
        assert run(eq(col("i"), lit(5)), R) is True
        assert run(ne(col("i"), lit(5)), R) is False
        assert run(lt(col("i"), lit(6)), R) is True
        assert run(le(col("i"), lit(5)), R) is True
        assert run(gt(col("i"), lit(5)), R) is False
        assert run(ge(col("i"), lit(5)), R) is True

    def test_null_propagates(self):
        for make in (eq, ne, lt, le, gt, ge):
            assert run(make(col("i"), lit(1)), RN) is None

    def test_mixed_numeric(self):
        assert run(gt(col("f"), lit(2)), R) is True

    def test_text_comparison(self):
        assert run(lt(col("s"), lit("world")), R) is True

    def test_incompatible_types_rejected(self):
        with pytest.raises(Exception):
            compile_expr(eq(col("i"), lit("x")), SCHEMA)


class TestBooleanLogic:
    def test_and_truth_table(self):
        t, f = lit(True), lit(False)
        assert run(and_(t, t), R) is True
        assert run(and_(t, f), R) is False
        # NULL AND FALSE = FALSE (short circuit on false)
        assert run(and_(eq(col("i"), lit(1)), f), RN) is False
        # NULL AND TRUE = NULL
        assert run(and_(eq(col("i"), lit(1)), t), RN) is None

    def test_or_truth_table(self):
        t, f = lit(True), lit(False)
        assert run(or_(f, t), R) is True
        assert run(or_(f, f), R) is False
        assert run(or_(eq(col("i"), lit(1)), t), RN) is True
        assert run(or_(eq(col("i"), lit(1)), f), RN) is None

    def test_not(self):
        assert run(not_(eq(col("i"), lit(5))), R) is False
        assert run(not_(eq(col("i"), lit(5))), RN) is None

    def test_predicate_maps_null_to_false(self):
        pred = compile_predicate(eq(col("i"), lit(1)), SCHEMA)
        assert pred(RN) is False
        assert pred((1, 0.0, "", False)) is True


class TestArithmetic:
    def test_basics(self):
        assert run(Arithmetic(ArithOp.ADD, col("i"), lit(3)), R) == 8
        assert run(Arithmetic(ArithOp.SUB, col("i"), lit(3)), R) == 2
        assert run(Arithmetic(ArithOp.MUL, col("f"), lit(2)), R) == 5.0
        assert run(Arithmetic(ArithOp.DIV, col("i"), lit(2)), R) == 2.5
        assert run(Arithmetic(ArithOp.MOD, col("i"), lit(3)), R) == 2

    def test_null_propagates(self):
        assert run(Arithmetic(ArithOp.ADD, col("i"), lit(3)), RN) is None

    def test_division_by_zero_is_null(self):
        assert run(Arithmetic(ArithOp.DIV, col("i"), lit(0)), R) is None
        assert run(Arithmetic(ArithOp.MOD, col("i"), lit(0)), R) is None

    def test_negate(self):
        assert run(Negate(col("i")), R) == -5
        assert run(Negate(col("i")), RN) is None

    def test_type_inference(self):
        assert infer_expr_type(
            Arithmetic(ArithOp.ADD, col("i"), lit(1)), SCHEMA
        ) is DataType.INT
        assert infer_expr_type(
            Arithmetic(ArithOp.DIV, col("i"), lit(2)), SCHEMA
        ) is DataType.FLOAT
        from repro.types import TypeError_

        with pytest.raises((ExprError, TypeError_)):
            infer_expr_type(Arithmetic(ArithOp.ADD, col("s"), lit(1)), SCHEMA)


class TestSpecialPredicates:
    def test_is_null(self):
        assert run(IsNull(col("i")), RN) is True
        assert run(IsNull(col("i")), R) is False
        assert run(IsNull(col("i"), negated=True), R) is True

    def test_in_list(self):
        e = InList(col("i"), (lit(1), lit(5)))
        assert run(e, R) is True
        assert run(InList(col("i"), (lit(1), lit(2))), R) is False
        assert run(e, RN) is None

    def test_in_list_with_null_item(self):
        # 5 IN (1, NULL) is NULL (unknown), 5 IN (5, NULL) is TRUE
        assert run(InList(col("i"), (lit(1), lit(None))), R) is None
        assert run(InList(col("i"), (lit(5), lit(None))), R) is True

    def test_not_in(self):
        assert run(InList(col("i"), (lit(1),), negated=True), R) is True
        assert run(InList(col("i"), (lit(1), lit(None)), negated=True), R) is None

    def test_between(self):
        assert run(Between(col("i"), lit(1), lit(10)), R) is True
        assert run(Between(col("i"), lit(6), lit(10)), R) is False
        assert run(Between(col("i"), lit(6), lit(10), negated=True), R) is True
        assert run(Between(col("i"), lit(1), lit(10)), RN) is None

    def test_like(self):
        assert run(Like(col("s"), "hel%"), R) is True
        assert run(Like(col("s"), "%llo"), R) is True
        assert run(Like(col("s"), "h_llo"), R) is True
        assert run(Like(col("s"), "xyz%"), R) is False
        assert run(Like(col("s"), "hel%", negated=True), R) is False
        assert run(Like(col("s"), "h%"), RN) is None

    def test_like_escapes_regex_chars(self):
        schema = schema_of("t", ("s", DataType.TEXT))
        f = compile_expr(Like(col("s"), "a.b%"), schema)
        assert f(("a.bc",)) is True
        assert f(("axbc",)) is False  # '.' is literal, not regex any

    def test_like_regex_anchoring(self):
        rx = like_to_regex("a%")
        assert rx.match("abc")
        assert not rx.match("xabc")


class TestConstantFolding:
    def test_arithmetic_folds(self):
        assert fold_constants(Arithmetic(ArithOp.ADD, lit(1), lit(2))) == lit(3)

    def test_comparison_folds(self):
        assert fold_constants(eq(lit(1), lit(1))) == lit(True)

    def test_and_identity(self):
        e = fold_constants(and_(lit(True), eq(col("i"), lit(1))))
        assert e == eq(col("i"), lit(1))

    def test_and_absorbing(self):
        assert fold_constants(and_(lit(False), eq(col("i"), lit(1)))) == lit(False)

    def test_or_absorbing(self):
        assert fold_constants(or_(lit(True), eq(col("i"), lit(1)))) == lit(True)

    def test_division_by_zero_not_folded(self):
        e = Arithmetic(ArithOp.DIV, lit(1), lit(0))
        assert fold_constants(e) is e

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_folding_matches_evaluation(self, a, b):
        for op in (ArithOp.ADD, ArithOp.SUB, ArithOp.MUL):
            e = Arithmetic(op, lit(a), lit(b))
            folded = fold_constants(e)
            assert run(folded, R) == run(e, R)


class TestErrors:
    def test_unknown_column(self):
        with pytest.raises(Exception):
            compile_expr(col("nope"), SCHEMA)

    def test_aggregate_outside_context(self):
        with pytest.raises(ExprError):
            infer_expr_type(AggCall(AggFunc.SUM, col("i")), SCHEMA)

    def test_bare_null_literal_untyped(self):
        with pytest.raises(ExprError):
            infer_expr_type(lit(None), SCHEMA)
