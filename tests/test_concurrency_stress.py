"""Concurrency stress: N sessions on N threads, mixed DML + SELECT.

Each thread owns a disjoint key range and replays a deterministic
per-thread op stream (seeded ``random.Random``), tracking the expected
final state locally; a fraction of transactions ROLLBACK and must leave
no trace.  Because keyspaces are disjoint, the expected final table is
exactly the union of the per-thread serial replays — any divergence
means lost writes, leaked rollbacks, or torn pages.

Tier-1 runs a small in-process smoke (threads share the Database);
``-m slow`` scales it up and goes through the socket server, one client
connection per thread.
"""

import random
import threading

import pytest

from repro import Database
from repro.server import Client, DatabaseServer
from repro.wal import LockTimeout

KEYS_PER_THREAD = 1000


def run_thread(execute, query, thread_id, seed, txns, expected):
    """Drive one session; ``expected`` collects this thread's final rows."""
    rng = random.Random(f"{seed}:{thread_id}")
    base = thread_id * KEYS_PER_THREAD
    mine = {}
    for t in range(txns):
        staged = dict(mine)
        execute("BEGIN")
        for _ in range(rng.randint(1, 4)):
            kind = rng.choice(("insert", "insert", "update", "delete"))
            if kind == "insert" or not staged:
                k = base + rng.randrange(KEYS_PER_THREAD)
                v = rng.randrange(10_000)
                execute(f"DELETE FROM s WHERE k = {k}")
                execute(f"INSERT INTO s VALUES ({k}, {v})")
                staged[k] = v
            elif kind == "update":
                k = rng.choice(sorted(staged))
                v = rng.randrange(10_000)
                execute(f"UPDATE s SET v = {v} WHERE k = {k}")
                staged[k] = v
            else:
                k = rng.choice(sorted(staged))
                execute(f"DELETE FROM s WHERE k = {k}")
                del staged[k]
        if rng.random() < 0.25:
            execute("ROLLBACK")  # must leave no trace
        else:
            execute("COMMIT")
            mine = staged
        if rng.random() < 0.3:
            count = query(
                f"SELECT COUNT(*) FROM s WHERE k >= {base} "
                f"AND k < {base + KEYS_PER_THREAD}"
            )[0][0]
            assert count == len(mine), (
                f"thread {thread_id} sees {count} own rows, expected "
                f"{len(mine)}"
            )
    expected[thread_id] = mine


def check_final_state(db, expected):
    """The table must equal the union of per-thread serial replays, and
    a raw heap scan must agree with the executor (no torn pages)."""
    want = sorted(
        (k, v) for mine in expected.values() for k, v in mine.items()
    )
    got = sorted(db.query("SELECT k, v FROM s").rows)
    assert got == want
    info = db.catalog.table("s")
    heap_rows = sorted(row for _, row in info.heap.scan())
    assert heap_rows == want


def stress(db, threads, txns, seed, make_session):
    db.execute("CREATE TABLE s (k INT, v INT)")
    expected = {}
    failures = []

    def body(thread_id):
        execute, query, close = make_session()
        try:
            run_thread(execute, query, thread_id, seed, txns, expected)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            failures.append((thread_id, exc))
        finally:
            close()

    workers = [
        threading.Thread(target=body, args=(i,), name=f"stress-{i}")
        for i in range(threads)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=120)
    assert not any(w.is_alive() for w in workers), "stress thread hung"
    assert not failures, f"thread failures: {failures!r}"
    assert len(expected) == threads
    check_final_state(db, expected)


def test_threaded_sessions_smoke():
    db = Database()
    db.txn.lock_timeout = 30.0

    def make_session():
        s = db.create_session()
        return (
            s.execute,
            lambda sql: s.query(sql).rows,
            s.close,
        )

    stress(db, threads=4, txns=12, seed=7, make_session=make_session)


def test_snapshot_readers_see_committed_prefix():
    """Snapshot-aware arm: while one writer streams the deterministic
    ``repro.qa.faults`` workload, concurrent readers scan the whole
    table.  Every scan must equal the state after *some* committed
    prefix of the workload (checked against the ``reference_rows``
    oracle) — never a torn mid-transaction state — and each reader's
    observed prefix only advances (statement snapshots are
    read-committed, and commit timestamps only grow)."""
    from repro.qa import faults

    SEED, TXNS = 13, 40
    db = Database()
    db.txn.lock_timeout = 60.0
    db.execute("CREATE TABLE kv (k INT, v INT)")
    states = {
        tuple(faults.reference_rows(SEED, m)): m for m in range(TXNS + 1)
    }
    stop = threading.Event()
    failures = []

    def writer():
        s = db.create_session()
        try:
            for t in range(1, TXNS + 1):
                s.execute("BEGIN")
                for op in faults.txn_ops(SEED, t):
                    if op[0] == "insert":
                        s.execute(
                            f"INSERT INTO kv VALUES ({op[1]}, {op[2]})"
                        )
                    elif op[0] == "update":
                        s.execute(
                            f"UPDATE kv SET v = {op[2]} WHERE k = {op[1]}"
                        )
                    else:
                        s.execute(f"DELETE FROM kv WHERE k = {op[1]}")
                s.execute("COMMIT")
        except Exception as exc:  # noqa: BLE001 - surfaced below
            failures.append(("writer", exc))
        finally:
            stop.set()
            s.close()

    def reader(rid):
        s = db.create_session()
        last = 0
        try:
            reads = 0
            while not stop.is_set() or reads == 0:
                rows = tuple(sorted(s.query("SELECT k, v FROM kv").rows))
                m = states.get(rows)
                assert m is not None, (
                    f"reader {rid} observed a state matching no committed "
                    f"prefix ({len(rows)} rows)"
                )
                assert m >= last, (
                    f"reader {rid} went backwards: prefix {m} after {last}"
                )
                last = m
                reads += 1
        except Exception as exc:  # noqa: BLE001 - surfaced below
            failures.append((rid, exc))
        finally:
            s.close()

    threads = [threading.Thread(target=writer, name="writer")] + [
        threading.Thread(target=reader, args=(i,), name=f"reader-{i}")
        for i in range(3)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not any(t.is_alive() for t in threads), "stress thread hung"
    assert not failures, f"failures: {failures!r}"
    final = tuple(sorted(db.query("SELECT k, v FROM kv").rows))
    assert states[final] == TXNS


def test_lock_timeout_is_an_escape_hatch():
    """Under contention a timed-out statement aborts cleanly (no leaked
    locks, no partial writes) and other sessions keep running."""
    db = Database()
    db.execute("CREATE TABLE s (k INT, v INT)")
    db.txn.lock_timeout = 0.1
    s1 = db.create_session()
    s2 = db.create_session()
    s1.execute("BEGIN")
    s1.execute("INSERT INTO s VALUES (1, 1)")
    with pytest.raises(LockTimeout):
        s2.execute("INSERT INTO s VALUES (2, 2)")
    s1.execute("COMMIT")
    s2.execute("INSERT INTO s VALUES (2, 2)")  # lock released after commit
    assert sorted(db.query("SELECT k FROM s").rows) == [(1,), (2,)]
    s1.close()
    s2.close()


@pytest.mark.slow
def test_threaded_sessions_nightly():
    db = Database()
    db.txn.lock_timeout = 60.0

    def make_session():
        s = db.create_session()
        return (
            s.execute,
            lambda sql: s.query(sql).rows,
            s.close,
        )

    stress(db, threads=8, txns=60, seed=23, make_session=make_session)


@pytest.mark.slow
def test_server_clients_nightly():
    db = Database()
    db.txn.lock_timeout = 60.0
    with DatabaseServer(db) as server:
        host, port = server.address

        def make_session():
            client = Client(host, port, timeout=120)
            return (
                client.execute,
                lambda sql: client.query(sql).rows,
                client.close,
            )

        stress(db, threads=6, txns=40, seed=31, make_session=make_session)
