"""Tests for the AST -> logical plan builder."""

import pytest

from repro.algebra import (
    BindError,
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalSort,
    build_plan,
    leaves,
)
from repro.catalog import Catalog
from repro.sql import parse
from repro.storage import BufferPool, DiskManager
from repro.types import DataType, schema_of


@pytest.fixture
def catalog():
    disk = DiskManager()
    cat = Catalog(BufferPool(disk, 50))
    cat.create_table(
        "orders",
        schema_of(
            "orders",
            ("id", DataType.INT),
            ("cust_id", DataType.INT),
            ("amount", DataType.FLOAT),
        ),
    )
    cat.create_table(
        "customers",
        schema_of("customers", ("id", DataType.INT), ("name", DataType.TEXT)),
    )
    return cat


def plan_for(catalog, sql):
    return build_plan(parse(sql), catalog)


class TestShapes:
    def test_simple_select(self, catalog):
        p = plan_for(catalog, "SELECT id FROM orders")
        assert isinstance(p, LogicalProject)
        assert isinstance(p.child, LogicalGet)
        assert p.schema.names() == ["id"]

    def test_star_expansion(self, catalog):
        p = plan_for(catalog, "SELECT * FROM orders")
        assert p.schema.names() == ["id", "cust_id", "amount"]

    def test_qualified_star(self, catalog):
        p = plan_for(catalog, "SELECT c.* FROM orders o, customers c")
        assert p.schema.names() == ["id", "name"]

    def test_where_becomes_filter(self, catalog):
        p = plan_for(catalog, "SELECT id FROM orders WHERE amount > 5")
        assert isinstance(p.child, LogicalFilter)

    def test_implicit_join_left_deep(self, catalog):
        p = plan_for(
            catalog,
            "SELECT o.id FROM orders o, customers c WHERE o.cust_id = c.id",
        )
        gets = leaves(p)
        assert [g.binding for g in gets] == ["o", "c"]

    def test_explicit_join_condition_attached(self, catalog):
        p = plan_for(
            catalog,
            "SELECT o.id FROM orders o JOIN customers c ON o.cust_id = c.id",
        )
        join = p.child
        assert isinstance(join, LogicalJoin)
        assert join.condition is not None

    def test_order_limit_distinct(self, catalog):
        p = plan_for(
            catalog,
            "SELECT DISTINCT cust_id FROM orders ORDER BY cust_id LIMIT 3",
        )
        assert isinstance(p, LogicalLimit)
        assert isinstance(p.child, LogicalSort)
        assert isinstance(p.child.child, LogicalDistinct)

    def test_order_by_hidden_column(self, catalog):
        # ORDER BY a column not in the SELECT list: hidden column + strip
        p = plan_for(catalog, "SELECT id FROM orders ORDER BY amount")
        assert isinstance(p, LogicalProject)
        assert p.schema.names() == ["id"]
        assert isinstance(p.child, LogicalSort)

    def test_expression_projection(self, catalog):
        p = plan_for(catalog, "SELECT amount * 2 AS double FROM orders")
        assert p.schema.names() == ["double"]
        assert p.schema.column("double").dtype is DataType.FLOAT


class TestAggregates:
    def test_group_by(self, catalog):
        p = plan_for(
            catalog,
            "SELECT cust_id, COUNT(*) AS n, SUM(amount) AS s "
            "FROM orders GROUP BY cust_id",
        )
        assert isinstance(p, LogicalProject)
        agg = p.child
        assert isinstance(agg, LogicalAggregate)
        assert len(agg.aggs) == 2
        assert p.schema.names() == ["cust_id", "n", "s"]

    def test_global_aggregate_without_group(self, catalog):
        p = plan_for(catalog, "SELECT COUNT(*) AS n FROM orders")
        agg = p.child
        assert isinstance(agg, LogicalAggregate)
        assert agg.group_exprs == ()

    def test_having(self, catalog):
        p = plan_for(
            catalog,
            "SELECT cust_id FROM orders GROUP BY cust_id HAVING COUNT(*) > 2",
        )
        having = p.child
        assert isinstance(having, LogicalFilter)
        assert isinstance(having.child, LogicalAggregate)

    def test_having_aggregate_not_in_select(self, catalog):
        p = plan_for(
            catalog,
            "SELECT cust_id FROM orders GROUP BY cust_id "
            "HAVING SUM(amount) > 10",
        )
        agg = p.child.child
        assert any(str(a).startswith("SUM") for a in agg.aggs)

    def test_order_by_alias_of_aggregate(self, catalog):
        p = plan_for(
            catalog,
            "SELECT cust_id, SUM(amount) AS total FROM orders "
            "GROUP BY cust_id ORDER BY total DESC",
        )
        assert isinstance(p, LogicalSort)

    def test_avg_type_is_float(self, catalog):
        p = plan_for(catalog, "SELECT AVG(cust_id) AS a FROM orders")
        assert p.schema.column("a").dtype is DataType.FLOAT


class TestErrors:
    def test_unknown_table(self, catalog):
        with pytest.raises(Exception):
            plan_for(catalog, "SELECT * FROM nope")

    def test_duplicate_binding(self, catalog):
        with pytest.raises(BindError):
            plan_for(catalog, "SELECT * FROM orders o, customers o")

    def test_nongrouped_column_rejected(self, catalog):
        with pytest.raises(BindError):
            plan_for(
                catalog,
                "SELECT amount FROM orders GROUP BY cust_id",
            )

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(BindError):
            plan_for(catalog, "SELECT id FROM orders WHERE SUM(amount) > 1")

    def test_having_without_group_or_agg(self, catalog):
        with pytest.raises(BindError):
            plan_for(catalog, "SELECT id FROM orders HAVING id > 1")

    def test_duplicate_output_names_deduped(self, catalog):
        p = plan_for(catalog, "SELECT id, id FROM orders")
        names = p.schema.names()
        assert len(names) == len(set(names))
        assert names[0] == "id"

    def test_select_without_from(self, catalog):
        with pytest.raises(BindError):
            plan_for(catalog, "SELECT 1 AS one")

    def test_nested_aggregate(self, catalog):
        with pytest.raises(BindError):
            plan_for(catalog, "SELECT SUM(COUNT(*)) AS x FROM orders")

    def test_ambiguous_column(self, catalog):
        with pytest.raises(Exception):
            plan_for(
                catalog,
                "SELECT id FROM orders o, customers c WHERE o.cust_id = c.id",
            )
