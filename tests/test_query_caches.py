"""Plan-cache and result-cache behavior: hits, invalidation, bypass
rules, and the observability surface (metrics counters, query-log flags,
``sys_stat_statements`` columns)."""

import pytest

from repro import Database
from repro.obs import ObsConfig


def make_db(**obs_kwargs) -> Database:
    db = Database(buffer_pages=64, obs=ObsConfig(**obs_kwargs))
    db.execute("CREATE TABLE t (id INT, v INT)")
    db.insert_rows("t", [(i, i % 10) for i in range(500)])
    db.execute("ANALYZE t")
    return db


QUERY = "SELECT v, COUNT(*) FROM t WHERE id > 50 GROUP BY v"


class TestPlanCache:
    def test_repeated_statement_hits(self):
        db = make_db()
        first = db.query(QUERY)
        for _ in range(9):
            result = db.query(QUERY)
            assert result.rows == first.rows
        assert db.plan_cache.stats.misses == 1
        assert db.plan_cache.stats.hits == 9
        assert db.plan_cache.stats.hit_rate == pytest.approx(0.9)

    def test_hit_requires_exact_sql(self):
        # same fingerprint (literals normalize away), different literal:
        # the plan has the literal baked in, so this must NOT hit
        db = make_db()
        a = db.query("SELECT COUNT(*) FROM t WHERE id > 50")
        b = db.query("SELECT COUNT(*) FROM t WHERE id > 400")
        assert db.plan_cache.stats.hits == 0
        assert a.rows != b.rows

    def test_cached_plan_refreshes_actuals(self):
        db = make_db()
        db.query(QUERY)
        db.execute("INSERT INTO t VALUES (1000, 3)")
        result = db.query(QUERY)
        assert db.plan_cache.stats.hits == 1  # DML keeps plans
        assert dict(result.rows)[3] == 46  # ...but rows re-read the heap
        assert result.plan.actual_rows == len(result.rows)

    @pytest.mark.parametrize(
        "ddl",
        [
            "CREATE TABLE other (id INT)",
            "CREATE INDEX iv ON t (v)",
            "ANALYZE t",
            "CREATE VIEW w AS SELECT id FROM t",
        ],
    )
    def test_invalidated_by_ddl(self, ddl):
        db = make_db()
        db.query(QUERY)
        assert len(db.plan_cache) == 1
        db.execute(ddl)
        assert len(db.plan_cache) == 0
        assert db.plan_cache.stats.invalidations == 1

    def test_invalidated_by_strategy_switch(self):
        db = make_db()
        db.query(QUERY)
        db.set_strategy("greedy")
        assert len(db.plan_cache) == 0
        # ...and plans cached under the new options miss after a direct
        # options swap too (the entry records the options it was built
        # under)
        db.query(QUERY)
        from repro.optimizer import PlannerOptions

        db.options = PlannerOptions(strategy="syntactic")
        db.query(QUERY)
        assert db.plan_cache.stats.hits == 0

    def test_explain_analyze_bypasses(self):
        db = make_db()
        db.query(QUERY)
        before = (db.plan_cache.stats.hits, db.plan_cache.stats.misses)
        db.execute("EXPLAIN ANALYZE " + QUERY)
        assert (db.plan_cache.stats.hits, db.plan_cache.stats.misses) == before

    def test_subqueries_never_cached(self):
        db = make_db()
        sub = "SELECT COUNT(*) FROM t WHERE v = (SELECT MIN(v) FROM t)"
        db.query(sub)
        db.query(sub)
        assert len(db.plan_cache) == 0

    def test_disabled_by_config(self):
        db = make_db(plan_cache=False)
        db.query(QUERY)
        db.query(QUERY)
        assert len(db.plan_cache) == 0
        assert db.plan_cache.stats.hits == 0

    def test_off_config_disables(self):
        db = Database(obs=ObsConfig.off())
        assert not db.obs.plan_cache and not db.obs.result_cache

    def test_lru_bound(self):
        # distinct literals share a fingerprint (one bucket, exact-SQL
        # guarded); the LRU bound is over structurally distinct statements
        db = make_db(plan_cache_size=4)
        shapes = [
            "SELECT COUNT(*) FROM t",
            "SELECT MIN(id) FROM t",
            "SELECT MAX(id) FROM t",
            "SELECT SUM(v) FROM t",
            "SELECT COUNT(*) FROM t WHERE id > 5",
            "SELECT v FROM t WHERE id = 3",
            "SELECT id, v FROM t WHERE v < 2",
        ]
        for sql in shapes:
            db.query(sql)
        assert len(db.plan_cache) == 4

    def test_near_zero_planning_on_hit(self):
        db = make_db()
        cold = db.query(QUERY).planning_seconds
        warm = min(db.query(QUERY).planning_seconds for _ in range(5))
        assert warm < cold


class TestResultCache:
    def test_hit_skips_execution(self):
        db = make_db(result_cache=True)
        first = db.query(QUERY)
        rows0 = db.table("t").access.rows_read
        result = db.query(QUERY)
        assert result.rows == first.rows
        assert db.result_cache.stats.hits == 1
        assert db.table("t").access.rows_read == rows0  # no scan happened

    def test_invalidated_by_write_to_referenced_table(self):
        db = make_db(result_cache=True)
        first = db.query(QUERY)
        db.execute("INSERT INTO t VALUES (1000, 3)")
        result = db.query(QUERY)
        assert dict(result.rows)[3] == dict(first.rows)[3] + 1

    def test_unrelated_write_keeps_entry(self):
        db = make_db(result_cache=True)
        db.execute("CREATE TABLE u (id INT)")
        db.query(QUERY)
        db.execute("INSERT INTO u VALUES (1)")
        db.query(QUERY)
        assert db.result_cache.stats.hits == 1

    @pytest.mark.parametrize("dml", ["DELETE FROM t WHERE id = 0",
                                     "UPDATE t SET v = 5 WHERE id = 1"])
    def test_invalidated_by_delete_and_update(self, dml):
        db = make_db(result_cache=True)
        db.query(QUERY)
        db.execute(dml)
        db.query(QUERY)
        assert db.result_cache.stats.hits == 0

    def test_row_limit(self):
        db = make_db(result_cache=True, result_cache_max_rows=10)
        db.query("SELECT id FROM t")  # 500 rows: too big to cache
        db.query("SELECT id FROM t")
        assert db.result_cache.stats.hits == 0
        assert len(db.result_cache) == 0

    def test_off_by_default(self):
        db = make_db()
        db.query(QUERY)
        db.query(QUERY)
        assert len(db.result_cache) == 0


class TestCacheObservability:
    def test_metrics_counters(self):
        db = make_db(result_cache=True)
        for _ in range(3):
            db.query(QUERY)
        counters = db.metrics.snapshot()["counters"]
        assert counters["cache_result_hits_total"] == 2
        assert counters["cache_result_misses_total"] == 1
        assert counters["cache_plan_misses_total"] == 1
        db.execute("ANALYZE t")
        assert db.metrics.snapshot()["counters"]["cache_invalidations_total"] >= 2

    def test_querylog_flags(self):
        db = make_db(result_cache=True)
        for _ in range(3):
            db.query(QUERY)
        flags = [
            (r.plan_cache_hit, r.result_cache_hit)
            for r in db.query_log.entries()
            if r.sql == QUERY
        ]
        assert flags == [(False, False), (False, True), (False, True)]

    def test_sys_stat_statements_columns(self):
        db = make_db()
        for _ in range(4):
            db.query(QUERY)
        rows = db.query(
            "SELECT statement, calls, plan_cache_hits, result_cache_hits "
            "FROM sys_stat_statements"
        ).rows
        stats = {row[0]: row[1:] for row in rows}
        entry = next(v for k, v in stats.items() if "group by" in k)
        assert entry == (4, 3, 0)

    def test_result_cache_hit_skips_feedback_and_baselines(self):
        db = make_db(result_cache=True)
        db.query(QUERY)
        feedback0 = len(db.feedback)
        db.query(QUERY)  # result-cache hit: stale actuals must not leak
        assert len(db.feedback) == feedback0


class TestTransactionResultCache:
    """Transaction boundaries and the result cache: rolled-back writes
    must never invalidate (or poison) what other sessions see, and a
    session must never be served rows that hide its own pending writes."""

    def test_rolled_back_write_keeps_entry(self):
        db = make_db(result_cache=True)
        first = db.query(QUERY)
        s = db.create_session()
        s.execute("BEGIN")
        s.execute("INSERT INTO t VALUES (1000, 3)")
        s.execute("ROLLBACK")
        again = db.query(QUERY)
        assert db.result_cache.stats.hits == 1  # entry survived the abort
        assert again.rows == first.rows

    def test_own_pending_write_overlays_lookup(self):
        db = make_db(result_cache=True)
        db.query(QUERY)  # cached: v=3 -> 45
        s = db.create_session()
        s.execute("BEGIN")
        s.execute("INSERT INTO t VALUES (1000, 3)")
        mine = s.query(QUERY)
        assert dict(mine.rows)[3] == 46  # own write visible, not stale rows
        s.execute("ROLLBACK")
        other = db.query(QUERY)
        assert dict(other.rows)[3] == 45
        assert db.result_cache.stats.hits == 1  # original entry still valid

    def test_uncommitted_rows_never_stored_for_others(self):
        db = make_db(result_cache=True)
        s = db.create_session()
        s.execute("BEGIN")
        s.execute("INSERT INTO t VALUES (1000, 3)")
        mine = s.query(QUERY)
        assert dict(mine.rows)[3] == 46
        s.execute("ROLLBACK")
        other = db.query(QUERY)  # a hit here would serve aborted rows
        assert db.result_cache.stats.hits == 0
        assert dict(other.rows)[3] == 45

    def test_commit_invalidates_for_everyone(self):
        db = make_db(result_cache=True)
        db.query(QUERY)
        s = db.create_session()
        s.execute("BEGIN")
        s.execute("INSERT INTO t VALUES (1000, 3)")
        s.execute("COMMIT")
        result = db.query(QUERY)
        assert db.result_cache.stats.hits == 0
        assert dict(result.rows)[3] == 46


class TestSnapshotResultCache:
    """MVCC snapshots and the result cache: an entry is only valid for
    readers whose snapshot matches the commit timestamp it was built at.
    A transaction pinned on an old snapshot must never be served rows
    cached after later commits — and its snapshot-filtered rows must
    never be stored where fresher readers would find them."""

    def test_pinned_snapshot_not_served_newer_cached_rows(self):
        db = make_db(result_cache=True)
        s = db.create_session()
        s.execute("BEGIN")
        assert dict(s.query(QUERY).rows)[3] == 45  # pins the snapshot
        db.execute("INSERT INTO t VALUES (1000, 3)")  # commits past it
        db.query(QUERY)  # re-populates the cache with the fresh rows
        hits0 = db.result_cache.stats.hits
        mine = s.query(QUERY)  # stale snapshot: lookup must be bypassed
        assert dict(mine.rows)[3] == 45  # the pinned view, not the cache
        assert db.result_cache.stats.hits == hits0
        s.execute("COMMIT")
        assert dict(db.query(QUERY).rows)[3] == 46

    def test_stale_snapshot_rows_never_poison_cache(self):
        db = make_db(result_cache=True)
        s = db.create_session()
        s.execute("BEGIN")
        s.query(QUERY)  # pin at 45
        db.execute("INSERT INTO t VALUES (1000, 3)")  # invalidates entry
        mine = s.query(QUERY)  # recomputed under the old snapshot
        assert dict(mine.rows)[3] == 45
        # ...and must NOT have been stored: a fresh reader re-executes
        fresh = db.query(QUERY)
        assert db.result_cache.stats.hits == 0
        assert dict(fresh.rows)[3] == 46
        s.execute("ROLLBACK")

    def test_current_snapshot_still_hits(self):
        # no over-bypass: a pinned snapshot that *is* current (nothing
        # committed since) keeps full cache service
        db = make_db(result_cache=True)
        s = db.create_session()
        s.execute("BEGIN")
        first = s.query(QUERY)
        again = s.query(QUERY)
        assert again.rows == first.rows
        assert db.result_cache.stats.hits == 1
        s.execute("COMMIT")

    def test_autocommit_statement_snapshots_share_entries(self):
        # read-committed statement snapshots advance with every commit,
        # so successive autocommit SELECTs from different sessions all
        # sit at the current timestamp and share one entry
        db = make_db(result_cache=True)
        s1, s2 = db.create_session(), db.create_session()
        s1.query(QUERY)
        s2.query(QUERY)
        assert db.result_cache.stats.hits == 1
        s1.close()
        s2.close()
