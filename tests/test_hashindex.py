"""Tests for the static hash index."""

import pytest

from repro.index import HashIndex, HashIndexError
from repro.storage import BufferPool, DiskManager
from repro.types import DataType


def make_index(dtype=DataType.INT, buckets=8, page_size=512):
    disk = DiskManager(page_size)
    pool = BufferPool(disk, 200)
    return disk, HashIndex(pool, dtype, "h", num_buckets=buckets)


class TestHashIndex:
    def test_insert_search(self):
        _, ix = make_index()
        ix.insert(5, (1, 0))
        assert ix.search(5) == [(1, 0)]
        assert ix.search(6) == []

    def test_duplicates(self):
        _, ix = make_index()
        for i in range(10):
            ix.insert(5, (i, 0))
        assert sorted(ix.search(5)) == [(i, 0) for i in range(10)]

    def test_delete(self):
        _, ix = make_index()
        ix.insert(5, (1, 0))
        ix.insert(5, (2, 0))
        assert ix.delete(5, (1, 0)) is True
        assert ix.search(5) == [(2, 0)]
        assert ix.delete(5, (1, 0)) is False
        assert ix.num_entries == 1

    def test_null_rejected(self):
        _, ix = make_index()
        with pytest.raises(HashIndexError):
            ix.insert(None, (0, 0))
        assert ix.search(None) == []
        assert ix.delete(None, (0, 0)) is False

    def test_overflow_chains(self):
        _, ix = make_index(buckets=2)
        for i in range(2000):
            ix.insert(i, (i, 0))
        assert ix.avg_chain_length() > 1.0
        assert ix.search(1999) == [(1999, 0)]
        assert ix.search(0) == [(0, 0)]

    def test_delete_in_overflow_page(self):
        _, ix = make_index(buckets=1)
        for i in range(1500):
            ix.insert(i, (i, 0))
        assert ix.delete(1400, (1400, 0)) is True
        assert ix.search(1400) == []

    def test_text_keys(self):
        _, ix = make_index(DataType.TEXT)
        ix.insert("alpha", (1, 1))
        ix.insert("beta", (2, 2))
        assert ix.search("alpha") == [(1, 1)]
        assert ix.search("gamma") == []

    def test_items_returns_everything(self):
        _, ix = make_index(buckets=4)
        entries = {(i, (i, 0)) for i in range(100)}
        for k, rid in entries:
            ix.insert(k, rid)
        assert set(ix.items()) == entries

    def test_float_int_equivalence(self):
        """5 and 5.0 hash identically (cross-type equality probes work)."""
        _, ix = make_index(DataType.FLOAT)
        ix.insert(5.0, (1, 0))
        assert ix.search(5.0) == [(1, 0)]

    def test_bucket_count_validation(self):
        disk = DiskManager(512)
        pool = BufferPool(disk, 10)
        with pytest.raises(ValueError):
            HashIndex(pool, DataType.INT, "h", num_buckets=0)

    def test_probe_io_constant(self):
        disk, ix = make_index(buckets=64)
        for i in range(500):
            ix.insert(i, (i, 0))
        ix.pool.clear()
        disk.reset_stats()
        ix.search(123)
        assert disk.stats.reads <= 2  # bucket (+ rare overflow)
