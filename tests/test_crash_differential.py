"""The crash-replay arm of the differential matrix: seeded workloads,
random kill points, committed-prefix oracle.

Unlike :mod:`tests.test_crash_recovery` (which enumerates *every* hit of
every failpoint for one fixed workload), this arm rotates: the nightly
``REPRO_MATRIX_SEED`` picks both the workload and a random sample of
kill points, so successive nightly runs walk different (workload, crash
site) combinations.  The oracle is pure replay — ``reference_rows(seed,
m)`` derives the expected table from the seed alone, so a recovered
database is checked without trusting any engine state.

Tier-1 covers a couple of points; the ``slow`` arm samples the matrix
more densely.
"""

import os
import random

import pytest

from repro.qa import faults

SEED = int(os.environ.get("REPRO_MATRIX_SEED", "1977"))
TXNS = 10


def sample_points(counts, k, salt):
    """*k* kill points drawn (seeded) from every admissible (site, hit,
    mode) for this workload's hit counts."""
    rng = random.Random(f"{SEED}:{salt}")
    universe = faults.sweep_points(counts, max_points=None)
    if len(universe) <= k:
        return universe
    return rng.sample(universe, k)


@pytest.fixture(scope="module")
def hit_counts(tmp_path_factory):
    base = str(tmp_path_factory.mktemp("crash-diff-count"))
    return faults.count_workload_hits(base, SEED, TXNS)


def run_points(points, base_dir):
    killed = 0
    for site, n, mode in points:
        summary = faults.run_crash_point(
            str(base_dir), SEED, TXNS, site, n, mode
        )
        # the oracle already raised FaultError on divergence; record
        # whether the armed point actually fired
        killed += 0 if summary["skipped"] else 1
    return killed


def test_rotating_crash_points_smoke(hit_counts, tmp_path):
    points = sample_points(hit_counts, k=3, salt="smoke")
    assert points
    run_points(points, tmp_path)


def test_first_and_last_wal_append(hit_counts, tmp_path):
    """The boundary kills: torn first record (empty recovery) and torn
    final record (deepest prefix)."""
    total = hit_counts.get("wal.append", 0)
    assert total > 0
    points = [("wal.append", 1, "partial"), ("wal.append", total, "partial")]
    run_points(points, tmp_path)


@pytest.mark.slow
def test_rotating_crash_matrix(hit_counts, tmp_path):
    points = sample_points(hit_counts, k=24, salt="nightly")
    killed = run_points(points, tmp_path)
    assert killed > 0, "no sampled kill point fired"
