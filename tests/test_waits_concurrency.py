"""Thread-safety of the wait-event registry and metrics instruments.

Mirrors the buffer-pool concurrency suite: many threads hammer the same
shared registries and every counter must stay exactly additive — no lost
increments, no torn (count, seconds) pairs.  The forked-worker path ships
snapshot deltas through these same structures, so additivity here is what
makes parallel-query accounting exact.
"""

import random
import threading

from repro.obs import MetricsRegistry, WaitEventStats
from repro.storage.buffer import BufferPool, _TimedRLock
from repro.storage.disk import DiskManager

THREADS = 8
PER_THREAD = 500


def _run_threads(worker):
    errors = []

    def wrapped(seed):
        try:
            worker(seed)
        except Exception as exc:  # pragma: no cover - only on failure
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(seed,))
        for seed in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors


class TestWaitEventStatsConcurrency:
    def test_concurrent_record_is_exactly_additive(self):
        stats = WaitEventStats()

        def worker(seed):
            rng = random.Random(seed)
            for _ in range(PER_THREAD):
                event = rng.choice(("io.read", "io.write", "lock.buffer"))
                stats.record(event, 0.001)

        _run_threads(worker)
        total = sum(count for count, _ in stats.snapshot().values())
        assert total == THREADS * PER_THREAD
        for count, seconds in stats.snapshot().values():
            assert seconds == __import__("pytest").approx(count * 0.001)

    def test_concurrent_timers_never_lose_occurrences(self):
        stats = WaitEventStats()

        def worker(seed):
            for _ in range(PER_THREAD):
                with stats.timer("exec.cpu"):
                    pass

        _run_threads(worker)
        assert stats.count("exec.cpu") == THREADS * PER_THREAD
        assert stats.seconds("exec.cpu") >= 0.0

    def test_concurrent_merge_of_worker_deltas(self):
        """The exact shape of the forked-worker fold-in, done from threads."""
        parent = WaitEventStats()

        def worker(seed):
            private = WaitEventStats()
            for _ in range(PER_THREAD):
                private.record("io.read", 0.002)
            parent.merge(private.delta({}))

        _run_threads(worker)
        assert parent.count("io.read") == THREADS * PER_THREAD

    def test_snapshot_during_writes_is_consistent(self):
        stats = WaitEventStats()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                stats.record("io.read", 0.001)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                for count, seconds in stats.snapshot().values():
                    # a torn read would break the fixed count:seconds ratio
                    assert abs(seconds - count * 0.001) < 1e-9
        finally:
            stop.set()
            thread.join()


class TestMetricsRegistryConcurrency:
    def test_concurrent_counter_increments(self):
        registry = MetricsRegistry()

        def worker(seed):
            for _ in range(PER_THREAD):
                registry.counter("queries_total").inc()

        _run_threads(worker)
        assert registry.counter("queries_total").value == THREADS * PER_THREAD

    def test_concurrent_lazy_creation_yields_one_instrument(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(THREADS)

        def worker(seed):
            barrier.wait()
            for i in range(PER_THREAD):
                registry.counter(f"c{i % 10}").inc()
                registry.histogram(f"h{i % 10}").observe(float(i))

        _run_threads(worker)
        for i in range(10):
            assert registry.counter(f"c{i}").value == THREADS * PER_THREAD / 10
            assert registry.histogram(f"h{i}").count == THREADS * PER_THREAD / 10

    def test_concurrent_histogram_observations_stay_consistent(self):
        registry = MetricsRegistry()

        def worker(seed):
            rng = random.Random(seed)
            for _ in range(PER_THREAD):
                registry.histogram("execution_ms").observe(rng.uniform(0, 100))

        _run_threads(worker)
        hist = registry.histogram("execution_ms")
        assert hist.count == THREADS * PER_THREAD
        assert sum(hist.bucket_counts) == hist.count
        assert 0.0 <= hist.min <= hist.max <= 100.0


class TestTimedLockContention:
    def test_contended_acquire_is_timed_uncontended_is_not(self):
        lock = _TimedRLock()
        lock.waits = WaitEventStats()
        with lock:
            pass  # uncontended: nothing recorded
        assert lock.waits.count("lock.buffer") == 0

        entered = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                entered.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=holder)
        thread.start()
        entered.wait(timeout=5)
        timer = threading.Timer(0.05, release.set)
        timer.start()
        with lock:  # blocks until the holder releases -> timed
            pass
        thread.join()
        timer.cancel()
        assert lock.waits.count("lock.buffer") == 1
        assert lock.waits.seconds("lock.buffer") > 0.0

    def test_pool_contention_shows_up_as_lock_waits(self):
        disk = DiskManager(page_size=256)
        pool = BufferPool(disk, capacity=8)
        pool.waits = WaitEventStats()
        file_id = disk.create_file("t")
        pages = []
        for i in range(16):
            pid = pool.new_page(file_id)
            pool.unfix(pid, dirty=True)
            pages.append(pid)
        pool.flush_all()

        def worker(seed):
            rng = random.Random(seed)
            for _ in range(PER_THREAD):
                pid = pages[rng.randrange(len(pages))]
                pool.fix(pid)
                pool.unfix(pid)

        _run_threads(worker)
        stats = pool.stats
        # stats additive under contention (the lock actually serializes);
        # new_page allocations do not count as accesses, only fix() does
        assert stats.hits + stats.misses == THREADS * PER_THREAD
        # every miss beyond the initial allocation was timed as an io.read
        assert pool.waits.count("io.read") == stats.misses
