"""Tests for repro.types: data types, coercion, schemas."""

import pytest
from datetime import date

from hypothesis import given, strategies as st

from repro.types import (
    Column,
    DataType,
    Schema,
    SchemaBuilder,
    SchemaError,
    TypeError_,
    byte_width,
    check_value,
    common_type,
    compare,
    infer_type,
    parse_type,
    schema_of,
    successor,
    value_to_float,
)


class TestParseType:
    def test_aliases(self):
        assert parse_type("INTEGER") is DataType.INT
        assert parse_type("varchar") is DataType.TEXT
        assert parse_type("Double") is DataType.FLOAT
        assert parse_type("BOOLEAN") is DataType.BOOL
        assert parse_type("date") is DataType.DATE

    def test_unknown_raises(self):
        with pytest.raises(TypeError_):
            parse_type("BLOB")


class TestCheckValue:
    def test_null_passes_all_types(self):
        for dtype in DataType:
            assert check_value(None, dtype) is None

    def test_int_accepts_integral_float(self):
        assert check_value(3.0, DataType.INT) == 3

    def test_int_rejects_fractional(self):
        with pytest.raises(TypeError_):
            check_value(3.5, DataType.INT)

    def test_int_rejects_bool(self):
        with pytest.raises(TypeError_):
            check_value(True, DataType.INT)

    def test_float_coerces_int(self):
        out = check_value(4, DataType.FLOAT)
        assert out == 4.0 and isinstance(out, float)

    def test_text_rejects_numbers(self):
        with pytest.raises(TypeError_):
            check_value(5, DataType.TEXT)

    def test_date_from_iso_string(self):
        assert check_value("2020-02-29", DataType.DATE) == date(2020, 2, 29)

    def test_bool_strict(self):
        with pytest.raises(TypeError_):
            check_value(1, DataType.BOOL)


class TestInferAndCommon:
    def test_bool_before_int(self):
        assert infer_type(True) is DataType.BOOL
        assert infer_type(1) is DataType.INT

    def test_common_numeric(self):
        assert common_type(DataType.INT, DataType.FLOAT) is DataType.FLOAT
        assert common_type(DataType.INT, DataType.INT) is DataType.INT

    def test_common_incompatible(self):
        with pytest.raises(TypeError_):
            common_type(DataType.INT, DataType.TEXT)


class TestCompare:
    def test_null_is_unknown(self):
        assert compare(None, 1) is None
        assert compare(1, None) is None

    def test_orders(self):
        assert compare(1, 2) == -1
        assert compare(2, 1) == 1
        assert compare("a", "a") == 0

    def test_bool_int_mismatch(self):
        with pytest.raises(TypeError_):
            compare(True, 1)


class TestRealLineMapping:
    def test_int_and_float(self):
        assert value_to_float(5, DataType.INT) == 5.0
        assert value_to_float(2.5, DataType.FLOAT) == 2.5

    def test_date_ordinal(self):
        d = date(1977, 10, 6)
        assert value_to_float(d, DataType.DATE) == float(d.toordinal())

    def test_null_raises(self):
        with pytest.raises(TypeError_):
            value_to_float(None, DataType.INT)

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_text_ordinal_respects_order(self, a, b):
        fa = value_to_float(a, DataType.TEXT)
        fb = value_to_float(b, DataType.TEXT)
        # 8-byte prefix ordinal: strict order on the real line implies
        # string order cannot be the reverse.
        if fa < fb:
            assert not (a.encode()[:8] > b.encode()[:8])

    def test_successor_int(self):
        assert successor(5, DataType.INT) == 6

    def test_successor_text_sorts_after(self):
        assert successor("abc", DataType.TEXT) > "abc"

    def test_byte_widths(self):
        assert byte_width(DataType.INT) == 8
        assert byte_width(DataType.TEXT, avg_text=20) == 20


def make_schema():
    return schema_of(
        "t", ("id", DataType.INT), ("name", DataType.TEXT), ("v", DataType.FLOAT)
    )


class TestSchema:
    def test_lookup_bare_and_qualified(self):
        s = make_schema()
        assert s.index_of("id") == 0
        assert s.index_of("t.name") == 1
        assert s.column("v").dtype is DataType.FLOAT

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            make_schema().index_of("nope")
        with pytest.raises(SchemaError):
            make_schema().index_of("x.id")

    def test_ambiguous_bare_name(self):
        s = make_schema().concat(make_schema().renamed("u"))
        with pytest.raises(SchemaError, match="ambiguous"):
            s.index_of("id")
        assert s.index_of("u.id") == 3

    def test_duplicate_qualified_rejected(self):
        with pytest.raises(SchemaError):
            make_schema().concat(make_schema())

    def test_project_and_concat(self):
        s = make_schema()
        p = s.project(["v", "id"])
        assert p.names() == ["v", "id"]
        c = s.concat(s.renamed("u"))
        assert len(c) == 6

    def test_renamed(self):
        s = make_schema().renamed("alias")
        assert s.qualified_names()[0] == "alias.id"

    def test_validate_row_checks_types(self):
        s = make_schema()
        assert s.validate_row((1, "x", 2)) == (1, "x", 2.0)
        with pytest.raises(TypeError_):
            s.validate_row((1, "x"))
        with pytest.raises(TypeError_):
            s.validate_row(("bad", "x", 2.0))

    def test_non_nullable(self):
        s = Schema([Column("id", DataType.INT, "t", nullable=False)])
        with pytest.raises(TypeError_):
            s.validate_row((None,))

    def test_row_dict(self):
        s = make_schema()
        assert s.row_dict((1, "a", 2.0))["t.name"] == "a"

    def test_equality_and_hash(self):
        assert make_schema() == make_schema()
        assert hash(make_schema()) == hash(make_schema())
        assert make_schema() != make_schema().renamed("u")

    def test_builder(self):
        s = (
            SchemaBuilder("b")
            .add("x", DataType.INT)
            .add("y", DataType.TEXT, nullable=False)
            .build()
        )
        assert s.qualified_names() == ["b.x", "b.y"]
        assert not s.column("y").nullable

    def test_estimated_row_bytes_positive(self):
        assert make_schema().estimated_row_bytes() > 0

    def test_positions(self):
        assert make_schema().positions(["name", "id"]) == [1, 0]
