"""End-to-end SQL tests through the Database facade."""

import random

import pytest

from repro import Database
from repro.engine import EngineError
from repro.optimizer import PlannerOptions, STRATEGIES


@pytest.fixture
def db():
    db = Database(buffer_pages=128, work_mem_pages=8)
    db.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, dept TEXT, salary FLOAT, "
        "boss INT)"
    )
    rng = random.Random(21)
    rows = [
        (
            i,
            rng.choice(["eng", "sales", "hr"]),
            30000.0 + rng.random() * 70000,
            rng.randrange(10) if i >= 10 else None,
        )
        for i in range(300)
    ]
    db.insert_rows("emp", rows)
    db.execute("CREATE TABLE dept (name TEXT, budget FLOAT)")
    db.insert_rows(
        "dept", [("eng", 1e6), ("sales", 5e5), ("hr", 2e5)]
    )
    db.execute("ANALYZE")
    db._rows = rows
    return db


class TestDDL:
    def test_create_insert_select(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT, b TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert db.query("SELECT * FROM t").rows == [(1, "x"), (2, "y")]

    def test_primary_key_creates_clustered_index(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)")
        ix = db.table("t").index_on("a")
        assert ix is not None and ix.clustered

    def test_insert_with_column_list(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT, b TEXT, c FLOAT)")
        db.execute("INSERT INTO t (c, a) VALUES (1.5, 7)")
        assert db.query("SELECT * FROM t").rows == [(7, None, 1.5)]

    def test_insert_unknown_column(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(EngineError):
            db.execute("INSERT INTO t (zz) VALUES (1)")

    def test_insert_expression_folds(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (2 + 3)")
        assert db.query("SELECT a FROM t").rows == [(5,)]

    def test_insert_non_constant_rejected(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(EngineError):
            db.execute("INSERT INTO t VALUES (a)")

    def test_drop_table(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("DROP TABLE t")
        assert not db.catalog.has_table("t")

    def test_create_index_statement(self, db):
        db.execute("CREATE INDEX ix_dept ON emp (dept) USING hash")
        assert db.table("emp").index_on("dept") is not None


class TestQueries:
    def test_filter_and_project(self, db):
        r = db.query("SELECT id FROM emp WHERE salary > 99000")
        expected = [(x[0],) for x in db._rows if x[2] > 99000]
        assert sorted(r.rows) == sorted(expected)

    def test_point_query_via_pk(self, db):
        r = db.query("SELECT dept FROM emp WHERE id = 42")
        assert r.rows == [(db._rows[42][1],)]
        assert "IndexScan" in r.plan.pretty()

    def test_group_by_having_order(self, db):
        r = db.query(
            "SELECT dept, COUNT(*) AS n, AVG(salary) AS avg_sal "
            "FROM emp GROUP BY dept HAVING COUNT(*) > 10 "
            "ORDER BY avg_sal DESC"
        )
        by_dept = {}
        for row in db._rows:
            by_dept.setdefault(row[1], []).append(row[2])
        expected = {
            d: (len(v), sum(v) / len(v))
            for d, v in by_dept.items()
            if len(v) > 10
        }
        assert len(r.rows) == len(expected)
        avgs = [row[2] for row in r.rows]
        assert avgs == sorted(avgs, reverse=True)
        for d, n, avg in r.rows:
            assert expected[d][0] == n
            assert avg == pytest.approx(expected[d][1])

    def test_join(self, db):
        r = db.query(
            "SELECT e.id, d.budget FROM emp e, dept d WHERE e.dept = d.name "
            "AND e.salary > 95000"
        )
        expected = [
            (row[0], {"eng": 1e6, "sales": 5e5, "hr": 2e5}[row[1]])
            for row in db._rows
            if row[2] > 95000
        ]
        assert sorted(r.rows) == sorted(expected)

    def test_self_join(self, db):
        r = db.query(
            "SELECT a.id, b.id FROM emp a, emp b WHERE a.boss = b.id "
            "AND a.id < 20"
        )
        expected = [
            (x[0], x[3])
            for x in db._rows
            if x[3] is not None and x[0] < 20
        ]
        assert sorted(r.rows) == sorted(expected)

    def test_distinct(self, db):
        r = db.query("SELECT DISTINCT dept FROM emp")
        assert sorted(r.rows) == [("eng",), ("hr",), ("sales",)]

    def test_order_by_limit(self, db):
        r = db.query("SELECT id, salary FROM emp ORDER BY salary DESC LIMIT 5")
        top = sorted(db._rows, key=lambda x: -x[2])[:5]
        assert r.rows == [(x[0], x[2]) for x in top]

    def test_order_by_multiple_keys(self, db):
        r = db.query("SELECT dept, id FROM emp ORDER BY dept, id DESC")
        assert r.rows == sorted(
            [(x[1], x[0]) for x in db._rows], key=lambda p: (p[0], -p[1])
        )

    def test_in_and_like(self, db):
        r = db.query(
            "SELECT id FROM emp WHERE dept IN ('eng', 'hr') AND id < 10"
        )
        expected = [
            (x[0],) for x in db._rows if x[1] in ("eng", "hr") and x[0] < 10
        ]
        assert sorted(r.rows) == sorted(expected)

    def test_between(self, db):
        r = db.query("SELECT COUNT(*) AS n FROM emp WHERE id BETWEEN 10 AND 19")
        assert r.rows == [(10,)]

    def test_is_null(self, db):
        r = db.query("SELECT COUNT(*) AS n FROM emp WHERE boss IS NULL")
        assert r.rows == [(10,)]

    def test_computed_projection(self, db):
        r = db.query("SELECT id, salary * 1.1 AS raised FROM emp WHERE id = 0")
        assert r.rows[0][1] == pytest.approx(db._rows[0][2] * 1.1)

    def test_count_distinct(self, db):
        r = db.query("SELECT COUNT(DISTINCT dept) AS n FROM emp")
        assert r.rows == [(3,)]

    def test_empty_result(self, db):
        r = db.query("SELECT id FROM emp WHERE id = -1")
        assert r.rows == []

    def test_result_columns(self, db):
        r = db.query("SELECT id AS x, dept FROM emp LIMIT 1")
        assert r.columns == ["x", "dept"]
        assert r.as_dicts()[0]["x"] == 0


class TestExplainAndMetrics:
    def test_explain_statement(self, db):
        r = db.execute("EXPLAIN SELECT * FROM emp WHERE id = 1")
        text = "\n".join(row[0] for row in r.rows)
        assert "IndexScan" in text or "SeqScan" in text

    def test_explain_method(self, db):
        text = db.explain("SELECT e.id FROM emp e, dept d WHERE e.dept = d.name")
        assert "Join" in text
        assert "rows≈" in text

    def test_query_metrics_populated(self, db):
        r = db.query("SELECT COUNT(*) AS n FROM emp")
        assert r.io is not None
        assert r.exec_metrics is not None
        assert r.planning_seconds >= 0
        assert r.rowcount == 1

    def test_cold_run_pays_io(self, db):
        plan = db.plan("SELECT COUNT(*) AS n FROM emp")
        r = db.run_plan(plan, cold=True)
        assert r.io.reads >= db.table("emp").num_pages

    def test_actual_rows_annotated(self, db):
        plan = db.plan("SELECT id FROM emp WHERE salary > 99000")
        r = db.run_plan(plan)
        assert plan.actual_rows == len(r.rows)


class TestStrategyEquivalence:
    QUERIES = [
        "SELECT e.id, d.budget FROM emp e, dept d WHERE e.dept = d.name "
        "AND e.salary > 90000",
        "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept",
        "SELECT a.id FROM emp a, emp b WHERE a.boss = b.id AND b.dept = 'eng'",
        "SELECT id FROM emp WHERE id BETWEEN 5 AND 25 ORDER BY id DESC",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_all_strategies_agree(self, db, sql):
        reference = None
        for strategy in STRATEGIES:
            db.options = PlannerOptions(strategy=strategy)
            rows = sorted(db.query(sql).rows, key=repr)
            if reference is None:
                reference = rows
            else:
                assert rows == reference, strategy

    def test_interesting_orders_toggle_agrees(self, db):
        sql = "SELECT id FROM emp ORDER BY id"
        db.options = PlannerOptions(strategy="dp", use_interesting_orders=True)
        a = db.query(sql).rows
        db.options = PlannerOptions(strategy="dp", use_interesting_orders=False)
        b = db.query(sql).rows
        assert a == b


class TestErrors:
    def test_query_requires_select(self, db):
        with pytest.raises(EngineError):
            db.query("CREATE TABLE x (a INT)")

    def test_plan_requires_select(self, db):
        with pytest.raises(EngineError):
            db.plan("ANALYZE emp")

    def test_bad_strategy_rejected(self):
        with pytest.raises(ValueError):
            PlannerOptions(strategy="quantum")
