"""Tests for executor internals: sort keys, exec context, spill plumbing,
physical plan rendering."""

import pytest

from repro.executor import ExecContext, cmp_values, make_key_fn, read_spill, sorted_rows, spill_rows
from repro.physical import PSeqScan, RangeBound
from repro.storage import BufferPool, DiskManager
from repro.types import DataType, schema_of


def make_ctx(work_mem=4, page_size=512, pool_pages=64):
    disk = DiskManager(page_size)
    pool = BufferPool(disk, pool_pages)
    return disk, ExecContext(pool, work_mem)


class TestSortUtil:
    def test_cmp_values_nulls_first(self):
        assert cmp_values(None, 1) == -1
        assert cmp_values(1, None) == 1
        assert cmp_values(None, None) == 0
        assert cmp_values(1, 2) == -1
        assert cmp_values("b", "a") == 1

    def test_sort_key_total_order(self):
        ev = [lambda r: r[0], lambda r: r[1]]
        key = make_key_fn(ev, [True, False])
        a = key((1, 5))
        b = key((1, 9))
        assert b < a  # second key descending
        assert not (a < a)
        assert a == key((1, 5))

    def test_sorted_rows_mixed_directions(self):
        rows = [(1, "b"), (2, "a"), (1, "a"), (None, "z")]
        out = sorted_rows(
            rows,
            [lambda r: r[0], lambda r: r[1]],
            [True, True],
        )
        assert out == [(None, "z"), (1, "a"), (1, "b"), (2, "a")]

    def test_descending_puts_nulls_last(self):
        rows = [(1,), (None,), (3,)]
        out = sorted_rows(rows, [lambda r: r[0]], [False])
        assert out == [(3,), (1,), (None,)]


class TestExecContext:
    def test_work_mem_validation(self):
        disk = DiskManager(512)
        pool = BufferPool(disk, 8)
        with pytest.raises(ValueError):
            ExecContext(pool, work_mem_pages=2)

    def test_rows_fit_in_memory(self):
        _, ctx = make_ctx(work_mem=4, page_size=512)
        schema = schema_of("t", ("a", DataType.INT))
        assert ctx.rows_fit_in_memory(schema, 10)
        assert not ctx.rows_fit_in_memory(schema, 10**6)

    def test_max_rows_positive(self):
        _, ctx = make_ctx()
        schema = schema_of("t", ("a", DataType.TEXT))
        assert ctx.max_rows_in_memory(schema) >= 1
        assert ctx.max_rows_in_memory(schema, pages=1) >= 1

    def test_spill_roundtrip(self):
        _, ctx = make_ctx()
        schema = schema_of("t", ("a", DataType.INT), ("b", DataType.TEXT))
        rows = [(i, f"r{i}") for i in range(50)]
        temp = spill_rows(ctx, schema, rows)
        assert list(read_spill(ctx, temp)) == rows
        assert ctx.metrics.spills == 1
        ctx.drop_temp(temp)

    def test_cleanup_drops_all_temps(self):
        disk, ctx = make_ctx()
        schema = schema_of("t", ("a", DataType.INT))
        before = len(disk.file_ids())
        for _ in range(3):
            ctx.create_temp(schema)
        ctx.cleanup()
        assert len(disk.file_ids()) == before
        ctx.cleanup()  # idempotent

    def test_temp_files_counted(self):
        _, ctx = make_ctx()
        schema = schema_of("t", ("a", DataType.INT))
        ctx.create_temp(schema)
        ctx.create_temp(schema)
        assert ctx.metrics.temp_files == 2


class TestPhysicalRendering:
    def make_scan(self):
        from repro.catalog import Catalog

        disk = DiskManager()
        cat = Catalog(BufferPool(disk, 16))
        info = cat.create_table(
            "t", schema_of("t", ("a", DataType.INT))
        )
        return PSeqScan(info, "t")

    def test_pretty_without_annotations(self):
        scan = self.make_scan()
        text = scan.pretty()
        assert "SeqScan" in text and "rows≈0" in text

    def test_pretty_with_actuals(self):
        scan = self.make_scan()
        scan.actual_rows = 42
        scan.actual_loops = 1
        text = scan.pretty(actuals=True)
        assert "rows=42" in text and "loops=1" in text

    def test_pretty_with_full_actuals(self):
        scan = self.make_scan()
        scan.actual_rows = 7
        scan.actual_loops = 2
        scan.actual_time_ms = 1.25
        scan.actual_hits = 3
        scan.actual_reads = 4
        scan.actual_writes = 0
        scan.est_rows = 14.0
        text = scan.pretty(actuals=True)
        assert "actual time=1.250ms" in text
        assert "hits=3" in text and "reads=4" in text
        assert "writes=" not in text  # zero writes stay quiet
        assert "q-err=2.00" in text

    def test_range_bound_repr(self):
        assert str(RangeBound.open()) == "*"
        assert "5" in str(RangeBound.at(5, True))
        bound = RangeBound.at(5, False)
        assert not bound.inclusive and not bound.unbounded

    def test_total_est_cost_default(self):
        scan = self.make_scan()
        assert scan.total_est_cost() == 0.0


class TestExecMetricsCounters:
    """The executor's operator counters under deliberately tiny work_mem."""

    @pytest.fixture
    def db(self):
        from repro import Database

        db = Database(buffer_pages=64, work_mem_pages=3, page_size=512)
        db.execute("CREATE TABLE big (a INT, b INT)")
        db.insert_rows("big", [(i, (i * 37) % 101) for i in range(500)])
        db.execute("CREATE TABLE small (k INT, v INT)")
        db.insert_rows("small", [(i, i % 5) for i in range(40)])
        db.execute("ANALYZE")
        return db

    def test_external_sort_spills_and_compares(self, db):
        from repro.expr import col
        from repro.physical import PSort

        info = db.table("big")
        plan = PSort(PSeqScan(info, "big"), ((col("big.b"), True),))
        result = db.run_plan(plan)
        values = [row[1] for row in result.rows]
        assert values == sorted(values)
        m = result.exec_metrics
        assert m.spills > 0
        assert m.temp_files >= m.spills  # run files + merge passes

    def test_hash_join_grace_path_counters(self, db):
        from repro.expr import col
        from repro.physical import PHashJoin

        info = db.table("big")
        plan = PHashJoin(
            PSeqScan(info, "l"),
            PSeqScan(info, "r"),
            col("l.a"),
            col("r.a"),
        )
        result = db.run_plan(plan)
        assert result.rowcount == 500  # self-join on the unique column
        m = result.exec_metrics
        assert m.spills > 0  # build side cannot fit in 3 pages
        assert m.temp_files > 0  # Grace partitions
        assert m.hash_probes >= 500  # one probe per left row

    def test_hash_join_in_memory_probes_only(self, db):
        from repro.expr import col
        from repro.physical import PHashJoin

        info = db.table("small")
        plan = PHashJoin(
            PSeqScan(info, "l"),
            PSeqScan(info, "r"),
            col("l.k"),
            col("r.k"),
        )
        result = db.run_plan(plan)
        assert result.rowcount == 40
        m = result.exec_metrics
        assert m.hash_probes == 40
        assert m.spills == 0

    def test_block_nested_loop_comparisons(self, db):
        from repro.expr import col, eq
        from repro.physical import PNestedLoopJoin

        info = db.table("small")
        plan = PNestedLoopJoin(
            PSeqScan(info, "l"),
            PSeqScan(info, "r"),
            eq(col("l.k"), col("r.k")),
            block_pages=2,
        )
        result = db.run_plan(plan)
        assert result.rowcount == 40
        # every (outer, inner) pair is compared exactly once
        assert result.exec_metrics.comparisons == 40 * 40
