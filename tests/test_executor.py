"""Tests for the execution engine: every physical operator against a
brute-force Python reference, including spill paths."""

import random

import pytest

from repro.engine import Database
from repro.executor import ExecContext, run
from repro.expr import AggCall, AggFunc, col, eq, gt, lit
from repro.physical import (
    PAggregate,
    PDistinct,
    PFilter,
    PHashJoin,
    PIndexNLJoin,
    PIndexOnlyScan,
    PIndexScan,
    PLimit,
    PMaterialize,
    PNarrow,
    PNestedLoopJoin,
    PProject,
    PSeqScan,
    PSort,
    PSortMergeJoin,
    RangeBound,
)
from repro.types import DataType


@pytest.fixture(scope="module")
def env():
    db = Database(buffer_pages=64, work_mem_pages=4)
    db.execute("CREATE TABLE t (id INT, grp INT, val FLOAT)")
    rng = random.Random(9)
    t_rows = [(i, i % 13, rng.random() * 100) for i in range(3000)]
    db.insert_rows("t", t_rows)
    db.execute("CREATE INDEX ix_t_id ON t (id)")
    db.execute("CREATE TABLE u (id INT, tag TEXT)")
    u_rows = [(i, f"tag{i % 5}") for i in range(0, 3000, 3)]
    db.insert_rows("u", u_rows)
    db.execute("CREATE INDEX ix_u_id ON u (id)")
    db.analyze()
    return db, t_rows, u_rows


def execute(db, plan):
    ctx = ExecContext(db.pool, db.work_mem_pages)
    return run(plan, ctx), ctx


class TestScans:
    def test_seq_scan_all(self, env):
        db, t_rows, _ = env
        rows, _ = execute(db, PSeqScan(db.table("t"), "t"))
        assert rows == t_rows

    def test_seq_scan_with_predicate(self, env):
        db, t_rows, _ = env
        plan = PSeqScan(db.table("t"), "t", gt(col("t.val"), lit(50.0)))
        rows, _ = execute(db, plan)
        assert rows == [r for r in t_rows if r[2] > 50.0]

    def test_index_scan_range(self, env):
        db, t_rows, _ = env
        plan = PIndexScan(
            db.table("t"), "t", db.table("t").index_on("id"),
            RangeBound.at(100, True), RangeBound.at(110, False),
        )
        rows, _ = execute(db, plan)
        assert [r[0] for r in rows] == list(range(100, 110))

    def test_index_scan_residual(self, env):
        db, t_rows, _ = env
        plan = PIndexScan(
            db.table("t"), "t", db.table("t").index_on("id"),
            RangeBound.at(0, True), RangeBound.at(99, True),
            residual=eq(col("t.grp"), lit(0)),
        )
        rows, _ = execute(db, plan)
        assert all(r[1] == 0 for r in rows)
        assert len(rows) == len([r for r in t_rows[:100] if r[1] == 0])

    def test_index_scan_sorted_output(self, env):
        db, _, _ = env
        plan = PIndexScan(
            db.table("t"), "t", db.table("t").index_on("id"),
            RangeBound.open(), RangeBound.open(),
        )
        rows, _ = execute(db, plan)
        ids = [r[0] for r in rows]
        assert ids == sorted(ids)

    def test_index_only_scan(self, env):
        db, _, _ = env
        plan = PIndexOnlyScan(
            db.table("t"), "t", db.table("t").index_on("id"),
            RangeBound.at(5, True), RangeBound.at(9, True),
        )
        rows, _ = execute(db, plan)
        assert rows == [(5,), (6,), (7,), (8,), (9,)]


class TestRowOperators:
    def test_filter(self, env):
        db, t_rows, _ = env
        plan = PFilter(PSeqScan(db.table("t"), "t"), eq(col("t.grp"), lit(3)))
        rows, _ = execute(db, plan)
        assert rows == [r for r in t_rows if r[1] == 3]

    def test_project_expressions(self, env):
        db, t_rows, _ = env
        from repro.expr import Arithmetic, ArithOp

        plan = PProject(
            PSeqScan(db.table("t"), "t"),
            (Arithmetic(ArithOp.MUL, col("t.val"), lit(2.0)),),
            ("doubled",),
            (DataType.FLOAT,),
        )
        rows, _ = execute(db, plan)
        assert rows[0][0] == pytest.approx(t_rows[0][2] * 2)

    def test_narrow(self, env):
        db, t_rows, _ = env
        plan = PNarrow(PSeqScan(db.table("t"), "t"), (2, 0))
        rows, _ = execute(db, plan)
        assert rows[0] == (t_rows[0][2], t_rows[0][0])
        assert plan.schema.qualified_names() == ["t.val", "t.id"]

    def test_limit(self, env):
        db, t_rows, _ = env
        plan = PLimit(PSeqScan(db.table("t"), "t"), 7)
        rows, _ = execute(db, plan)
        assert rows == t_rows[:7]

    def test_limit_zero(self, env):
        db, _, _ = env
        rows, _ = execute(db, PLimit(PSeqScan(db.table("t"), "t"), 0))
        assert rows == []

    def test_distinct(self, env):
        db, t_rows, _ = env
        plan = PDistinct(PNarrow(PSeqScan(db.table("t"), "t"), (1,)))
        rows, _ = execute(db, plan)
        assert sorted(r[0] for r in rows) == sorted(set(r[1] for r in t_rows))

    def test_materialize_caches(self, env):
        db, t_rows, _ = env
        plan = PMaterialize(PSeqScan(db.table("t"), "t"))
        ctx = ExecContext(db.pool, db.work_mem_pages)
        from repro.executor.run import execute as exec_iter

        first = list(exec_iter(plan, ctx))
        second = list(exec_iter(plan, ctx))
        assert first == second == t_rows


def brute_force_join(t_rows, u_rows):
    return sorted(
        t + u for t in t_rows for u in u_rows if t[0] == u[0]
    )


class TestJoins:
    def expected(self, env):
        _, t_rows, u_rows = env
        return brute_force_join(t_rows, u_rows)

    def test_hash_join(self, env):
        db, *_ = env
        plan = PHashJoin(
            PSeqScan(db.table("t"), "t"), PSeqScan(db.table("u"), "u"),
            col("t.id"), col("u.id"),
        )
        rows, ctx = execute(db, plan)
        assert sorted(rows) == self.expected(env)
        # build side (1000 rows) exceeds 4-page work memory: Grace spill
        assert ctx.metrics.spills > 0

    def test_hash_join_in_memory(self, env):
        db, *_ = env
        plan = PHashJoin(
            PSeqScan(db.table("t"), "t"), PSeqScan(db.table("u"), "u"),
            col("t.id"), col("u.id"),
        )
        ctx = ExecContext(db.pool, work_mem_pages=64)
        rows = run(plan, ctx)
        assert sorted(rows) == self.expected(env)
        assert ctx.metrics.spills == 0

    def test_sort_merge_join(self, env):
        db, *_ = env
        plan = PSortMergeJoin(
            PSort(PSeqScan(db.table("t"), "t"), ((col("t.id"), True),)),
            PSort(PSeqScan(db.table("u"), "u"), ((col("u.id"), True),)),
            col("t.id"), col("u.id"),
        )
        rows, _ = execute(db, plan)
        assert sorted(rows) == self.expected(env)

    def test_merge_join_duplicates(self, env):
        db, t_rows, _ = env
        # join t to itself on grp: many-to-many duplicate keys
        small_t = PLimit(PSeqScan(db.table("t"), "t"), 100)
        right = PSort(
            PNarrow(PLimit(PSeqScan(db.table("t").__class__ and db.table("t"), "t2"), 100), (1,)),
            ((col("t2.grp"), True),),
        )
        left = PSort(small_t, ((col("t.grp"), True),))
        plan = PSortMergeJoin(left, right, col("t.grp"), col("t2.grp"))
        rows, _ = execute(db, plan)
        subset = t_rows[:100]
        expected = sorted(
            a + (b[1],) for a in subset for b in subset if a[1] == b[1]
        )
        assert sorted(rows) == expected

    def test_block_nested_loop(self, env):
        db, *_ = env
        plan = PNestedLoopJoin(
            PSeqScan(db.table("t"), "t"), PSeqScan(db.table("u"), "u"),
            eq(col("t.id"), col("u.id")), block_pages=2,
        )
        rows, _ = execute(db, plan)
        assert sorted(rows) == self.expected(env)

    def test_cross_join(self, env):
        db, t_rows, u_rows = env
        plan = PNestedLoopJoin(
            PLimit(PSeqScan(db.table("t"), "t"), 20),
            PLimit(PSeqScan(db.table("u"), "u"), 30),
            None,
        )
        rows, _ = execute(db, plan)
        assert len(rows) == 600

    def test_index_nl_join(self, env):
        db, *_ = env
        plan = PIndexNLJoin(
            PSeqScan(db.table("u"), "u"),
            db.table("t"), "t", db.table("t").index_on("id"),
            col("u.id"),
        )
        rows, _ = execute(db, plan)
        _, t_rows, u_rows = env
        expected = sorted(
            u + t for u in u_rows for t in t_rows if u[0] == t[0]
        )
        assert sorted(rows) == expected

    def test_null_keys_never_match(self, env):
        db, *_ = env
        cat = db.catalog
        cat.create_table(
            "nl", __import__("repro.types", fromlist=["schema_of"]).schema_of(
                "nl", ("k", DataType.INT)
            )
        )
        cat.insert_rows("nl", [(None,), (1,), (None,), (2,)])
        scan = PSeqScan(db.table("nl"), "nl")
        scan2 = PSeqScan(db.table("nl"), "nl2")
        for plan in (
            PHashJoin(scan, scan2, col("nl.k"), col("nl2.k")),
            PSortMergeJoin(
                PSort(scan, ((col("nl.k"), True),)),
                PSort(scan2, ((col("nl2.k"), True),)),
                col("nl.k"), col("nl2.k"),
            ),
        ):
            rows, _ = execute(db, plan)
            assert sorted(rows) == [(1, 1), (2, 2)]
        cat.drop_table("nl")


class TestSort:
    def test_in_memory_sort(self, env):
        db, _, u_rows = env
        plan = PSort(PSeqScan(db.table("u"), "u"), ((col("u.tag"), True), (col("u.id"), False)))
        ctx = ExecContext(db.pool, work_mem_pages=64)
        rows = run(plan, ctx)
        assert rows == sorted(u_rows, key=lambda r: (r[1], -r[0]))
        assert ctx.metrics.spills == 0

    def test_external_sort_spills(self, env):
        db, t_rows, _ = env
        plan = PSort(PSeqScan(db.table("t"), "t"), ((col("t.val"), True),))
        rows, ctx = execute(db, plan)  # 4-page work memory
        assert ctx.metrics.spills > 0
        assert [r[2] for r in rows] == sorted(r[2] for r in t_rows)

    def test_external_equals_in_memory(self, env):
        db, *_ = env
        plan = PSort(PSeqScan(db.table("t"), "t"), ((col("t.val"), False),))
        small_ctx = ExecContext(db.pool, 4)
        big_ctx = ExecContext(db.pool, 256)
        assert run(plan, small_ctx) == run(plan, big_ctx)

    def test_nulls_sort_first_asc(self, env):
        db, *_ = env
        cat = db.catalog
        from repro.types import schema_of

        cat.create_table("ns", schema_of("ns", ("x", DataType.INT)))
        cat.insert_rows("ns", [(3,), (None,), (1,)])
        plan = PSort(PSeqScan(db.table("ns"), "ns"), ((col("ns.x"), True),))
        rows, _ = execute(db, plan)
        assert rows == [(None,), (1,), (3,)]
        plan = PSort(PSeqScan(db.table("ns"), "ns"), ((col("ns.x"), False),))
        rows, _ = execute(db, plan)
        assert rows == [(3,), (1,), (None,)]
        cat.drop_table("ns")


class TestAggregation:
    def agg_schema(self, db, group_cols, aggs):
        from repro.algebra import LogicalAggregate, LogicalGet

        lagg = LogicalAggregate(
            LogicalGet(db.table("t"), "t"),
            tuple(col(c) for c in group_cols),
            tuple(c.split(".")[-1] for c in group_cols),
            aggs,
        )
        return lagg.schema

    def test_hash_aggregate(self, env):
        db, t_rows, _ = env
        aggs = (
            AggCall(AggFunc.COUNT, None),
            AggCall(AggFunc.SUM, col("t.val")),
            AggCall(AggFunc.MIN, col("t.id")),
            AggCall(AggFunc.MAX, col("t.id")),
            AggCall(AggFunc.AVG, col("t.val")),
        )
        plan = PAggregate(
            PSeqScan(db.table("t"), "t"), (col("t.grp"),), ("grp",),
            aggs, self.agg_schema(db, ["t.grp"], aggs),
        )
        rows, _ = execute(db, plan)
        by_grp = {}
        for r in t_rows:
            by_grp.setdefault(r[1], []).append(r)
        assert len(rows) == len(by_grp)
        for grp, count, total, mn, mx, avg in rows:
            ref = by_grp[grp]
            assert count == len(ref)
            assert total == pytest.approx(sum(r[2] for r in ref))
            assert mn == min(r[0] for r in ref)
            assert mx == max(r[0] for r in ref)
            assert avg == pytest.approx(total / count)

    def test_global_aggregate(self, env):
        db, t_rows, _ = env
        aggs = (AggCall(AggFunc.COUNT, None),)
        plan = PAggregate(
            PSeqScan(db.table("t"), "t"), (), (), aggs,
            self.agg_schema(db, [], aggs),
        )
        rows, _ = execute(db, plan)
        assert rows == [(len(t_rows),)]

    def test_streaming_equals_hash(self, env):
        db, *_ = env
        aggs = (AggCall(AggFunc.COUNT, None), AggCall(AggFunc.SUM, col("t.val")))
        schema = self.agg_schema(db, ["t.grp"], aggs)
        sorted_scan = PSort(
            PSeqScan(db.table("t"), "t"), ((col("t.grp"), True),)
        )
        stream = PAggregate(
            sorted_scan, (col("t.grp"),), ("grp",), aggs, schema,
            streaming=True,
        )
        hashp = PAggregate(
            PSeqScan(db.table("t"), "t"), (col("t.grp"),), ("grp",),
            aggs, schema,
        )
        srows, _ = execute(db, stream)
        hrows, _ = execute(db, hashp)
        assert sorted(srows) == sorted(
            (g, c, pytest.approx(s)) for g, c, s in hrows
        )

    def test_count_distinct(self, env):
        db, t_rows, _ = env
        aggs = (AggCall(AggFunc.COUNT, col("t.grp"), distinct=True),)
        plan = PAggregate(
            PSeqScan(db.table("t"), "t"), (), (), aggs,
            self.agg_schema(db, [], aggs),
        )
        rows, _ = execute(db, plan)
        assert rows == [(len({r[1] for r in t_rows}),)]

    def test_aggregates_ignore_nulls(self, env):
        db, *_ = env
        from repro.types import schema_of
        from repro.algebra import LogicalAggregate, LogicalGet

        db.catalog.create_table("an", schema_of("an", ("x", DataType.INT)))
        db.catalog.insert_rows("an", [(1,), (None,), (3,)])
        aggs = (
            AggCall(AggFunc.COUNT, col("an.x")),
            AggCall(AggFunc.SUM, col("an.x")),
            AggCall(AggFunc.AVG, col("an.x")),
        )
        lagg = LogicalAggregate(
            LogicalGet(db.table("an"), "an"), (), (), aggs
        )
        plan = PAggregate(
            PSeqScan(db.table("an"), "an"), (), (), aggs, lagg.schema
        )
        rows, _ = execute(db, plan)
        assert rows == [(2, 4, 2.0)]
        db.catalog.drop_table("an")
