"""The differential test matrix: seeded random queries, every planner
strategy, every batch size, every parallel degree — all against the
brute-force reference evaluator in :mod:`repro.qa`.

Failures print a pointer to a self-contained repro script (also written
to ``repro_failures/`` when a failure occurs), so a red nightly run is
reproducible from the artifact alone.

The default (tier-1) run covers a rotating slice of the matrix; the
``slow``-marked sweep runs the full ≥200-query matrix in nightly CI with
a rotating seed taken from ``REPRO_MATRIX_SEED``.
"""

import itertools
import os
from pathlib import Path

import pytest

from repro import Database
from repro.optimizer import PlannerOptions
from repro.qa import RandomWorkload, repro_script
from repro.qa.randomqueries import load_dataset

#: rotating nightly seed; defaults keep local runs deterministic
SEED = int(os.environ.get("REPRO_MATRIX_SEED", "1977"))

STRATEGIES = ["dp", "greedy", "syntactic"]
BATCH_SIZES = [1, 64, 1024]
DEGREES = [1, 2, 4]
COMBOS = list(itertools.product(STRATEGIES, BATCH_SIZES, DEGREES))

FAILURE_DIR = Path(__file__).resolve().parent.parent / "repro_failures"

_workload = RandomWorkload(SEED)
_reference = _workload.reference()
_databases = {}


def database_for(batch_size: int) -> Database:
    """One engine per batch size, data loaded once (module-lifetime cache).
    Small work memory on purpose: serial plans spill, so the matrix also
    exercises the spill-vs-parallel interaction."""
    if batch_size not in _databases:
        db = Database(buffer_pages=64, work_mem_pages=4, batch_size=batch_size)
        load_dataset(db, _workload.dataset())
        _databases[batch_size] = db
    return _databases[batch_size]


def check_case(index: int, strategy: str, batch_size: int, degree: int):
    """Run case *index* under one matrix cell and compare to reference.

    On mismatch, write the repro script and fail with its path — the
    script alone reproduces the failure from (seed, index, config).
    """
    case = _workload.case(index)
    db = database_for(batch_size)
    db.options = PlannerOptions(
        strategy=strategy,
        parallel_degree=degree,
        force_parallel=degree > 1,
    )
    try:
        got = db.query(case.sql).rows
    finally:
        db.options = PlannerOptions()
    if case.matches(got, _reference):
        return
    FAILURE_DIR.mkdir(exist_ok=True)
    name = f"seed{SEED}_case{index}_{strategy}_b{batch_size}_d{degree}.py"
    script_path = FAILURE_DIR / name
    script_path.write_text(
        repro_script(
            SEED,
            index,
            strategy=strategy,
            batch_size=batch_size,
            parallel_degree=degree,
        )
    )
    want = case.expected(_reference)
    pytest.fail(
        f"differential mismatch for seed={SEED} case={index} "
        f"({strategy}, batch={batch_size}, degree={degree})\n"
        f"  sql: {case.sql}\n"
        f"  engine rows: {len(got)}, reference rows: {len(want)}\n"
        f"  repro script: {script_path}\n"
        f"  run with: PYTHONPATH=src python {script_path}"
    )


class TestMatrixSlice:
    """Tier-1 slice: 40 cases, each under a rotating matrix cell, so every
    strategy × batch × degree combination is hit on every run."""

    @pytest.mark.parametrize("index", range(40))
    def test_case_matches_reference(self, index):
        strategy, batch_size, degree = COMBOS[index % len(COMBOS)]
        check_case(index, strategy, batch_size, degree)


@pytest.mark.slow
class TestFullMatrix:
    """Nightly sweep: ≥200 cases; every case runs under all strategies
    with batch/degree rotating per case (600 engine executions)."""

    @pytest.mark.parametrize("index", range(200))
    def test_case_matches_reference_all_strategies(self, index):
        cells = list(itertools.product(BATCH_SIZES, DEGREES))
        batch_size, degree = cells[index % len(cells)]
        for strategy in STRATEGIES:
            check_case(index, strategy, batch_size, degree)


@pytest.mark.fuzz
class TestFreshSeeds:
    """Extra fuzzing net: several derived seeds, fresh datasets each, a
    short query burst per seed — catches data-dependent bugs the fixed
    dataset can't."""

    @pytest.mark.parametrize("offset", range(4))
    def test_derived_seed_burst(self, offset):
        seed = SEED * 1_000 + offset
        workload = RandomWorkload(seed, r_rows=120, s_rows=80)
        reference = workload.reference()
        db = Database(buffer_pages=64, work_mem_pages=4)
        load_dataset(db, workload.dataset())
        for index in range(25):
            case = workload.case(index)
            strategy, _, degree = COMBOS[index % len(COMBOS)]
            db.options = PlannerOptions(
                strategy=strategy,
                parallel_degree=degree,
                force_parallel=degree > 1,
            )
            got = db.query(case.sql).rows
            db.options = PlannerOptions()
            if not case.matches(got, reference):
                FAILURE_DIR.mkdir(exist_ok=True)
                name = f"seed{seed}_case{index}_{strategy}_d{degree}.py"
                path = FAILURE_DIR / name
                path.write_text(
                    repro_script(
                        seed,
                        index,
                        strategy=strategy,
                        parallel_degree=degree,
                        r_rows=120,
                        s_rows=80,
                    )
                )
                pytest.fail(
                    f"fuzz mismatch seed={seed} case={index}: {case.sql}\n"
                    f"  repro script: {path}"
                )


class TestReproScript:
    def test_script_round_trips(self, tmp_path):
        """The emitted repro script must itself run green for a passing
        case — otherwise failure artifacts would be untrustworthy."""
        import subprocess
        import sys

        script = tmp_path / "repro_case0.py"
        script.write_text(repro_script(SEED, 0, strategy="dp"))
        env = dict(os.environ)
        root = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(root / "src")
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout

    def test_mismatch_detection_is_real(self):
        """matches() must actually reject wrong answers (guards against a
        vacuously-green matrix)."""
        case = _workload.case(0)
        want = case.expected(_reference)
        assert case.matches(list(want), _reference)
        corrupted = list(want) + [("bogus",) * (len(want[0]) if want else 1)]
        assert not case.matches(corrupted, _reference)
