"""Tests for SQL DELETE and UPDATE (with index maintenance)."""

import pytest

from repro import Database
from repro.catalog import IndexKind


@pytest.fixture
def db():
    db = Database(buffer_pages=64, work_mem_pages=8)
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT, v FLOAT)")
    db.insert_rows("t", [(i, i % 5, float(i)) for i in range(100)])
    db.execute("CREATE INDEX ix_grp ON t (grp) USING hash")
    db.execute("ANALYZE t")
    return db


class TestDelete:
    def test_delete_with_predicate(self, db):
        r = db.execute("DELETE FROM t WHERE grp = 2")
        assert r.rows == [(20,)]
        assert db.query("SELECT COUNT(*) AS n FROM t").rows == [(80,)]
        assert db.query("SELECT COUNT(*) AS n FROM t WHERE grp = 2").rows == [(0,)]

    def test_delete_maintains_btree(self, db):
        db.execute("DELETE FROM t WHERE id BETWEEN 10 AND 19")
        # pk index must not return ghosts
        assert db.query("SELECT id FROM t WHERE id = 15").rows == []
        assert db.query("SELECT id FROM t WHERE id = 25").rows == [(25,)]
        ix = db.table("t").index_on("id")
        assert ix.structure.num_entries == 90
        ix.structure.validate()

    def test_delete_all(self, db):
        r = db.execute("DELETE FROM t")
        assert r.rows == [(100,)]
        assert db.query("SELECT COUNT(*) AS n FROM t").rows == [(0,)]
        assert db.table("t").index_on("grp").structure.num_entries == 0

    def test_delete_nothing(self, db):
        r = db.execute("DELETE FROM t WHERE id = -5")
        assert r.rows == [(0,)]

    def test_reinsert_after_delete(self, db):
        db.execute("DELETE FROM t WHERE id = 7")
        db.execute("INSERT INTO t VALUES (7, 99, 7.5)")
        assert db.query("SELECT grp, v FROM t WHERE id = 7").rows == [(99, 7.5)]


class TestUpdate:
    def test_update_values(self, db):
        r = db.execute("UPDATE t SET v = v * 10 WHERE id < 10")
        assert r.rows == [(10,)]
        assert db.query("SELECT v FROM t WHERE id = 3").rows == [(30.0,)]
        assert db.query("SELECT v FROM t WHERE id = 50").rows == [(50.0,)]

    def test_update_indexed_column(self, db):
        db.execute("UPDATE t SET grp = 9 WHERE grp = 1")
        assert db.query("SELECT COUNT(*) AS n FROM t WHERE grp = 1").rows == [(0,)]
        assert db.query("SELECT COUNT(*) AS n FROM t WHERE grp = 9").rows == [(20,)]
        # hash index consistent with heap
        ix = db.table("t").index_on("grp")
        assert ix.kind is IndexKind.HASH
        assert ix.structure.num_entries == 100

    def test_update_multiple_assignments(self, db):
        db.execute("UPDATE t SET grp = grp + 10, v = 0.0 WHERE id = 5")
        assert db.query("SELECT grp, v FROM t WHERE id = 5").rows == [(10, 0.0)]

    def test_update_all_rows(self, db):
        r = db.execute("UPDATE t SET v = 1.0")
        assert r.rows == [(100,)]
        assert db.query("SELECT SUM(v) AS s FROM t").rows == [(100.0,)]

    def test_update_uses_old_row_values(self, db):
        # SET a = b, b = a style: both read the OLD row
        db.execute("CREATE TABLE sw (a INT, b INT)")
        db.insert_rows("sw", [(1, 2)])
        db.execute("UPDATE sw SET a = b, b = a")
        assert db.query("SELECT a, b FROM sw").rows == [(2, 1)]

    def test_update_pk_column(self, db):
        db.execute("UPDATE t SET id = 1000 WHERE id = 0")
        assert db.query("SELECT id FROM t WHERE id = 1000").rows == [(1000,)]
        assert db.query("SELECT id FROM t WHERE id = 0").rows == []
        db.table("t").index_on("id").structure.validate()

    def test_update_nothing(self, db):
        r = db.execute("UPDATE t SET v = 0.0 WHERE id = -1")
        assert r.rows == [(0,)]

    def test_growing_update_relocates(self, db):
        db.execute("CREATE TABLE s (id INT PRIMARY KEY, name TEXT)")
        db.insert_rows("s", [(i, "ab") for i in range(50)])
        db.execute("UPDATE s SET name = 'a considerably longer string' WHERE id = 25")
        assert db.query("SELECT name FROM s WHERE id = 25").rows == [
            ("a considerably longer string",)
        ]
        assert db.query("SELECT COUNT(*) AS n FROM s").rows == [(50,)]


class TestDMLThenAnalyze:
    def test_stats_refresh_after_dml(self, db):
        db.execute("DELETE FROM t WHERE id >= 50")
        db.execute("ANALYZE t")
        assert db.table("t").stats.num_rows == 50
        r = db.query("SELECT COUNT(*) AS n FROM t WHERE id < 10")
        assert r.rows == [(10,)]
