"""MVCC snapshot isolation: the reader-side concurrency contract.

SELECTs run against a commit-timestamp snapshot instead of taking shared
table locks, so they never block on writers and never observe
uncommitted state.  These tests pin the contract with *scripted
interleavings* — two or three sessions stepped explicitly (and, for the
non-blocking guarantees, real threads coordinated by events):

* no dirty reads — an uncommitted write is invisible to every other
  session, whichever scan path (heap, index, columnar) serves the read;
* repeatable reads — a transaction's first SELECT pins its snapshot;
  later SELECTs see the same state even as other sessions commit;
* read committed — autocommit SELECTs take a fresh statement snapshot
  and see each commit as it lands;
* read-your-own-writes — a transaction sees its own uncommitted changes;
* non-blocking — a SELECT completes while another session *holds the
  table's write lock*, proven with a writer thread parked mid-txn.
"""

import threading

import pytest

from repro import Database


def make_db(**kwargs):
    db = Database(**kwargs)
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT, s TEXT)")
    db.execute(
        "INSERT INTO t VALUES "
        + ", ".join(f"({i}, {i * 10}, 'r{i}')" for i in range(1, 6))
    )
    return db


BASELINE = [(i, i * 10, f"r{i}") for i in range(1, 6)]


def all_rows(session):
    return session.query("SELECT id, v, s FROM t ORDER BY id").rows


class TestNoDirtyReads:
    def test_uncommitted_update_invisible(self):
        db = make_db()
        s1, s2 = db.create_session(), db.create_session()
        s1.execute("BEGIN")
        s1.execute("UPDATE t SET v = -1 WHERE id <= 2")
        assert all_rows(s2) == BASELINE
        s1.execute("COMMIT")
        assert all_rows(s2)[0] == (1, -1, "r1")

    def test_uncommitted_insert_invisible(self):
        db = make_db()
        s1, s2 = db.create_session(), db.create_session()
        s1.execute("BEGIN")
        s1.execute("INSERT INTO t VALUES (6, 60, 'r6')")
        assert all_rows(s2) == BASELINE
        s1.execute("ROLLBACK")
        assert all_rows(s2) == BASELINE

    def test_uncommitted_delete_invisible(self):
        db = make_db()
        s1, s2 = db.create_session(), db.create_session()
        s1.execute("BEGIN")
        s1.execute("DELETE FROM t WHERE id = 3")
        # the deleted row is resurrected into the scan (ghost path)
        assert all_rows(s2) == BASELINE
        s1.execute("COMMIT")
        assert len(all_rows(s2)) == 4

    def test_index_point_lookup_sees_pre_image(self):
        db = make_db()
        s1, s2 = db.create_session(), db.create_session()
        s1.execute("BEGIN")
        s1.execute("UPDATE t SET v = -1 WHERE id = 1")
        s1.execute("DELETE FROM t WHERE id = 2")
        # both go through the pk btree: id=1 must show the pre-image,
        # id=2 must be injected back in key order
        assert s2.query("SELECT v FROM t WHERE id = 1").rows == [(10,)]
        assert s2.query("SELECT v FROM t WHERE id = 2").rows == [(20,)]
        assert s2.query(
            "SELECT id FROM t WHERE id > 0 ORDER BY id"
        ).rows == [(i,) for i in range(1, 6)]
        s1.execute("ROLLBACK")

    def test_columnar_scan_sees_pre_image(self):
        db = make_db(columnar=True)
        s1, s2 = db.create_session(), db.create_session()
        s1.execute("BEGIN")
        s1.execute("UPDATE t SET v = 9999 WHERE id = 4")
        # the vectorized path must fall back to visibility-filtered rows
        # (zone maps reflect the live heap, not the snapshot)
        assert s2.query("SELECT SUM(v) FROM t").rows == [(150,)]
        assert s2.query("SELECT id FROM t WHERE v > 100").rows == []
        s1.execute("COMMIT")
        assert s2.query("SELECT id FROM t WHERE v > 100").rows == [(4,)]


class TestRepeatableReads:
    def test_snapshot_pinned_at_first_select(self):
        db = make_db()
        s1, s2 = db.create_session(), db.create_session()
        s2.execute("BEGIN")
        first = all_rows(s2)  # pins the snapshot
        s1.execute("UPDATE t SET v = 0 WHERE id = 1")  # autocommit
        s1.execute("INSERT INTO t VALUES (6, 60, 'r6')")
        s1.execute("DELETE FROM t WHERE id = 5")
        assert all_rows(s2) == first == BASELINE
        assert s2.query("SELECT COUNT(*) FROM t").rows == [(5,)]
        s2.execute("COMMIT")
        # snapshot released: the committed world is visible
        rows = all_rows(s2)
        assert (6, 60, "r6") in rows
        assert rows[0] == (1, 0, "r1")
        assert all(r[0] != 5 for r in rows)

    def test_aggregates_and_joins_read_one_view(self):
        db = make_db()
        db.execute("CREATE TABLE u (id INT PRIMARY KEY, w INT)")
        db.execute("INSERT INTO u VALUES (1, 100), (2, 200)")
        s1, s2 = db.create_session(), db.create_session()
        s2.execute("BEGIN")
        s2.query("SELECT COUNT(*) FROM t")  # pin
        s1.execute("UPDATE u SET w = 0 WHERE id = 1")
        s1.execute("UPDATE t SET v = 0 WHERE id = 1")
        joined = s2.query(
            "SELECT t.id, t.v, u.w FROM t JOIN u ON t.id = u.id "
            "ORDER BY t.id"
        ).rows
        assert joined == [(1, 10, 100), (2, 20, 200)]
        s2.execute("ROLLBACK")

    def test_rollback_releases_snapshot(self):
        db = make_db()
        s2 = db.create_session()
        s2.execute("BEGIN")
        s2.query("SELECT COUNT(*) FROM t")
        assert db.txn.versions.active_snapshots() == 1
        s2.execute("ROLLBACK")
        assert db.txn.versions.active_snapshots() == 0


class TestReadCommitted:
    def test_autocommit_selects_track_commits(self):
        db = make_db()
        s1, s2 = db.create_session(), db.create_session()
        for new_v in (111, 222, 333):
            s1.execute(f"UPDATE t SET v = {new_v} WHERE id = 1")
            assert s2.query("SELECT v FROM t WHERE id = 1").rows == [
                (new_v,)
            ]

    def test_versions_pruned_when_no_snapshots_open(self):
        db = make_db()
        s1 = db.create_session()
        for i in range(10):
            s1.execute(f"UPDATE t SET v = {i} WHERE id = 2")
        # no reader pins anything: chains collapse behind the commits
        assert db.txn.versions.live_versions() == 0
        assert db.txn.versions.versions_pruned > 0


class TestReadYourOwnWrites:
    def test_txn_sees_its_uncommitted_changes(self):
        db = make_db()
        s1 = db.create_session()
        s1.execute("BEGIN")
        s1.query("SELECT COUNT(*) FROM t")  # pin the snapshot first
        s1.execute("UPDATE t SET v = -1 WHERE id = 1")
        s1.execute("INSERT INTO t VALUES (6, 60, 'r6')")
        s1.execute("DELETE FROM t WHERE id = 5")
        rows = all_rows(s1)
        assert rows[0] == (1, -1, "r1")
        assert (6, 60, "r6") in rows
        assert all(r[0] != 5 for r in rows)
        s1.execute("ROLLBACK")
        assert all_rows(s1) == BASELINE


class TestNonBlocking:
    def test_select_completes_while_write_lock_held(self):
        """The acceptance interleaving: a writer thread parks *inside*
        its transaction holding t's exclusive lock; the reader's SELECT
        must complete (with the pre-transaction state) while the lock is
        demonstrably still held, without waiting for the writer."""
        db = make_db()
        db.txn.lock_timeout = 5.0
        holding = threading.Event()
        release = threading.Event()
        done = []

        def writer():
            s = db.create_session()
            s.execute("BEGIN")
            s.execute("UPDATE t SET v = -1 WHERE id <= 5")  # locks t
            holding.set()
            release.wait(timeout=30)
            s.execute("COMMIT")
            done.append(True)
            s.close()

        w = threading.Thread(target=writer)
        w.start()
        assert holding.wait(timeout=30)
        reader = db.create_session()
        try:
            # the writer is parked mid-transaction: the lock is held, the
            # update uncommitted — and this read returns immediately
            assert all_rows(reader) == BASELINE
            assert not done, "reader must not have waited for COMMIT"
        finally:
            release.set()
            w.join(timeout=30)
        assert done
        assert all_rows(reader)[0] == (1, -1, "r1")

    def test_reader_snapshot_spans_writer_commit(self):
        """Barrier-stepped: reader pins → writer commits → reader
        re-reads its frozen view → reader commits → sees the new world."""
        db = make_db()
        steps = threading.Barrier(2, timeout=30)
        observed = {}

        def reader():
            s = db.create_session()
            s.execute("BEGIN")
            observed["pinned"] = all_rows(s)
            steps.wait()  # 1: snapshot pinned
            steps.wait()  # 2: writer committed
            observed["repeat"] = all_rows(s)
            s.execute("COMMIT")
            observed["fresh"] = all_rows(s)
            s.close()

        def writer():
            s = db.create_session()
            steps.wait()  # 1: reader has pinned
            s.execute("DELETE FROM t WHERE id = 1")
            steps.wait()  # 2: committed
            s.close()

        threads = [threading.Thread(target=f) for f in (reader, writer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert observed["pinned"] == BASELINE
        assert observed["repeat"] == BASELINE  # repeatable despite commit
        assert observed["fresh"] == BASELINE[1:]  # post-commit world


class TestVersionStoreHygiene:
    def test_drop_table_purges_chains(self):
        db = make_db()
        s1 = db.create_session()
        s2 = db.create_session()
        s2.execute("BEGIN")
        s2.query("SELECT COUNT(*) FROM t")  # pin, so chains are retained
        s1.execute("UPDATE t SET v = 0 WHERE id = 1")
        assert db.txn.versions.live_versions() > 0
        s2.execute("COMMIT")
        db.execute("DROP TABLE t")
        assert "t" not in db.txn.versions.tables_with_versions()
        # a recreated table must not inherit the old chains
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT, s TEXT)")
        db.execute("INSERT INTO t VALUES (1, 1, 'x')")
        assert db.query("SELECT id, v FROM t").rows == [(1, 1)]

    def test_snapshot_columns_in_activity(self):
        db = make_db()
        s = db.create_session()
        s.execute("BEGIN")
        s.query("SELECT COUNT(*) FROM t")
        rows = db.query(
            "SELECT session_id, state, snapshot_ts, snapshot_age_ms "
            "FROM sys_stat_activity"
        ).rows
        pinned = [r for r in rows if r[0] == s.id]
        assert pinned and pinned[0][1] == "idle in transaction"
        assert pinned[0][2] is not None  # the pinned snapshot's ts
        assert pinned[0][3] >= 0.0
        s.execute("ROLLBACK")

    def test_explain_analyze_reads_through_snapshot(self):
        db = make_db()
        s1, s2 = db.create_session(), db.create_session()
        s1.execute("BEGIN")
        s1.execute("UPDATE t SET v = -1 WHERE id = 1")
        plan_text = s2.execute(
            "EXPLAIN ANALYZE SELECT v FROM t WHERE id = 1"
        ).rows
        assert plan_text  # ran to completion without blocking
        s1.execute("ROLLBACK")
