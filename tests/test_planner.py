"""Unit tests for the end-to-end planner: conversion, order propagation,
order equivalence, covering-index selection, ablation switches."""

import random

import pytest

from repro import Database
from repro.optimizer import PlannerOptions
from repro.physical import (
    PAggregate,
    PFilter,
    PIndexOnlyScan,
    PSort,
    walk_plan,
)


@pytest.fixture(scope="module")
def db():
    db = Database(buffer_pages=48, work_mem_pages=8)
    db.execute("CREATE TABLE fact (id INT, dim_id INT, m FLOAT)")
    # fact physically ordered by dim_id with a clustered index
    rng = random.Random(17)
    rows = sorted(
        ((i, rng.randrange(500), rng.random()) for i in range(8000)),
        key=lambda r: r[1],
    )
    db.insert_rows("fact", rows)
    db.execute("CREATE CLUSTERED INDEX ix_fact_dim ON fact (dim_id)")
    db.execute("CREATE TABLE dim (id INT, name TEXT)")
    db.insert_rows("dim", [(i, f"d{i}") for i in range(500)])
    db.execute("CREATE CLUSTERED INDEX ix_dim_id ON dim (id)")
    db.execute("ANALYZE")
    return db


def plan_of(db, sql, **options):
    saved = db.options
    try:
        db.options = PlannerOptions(**options)
        return db.plan(sql)
    finally:
        db.options = saved


def has_node(plan, node_type):
    return any(isinstance(n, node_type) for n in walk_plan(plan))


class TestOrderEquivalence:
    def test_order_by_other_side_of_equi_join(self, db):
        """ORDER BY dim.id satisfied by a plan sorted on fact.dim_id."""
        sql = (
            "SELECT fact.m, dim.id FROM fact, dim "
            "WHERE fact.dim_id = dim.id ORDER BY dim.id"
        )
        plan = plan_of(db, sql, strategy="dp", use_interesting_orders=True)
        assert not has_node(plan, PSort)
        rows = db.run_plan(plan).rows
        ids = [r[1] for r in rows]
        assert ids == sorted(ids)

    def test_order_by_same_side(self, db):
        sql = (
            "SELECT fact.dim_id, dim.name FROM fact, dim "
            "WHERE fact.dim_id = dim.id ORDER BY fact.dim_id"
        )
        plan = plan_of(db, sql, strategy="dp", use_interesting_orders=True)
        assert not has_node(plan, PSort)

    def test_without_tracking_sort_appears(self, db):
        sql = (
            "SELECT fact.dim_id, dim.name FROM fact, dim "
            "WHERE fact.dim_id = dim.id ORDER BY fact.dim_id"
        )
        plan = plan_of(db, sql, strategy="dp", use_interesting_orders=False)
        assert has_node(plan, PSort)

    def test_desc_order_still_sorts(self, db):
        sql = "SELECT fact.dim_id FROM fact ORDER BY fact.dim_id DESC"
        plan = plan_of(db, sql, strategy="dp")
        assert has_node(plan, PSort)  # only ASC rides the index

    def test_streaming_aggregate_on_sorted_input(self, db):
        sql = (
            "SELECT fact.dim_id, COUNT(*) AS n FROM fact "
            "GROUP BY fact.dim_id ORDER BY fact.dim_id"
        )
        plan = plan_of(db, sql, strategy="dp", use_interesting_orders=True)
        aggs = [n for n in walk_plan(plan) if isinstance(n, PAggregate)]
        # clustered index delivers dim_id order: stream agg, and the final
        # ORDER BY rides the group order — no sort anywhere
        assert aggs and aggs[0].streaming
        assert not has_node(plan, PSort)
        rows = db.run_plan(plan).rows
        assert [r[0] for r in rows] == sorted(r[0] for r in rows)
        assert sum(r[1] for r in rows) == 8000


class TestCoveringIndex:
    def test_index_only_for_key_projection(self, db):
        plan = plan_of(
            db, "SELECT dim_id FROM fact WHERE dim_id < 50", strategy="dp"
        )
        assert has_node(plan, PIndexOnlyScan)

    def test_no_index_only_when_other_columns_needed(self, db):
        plan = plan_of(
            db, "SELECT dim_id, m FROM fact WHERE dim_id < 50", strategy="dp"
        )
        assert not has_node(plan, PIndexOnlyScan)

    def test_index_only_under_aggregate(self, db):
        plan = plan_of(
            db,
            "SELECT COUNT(dim_id) AS n FROM fact WHERE dim_id BETWEEN 5 AND 9",
            strategy="dp",
        )
        assert has_node(plan, PIndexOnlyScan)
        rows = db.run_plan(plan).rows
        check = db.query(
            "SELECT COUNT(*) AS n FROM fact WHERE dim_id BETWEEN 5 AND 9"
        ).rows
        assert rows == check

    def test_select_star_never_index_only(self, db):
        plan = plan_of(db, "SELECT * FROM fact WHERE dim_id < 5", strategy="dp")
        assert not has_node(plan, PIndexOnlyScan)


class TestAblationSwitches:
    def test_pushdown_off_keeps_filter_above_join(self, db):
        sql = (
            "SELECT COUNT(*) AS n FROM fact, dim "
            "WHERE fact.dim_id = dim.id AND fact.m > 0.9"
        )
        plan_off = plan_of(db, sql, strategy="dp", pushdown=False)
        filters = [n for n in walk_plan(plan_off) if isinstance(n, PFilter)]
        assert any("m >" in str(f.predicate) for f in filters)
        # results identical either way
        a = db.run_plan(plan_of(db, sql, strategy="dp", pushdown=True)).rows
        b = db.run_plan(plan_off).rows
        assert a == b

    def test_strategies_and_estimator_config(self, db):
        from repro.optimizer import EstimatorConfig

        sql = "SELECT COUNT(*) AS n FROM fact WHERE m < 0.5"
        base = db.run_plan(plan_of(db, sql, strategy="dp")).rows
        crude = db.run_plan(
            plan_of(
                db,
                sql,
                strategy="dp",
                estimator=EstimatorConfig(
                    use_histograms=False, use_mcvs=False, use_distinct=False
                ),
            )
        ).rows
        assert base == crude  # estimates change, answers don't

    def test_planner_stats_exposed(self, db):
        result = db.query(
            "SELECT COUNT(*) AS n FROM fact, dim WHERE fact.dim_id = dim.id"
        )
        assert result.planner_stats is not None
        assert result.planner_stats.plans_considered > 0


class TestConversionDetails:
    def test_limit_short_circuits_cost(self, db):
        plan = plan_of(db, "SELECT m FROM fact LIMIT 3", strategy="dp")
        rows = db.run_plan(plan).rows
        assert len(rows) == 3

    def test_distinct_preserved(self, db):
        plan = plan_of(
            db, "SELECT DISTINCT dim_id FROM fact WHERE dim_id < 10",
            strategy="dp",
        )
        rows = db.run_plan(plan).rows
        assert sorted(r[0] for r in rows) == list(range(10))

    def test_projection_order_survival(self, db):
        # order produced below a projection must be recognized above it
        sql = (
            "SELECT dim_id AS d FROM fact WHERE dim_id < 100 ORDER BY d"
        )
        plan = plan_of(db, sql, strategy="dp")
        assert not has_node(plan, PSort)

    def test_hidden_sort_column_stripped(self, db):
        sql = "SELECT id FROM dim ORDER BY name"
        plan = plan_of(db, sql, strategy="dp")
        result = db.run_plan(plan)
        assert result.columns == ["id"]
        names = db.query("SELECT name, id FROM dim ORDER BY name").rows
        assert [r[0] for r in result.rows] == [r[1] for r in names]
