"""Property test: random interleavings of sessions vs. a snapshot model.

Hypothesis generates arbitrary single-threaded interleavings of
BEGIN / SELECT / UPDATE / INSERT / DELETE / COMMIT / ROLLBACK across two
or three sessions, each owning its own table (writers take
table-exclusive locks, so disjoint write targets keep interleavings
lock-free while reads roam everywhere).  A pure-Python model tracks what
every read *must* return under snapshot isolation:

* a transaction's first SELECT freezes the committed state of every
  table (repeatable reads from then on);
* the transaction's own staged writes overlay its frozen view
  (read-your-own-writes, including deletes);
* autocommit SELECTs see exactly the current committed state
  (read committed);
* ROLLBACK discards staged writes without disturbing anyone's view.

Any divergence — a read seeing a torn state, a lost or leaked write, a
snapshot drifting — fails with the generated interleaving as the
reproducer.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database

#: nightly CI raises this for a deeper soak (see .github/workflows)
EXAMPLES = int(os.environ.get("REPRO_SNAPSHOT_EXAMPLES", "40"))

N_SESSIONS = 3
SEED_KEYS = 3  # every table starts as {0: 0, 1: 0, 2: 0}

#: staged-delete sentinel in the model
DELETED = object()

ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_SESSIONS - 1),  # session
        st.sampled_from(
            ("begin", "commit", "rollback", "read", "update", "delete",
             "insert")
        ),
        st.integers(min_value=0, max_value=SEED_KEYS - 1),  # key / table
        st.integers(min_value=1, max_value=99),  # value
    ),
    max_size=40,
)


class _SessionModel:
    def __init__(self, own):
        self.own = own
        self.in_txn = False
        #: committed state of every table, frozen at the first SELECT
        self.pinned = None
        #: own-table writes staged by the open transaction
        self.staged = {}


def _expected_rows(committed, s, table):
    """What snapshot isolation requires a SELECT on *table* to return."""
    if s.in_txn:
        if s.pinned is None:
            s.pinned = {t: dict(state) for t, state in committed.items()}
        base = dict(s.pinned[table])
    else:
        base = dict(committed[table])
    if s.in_txn and table == s.own:
        for k, v in s.staged.items():
            if v is DELETED:
                base.pop(k, None)
            else:
                base[k] = v
    return sorted(base.items())


@settings(max_examples=EXAMPLES, deadline=None)
@given(ops)
def test_random_interleavings_match_snapshot_model(script):
    db = Database()
    committed = {}
    sessions = []
    for i in range(N_SESSIONS):
        db.execute(f"CREATE TABLE t{i} (k INT, v INT)")
        db.execute(
            f"INSERT INTO t{i} VALUES "
            + ", ".join(f"({k}, 0)" for k in range(SEED_KEYS))
        )
        committed[i] = {k: 0 for k in range(SEED_KEYS)}
        sessions.append((db.create_session(), _SessionModel(own=i)))
    next_insert_key = [100 + i for i in range(N_SESSIONS)]

    try:
        for sid, op, key, value in script:
            conn, s = sessions[sid]
            if op == "begin":
                if s.in_txn:
                    continue
                conn.execute("BEGIN")
                s.in_txn = True
            elif op == "commit":
                if not s.in_txn:
                    continue
                conn.execute("COMMIT")
                for k, v in s.staged.items():
                    if v is DELETED:
                        committed[s.own].pop(k, None)
                    else:
                        committed[s.own][k] = v
                s.in_txn, s.pinned, s.staged = False, None, {}
            elif op == "rollback":
                if not s.in_txn:
                    continue
                conn.execute("ROLLBACK")
                s.in_txn, s.pinned, s.staged = False, None, {}
            elif op == "read":
                table = key % N_SESSIONS  # reads roam over every table
                got = conn.query(
                    f"SELECT k, v FROM t{table} ORDER BY k"
                ).rows
                want = _expected_rows(committed, s, table)
                assert got == [
                    (k, v) for k, v in want
                ], f"session {sid} read t{table}: got {got}, want {want}"
            elif op == "update":
                conn.execute(
                    f"UPDATE t{s.own} SET v = {value} WHERE k = {key}"
                )
                # the UPDATE acts on the *live* own-table state (committed
                # overlaid with staged) — never on the pinned snapshot,
                # and it must not pin one either
                live = dict(committed[s.own])
                for k, v in s.staged.items():
                    if v is DELETED:
                        live.pop(k, None)
                    else:
                        live[k] = v
                if key in live:
                    target = s.staged if s.in_txn else committed[s.own]
                    target[key] = value
            elif op == "delete":
                conn.execute(f"DELETE FROM t{s.own} WHERE k = {key}")
                if s.in_txn:
                    s.staged[key] = DELETED
                else:
                    committed[s.own].pop(key, None)
            else:  # insert: always a fresh key, so tables stay duplicate-free
                k = next_insert_key[sid]
                next_insert_key[sid] += N_SESSIONS
                conn.execute(f"INSERT INTO t{s.own} VALUES ({k}, {value})")
                if s.in_txn:
                    s.staged[k] = value
                else:
                    committed[s.own][k] = value

        # resolve stragglers, then the final committed state must match
        for conn, s in sessions:
            if s.in_txn:
                conn.execute("ROLLBACK")
                s.in_txn, s.pinned, s.staged = False, None, {}
        for i in range(N_SESSIONS):
            got = db.query(f"SELECT k, v FROM t{i} ORDER BY k").rows
            assert got == sorted(committed[i].items())
        assert db.txn.versions.active_snapshots() == 0
    finally:
        for conn, _ in sessions:
            conn.close()
