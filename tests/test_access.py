"""Tests for access-path selection."""

import random

import pytest

from repro.algebra import LogicalGet, JoinGraph
from repro.engine import Database
from repro.expr import col, eq, gt, lit, lt, ne
from repro.optimizer import (
    Estimator,
    StatsResolver,
    access_paths,
    best_per_order,
    extract_bounds,
)
from repro.physical import PIndexOnlyScan, PIndexScan, PSeqScan


class TestExtractBounds:
    NAMES = {"x", "t.x"}

    def test_equality(self):
        bounds, residual = extract_bounds([eq(col("x"), lit(5))], self.NAMES)
        assert bounds.is_equality and bounds.low.value == 5
        assert residual == []

    def test_range_pair(self):
        conjuncts = [gt(col("x"), lit(1)), lt(col("x"), lit(9))]
        bounds, residual = extract_bounds(conjuncts, self.NAMES)
        assert bounds.low.value == 1 and not bounds.low.inclusive
        assert bounds.high.value == 9 and not bounds.high.inclusive
        assert residual == []

    def test_tightening(self):
        conjuncts = [gt(col("x"), lit(1)), gt(col("x"), lit(5))]
        bounds, _ = extract_bounds(conjuncts, self.NAMES)
        assert bounds.low.value == 5

    def test_inclusive_vs_exclusive_tightening(self):
        from repro.expr import ge

        conjuncts = [ge(col("x"), lit(5)), gt(col("x"), lit(5))]
        bounds, _ = extract_bounds(conjuncts, self.NAMES)
        assert bounds.low.value == 5 and not bounds.low.inclusive

    def test_other_columns_residual(self):
        conjuncts = [eq(col("x"), lit(1)), eq(col("y"), lit(2))]
        bounds, residual = extract_bounds(conjuncts, self.NAMES)
        assert len(bounds.used) == 1
        assert len(residual) == 1

    def test_ne_not_sargable(self):
        bounds, residual = extract_bounds([ne(col("x"), lit(5))], self.NAMES)
        assert not bounds.bounded
        assert len(residual) == 1

    def test_qualified_spelling(self):
        bounds, _ = extract_bounds([eq(col("t.x"), lit(5))], self.NAMES)
        assert bounds.is_equality


@pytest.fixture(scope="module")
def db():
    db = Database(buffer_pages=48, work_mem_pages=8)
    db.execute("CREATE TABLE t (id INT, r INT, pad TEXT)")
    rng = random.Random(2)
    db.insert_rows(
        "t",
        [(i, rng.randrange(10000), "x" * 20) for i in range(10000)],
    )
    db.execute("CREATE CLUSTERED INDEX ix_id ON t (id)")
    db.execute("CREATE INDEX ix_r ON t (r)")
    db.analyze()
    return db


def paths_for(db, conjuncts, **kwargs):
    info = db.table("t")
    get = LogicalGet(info, "t")
    graph = JoinGraph(
        relations={"t": get},
        filters={"t": list(conjuncts)},
        syntactic_order=["t"],
    )
    est = Estimator(StatsResolver(graph))
    return access_paths(info, "t", conjuncts, est, db.model, **kwargs)


class TestAccessPaths:
    def test_always_offers_seq_scan(self, db):
        cands = paths_for(db, [])
        assert any(isinstance(c.plan, PSeqScan) for c in cands)

    def test_selective_point_prefers_index(self, db):
        cands = paths_for(db, [eq(col("t.id"), lit(42))])
        best = min(cands, key=lambda c: c.cost.total)
        assert isinstance(best.plan, PIndexScan)
        assert best.plan.is_equality

    def test_full_table_prefers_seq(self, db):
        cands = paths_for(db, [])
        best = min(cands, key=lambda c: c.cost.total)
        assert isinstance(best.plan, PSeqScan)

    def test_unclustered_wide_range_prefers_seq(self, db):
        cands = paths_for(db, [lt(col("t.r"), lit(9000))])  # ~90%
        best = min(cands, key=lambda c: c.cost.total)
        assert isinstance(best.plan, PSeqScan)

    def test_unclustered_narrow_range_prefers_index(self, db):
        cands = paths_for(db, [lt(col("t.r"), lit(20))])  # ~0.2%
        best = min(cands, key=lambda c: c.cost.total)
        assert isinstance(best.plan, PIndexScan)
        assert best.plan.index.name == "ix_r"

    def test_clustered_range_beats_unclustered(self, db):
        # same 20% selectivity on both columns
        by_id = paths_for(db, [lt(col("t.id"), lit(2000))])
        by_r = paths_for(db, [lt(col("t.r"), lit(2000))])
        id_index = min(
            (c for c in by_id if isinstance(c.plan, PIndexScan)),
            key=lambda c: c.cost.total,
        )
        r_index = min(
            (c for c in by_r if isinstance(c.plan, PIndexScan) and c.plan.index.name == "ix_r"),
            key=lambda c: c.cost.total,
        )
        assert id_index.cost.total < r_index.cost.total

    def test_residual_attached(self, db):
        cands = paths_for(
            db, [eq(col("t.id"), lit(5)), gt(col("t.r"), lit(100))]
        )
        index_cands = [c for c in cands if isinstance(c.plan, PIndexScan)
                       and c.plan.index.name == "ix_id"]
        assert index_cands[0].plan.residual is not None

    def test_order_annotation(self, db):
        cands = paths_for(db, [eq(col("t.id"), lit(5))])
        orders = {c.order for c in cands}
        assert "t.id" in orders

    def test_unbounded_index_scan_offered_for_order(self, db):
        cands = paths_for(db, [])
        ordered = [c for c in cands if c.order == "t.id"]
        assert ordered  # kept for interesting-order value

    def test_index_only_when_key_suffices(self, db):
        cands = paths_for(
            db,
            [gt(col("t.id"), lit(9990))],
            needed_columns={"t.id"},
        )
        assert any(isinstance(c.plan, PIndexOnlyScan) for c in cands)

    def test_index_only_not_offered_when_more_needed(self, db):
        cands = paths_for(
            db,
            [gt(col("t.id"), lit(9990))],
            needed_columns={"t.id", "t.r"},
        )
        assert not any(isinstance(c.plan, PIndexOnlyScan) for c in cands)

    def test_best_per_order_prunes(self, db):
        cands = paths_for(db, [eq(col("t.id"), lit(5))])
        pruned = best_per_order(cands)
        orders = [c.order for c in pruned]
        assert len(orders) == len(set(orders))

    def test_estimated_rows_sane(self, db):
        cands = paths_for(db, [eq(col("t.id"), lit(5))])
        for c in cands:
            assert 0 <= c.rows <= 10
