"""Synthetic data generators.

Deterministic (seeded) value generators with controllable distribution —
the knobs the estimation-accuracy experiments need:

* uniform ints/floats,
* Zipf-skewed ints (the distribution that breaks the uniformity assumption),
* correlated column pairs (breaks the independence assumption),
* categorical values with weights,
* unique ints in random or sequential order (for clustered loading).
"""

from __future__ import annotations

import random
import string
from typing import Any, Callable, List, Optional, Sequence, Tuple


class Rng:
    """A seeded random source shared by one workload build."""

    def __init__(self, seed: int = 0):
        self.random = random.Random(seed)

    def spawn(self, salt: int) -> "Rng":
        return Rng(self.random.randint(0, 2**31) ^ salt)


def uniform_ints(rng: Rng, n: int, low: int, high: int) -> List[int]:
    """n ints uniform in [low, high]."""
    r = rng.random
    return [r.randint(low, high) for _ in range(n)]


def uniform_floats(rng: Rng, n: int, low: float = 0.0, high: float = 1.0) -> List[float]:
    r = rng.random
    span = high - low
    return [low + r.random() * span for _ in range(n)]


def sequential_ints(n: int, start: int = 0) -> List[int]:
    return list(range(start, start + n))


def shuffled_ints(rng: Rng, n: int, start: int = 0) -> List[int]:
    values = sequential_ints(n, start)
    rng.random.shuffle(values)
    return values


def zipf_ints(
    rng: Rng, n: int, num_values: int, skew: float = 1.0, start: int = 0
) -> List[int]:
    """n ints over [start, start+num_values) with Zipf(skew) frequencies.

    ``skew=0`` degenerates to uniform; ``skew≈1`` is classic Zipf; larger is
    more extreme.  Implemented by inverse-CDF over the finite harmonic
    weights, so it needs no scipy and is exactly reproducible.
    """
    if num_values < 1:
        raise ValueError("need at least one distinct value")
    weights = [1.0 / (k ** skew) for k in range(1, num_values + 1)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    r = rng.random
    out = []
    for _ in range(n):
        x = r.random()
        out.append(start + _bisect(cdf, x))
    return out


def _bisect(cdf: Sequence[float], x: float) -> int:
    lo, hi = 0, len(cdf) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cdf[mid] < x:
            lo = mid + 1
        else:
            hi = mid
    return lo


def correlated_pair(
    rng: Rng, n: int, domain: int, correlation: float = 1.0
) -> Tuple[List[int], List[int]]:
    """Two int columns over [0, domain) where the second equals the first
    with probability *correlation* (else independent uniform).

    ``correlation=1`` makes ``a = x AND b = x`` selectivities multiply
    wrongly under independence — the classic estimator failure mode.
    """
    r = rng.random
    a = [r.randrange(domain) for _ in range(n)]
    b = [
        v if r.random() < correlation else r.randrange(domain)
        for v in a
    ]
    return a, b


def categorical(
    rng: Rng, n: int, values: Sequence[Any], weights: Optional[Sequence[float]] = None
) -> List[Any]:
    r = rng.random
    if weights is None:
        return [r.choice(list(values)) for _ in range(n)]
    return r.choices(list(values), weights=list(weights), k=n)


def words(rng: Rng, n: int, length: int = 8, alphabet: str = string.ascii_lowercase) -> List[str]:
    r = rng.random
    return [
        "".join(r.choice(alphabet) for _ in range(length)) for _ in range(n)
    ]


def prefixed_words(
    rng: Rng, n: int, prefixes: Sequence[str], length: int = 6
) -> List[str]:
    """Strings with a categorical prefix — exercises LIKE-prefix estimation."""
    r = rng.random
    tails = words(rng, n, length)
    return [r.choice(list(prefixes)) + "-" + tail for tail in tails]


def with_nulls(rng: Rng, values: List[Any], null_fraction: float) -> List[Any]:
    r = rng.random
    return [None if r.random() < null_fraction else v for v in values]


def column_set(
    rng: Rng, n: int, spec: Sequence[Tuple[str, Callable[[Rng, int], List[Any]]]]
) -> List[Tuple[Any, ...]]:
    """Build rows column-wise from (name, generator) pairs (names are for
    documentation; order defines the row layout)."""
    columns = [gen(rng.spawn(i), n) for i, (_, gen) in enumerate(spec)]
    return list(zip(*columns))
