"""Workload substrate: data generators, join-shape workloads, wholesale schema."""

from .generators import (
    Rng,
    categorical,
    column_set,
    correlated_pair,
    prefixed_words,
    sequential_ints,
    shuffled_ints,
    uniform_floats,
    uniform_ints,
    with_nulls,
    words,
    zipf_ints,
)
from .shapes import (
    ShapeWorkload,
    build_chain,
    build_clique,
    build_cycle,
    build_shape,
    build_star,
)
from .wholesale import (
    REGIONS,
    SEGMENTS,
    STATUSES,
    WHOLESALE_QUERIES,
    WholesaleScale,
    load_wholesale,
)

__all__ = [
    "Rng", "categorical", "column_set", "correlated_pair", "prefixed_words",
    "sequential_ints", "shuffled_ints", "uniform_floats", "uniform_ints",
    "with_nulls", "words", "zipf_ints", "ShapeWorkload", "build_chain",
    "build_clique", "build_cycle", "build_shape", "build_star", "REGIONS",
    "SEGMENTS", "STATUSES", "WHOLESALE_QUERIES", "WholesaleScale",
    "load_wholesale",
]
