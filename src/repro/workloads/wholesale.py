"""The "wholesale" mini-warehouse: a TPC-H-flavoured analytic schema.

Five tables (region → nation → customer/supplier → orders → lineitem)
loaded at a configurable scale factor, plus the eight analytical queries
E10 measures end to end.  Data is seeded and synthetic; distributions are
chosen so the queries have meaningfully different good and bad plans
(selective filters, skewed statuses, FK joins of very different sizes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..engine import Database
from .generators import (
    Rng,
    categorical,
    prefixed_words,
    sequential_ints,
    uniform_floats,
    uniform_ints,
    zipf_ints,
)

REGIONS = ["AMERICA", "EUROPE", "ASIA", "AFRICA", "MIDEAST"]
STATUSES = ["open", "shipped", "delivered", "returned"]
SEGMENTS = ["retail", "wholesale", "online", "industrial"]


@dataclass
class WholesaleScale:
    customers: int = 600
    suppliers: int = 80
    orders: int = 4000
    lineitems_per_order: int = 3

    @classmethod
    def tiny(cls) -> "WholesaleScale":
        return cls(customers=150, suppliers=20, orders=800, lineitems_per_order=2)

    @classmethod
    def small(cls) -> "WholesaleScale":
        return cls()

    @classmethod
    def medium(cls) -> "WholesaleScale":
        return cls(customers=2000, suppliers=200, orders=15000, lineitems_per_order=4)


def load_wholesale(
    db: Database,
    scale: WholesaleScale = None,
    seed: int = 42,
    with_indexes: bool = True,
) -> Dict[str, int]:
    """Create and populate the wholesale schema; returns row counts."""
    scale = scale or WholesaleScale.small()
    rng = Rng(seed)

    db.execute("CREATE TABLE region (id INT, name TEXT)")
    db.insert_rows("region", list(enumerate(REGIONS)))

    nnations = len(REGIONS) * 5
    db.execute("CREATE TABLE nation (id INT, region_id INT, name TEXT)")
    db.insert_rows(
        "nation",
        [
            (i, i % len(REGIONS), f"nation{i:02d}")
            for i in range(nnations)
        ],
    )

    db.execute(
        "CREATE TABLE customer (id INT, nation_id INT, segment TEXT, "
        "name TEXT, balance FLOAT)"
    )
    ncust = scale.customers
    db.insert_rows(
        "customer",
        list(
            zip(
                sequential_ints(ncust),
                uniform_ints(rng.spawn(1), ncust, 0, nnations - 1),
                categorical(rng.spawn(2), ncust, SEGMENTS, [4, 2, 3, 1]),
                prefixed_words(rng.spawn(3), ncust, ["acme", "globo", "init"]),
                uniform_floats(rng.spawn(4), ncust, -500.0, 9500.0),
            )
        ),
    )

    db.execute(
        "CREATE TABLE supplier (id INT, nation_id INT, name TEXT, rating INT)"
    )
    nsupp = scale.suppliers
    db.insert_rows(
        "supplier",
        list(
            zip(
                sequential_ints(nsupp),
                uniform_ints(rng.spawn(5), nsupp, 0, nnations - 1),
                prefixed_words(rng.spawn(6), nsupp, ["sup"]),
                uniform_ints(rng.spawn(7), nsupp, 1, 5),
            )
        ),
    )

    db.execute(
        "CREATE TABLE orders (id INT, cust_id INT, status TEXT, "
        "total FLOAT, priority INT)"
    )
    norders = scale.orders
    db.insert_rows(
        "orders",
        list(
            zip(
                sequential_ints(norders),
                zipf_ints(rng.spawn(8), norders, ncust, skew=0.8),
                categorical(rng.spawn(9), norders, STATUSES, [1, 2, 6, 1]),
                uniform_floats(rng.spawn(10), norders, 10.0, 5000.0),
                uniform_ints(rng.spawn(11), norders, 1, 5),
            )
        ),
    )

    db.execute(
        "CREATE TABLE lineitem (id INT, order_id INT, supp_id INT, "
        "qty INT, price FLOAT, discount FLOAT)"
    )
    nitems = norders * scale.lineitems_per_order
    db.insert_rows(
        "lineitem",
        list(
            zip(
                sequential_ints(nitems),
                uniform_ints(rng.spawn(12), nitems, 0, norders - 1),
                zipf_ints(rng.spawn(13), nitems, nsupp, skew=0.6),
                uniform_ints(rng.spawn(14), nitems, 1, 50),
                uniform_floats(rng.spawn(15), nitems, 1.0, 200.0),
                uniform_floats(rng.spawn(16), nitems, 0.0, 0.1),
            )
        ),
    )

    if with_indexes:
        db.execute("CREATE CLUSTERED INDEX ix_cust_id ON customer (id)")
        db.execute("CREATE CLUSTERED INDEX ix_orders_id ON orders (id)")
        db.execute("CREATE INDEX ix_orders_cust ON orders (cust_id)")
        db.execute("CREATE INDEX ix_line_order ON lineitem (order_id)")
        db.execute("CREATE INDEX ix_line_supp ON lineitem (supp_id)")
        db.execute("CREATE INDEX ix_supp_id ON supplier (id)")
        db.execute("CREATE INDEX ix_nation_id ON nation (id)")
    db.analyze()

    return {
        "region": len(REGIONS),
        "nation": nnations,
        "customer": ncust,
        "supplier": nsupp,
        "orders": norders,
        "lineitem": nitems,
    }


#: The eight end-to-end analytical queries (E10).
WHOLESALE_QUERIES: Dict[str, str] = {
    "Q1_status_rollup": (
        "SELECT o.status, COUNT(*) AS n, SUM(o.total) AS revenue "
        "FROM orders o GROUP BY o.status ORDER BY revenue DESC"
    ),
    "Q2_region_revenue": (
        "SELECT r.name, SUM(o.total) AS revenue "
        "FROM orders o, customer c, nation n, region r "
        "WHERE o.cust_id = c.id AND c.nation_id = n.id "
        "AND n.region_id = r.id GROUP BY r.name ORDER BY revenue DESC"
    ),
    "Q3_top_customers": (
        "SELECT c.name, SUM(o.total) AS spend "
        "FROM orders o, customer c "
        "WHERE o.cust_id = c.id AND o.status = 'delivered' "
        "GROUP BY c.name ORDER BY spend DESC LIMIT 10"
    ),
    "Q4_line_revenue": (
        "SELECT s.name, SUM(l.price * l.qty * (1 - l.discount)) AS revenue "
        "FROM lineitem l, supplier s "
        "WHERE l.supp_id = s.id AND s.rating >= 4 "
        "GROUP BY s.name ORDER BY revenue DESC LIMIT 5"
    ),
    "Q5_big_orders_by_segment": (
        "SELECT c.segment, COUNT(*) AS n "
        "FROM orders o, customer c "
        "WHERE o.cust_id = c.id AND o.total > 4500 "
        "GROUP BY c.segment"
    ),
    "Q6_five_way": (
        "SELECT r.name, COUNT(*) AS n "
        "FROM lineitem l, orders o, customer c, nation n, region r "
        "WHERE l.order_id = o.id AND o.cust_id = c.id "
        "AND c.nation_id = n.id AND n.region_id = r.id "
        "AND o.status = 'returned' GROUP BY r.name"
    ),
    "Q7_selective_point": (
        "SELECT o.id, o.total FROM orders o, lineitem l "
        "WHERE l.order_id = o.id AND o.id = 17"
    ),
    "Q8_priority_scan": (
        "SELECT o.priority, AVG(o.total) AS avg_total "
        "FROM orders o WHERE o.status <> 'open' "
        "GROUP BY o.priority ORDER BY o.priority"
    ),
}
