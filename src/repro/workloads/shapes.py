"""Join-shape workloads: chain, star, clique, cycle.

Each builder loads tables into a :class:`repro.Database` and returns the
SQL join query of the corresponding shape — the workloads the plan-quality
(E4) and planning-time (E5) experiments sweep over.

Table design:

* **chain**: R0 → R1 → … → R(n-1); each Ri has ``id`` (unique) and ``fk``
  pointing into R(i+1); table sizes alternate so join order matters.
* **star**: one fact table with n-1 foreign keys into n-1 dimension tables
  of varying size.
* **clique**: every pair of tables joinable on a shared ``k`` column.
* **cycle**: chain plus an edge closing the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..engine import Database
from .generators import Rng, shuffled_ints, uniform_floats, uniform_ints


@dataclass
class ShapeWorkload:
    """A loaded join workload plus its query."""

    shape: str
    tables: List[str]
    sql: str
    num_relations: int


def _sizes(n: int, base: int, ratio: float) -> List[int]:
    """Alternating sizes around *base* so bad orders are clearly bad."""
    sizes = []
    for i in range(n):
        factor = ratio if i % 2 else 1.0 / ratio
        sizes.append(max(10, int(base * factor)))
    return sizes


def build_chain(
    db: Database,
    n: int,
    base_rows: int = 1000,
    ratio: float = 3.0,
    seed: int = 0,
    selectivity: float = 1.0,
    with_indexes: bool = False,
    prefix: str = "c",
) -> ShapeWorkload:
    """Chain query over n relations."""
    if n < 2:
        raise ValueError("a chain needs at least two relations")
    rng = Rng(seed)
    sizes = _sizes(n, base_rows, ratio)
    tables = [f"{prefix}{i}" for i in range(n)]
    for i, (table, rows) in enumerate(zip(tables, sizes)):
        db.execute(
            f"CREATE TABLE {table} (id INT, fk INT, v FLOAT)"
        )
        ids = shuffled_ints(rng.spawn(i), rows)
        if i + 1 < n:
            fks = uniform_ints(rng.spawn(100 + i), rows, 0, sizes[i + 1] - 1)
        else:
            fks = uniform_ints(rng.spawn(100 + i), rows, 0, rows - 1)
        vs = uniform_floats(rng.spawn(200 + i), rows)
        db.insert_rows(table, list(zip(ids, fks, vs)))
        if with_indexes:
            db.execute(f"CREATE INDEX ix_{table}_id ON {table} (id)")
        db.analyze(table)
    joins = " AND ".join(
        f"{tables[i]}.fk = {tables[i + 1]}.id" for i in range(n - 1)
    )
    where = joins
    if selectivity < 1.0:
        where += f" AND {tables[0]}.v < {selectivity}"
    sql = f"SELECT COUNT(*) AS n FROM {', '.join(tables)} WHERE {where}"
    return ShapeWorkload("chain", tables, sql, n)


def build_star(
    db: Database,
    n: int,
    fact_rows: int = 5000,
    dim_base: int = 100,
    seed: int = 0,
    with_indexes: bool = False,
    prefix: str = "s",
) -> ShapeWorkload:
    """Star query: fact joined to n-1 dimensions of growing size."""
    if n < 2:
        raise ValueError("a star needs at least two relations")
    rng = Rng(seed)
    ndims = n - 1
    dim_tables = [f"{prefix}d{i}" for i in range(ndims)]
    dim_sizes = [dim_base * (2 ** i) for i in range(ndims)]
    for i, (table, rows) in enumerate(zip(dim_tables, dim_sizes)):
        db.execute(f"CREATE TABLE {table} (id INT, attr FLOAT)")
        db.insert_rows(
            table,
            list(
                zip(
                    shuffled_ints(rng.spawn(i), rows),
                    uniform_floats(rng.spawn(50 + i), rows),
                )
            ),
        )
        if with_indexes:
            db.execute(f"CREATE INDEX ix_{table}_id ON {table} (id)")
        db.analyze(table)
    fact = f"{prefix}fact"
    cols = ", ".join(f"fk{i} INT" for i in range(ndims))
    db.execute(f"CREATE TABLE {fact} (id INT, {cols}, measure FLOAT)")
    columns = [shuffled_ints(rng.spawn(999), fact_rows)]
    for i, size in enumerate(dim_sizes):
        columns.append(uniform_ints(rng.spawn(300 + i), fact_rows, 0, size - 1))
    columns.append(uniform_floats(rng.spawn(777), fact_rows))
    db.insert_rows(fact, list(zip(*columns)))
    db.analyze(fact)
    tables = [fact] + dim_tables
    joins = " AND ".join(
        f"{fact}.fk{i} = {dim_tables[i]}.id" for i in range(ndims)
    )
    sql = f"SELECT COUNT(*) AS n FROM {', '.join(tables)} WHERE {joins}"
    return ShapeWorkload("star", tables, sql, n)


def build_clique(
    db: Database,
    n: int,
    base_rows: int = 500,
    domain: int = 50,
    seed: int = 0,
    prefix: str = "q",
) -> ShapeWorkload:
    """Clique query: every pair of relations joined on a shared key."""
    if n < 2:
        raise ValueError("a clique needs at least two relations")
    rng = Rng(seed)
    sizes = _sizes(n, base_rows, 2.0)
    tables = [f"{prefix}{i}" for i in range(n)]
    for i, (table, rows) in enumerate(zip(tables, sizes)):
        db.execute(f"CREATE TABLE {table} (id INT, k INT, v FLOAT)")
        db.insert_rows(
            table,
            list(
                zip(
                    shuffled_ints(rng.spawn(i), rows),
                    uniform_ints(rng.spawn(40 + i), rows, 0, domain - 1),
                    uniform_floats(rng.spawn(80 + i), rows),
                )
            ),
        )
        db.analyze(table)
    joins = []
    for i in range(n):
        for j in range(i + 1, n):
            joins.append(f"{tables[i]}.k = {tables[j]}.k")
    sql = (
        f"SELECT COUNT(*) AS n FROM {', '.join(tables)} "
        f"WHERE {' AND '.join(joins)}"
    )
    return ShapeWorkload("clique", tables, sql, n)


def build_cycle(
    db: Database,
    n: int,
    base_rows: int = 1000,
    seed: int = 0,
    prefix: str = "y",
) -> ShapeWorkload:
    """Cycle query: a chain whose last relation joins back to the first."""
    workload = build_chain(
        db, n, base_rows=base_rows, seed=seed, prefix=prefix
    )
    tables = workload.tables
    extra = f" AND {tables[-1]}.fk = {tables[0]}.id"
    sql = workload.sql.replace(" AND ", " AND ", 1)  # no-op, clarity
    # append the closing edge before any trailing clauses (none here)
    sql = workload.sql + extra
    return ShapeWorkload("cycle", tables, sql, n)


def build_shape(db: Database, shape: str, n: int, **kwargs) -> ShapeWorkload:
    builders = {
        "chain": build_chain,
        "star": build_star,
        "clique": build_clique,
        "cycle": build_cycle,
    }
    if shape not in builders:
        raise ValueError(f"unknown shape {shape!r}")
    return builders[shape](db, n, **kwargs)
