"""Expression analysis used by the rewriter and the optimizer.

Provides normalization (NOT pushdown, BETWEEN desugaring, constant folding),
conjunct splitting, column/table extraction, and classification of conjuncts
into the forms the optimizer knows how to price:

* :class:`ColCmpConst` — ``col OP constant`` (sargable; drives access paths)
* :class:`ColEqCol`    — ``col = col`` across tables (equi-join predicate)
* everything else      — priced with fallback ("guess") selectivities
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..types import Schema
from .nodes import (
    AggCall,
    Arithmetic,
    Between,
    BoolKind,
    BoolOp,
    CmpOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    and_,
    walk,
)


# -- normalization ------------------------------------------------------------


def normalize(expr: Expr) -> Expr:
    """Desugar BETWEEN, push NOT inward (De Morgan), fold constants.

    The result contains no Between nodes and Not only directly above leaves
    the engine cannot negate (e.g. NOT LIKE stays as a negated Like).
    """
    expr = _desugar(expr)
    expr = _push_not(expr, negate=False)
    expr = fold_constants(expr)
    return expr


def _desugar(expr: Expr) -> Expr:
    if isinstance(expr, Between):
        operand = _desugar(expr.operand)
        inner = and_(
            Comparison(CmpOp.GE, operand, _desugar(expr.low)),
            Comparison(CmpOp.LE, operand, _desugar(expr.high)),
        )
        return Not(inner) if expr.negated else inner
    if isinstance(expr, BoolOp):
        return BoolOp(expr.kind, tuple(_desugar(o) for o in expr.operands))
    if isinstance(expr, Not):
        return Not(_desugar(expr.operand))
    if isinstance(expr, Comparison):
        return Comparison(expr.op, _desugar(expr.left), _desugar(expr.right))
    if isinstance(expr, Arithmetic):
        return Arithmetic(expr.op, _desugar(expr.left), _desugar(expr.right))
    if isinstance(expr, Negate):
        return Negate(_desugar(expr.operand))
    if isinstance(expr, InList):
        return InList(
            _desugar(expr.operand),
            tuple(_desugar(i) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, IsNull):
        return IsNull(_desugar(expr.operand), expr.negated)
    if isinstance(expr, Like):
        return Like(_desugar(expr.operand), expr.pattern, expr.negated)
    return expr


def _push_not(expr: Expr, negate: bool) -> Expr:
    if isinstance(expr, Not):
        return _push_not(expr.operand, not negate)
    if isinstance(expr, BoolOp):
        operands = tuple(_push_not(o, negate) for o in expr.operands)
        kind = expr.kind
        if negate:
            kind = BoolKind.OR if kind is BoolKind.AND else BoolKind.AND
        return BoolOp(kind, operands)
    if not negate:
        return expr
    if isinstance(expr, Comparison):
        return Comparison(expr.op.negate(), expr.left, expr.right)
    if isinstance(expr, IsNull):
        return IsNull(expr.operand, not expr.negated)
    if isinstance(expr, InList):
        return InList(expr.operand, expr.items, not expr.negated)
    if isinstance(expr, Like):
        return Like(expr.operand, expr.pattern, not expr.negated)
    return Not(expr)


def fold_constants(expr: Expr) -> Expr:
    """Evaluate constant subtrees at plan time (``1 + 2`` -> ``3``;
    ``TRUE AND p`` -> ``p``)."""
    if isinstance(expr, BoolOp):
        operands = [fold_constants(o) for o in expr.operands]
        is_and = expr.kind is BoolKind.AND
        kept: List[Expr] = []
        for o in operands:
            if isinstance(o, Literal) and isinstance(o.value, bool):
                if o.value is is_and:
                    continue  # neutral element
                return Literal(not is_and)  # absorbing element
            kept.append(o)
        if not kept:
            return Literal(is_and)
        if len(kept) == 1:
            return kept[0]
        return BoolOp(expr.kind, tuple(kept))
    if isinstance(expr, Not):
        inner = fold_constants(expr.operand)
        if isinstance(inner, Literal) and isinstance(inner.value, bool):
            return Literal(not inner.value)
        return Not(inner)
    if isinstance(expr, Comparison):
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        if (
            isinstance(left, Literal)
            and isinstance(right, Literal)
            and left.value is not None
            and right.value is not None
        ):
            from .eval import _cmp_fn  # local import avoids a cycle

            return Literal(_cmp_fn(expr.op)(left.value, right.value))
        return Comparison(expr.op, left, right)
    if isinstance(expr, Arithmetic):
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        if (
            isinstance(left, Literal)
            and isinstance(right, Literal)
            and left.value is not None
            and right.value is not None
        ):
            from .nodes import ArithOp

            a, b = left.value, right.value
            try:
                if expr.op is ArithOp.ADD:
                    return Literal(a + b)
                if expr.op is ArithOp.SUB:
                    return Literal(a - b)
                if expr.op is ArithOp.MUL:
                    return Literal(a * b)
                if expr.op is ArithOp.DIV:
                    return Literal(a / b) if b != 0 else expr
                return Literal(a % b) if b != 0 else expr
            except TypeError:
                return expr
        return Arithmetic(expr.op, left, right)
    if isinstance(expr, Negate):
        inner = fold_constants(expr.operand)
        if isinstance(inner, Literal) and inner.value is not None:
            return Literal(-inner.value)
        return Negate(inner)
    return expr


# -- decomposition -----------------------------------------------------------------


def split_conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Split top-level ANDs into a flat conjunct list (after normalize)."""
    if expr is None:
        return []
    expr = normalize(expr)
    if isinstance(expr, BoolOp) and expr.kind is BoolKind.AND:
        out: List[Expr] = []
        for o in expr.operands:
            out.extend(split_conjuncts(o))
        return out
    if isinstance(expr, Literal) and expr.value is True:
        return []
    return [expr]


def conjoin(conjuncts: Sequence[Expr]) -> Optional[Expr]:
    """Inverse of :func:`split_conjuncts`."""
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return and_(*conjuncts)


def referenced_columns(expr: Expr) -> Set[str]:
    return {node.name for node in walk(expr) if isinstance(node, ColumnRef)}


def referenced_tables(expr: Expr, schema: Schema) -> FrozenSet[str]:
    """Tables (qualifiers) referenced by *expr*, resolved against *schema*."""
    tables: Set[str] = set()
    for name in referenced_columns(expr):
        column = schema.column(name)
        if column.table is not None:
            tables.add(column.table)
    return frozenset(tables)


def contains_aggregate(expr: Expr) -> bool:
    return any(isinstance(node, AggCall) for node in walk(expr))


def map_expr(expr: Expr, fn) -> Expr:
    """Bottom-up structural rewrite: rebuild *expr* with every node passed
    through *fn* (children already rewritten).  ``fn`` returns either the
    node unchanged or a replacement."""
    from .nodes import SubqueryExpr

    if isinstance(expr, Comparison):
        expr = Comparison(expr.op, map_expr(expr.left, fn), map_expr(expr.right, fn))
    elif isinstance(expr, Arithmetic):
        expr = Arithmetic(expr.op, map_expr(expr.left, fn), map_expr(expr.right, fn))
    elif isinstance(expr, BoolOp):
        expr = BoolOp(expr.kind, tuple(map_expr(o, fn) for o in expr.operands))
    elif isinstance(expr, Not):
        expr = Not(map_expr(expr.operand, fn))
    elif isinstance(expr, Negate):
        expr = Negate(map_expr(expr.operand, fn))
    elif isinstance(expr, IsNull):
        expr = IsNull(map_expr(expr.operand, fn), expr.negated)
    elif isinstance(expr, InList):
        expr = InList(
            map_expr(expr.operand, fn),
            tuple(map_expr(i, fn) for i in expr.items),
            expr.negated,
        )
    elif isinstance(expr, Like):
        expr = Like(map_expr(expr.operand, fn), expr.pattern, expr.negated)
    elif isinstance(expr, Between):
        expr = Between(
            map_expr(expr.operand, fn),
            map_expr(expr.low, fn),
            map_expr(expr.high, fn),
            expr.negated,
        )
    elif isinstance(expr, AggCall) and expr.arg is not None:
        expr = AggCall(expr.func, map_expr(expr.arg, fn), expr.distinct)
    elif isinstance(expr, SubqueryExpr) and expr.operand is not None:
        expr = SubqueryExpr(
            expr.kind, map_expr(expr.operand, fn), expr.payload, expr.negated
        )
    return fn(expr)


def contains_subquery(expr: Expr) -> bool:
    from .nodes import SubqueryExpr

    return any(isinstance(node, SubqueryExpr) for node in walk(expr))


# -- conjunct classification --------------------------------------------------------


@dataclass(frozen=True)
class ColCmpConst:
    """Sargable predicate: ``column OP constant``."""

    column: str
    op: CmpOp
    value: Any


@dataclass(frozen=True)
class ColEqCol:
    """Equality between two columns (join predicate when tables differ)."""

    left: str
    right: str


def classify_conjunct(expr: Expr):
    """Classify one conjunct.

    Returns a :class:`ColCmpConst`, a :class:`ColEqCol`, or ``None`` for
    anything the optimizer prices with fallback selectivities.  Comparisons
    are canonicalized so the column is on the left.
    """
    if isinstance(expr, Comparison):
        left, right, op = expr.left, expr.right, expr.op
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            left, right, op = right, left, op.flip()
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            if right.value is None:
                return None
            return ColCmpConst(left.name, op, right.value)
        if (
            isinstance(left, ColumnRef)
            and isinstance(right, ColumnRef)
            and op is CmpOp.EQ
        ):
            return ColEqCol(left.name, right.name)
    return None


def sargable_conjuncts(
    conjuncts: Sequence[Expr],
) -> List[Tuple[Expr, ColCmpConst]]:
    """The subset of *conjuncts* that are ``col OP const``, with their
    classification."""
    out = []
    for c in conjuncts:
        cls = classify_conjunct(c)
        if isinstance(cls, ColCmpConst):
            out.append((c, cls))
    return out


def equijoin_conjuncts(conjuncts: Sequence[Expr]) -> List[Tuple[Expr, ColEqCol]]:
    out = []
    for c in conjuncts:
        cls = classify_conjunct(c)
        if isinstance(cls, ColEqCol):
            out.append((c, cls))
    return out
