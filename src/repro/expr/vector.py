"""Columnar expression kernels: the vectorized third compiler.

``compile_expr_columnar(expr, schema)`` returns a kernel
``ColumnBatch -> (data, valid)`` where ``data`` is a numpy array of
per-row results and ``valid`` an optional boolean mask (``None`` = all
valid).  Three-valued logic is carried in the mask: a NULL result is an
invalid lane.  Semantics are bit-for-bit those of ``compile_expr`` /
``compile_expr_batch`` — the same NULL propagation, Kleene AND/OR,
IN/BETWEEN/LIKE edge cases, and ``x/0 -> NULL`` — asserted by the
hypothesis parity suite in ``tests/test_columnar_eval.py``.

Two deliberate representation notes:

* Fixed-width INT math runs in ``int64`` and wraps past 2**63 where the
  row engine's Python ints would not; columns whose *stored* values
  exceed int64 degrade to ``object`` arrays (Python semantics, slower)
  at batch-construction time, so wrapping only arises for intermediate
  overflow of in-range inputs.
* ``object``-dtype operands (TEXT, DATE, degraded INT) are compared
  elementwise by numpy with Python operators; NULL lanes are first
  replaced by an arbitrary valid value so no ``None`` comparison is ever
  evaluated — those lanes are masked out of the result anyway.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Tuple

import numpy as np

from ..types import Schema
from .eval import infer_expr_type, like_to_regex

if TYPE_CHECKING:  # pragma: no cover - the kernels only use the protocol
    from ..executor.columnar import ColumnBatch
from .nodes import (
    Arithmetic,
    ArithOp,
    Between,
    BoolKind,
    BoolOp,
    CmpOp,
    ColumnRef,
    Comparison,
    Expr,
    ExprError,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
)

#: kernel result: (values array, validity mask or None-for-all-valid)
KernelResult = Tuple[np.ndarray, Optional[np.ndarray]]
Kernel = Callable[["ColumnBatch"], KernelResult]


def _and_valid(
    a: Optional[np.ndarray], b: Optional[np.ndarray]
) -> Optional[np.ndarray]:
    if a is None:
        return b
    if b is None:
        return a
    return a & b


def _object_safe(
    data: np.ndarray, valid: Optional[np.ndarray]
) -> Optional[np.ndarray]:
    """Copy of an object array with NULL lanes replaced by a valid value
    (so elementwise Python comparisons never see ``None``).  Returns
    ``None`` when every lane is NULL — nothing is comparable."""
    if valid is None:
        return data
    if not valid.any():
        return None
    out = data.copy()
    invalid = ~valid
    if invalid.any():
        out[invalid] = data[int(np.argmax(valid))]
    return out


def _compare(
    op: CmpOp,
    a: np.ndarray,
    av: Optional[np.ndarray],
    b: np.ndarray,
    bv: Optional[np.ndarray],
    n: int,
) -> KernelResult:
    valid = _and_valid(av, bv)
    if a.dtype == object or b.dtype == object:
        safe_a = _object_safe(a, av)
        safe_b = _object_safe(b, bv)
        if safe_a is None or safe_b is None:
            return np.zeros(n, dtype=bool), np.zeros(n, dtype=bool)
        a, b = safe_a, safe_b
    with np.errstate(invalid="ignore"):
        if op is CmpOp.EQ:
            res = a == b
        elif op is CmpOp.NE:
            res = a != b
        elif op is CmpOp.LT:
            res = a < b
        elif op is CmpOp.LE:
            res = a <= b
        elif op is CmpOp.GT:
            res = a > b
        else:
            res = a >= b
    return np.asarray(res, dtype=bool), valid


def _row_arith_fn(op: ArithOp):
    """Scalar fallback mirroring the row engine (object-dtype operands)."""
    if op is ArithOp.ADD:
        return lambda a, b: a + b
    if op is ArithOp.SUB:
        return lambda a, b: a - b
    if op is ArithOp.MUL:
        return lambda a, b: a * b
    if op is ArithOp.DIV:
        return lambda a, b: None if b == 0 else a / b
    return lambda a, b: None if b == 0 else a % b


def _arith_object(
    op: ArithOp,
    a: np.ndarray,
    av: Optional[np.ndarray],
    b: np.ndarray,
    bv: Optional[np.ndarray],
    n: int,
) -> KernelResult:
    """Elementwise Python arithmetic for object-dtype operands."""
    fn = _row_arith_fn(op)
    a_vals = a.tolist()
    b_vals = b.tolist()
    valid = _and_valid(av, bv)
    data = np.empty(n, dtype=object)
    out_valid = np.zeros(n, dtype=bool)
    lanes = range(n) if valid is None else np.flatnonzero(valid).tolist()
    for i in lanes:
        r = fn(a_vals[i], b_vals[i])
        data[i] = r
        out_valid[i] = r is not None
    return data, out_valid


def compile_expr_columnar(expr: Expr, schema: Schema) -> Kernel:
    """Compile *expr* into a ``ColumnBatch -> (data, valid)`` kernel.

    Type-checks like :func:`~repro.expr.eval.compile_expr`.  Raises
    :class:`ExprError` for expression shapes with no columnar kernel —
    callers fall back to the row compilers.
    """
    infer_expr_type(expr, schema)
    return _compile_columnar(expr, schema)


def compile_predicate_columnar(
    expr: Expr, schema: Schema
) -> Callable[[ColumnBatch], np.ndarray]:
    """Columnar twin of ``compile_predicate``: a boolean *keep* mask with
    NULL mapped to False (WHERE semantics)."""
    inner = compile_expr_columnar(expr, schema)

    def run(batch: ColumnBatch) -> np.ndarray:
        data, valid = inner(batch)
        data = np.asarray(data, dtype=bool)
        if valid is None:
            return data
        return data & valid

    return run


def _compile_columnar(expr: Expr, schema: Schema) -> Kernel:
    if isinstance(expr, ColumnRef):
        idx = schema.index_of(expr.name)
        return lambda batch: batch.columns[idx]

    if isinstance(expr, Literal):
        return _literal_kernel(expr.value)

    if isinstance(expr, Comparison):
        left = _compile_columnar(expr.left, schema)
        right = _compile_columnar(expr.right, schema)
        op = expr.op

        def run_cmp(batch: ColumnBatch) -> KernelResult:
            a, av = left(batch)
            b, bv = right(batch)
            return _compare(op, a, av, b, bv, len(batch))

        return run_cmp

    if isinstance(expr, BoolOp):
        parts = [_compile_columnar(o, schema) for o in expr.operands]
        if expr.kind is BoolKind.AND:

            def run_and(batch: ColumnBatch) -> KernelResult:
                n = len(batch)
                all_true = np.ones(n, dtype=bool)
                any_false = np.zeros(n, dtype=bool)
                for part in parts:
                    d, vm = part(batch)
                    d = np.asarray(d, dtype=bool)
                    if vm is None:
                        any_false |= ~d
                        all_true &= d
                    else:
                        any_false |= vm & ~d
                        all_true &= vm & d
                # Kleene AND: False dominates NULL; the lane is valid
                # exactly when some part is False or every part is True.
                return all_true, all_true | any_false

            return run_and

        def run_or(batch: ColumnBatch) -> KernelResult:
            n = len(batch)
            any_true = np.zeros(n, dtype=bool)
            all_false = np.ones(n, dtype=bool)
            for part in parts:
                d, vm = part(batch)
                d = np.asarray(d, dtype=bool)
                if vm is None:
                    any_true |= d
                    all_false &= ~d
                else:
                    any_true |= vm & d
                    all_false &= vm & ~d
            return any_true, any_true | all_false

        return run_or

    if isinstance(expr, Not):
        inner = _compile_columnar(expr.operand, schema)

        def run_not(batch: ColumnBatch) -> KernelResult:
            d, vm = inner(batch)
            return ~np.asarray(d, dtype=bool), vm

        return run_not

    if isinstance(expr, Arithmetic):
        left = _compile_columnar(expr.left, schema)
        right = _compile_columnar(expr.right, schema)
        op = expr.op

        def run_arith(batch: ColumnBatch) -> KernelResult:
            a, av = left(batch)
            b, bv = right(batch)
            n = len(batch)
            if a.dtype == object or b.dtype == object:
                return _arith_object(op, a, av, b, bv, n)
            valid = _and_valid(av, bv)
            with np.errstate(all="ignore"):
                if op is ArithOp.ADD:
                    data = a + b
                elif op is ArithOp.SUB:
                    data = a - b
                elif op is ArithOp.MUL:
                    data = a * b
                elif op is ArithOp.DIV:
                    zero = b == 0
                    data = np.true_divide(a, b)
                    valid = ~zero if valid is None else valid & ~zero
                else:
                    zero = b == 0
                    data = np.mod(a, b)
                    valid = ~zero if valid is None else valid & ~zero
            return data, valid

        return run_arith

    if isinstance(expr, Negate):
        inner = _compile_columnar(expr.operand, schema)

        def run_neg(batch: ColumnBatch) -> KernelResult:
            d, vm = inner(batch)
            if d.dtype == object:
                vals = d.tolist()
                out = np.empty(len(vals), dtype=object)
                lanes = (
                    range(len(vals))
                    if vm is None
                    else np.flatnonzero(vm).tolist()
                )
                for i in lanes:
                    out[i] = -vals[i]
                return out, vm
            return -d, vm

        return run_neg

    if isinstance(expr, IsNull):
        inner = _compile_columnar(expr.operand, schema)
        negated = expr.negated

        def run_isnull(batch: ColumnBatch) -> KernelResult:
            _, vm = inner(batch)
            n = len(batch)
            if vm is None:
                data = np.full(n, negated, dtype=bool)
            else:
                data = vm.copy() if negated else ~vm
            return data, None

        return run_isnull

    if isinstance(expr, InList):
        inner = _compile_columnar(expr.operand, schema)
        items = [_compile_columnar(i, schema) for i in expr.items]
        negated = expr.negated

        def run_in(batch: ColumnBatch) -> KernelResult:
            v, vv = inner(batch)
            n = len(batch)
            hit = np.zeros(n, dtype=bool)
            saw_null = np.zeros(n, dtype=bool)
            for item in items:
                w, wv = item(batch)
                if wv is not None:
                    saw_null |= ~wv
                eq_data, eq_valid = _compare(CmpOp.EQ, v, vv, w, wv, n)
                hit |= eq_data if eq_valid is None else eq_data & eq_valid
            # hit -> not negated; else a NULL item -> NULL; else negated
            valid = hit | ~saw_null
            if vv is not None:
                valid &= vv
            return hit ^ negated, valid

        return run_in

    if isinstance(expr, Between):
        inner = _compile_columnar(expr.operand, schema)
        low = _compile_columnar(expr.low, schema)
        high = _compile_columnar(expr.high, schema)
        negated = expr.negated

        def run_between(batch: ColumnBatch) -> KernelResult:
            v, vv = inner(batch)
            lo, lov = low(batch)
            hi, hiv = high(batch)
            n = len(batch)
            ge_data, ge_valid = _compare(CmpOp.LE, lo, lov, v, vv, n)
            le_data, le_valid = _compare(CmpOp.LE, v, vv, hi, hiv, n)
            res = ge_data & le_data
            if negated:
                res = ~res
            return res, _and_valid(ge_valid, le_valid)

        return run_between

    if isinstance(expr, Like):
        inner = _compile_columnar(expr.operand, schema)
        match = like_to_regex(expr.pattern).match
        negated = expr.negated

        def run_like(batch: ColumnBatch) -> KernelResult:
            v, vv = inner(batch)
            n = len(batch)
            data = np.zeros(n, dtype=bool)
            lanes = range(n) if vv is None else np.flatnonzero(vv).tolist()
            for i in lanes:
                data[i] = match(v[i]) is not None
            if negated:
                data = ~data
            return data, vv

        return run_like

    raise ExprError(f"no columnar kernel for {expr!r}")


def _literal_kernel(value) -> Kernel:
    if value is None:

        def run_null(batch: ColumnBatch) -> KernelResult:
            n = len(batch)
            return np.empty(n, dtype=object), np.zeros(n, dtype=bool)

        return run_null
    if isinstance(value, bool):
        dtype: object = np.bool_
    elif isinstance(value, int):
        dtype = np.int64
    elif isinstance(value, float):
        dtype = np.float64
    else:
        dtype = object

    def run_lit(batch: ColumnBatch) -> KernelResult:
        n = len(batch)
        if dtype is object:
            data = np.empty(n, dtype=object)
            data[:] = [value] * n
            return data, None
        try:
            return np.full(n, value, dtype=dtype), None
        except OverflowError:
            data = np.empty(n, dtype=object)
            data[:] = [value] * n
            return data, None

    return run_lit
