"""Expression trees.

Expressions are immutable and hashable, appear in WHERE/HAVING clauses,
projection lists and join conditions, and are shared freely between logical
plans (the rewriter never mutates a node; it builds new ones).

Node zoo: ColumnRef, Literal, Comparison, BoolOp (AND/OR over 2+ children),
Not, Arithmetic, IsNull, InList, Like, Between (desugared by the analyzer),
and Aggregate references (CountStar/AggCall) which only the aggregation
operator evaluates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


class ExprError(Exception):
    """Raised on malformed expressions or type errors."""


class Expr:
    """Base class.  Subclasses are frozen dataclasses."""

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        return repr(self)


class CmpOp(enum.Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flip(self) -> "CmpOp":
        """The operator with operands swapped (a OP b  ==  b flip(OP) a)."""
        return {
            CmpOp.EQ: CmpOp.EQ,
            CmpOp.NE: CmpOp.NE,
            CmpOp.LT: CmpOp.GT,
            CmpOp.LE: CmpOp.GE,
            CmpOp.GT: CmpOp.LT,
            CmpOp.GE: CmpOp.LE,
        }[self]

    def negate(self) -> "CmpOp":
        return {
            CmpOp.EQ: CmpOp.NE,
            CmpOp.NE: CmpOp.EQ,
            CmpOp.LT: CmpOp.GE,
            CmpOp.LE: CmpOp.GT,
            CmpOp.GT: CmpOp.LE,
            CmpOp.GE: CmpOp.LT,
        }[self]


class BoolKind(enum.Enum):
    AND = "AND"
    OR = "OR"


class ArithOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"


class AggFunc(enum.Enum):
    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly qualified) column reference, resolved at plan-build time."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expr):
    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if self.value is None:
            return "NULL"
        return str(self.value)


@dataclass(frozen=True)
class Comparison(Expr):
    op: CmpOp
    left: Expr
    right: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class BoolOp(Expr):
    kind: BoolKind
    operands: Tuple[Expr, ...]

    def __post_init__(self):
        if len(self.operands) < 2:
            raise ExprError(f"{self.kind.value} needs at least two operands")

    def children(self) -> Tuple[Expr, ...]:
        return self.operands

    def __str__(self) -> str:
        sep = f" {self.kind.value} "
        return "(" + sep.join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class Arithmetic(Expr):
    op: ArithOp
    left: Expr
    right: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class Negate(Expr):
    """Unary minus."""

    operand: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"({self.operand} IS {'NOT ' if self.negated else ''}NULL)"


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: Tuple[Expr, ...]
    negated: bool = False

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,) + self.items

    def __str__(self) -> str:
        inner = ", ".join(str(i) for i in self.items)
        return f"({self.operand} {'NOT ' if self.negated else ''}IN ({inner}))"


@dataclass(frozen=True)
class Between(Expr):
    """``a BETWEEN lo AND hi`` — desugared to two comparisons by analysis."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand, self.low, self.high)

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"({self.operand} {neg}BETWEEN {self.low} AND {self.high})"


@dataclass(frozen=True)
class Like(Expr):
    """SQL LIKE with ``%`` and ``_`` wildcards against a literal pattern."""

    operand: Expr
    pattern: str
    negated: bool = False

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"({self.operand} {neg}LIKE '{self.pattern}')"


@dataclass(frozen=True)
class SubqueryExpr(Expr):
    """A subquery predicate: ``x IN (SELECT …)``, ``(SELECT …)`` scalar, or
    ``EXISTS (SELECT …)``.

    ``payload`` is the parsed SELECT statement (opaque here: the expression
    layer never interprets it).  Subquery expressions cannot be evaluated
    directly — the engine *decomposes* them first (INGRES-style): it runs
    the inner query and substitutes its result as literals.  Only
    uncorrelated subqueries are supported.
    """

    kind: str  # 'in' | 'scalar' | 'exists'
    operand: Optional[Expr]  # the left side for 'in', else None
    payload: Any = field(compare=False, hash=False)
    negated: bool = False

    def __post_init__(self):
        if self.kind not in ("in", "scalar", "exists"):
            raise ExprError(f"unknown subquery kind {self.kind!r}")
        if (self.operand is None) != (self.kind != "in"):
            raise ExprError("'in' subqueries need an operand; others none")

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,) if self.operand is not None else ()

    def __str__(self) -> str:
        if self.kind == "in":
            neg = "NOT " if self.negated else ""
            return f"({self.operand} {neg}IN (<subquery>))"
        if self.kind == "exists":
            neg = "NOT " if self.negated else ""
            return f"({neg}EXISTS (<subquery>))"
        return "(<scalar subquery>)"


@dataclass(frozen=True)
class AggCall(Expr):
    """An aggregate over an argument expression (``SUM(price * qty)``).

    Only valid inside SELECT/HAVING of a grouped query; the plan builder
    hoists these into the Aggregate operator and replaces them with column
    references to its output.
    """

    func: AggFunc
    arg: Optional[Expr]  # None only for COUNT(*)
    distinct: bool = False

    def children(self) -> Tuple[Expr, ...]:
        return (self.arg,) if self.arg is not None else ()

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        d = "DISTINCT " if self.distinct else ""
        return f"{self.func.value}({d}{inner})"


# -- convenience constructors used heavily in tests & benchmarks -------------


def col(name: str) -> ColumnRef:
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    return Literal(value)


def eq(left: Expr, right: Expr) -> Comparison:
    return Comparison(CmpOp.EQ, left, right)


def ne(left: Expr, right: Expr) -> Comparison:
    return Comparison(CmpOp.NE, left, right)


def lt(left: Expr, right: Expr) -> Comparison:
    return Comparison(CmpOp.LT, left, right)


def le(left: Expr, right: Expr) -> Comparison:
    return Comparison(CmpOp.LE, left, right)


def gt(left: Expr, right: Expr) -> Comparison:
    return Comparison(CmpOp.GT, left, right)


def ge(left: Expr, right: Expr) -> Comparison:
    return Comparison(CmpOp.GE, left, right)


def and_(*operands: Expr) -> Expr:
    flat = []
    for op in operands:
        if isinstance(op, BoolOp) and op.kind is BoolKind.AND:
            flat.extend(op.operands)
        else:
            flat.append(op)
    if len(flat) == 1:
        return flat[0]
    return BoolOp(BoolKind.AND, tuple(flat))


def or_(*operands: Expr) -> Expr:
    flat = []
    for op in operands:
        if isinstance(op, BoolOp) and op.kind is BoolKind.OR:
            flat.extend(op.operands)
        else:
            flat.append(op)
    if len(flat) == 1:
        return flat[0]
    return BoolOp(BoolKind.OR, tuple(flat))


def not_(operand: Expr) -> Not:
    return Not(operand)


def walk(expr: Expr):
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr.children():
        yield from walk(child)
