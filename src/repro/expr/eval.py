"""Expression evaluation and type checking against a schema.

``compile_expr(expr, schema)`` resolves every column reference to a tuple
position once and returns a closure ``row -> value`` — the executor's hot
loops never do name lookups.  Three-valued logic: predicates return
True/False/None; filters keep only True.

``compile_expr_batch``/``compile_predicate_batch`` are the vectorized
twins used by the batched operator engine: one call evaluates a whole
batch (a list of row tuples) and returns a list of values, amortizing the
closure dispatch over the batch.  Semantics are bit-for-bit those of the
row compilers (same NULL propagation, same LIKE/IN/BETWEEN edge cases) —
``tests/test_batch_eval.py`` asserts the parity property.
"""

from __future__ import annotations

import re
from typing import Any, Callable, List, Optional

from ..types import DataType, Schema, common_type, infer_type
from .nodes import (
    AggCall,
    Arithmetic,
    ArithOp,
    Between,
    BoolKind,
    BoolOp,
    CmpOp,
    ColumnRef,
    Comparison,
    Expr,
    ExprError,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
)

Evaluator = Callable[[tuple], Any]
BatchEvaluator = Callable[[List[tuple]], List[Any]]


def infer_expr_type(expr: Expr, schema: Schema) -> DataType:
    """Static result type of *expr* over *schema* (raises on mismatch)."""
    if isinstance(expr, ColumnRef):
        return schema.column(expr.name).dtype
    if isinstance(expr, Literal):
        if expr.value is None:
            raise ExprError("bare NULL literal has no type; use IS NULL")
        return infer_type(expr.value)
    if isinstance(expr, Comparison):
        # comparisons with a NULL literal are legal (always UNKNOWN)
        null_left = isinstance(expr.left, Literal) and expr.left.value is None
        null_right = (
            isinstance(expr.right, Literal) and expr.right.value is None
        )
        if not null_left:
            lt_ = infer_expr_type(expr.left, schema)
        if not null_right:
            rt = infer_expr_type(expr.right, schema)
        if not null_left and not null_right:
            common_type(lt_, rt)  # raises if incomparable
        return DataType.BOOL
    if isinstance(expr, (BoolOp, Not, IsNull, InList, Like, Between)):
        for child in expr.children():
            # NULL literals are legal operands of these predicates
            # (e.g. ``x IN (1, NULL)``); they carry no type of their own.
            if isinstance(child, Literal) and child.value is None:
                continue
            infer_expr_type(child, schema)
        return DataType.BOOL
    if isinstance(expr, Arithmetic):
        lt_ = infer_expr_type(expr.left, schema)
        rt = infer_expr_type(expr.right, schema)
        out = common_type(lt_, rt)
        if not out.is_numeric:
            raise ExprError(f"arithmetic on non-numeric type {out.value}")
        if expr.op is ArithOp.DIV:
            return DataType.FLOAT
        return out
    if isinstance(expr, Negate):
        out = infer_expr_type(expr.operand, schema)
        if not out.is_numeric:
            raise ExprError(f"unary minus on non-numeric type {out.value}")
        return out
    if isinstance(expr, AggCall):
        raise ExprError(
            f"aggregate {expr} outside an aggregation context"
        )
    raise ExprError(f"cannot type expression {expr!r}")


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a SQL LIKE pattern (``%``/``_``) to an anchored regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def _cmp_fn(op: CmpOp) -> Callable[[Any, Any], Optional[bool]]:
    def run(a: Any, b: Any) -> Optional[bool]:
        if a is None or b is None:
            return None
        if op is CmpOp.EQ:
            return a == b
        if op is CmpOp.NE:
            return a != b
        if op is CmpOp.LT:
            return a < b
        if op is CmpOp.LE:
            return a <= b
        if op is CmpOp.GT:
            return a > b
        return a >= b

    return run


def compile_expr(expr: Expr, schema: Schema) -> Evaluator:
    """Compile *expr* into a ``row -> value`` closure.

    Also type-checks the expression; every column reference must resolve in
    *schema*.
    """
    infer_expr_type(expr, schema)
    return _compile(expr, schema)


def _compile(expr: Expr, schema: Schema) -> Evaluator:
    if isinstance(expr, ColumnRef):
        idx = schema.index_of(expr.name)
        return lambda row: row[idx]

    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value

    if isinstance(expr, Comparison):
        left = _compile(expr.left, schema)
        right = _compile(expr.right, schema)
        fn = _cmp_fn(expr.op)
        return lambda row: fn(left(row), right(row))

    if isinstance(expr, BoolOp):
        parts = [_compile(o, schema) for o in expr.operands]
        if expr.kind is BoolKind.AND:

            def run_and(row):
                saw_null = False
                for p in parts:
                    v = p(row)
                    if v is False:
                        return False
                    if v is None:
                        saw_null = True
                return None if saw_null else True

            return run_and

        def run_or(row):
            saw_null = False
            for p in parts:
                v = p(row)
                if v is True:
                    return True
                if v is None:
                    saw_null = True
            return None if saw_null else False

        return run_or

    if isinstance(expr, Not):
        inner = _compile(expr.operand, schema)

        def run_not(row):
            v = inner(row)
            return None if v is None else not v

        return run_not

    if isinstance(expr, Arithmetic):
        left = _compile(expr.left, schema)
        right = _compile(expr.right, schema)
        op = expr.op

        def run_arith(row):
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            if op is ArithOp.ADD:
                return a + b
            if op is ArithOp.SUB:
                return a - b
            if op is ArithOp.MUL:
                return a * b
            if op is ArithOp.DIV:
                if b == 0:
                    return None  # SQL engines raise; we NULL, documented
                return a / b
            if b == 0:
                return None
            return a % b

        return run_arith

    if isinstance(expr, Negate):
        inner = _compile(expr.operand, schema)

        def run_neg(row):
            v = inner(row)
            return None if v is None else -v

        return run_neg

    if isinstance(expr, IsNull):
        inner = _compile(expr.operand, schema)
        if expr.negated:
            return lambda row: inner(row) is not None
        return lambda row: inner(row) is None

    if isinstance(expr, InList):
        inner = _compile(expr.operand, schema)
        items = [_compile(i, schema) for i in expr.items]
        negated = expr.negated

        def run_in(row):
            v = inner(row)
            if v is None:
                return None
            saw_null = False
            for item in items:
                w = item(row)
                if w is None:
                    saw_null = True
                elif v == w:
                    return not negated
            if saw_null:
                return None
            return negated

        return run_in

    if isinstance(expr, Between):
        inner = _compile(expr.operand, schema)
        low = _compile(expr.low, schema)
        high = _compile(expr.high, schema)
        negated = expr.negated

        def run_between(row):
            v = inner(row)
            lo = low(row)
            hi = high(row)
            if v is None or lo is None or hi is None:
                return None
            result = lo <= v <= hi
            return not result if negated else result

        return run_between

    if isinstance(expr, Like):
        inner = _compile(expr.operand, schema)
        regex = like_to_regex(expr.pattern)
        negated = expr.negated

        def run_like(row):
            v = inner(row)
            if v is None:
                return None
            result = regex.match(v) is not None
            return not result if negated else result

        return run_like

    raise ExprError(f"cannot compile {expr!r}")


def compile_predicate(expr: Expr, schema: Schema) -> Callable[[tuple], bool]:
    """Like :func:`compile_expr` but maps NULL to False (WHERE semantics)."""
    inner = compile_expr(expr, schema)
    return lambda row: inner(row) is True


# -- batch (vectorized) compilation ------------------------------------------------


def compile_expr_batch(expr: Expr, schema: Schema) -> BatchEvaluator:
    """Compile *expr* into a ``rows -> values`` closure over whole batches.

    Returns one value per input row, in order.  Type-checks like
    :func:`compile_expr`; three-valued logic is preserved (a predicate
    expression yields True/False/None per row).
    """
    infer_expr_type(expr, schema)
    return _compile_batch(expr, schema)


def compile_predicate_batch(
    expr: Expr, schema: Schema
) -> Callable[[List[tuple]], List[bool]]:
    """Batch twin of :func:`compile_predicate`: ``rows -> [keep, ...]``
    with NULL mapped to False (WHERE semantics)."""
    inner = compile_expr_batch(expr, schema)

    def run(rows: List[tuple]) -> List[bool]:
        return [v is True for v in inner(rows)]

    return run


def _batch_cmp(op: CmpOp) -> Callable[[Any, Any], Optional[bool]]:
    if op is CmpOp.EQ:
        return lambda a, b: a == b
    if op is CmpOp.NE:
        return lambda a, b: a != b
    if op is CmpOp.LT:
        return lambda a, b: a < b
    if op is CmpOp.LE:
        return lambda a, b: a <= b
    if op is CmpOp.GT:
        return lambda a, b: a > b
    return lambda a, b: a >= b


def _compile_batch(expr: Expr, schema: Schema) -> BatchEvaluator:
    if isinstance(expr, ColumnRef):
        idx = schema.index_of(expr.name)
        return lambda rows: [row[idx] for row in rows]

    if isinstance(expr, Literal):
        value = expr.value
        return lambda rows: [value] * len(rows)

    if isinstance(expr, Comparison):
        left = _compile_batch(expr.left, schema)
        right = _compile_batch(expr.right, schema)
        cmp = _batch_cmp(expr.op)

        def run_cmp(rows):
            return [
                None if a is None or b is None else cmp(a, b)
                for a, b in zip(left(rows), right(rows))
            ]

        return run_cmp

    if isinstance(expr, BoolOp):
        parts = [_compile_batch(o, schema) for o in expr.operands]
        if expr.kind is BoolKind.AND:

            def run_and(rows):
                out: List[Optional[bool]] = [True] * len(rows)
                for part in parts:
                    for i, v in enumerate(part(rows)):
                        if v is False:
                            out[i] = False
                        elif v is None and out[i] is True:
                            out[i] = None
                return out

            return run_and

        def run_or(rows):
            out: List[Optional[bool]] = [False] * len(rows)
            for part in parts:
                for i, v in enumerate(part(rows)):
                    if v is True:
                        out[i] = True
                    elif v is None and out[i] is False:
                        out[i] = None
            return out

        return run_or

    if isinstance(expr, Not):
        inner = _compile_batch(expr.operand, schema)
        return lambda rows: [
            None if v is None else not v for v in inner(rows)
        ]

    if isinstance(expr, Arithmetic):
        left = _compile_batch(expr.left, schema)
        right = _compile_batch(expr.right, schema)
        op = expr.op
        if op is ArithOp.ADD:
            fn = lambda a, b: a + b  # noqa: E731
        elif op is ArithOp.SUB:
            fn = lambda a, b: a - b  # noqa: E731
        elif op is ArithOp.MUL:
            fn = lambda a, b: a * b  # noqa: E731
        elif op is ArithOp.DIV:
            fn = lambda a, b: None if b == 0 else a / b  # noqa: E731
        else:
            fn = lambda a, b: None if b == 0 else a % b  # noqa: E731

        def run_arith(rows):
            return [
                None if a is None or b is None else fn(a, b)
                for a, b in zip(left(rows), right(rows))
            ]

        return run_arith

    if isinstance(expr, Negate):
        inner = _compile_batch(expr.operand, schema)
        return lambda rows: [
            None if v is None else -v for v in inner(rows)
        ]

    if isinstance(expr, IsNull):
        inner = _compile_batch(expr.operand, schema)
        if expr.negated:
            return lambda rows: [v is not None for v in inner(rows)]
        return lambda rows: [v is None for v in inner(rows)]

    if isinstance(expr, InList):
        inner = _compile_batch(expr.operand, schema)
        items = [_compile_batch(i, schema) for i in expr.items]
        negated = expr.negated

        def run_in(rows):
            values = inner(rows)
            columns = [item(rows) for item in items]
            out: List[Optional[bool]] = []
            for i, v in enumerate(values):
                if v is None:
                    out.append(None)
                    continue
                saw_null = False
                hit = False
                for column in columns:
                    w = column[i]
                    if w is None:
                        saw_null = True
                    elif v == w:
                        hit = True
                        break
                if hit:
                    out.append(not negated)
                elif saw_null:
                    out.append(None)
                else:
                    out.append(negated)
            return out

        return run_in

    if isinstance(expr, Between):
        inner = _compile_batch(expr.operand, schema)
        low = _compile_batch(expr.low, schema)
        high = _compile_batch(expr.high, schema)
        negated = expr.negated

        def run_between(rows):
            out: List[Optional[bool]] = []
            for v, lo, hi in zip(inner(rows), low(rows), high(rows)):
                if v is None or lo is None or hi is None:
                    out.append(None)
                else:
                    result = lo <= v <= hi
                    out.append(not result if negated else result)
            return out

        return run_between

    if isinstance(expr, Like):
        inner = _compile_batch(expr.operand, schema)
        match = like_to_regex(expr.pattern).match
        negated = expr.negated

        def run_like(rows):
            out: List[Optional[bool]] = []
            for v in inner(rows):
                if v is None:
                    out.append(None)
                else:
                    result = match(v) is not None
                    out.append(not result if negated else result)
            return out

        return run_like

    raise ExprError(f"cannot compile {expr!r}")
