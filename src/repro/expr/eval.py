"""Expression evaluation and type checking against a schema.

``compile_expr(expr, schema)`` resolves every column reference to a tuple
position once and returns a closure ``row -> value`` — the executor's hot
loops never do name lookups.  Three-valued logic: predicates return
True/False/None; filters keep only True.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Optional

from ..types import DataType, Schema, common_type, infer_type
from .nodes import (
    AggCall,
    Arithmetic,
    ArithOp,
    Between,
    BoolKind,
    BoolOp,
    CmpOp,
    ColumnRef,
    Comparison,
    Expr,
    ExprError,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
)

Evaluator = Callable[[tuple], Any]


def infer_expr_type(expr: Expr, schema: Schema) -> DataType:
    """Static result type of *expr* over *schema* (raises on mismatch)."""
    if isinstance(expr, ColumnRef):
        return schema.column(expr.name).dtype
    if isinstance(expr, Literal):
        if expr.value is None:
            raise ExprError("bare NULL literal has no type; use IS NULL")
        return infer_type(expr.value)
    if isinstance(expr, Comparison):
        # comparisons with a NULL literal are legal (always UNKNOWN)
        null_left = isinstance(expr.left, Literal) and expr.left.value is None
        null_right = (
            isinstance(expr.right, Literal) and expr.right.value is None
        )
        if not null_left:
            lt_ = infer_expr_type(expr.left, schema)
        if not null_right:
            rt = infer_expr_type(expr.right, schema)
        if not null_left and not null_right:
            common_type(lt_, rt)  # raises if incomparable
        return DataType.BOOL
    if isinstance(expr, (BoolOp, Not, IsNull, InList, Like, Between)):
        for child in expr.children():
            # NULL literals are legal operands of these predicates
            # (e.g. ``x IN (1, NULL)``); they carry no type of their own.
            if isinstance(child, Literal) and child.value is None:
                continue
            infer_expr_type(child, schema)
        return DataType.BOOL
    if isinstance(expr, Arithmetic):
        lt_ = infer_expr_type(expr.left, schema)
        rt = infer_expr_type(expr.right, schema)
        out = common_type(lt_, rt)
        if not out.is_numeric:
            raise ExprError(f"arithmetic on non-numeric type {out.value}")
        if expr.op is ArithOp.DIV:
            return DataType.FLOAT
        return out
    if isinstance(expr, Negate):
        out = infer_expr_type(expr.operand, schema)
        if not out.is_numeric:
            raise ExprError(f"unary minus on non-numeric type {out.value}")
        return out
    if isinstance(expr, AggCall):
        raise ExprError(
            f"aggregate {expr} outside an aggregation context"
        )
    raise ExprError(f"cannot type expression {expr!r}")


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a SQL LIKE pattern (``%``/``_``) to an anchored regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def _cmp_fn(op: CmpOp) -> Callable[[Any, Any], Optional[bool]]:
    def run(a: Any, b: Any) -> Optional[bool]:
        if a is None or b is None:
            return None
        if op is CmpOp.EQ:
            return a == b
        if op is CmpOp.NE:
            return a != b
        if op is CmpOp.LT:
            return a < b
        if op is CmpOp.LE:
            return a <= b
        if op is CmpOp.GT:
            return a > b
        return a >= b

    return run


def compile_expr(expr: Expr, schema: Schema) -> Evaluator:
    """Compile *expr* into a ``row -> value`` closure.

    Also type-checks the expression; every column reference must resolve in
    *schema*.
    """
    infer_expr_type(expr, schema)
    return _compile(expr, schema)


def _compile(expr: Expr, schema: Schema) -> Evaluator:
    if isinstance(expr, ColumnRef):
        idx = schema.index_of(expr.name)
        return lambda row: row[idx]

    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value

    if isinstance(expr, Comparison):
        left = _compile(expr.left, schema)
        right = _compile(expr.right, schema)
        fn = _cmp_fn(expr.op)
        return lambda row: fn(left(row), right(row))

    if isinstance(expr, BoolOp):
        parts = [_compile(o, schema) for o in expr.operands]
        if expr.kind is BoolKind.AND:

            def run_and(row):
                saw_null = False
                for p in parts:
                    v = p(row)
                    if v is False:
                        return False
                    if v is None:
                        saw_null = True
                return None if saw_null else True

            return run_and

        def run_or(row):
            saw_null = False
            for p in parts:
                v = p(row)
                if v is True:
                    return True
                if v is None:
                    saw_null = True
            return None if saw_null else False

        return run_or

    if isinstance(expr, Not):
        inner = _compile(expr.operand, schema)

        def run_not(row):
            v = inner(row)
            return None if v is None else not v

        return run_not

    if isinstance(expr, Arithmetic):
        left = _compile(expr.left, schema)
        right = _compile(expr.right, schema)
        op = expr.op

        def run_arith(row):
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            if op is ArithOp.ADD:
                return a + b
            if op is ArithOp.SUB:
                return a - b
            if op is ArithOp.MUL:
                return a * b
            if op is ArithOp.DIV:
                if b == 0:
                    return None  # SQL engines raise; we NULL, documented
                return a / b
            if b == 0:
                return None
            return a % b

        return run_arith

    if isinstance(expr, Negate):
        inner = _compile(expr.operand, schema)

        def run_neg(row):
            v = inner(row)
            return None if v is None else -v

        return run_neg

    if isinstance(expr, IsNull):
        inner = _compile(expr.operand, schema)
        if expr.negated:
            return lambda row: inner(row) is not None
        return lambda row: inner(row) is None

    if isinstance(expr, InList):
        inner = _compile(expr.operand, schema)
        items = [_compile(i, schema) for i in expr.items]
        negated = expr.negated

        def run_in(row):
            v = inner(row)
            if v is None:
                return None
            saw_null = False
            for item in items:
                w = item(row)
                if w is None:
                    saw_null = True
                elif v == w:
                    return not negated
            if saw_null:
                return None
            return negated

        return run_in

    if isinstance(expr, Between):
        inner = _compile(expr.operand, schema)
        low = _compile(expr.low, schema)
        high = _compile(expr.high, schema)
        negated = expr.negated

        def run_between(row):
            v = inner(row)
            lo = low(row)
            hi = high(row)
            if v is None or lo is None or hi is None:
                return None
            result = lo <= v <= hi
            return not result if negated else result

        return run_between

    if isinstance(expr, Like):
        inner = _compile(expr.operand, schema)
        regex = like_to_regex(expr.pattern)
        negated = expr.negated

        def run_like(row):
            v = inner(row)
            if v is None:
                return None
            result = regex.match(v) is not None
            return not result if negated else result

        return run_like

    raise ExprError(f"cannot compile {expr!r}")


def compile_predicate(expr: Expr, schema: Schema) -> Callable[[tuple], bool]:
    """Like :func:`compile_expr` but maps NULL to False (WHERE semantics)."""
    inner = compile_expr(expr, schema)
    return lambda row: inner(row) is True
