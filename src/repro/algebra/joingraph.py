"""Join graph extraction.

The optimizer does not enumerate plan trees directly; it works on the
query's *join graph*: the set of base relations, the single-table filter
conjuncts attached to each, and the join conjuncts connecting pairs of
relations.  This module extracts that graph from the join region of a
logical plan and substitutes an optimized join tree back into the
surrounding plan.

A **join region** is a maximal subtree of Filter/Join/Get nodes.  A typical
plan has exactly one (below Aggregate/Project/...); queries without joins
have a single-relation region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..expr import Expr, conjoin, referenced_tables, split_conjuncts
from .logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalLimit,
    LogicalNarrow,
    LogicalPlan,
    LogicalProject,
    LogicalSort,
)


class JoinGraphError(Exception):
    """Raised when a subtree is not a well-formed join region."""


@dataclass
class JoinGraph:
    """Relations, per-relation filters, and join edges of one region.

    ``edges`` maps an unordered binding pair to its join conjuncts.
    ``hyper`` holds conjuncts spanning 3+ relations (rare; applied once all
    their relations are joined).  ``syntactic_order`` preserves the FROM
    order for the naive baseline planner.
    """

    relations: Dict[str, LogicalGet] = field(default_factory=dict)
    filters: Dict[str, List[Expr]] = field(default_factory=dict)
    edges: Dict[FrozenSet[str], List[Expr]] = field(default_factory=dict)
    hyper: List[Tuple[FrozenSet[str], Expr]] = field(default_factory=list)
    syntactic_order: List[str] = field(default_factory=list)

    @property
    def num_relations(self) -> int:
        return len(self.relations)

    def bindings(self) -> List[str]:
        return list(self.syntactic_order)

    def filter_conjuncts(self, binding: str) -> List[Expr]:
        return self.filters.get(binding, [])

    def edge_conjuncts(self, a: str, b: str) -> List[Expr]:
        return self.edges.get(frozenset((a, b)), [])

    def neighbors(self, binding: str) -> Set[str]:
        out: Set[str] = set()
        for pair in self.edges:
            if binding in pair:
                out |= pair - {binding}
        return out

    def join_conjuncts_between(
        self, left: Set[str], right: Set[str]
    ) -> List[Expr]:
        """All binary conjuncts connecting a relation set to another."""
        out: List[Expr] = []
        for pair, conjuncts in self.edges.items():
            a, b = tuple(pair)
            if (a in left and b in right) or (a in right and b in left):
                out.extend(conjuncts)
        return out

    def applicable_hyper(
        self, combined: Set[str], already: Set[str]
    ) -> List[Expr]:
        """Hyper-conjuncts that become evaluable at *combined* but were not
        evaluable at any strict subset in *already* (caller tracks this)."""
        out = []
        for tables, conjunct in self.hyper:
            if tables <= combined and not tables <= already:
                out.append(conjunct)
        return out

    def is_connected_subset(self, subset: Set[str]) -> bool:
        """True if *subset* induces a connected subgraph (no cross products
        needed to join it)."""
        if not subset:
            return False
        if len(subset) == 1:
            return True
        seen = {next(iter(subset))}
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for pair in self.edges:
                if current in pair:
                    (other,) = pair - {current}
                    if other in subset and other not in seen:
                        seen.add(other)
                        frontier.append(other)
        return seen == subset

    def has_cross_product(self) -> bool:
        return not self.is_connected_subset(set(self.relations))

    def order_equivalence(self) -> Dict[str, FrozenSet[str]]:
        """Equivalence classes of columns connected by equi-join conjuncts.

        After an inner equi-join on ``a.x = b.y``, output sorted on ``a.x``
        is equally sorted on ``b.y``; interesting-order reasoning above the
        region relies on these classes (classic System R order equivalence).
        Keys and members are qualified column names.
        """
        from ..expr import ColEqCol, classify_conjunct

        parent: Dict[str, str] = {}

        def find(x: str) -> str:
            while parent.setdefault(x, x) != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            parent[find(a)] = find(b)

        def qualify(name: str) -> Optional[str]:
            if "." in name:
                binding = name.split(".", 1)[0]
                if binding in self.relations:
                    return name
            for get in self.relations.values():
                if get.schema.has_column(name):
                    return get.schema.column(name).qualified_name
            return None

        for conjuncts in self.edges.values():
            for conjunct in conjuncts:
                classified = classify_conjunct(conjunct)
                if isinstance(classified, ColEqCol):
                    a = qualify(classified.left)
                    b = qualify(classified.right)
                    if a is not None and b is not None:
                        union(a, b)
        groups: Dict[str, Set[str]] = {}
        for name in list(parent):
            groups.setdefault(find(name), set()).add(name)
        out: Dict[str, FrozenSet[str]] = {}
        for members in groups.values():
            frozen = frozenset(members)
            for name in members:
                out[name] = frozen
        return out


# -- extraction ----------------------------------------------------------------------


_REGION_TYPES = (LogicalFilter, LogicalJoin, LogicalGet)


def is_join_region(plan: LogicalPlan) -> bool:
    """True if the whole subtree consists of Filter/Join/Get nodes."""
    if not isinstance(plan, _REGION_TYPES):
        return False
    return all(is_join_region(c) for c in plan.children())


def extract_join_graph(region: LogicalPlan) -> JoinGraph:
    """Build the join graph of a join region."""
    if not is_join_region(region):
        raise JoinGraphError(
            f"subtree rooted at {type(region).__name__} is not a join region"
        )
    graph = JoinGraph()
    conjuncts: List[Expr] = []
    _collect(region, graph, conjuncts)
    schema = region.schema
    for conjunct in conjuncts:
        tables = referenced_tables(conjunct, schema)
        if len(tables) == 0:
            # constant predicate: attach to the first relation
            first = graph.syntactic_order[0]
            graph.filters.setdefault(first, []).append(conjunct)
        elif len(tables) == 1:
            (binding,) = tables
            graph.filters.setdefault(binding, []).append(conjunct)
        elif len(tables) == 2:
            graph.edges.setdefault(frozenset(tables), []).append(conjunct)
        else:
            graph.hyper.append((frozenset(tables), conjunct))
    return graph


def _collect(plan: LogicalPlan, graph: JoinGraph, conjuncts: List[Expr]) -> None:
    if isinstance(plan, LogicalGet):
        if plan.binding in graph.relations:
            raise JoinGraphError(f"duplicate binding {plan.binding!r}")
        graph.relations[plan.binding] = plan
        graph.filters.setdefault(plan.binding, [])
        graph.syntactic_order.append(plan.binding)
        return
    if isinstance(plan, LogicalFilter):
        conjuncts.extend(split_conjuncts(plan.predicate))
        _collect(plan.child, graph, conjuncts)
        return
    if isinstance(plan, LogicalJoin):
        _collect(plan.left, graph, conjuncts)
        _collect(plan.right, graph, conjuncts)
        if plan.condition is not None:
            conjuncts.extend(split_conjuncts(plan.condition))
        return
    raise JoinGraphError(f"unexpected {type(plan).__name__} in join region")


# -- region substitution -----------------------------------------------------------------


def transform_join_regions(
    plan: LogicalPlan, fn: Callable[[LogicalPlan], LogicalPlan]
) -> LogicalPlan:
    """Apply *fn* to every maximal join region in *plan*, rebuilding the
    surrounding operators."""
    if is_join_region(plan):
        return fn(plan)
    if isinstance(plan, LogicalProject):
        return LogicalProject(
            transform_join_regions(plan.child, fn), plan.exprs, plan.names
        )
    if isinstance(plan, LogicalAggregate):
        return LogicalAggregate(
            transform_join_regions(plan.child, fn),
            plan.group_exprs,
            plan.group_names,
            plan.aggs,
        )
    if isinstance(plan, LogicalFilter):
        return LogicalFilter(
            transform_join_regions(plan.child, fn), plan.predicate
        )
    if isinstance(plan, LogicalSort):
        return LogicalSort(transform_join_regions(plan.child, fn), plan.keys)
    if isinstance(plan, LogicalLimit):
        return LogicalLimit(transform_join_regions(plan.child, fn), plan.count)
    if isinstance(plan, LogicalDistinct):
        return LogicalDistinct(transform_join_regions(plan.child, fn))
    if isinstance(plan, LogicalNarrow):
        return LogicalNarrow(
            transform_join_regions(plan.child, fn), plan.positions
        )
    if isinstance(plan, LogicalJoin):
        # A join whose subtree is not pure (should not happen from the
        # builder, but handle compositionally).
        return LogicalJoin(
            transform_join_regions(plan.left, fn),
            transform_join_regions(plan.right, fn),
            plan.condition,
        )
    if isinstance(plan, LogicalGet):
        return fn(plan)
    raise JoinGraphError(f"unhandled operator {type(plan).__name__}")


def rebuild_region(graph: JoinGraph, order: List[str]) -> LogicalPlan:
    """Reassemble a logical join region joining relations in *order*
    (left-deep), attaching filters at scans and join conjuncts at the
    lowest join where both sides are available.  Used by baselines and
    tests to materialize an order as a logical plan."""
    if not order:
        raise JoinGraphError("empty join order")
    placed: Set[str] = set()
    applied_hyper: Set[int] = set()

    def scan(binding: str) -> LogicalPlan:
        node: LogicalPlan = graph.relations[binding]
        predicate = conjoin(graph.filter_conjuncts(binding))
        if predicate is not None:
            node = LogicalFilter(node, predicate)
        return node

    plan = scan(order[0])
    placed.add(order[0])
    for binding in order[1:]:
        right = scan(binding)
        conjuncts = graph.join_conjuncts_between(placed, {binding})
        combined = placed | {binding}
        for i, (tables, conjunct) in enumerate(graph.hyper):
            if i not in applied_hyper and tables <= combined:
                conjuncts.append(conjunct)
                applied_hyper.add(i)
        plan = LogicalJoin(plan, right, conjoin(conjuncts))
        placed.add(binding)
    return plan
