"""Build a logical plan from a parsed SELECT statement.

Shape produced (bottom to top)::

    Get* → Join (syntactic left-deep) → Filter(WHERE)
         → Aggregate(+Filter(HAVING)) → Project → Distinct → Sort → Limit

The optimizer later replaces the join tree; the builder's only job is a
*correct* plan.  Aggregate calls in SELECT/HAVING/ORDER BY are hoisted into
a single Aggregate operator and replaced with references to its output
columns.  ORDER BY keys that are not projection outputs are carried as
hidden projection columns and stripped by a final projection.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..catalog import Catalog
from ..expr import (
    AggCall,
    Arithmetic,
    Between,
    BoolOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    contains_aggregate,
)
from ..sql.ast import SelectStmt
from ..types import Schema
from .logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalSort,
    PlanError,
)


class BindError(Exception):
    """Raised for unresolvable or ambiguous names in the statement."""


def build_plan(stmt: SelectStmt, catalog: Catalog) -> LogicalPlan:
    """Translate a SELECT statement into a logical plan."""
    return _Builder(catalog).build(stmt)


class _Builder:
    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    def build(self, stmt: SelectStmt) -> LogicalPlan:
        if not stmt.from_tables and not stmt.joins:
            raise BindError("SELECT without FROM is not supported")
        plan = self._from_clause(stmt)
        if stmt.where is not None:
            if contains_aggregate(stmt.where):
                raise BindError("aggregates are not allowed in WHERE")
            plan = LogicalFilter(plan, stmt.where)

        select_exprs, names = self._expand_items(stmt, plan.schema)
        order_exprs = [o.expr for o in stmt.order_by]

        has_group = bool(stmt.group_by)
        has_aggs = (
            any(contains_aggregate(e) for e in select_exprs)
            or (stmt.having is not None and contains_aggregate(stmt.having))
            or any(contains_aggregate(e) for e in order_exprs)
        )
        having = stmt.having
        if has_group or has_aggs:
            plan, select_exprs, having, order_exprs = self._aggregate(
                plan, stmt, select_exprs, having, order_exprs
            )
        elif having is not None:
            raise BindError("HAVING requires GROUP BY or aggregates")

        if having is not None:
            plan = LogicalFilter(plan, having)

        # Projection (with hidden sort-key columns if needed).
        order_keys: List[Tuple[Expr, bool]] = []
        hidden: List[Expr] = []
        for item, expr in zip(stmt.order_by, order_exprs):
            resolved = self._resolve_order_key(expr, select_exprs, names)
            if isinstance(resolved, int):
                order_keys.append((ColumnRef(names[resolved]), item.ascending))
            else:
                hname = f"__sort{len(hidden)}"
                hidden.append(resolved)
                names = names + [hname]
                select_exprs = select_exprs + [resolved]
                order_keys.append((ColumnRef(hname), item.ascending))

        names = self._dedupe_names(names, select_exprs)
        plan = LogicalProject(plan, tuple(select_exprs), tuple(names))

        if stmt.distinct:
            if hidden:
                raise BindError(
                    "ORDER BY expressions must appear in SELECT when using DISTINCT"
                )
            plan = LogicalDistinct(plan)
        if order_keys:
            plan = LogicalSort(plan, tuple(order_keys))
        if hidden:
            keep = names[: len(names) - len(hidden)]
            plan = LogicalProject(
                plan, tuple(ColumnRef(n) for n in keep), tuple(keep)
            )
        if stmt.limit is not None:
            plan = LogicalLimit(plan, stmt.limit)
        return plan

    # -- FROM -------------------------------------------------------------------

    def _from_clause(self, stmt: SelectStmt) -> LogicalPlan:
        seen: Dict[str, bool] = {}
        scans: List[LogicalPlan] = []
        conditions: List[Optional[Expr]] = []
        for ref in stmt.from_tables:
            scans.append(self._get(ref.table, ref.binding, seen))
            conditions.append(None)
        for join in stmt.joins:
            scans.append(self._get(join.table.table, join.table.binding, seen))
            conditions.append(join.condition)
        plan = scans[0]
        for scan, cond in zip(scans[1:], conditions[1:]):
            plan = LogicalJoin(plan, scan, cond)
        return plan

    def _get(self, table: str, binding: str, seen: Dict[str, bool]) -> LogicalGet:
        key = binding.lower()
        if key in seen:
            raise BindError(f"duplicate table binding {binding!r}")
        seen[key] = True
        return LogicalGet(self.catalog.table(table), binding)

    # -- SELECT list ------------------------------------------------------------------

    def _expand_items(
        self, stmt: SelectStmt, schema: Schema
    ) -> Tuple[List[Expr], List[str]]:
        exprs: List[Expr] = []
        names: List[str] = []
        for item in stmt.items:
            if item.is_star:
                for column in schema:
                    if (
                        item.star_qualifier is not None
                        and column.table != item.star_qualifier
                    ):
                        continue
                    exprs.append(ColumnRef(column.qualified_name))
                    # Star expansion may hit the same bare name in several
                    # tables; disambiguate later ones with their qualifier.
                    name = column.name
                    if name in names:
                        name = column.qualified_name
                    names.append(name)
                if item.star_qualifier is not None and not any(
                    c.table == item.star_qualifier for c in schema
                ):
                    raise BindError(f"unknown table {item.star_qualifier!r} in *")
                continue
            exprs.append(item.expr)
            names.append(item.alias or _default_name(item.expr))
        return exprs, names

    def _dedupe_names(
        self, names: List[str], exprs: List[Expr]
    ) -> List[str]:
        """SQL allows duplicate output names (self-joins, ``id, id``); our
        schemas do not, so later duplicates get qualified/suffixed names."""
        out: List[str] = []
        seen: Dict[str, int] = {}
        for name, expr in zip(names, exprs):
            candidate = name
            if candidate in seen and isinstance(expr, ColumnRef):
                candidate = expr.name  # try the qualified spelling
            counter = 2
            base = candidate
            while candidate in seen:
                candidate = f"{base}_{counter}"
                counter += 1
            seen[candidate] = 1
            out.append(candidate)
        return out

    # -- aggregation ---------------------------------------------------------------------

    def _aggregate(
        self,
        plan: LogicalPlan,
        stmt: SelectStmt,
        select_exprs: List[Expr],
        having: Optional[Expr],
        order_exprs: List[Expr],
    ):
        group_exprs = tuple(stmt.group_by)
        group_names = tuple(_default_name(g) for g in group_exprs)
        aggs: List[AggCall] = []
        for e in select_exprs + ([having] if having is not None else []) + order_exprs:
            _collect_aggs(e, aggs)
        agg_op = LogicalAggregate(plan, group_exprs, group_names, tuple(aggs))

        mapping = {g: n for g, n in zip(group_exprs, group_names)}
        select_out = [
            _rewrite_post_agg(e, mapping, group_exprs, group_names)
            for e in select_exprs
        ]
        having_out = (
            _rewrite_post_agg(having, mapping, group_exprs, group_names)
            if having is not None
            else None
        )
        order_out = []
        for e in order_exprs:
            try:
                order_out.append(
                    _rewrite_post_agg(e, mapping, group_exprs, group_names)
                )
            except BindError:
                # May be a projection alias (ORDER BY total); resolved later
                # against the SELECT list.
                order_out.append(e)
        return agg_op, select_out, having_out, order_out

    # -- ORDER BY ------------------------------------------------------------------------

    def _resolve_order_key(
        self, expr: Expr, select_exprs: List[Expr], names: List[str]
    ):
        """Return an int (index into the projection) or an Expr to hide."""
        if isinstance(expr, ColumnRef) and expr.name in names:
            return names.index(expr.name)
        for i, se in enumerate(select_exprs):
            if se == expr:
                return i
        return expr


def _default_name(expr: Expr) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name.split(".")[-1]
    return str(expr)


def _collect_aggs(expr: Expr, out: List[AggCall]) -> None:
    if isinstance(expr, AggCall):
        if expr.arg is not None and contains_aggregate(expr.arg):
            raise BindError(f"nested aggregate in {expr}")
        if expr not in out:
            out.append(expr)
        return
    for child in expr.children():
        _collect_aggs(child, out)


def _rewrite_post_agg(
    expr: Expr,
    group_map: Dict[Expr, str],
    group_exprs: Tuple[Expr, ...],
    group_names: Tuple[str, ...],
) -> Expr:
    """Rewrite a post-aggregation expression to reference the Aggregate's
    output columns, validating that it uses only groups and aggregates."""
    if isinstance(expr, AggCall):
        return ColumnRef(str(expr))
    if expr in group_map:
        return ColumnRef(group_map[expr])
    if isinstance(expr, ColumnRef):
        # a bare column must match a group expr (possibly by bare name)
        bare = expr.name.split(".")[-1]
        for g, n in zip(group_exprs, group_names):
            if isinstance(g, ColumnRef) and g.name.split(".")[-1] == bare:
                return ColumnRef(n)
        raise BindError(
            f"column {expr.name} must appear in GROUP BY or an aggregate"
        )
    if isinstance(expr, Literal):
        return expr
    rewrite = lambda e: _rewrite_post_agg(e, group_map, group_exprs, group_names)
    if isinstance(expr, Comparison):
        return Comparison(expr.op, rewrite(expr.left), rewrite(expr.right))
    if isinstance(expr, Arithmetic):
        return Arithmetic(expr.op, rewrite(expr.left), rewrite(expr.right))
    if isinstance(expr, BoolOp):
        return BoolOp(expr.kind, tuple(rewrite(o) for o in expr.operands))
    if isinstance(expr, Not):
        return Not(rewrite(expr.operand))
    if isinstance(expr, Negate):
        return Negate(rewrite(expr.operand))
    if isinstance(expr, IsNull):
        return IsNull(rewrite(expr.operand), expr.negated)
    if isinstance(expr, InList):
        return InList(
            rewrite(expr.operand), tuple(rewrite(i) for i in expr.items), expr.negated
        )
    if isinstance(expr, Like):
        return Like(rewrite(expr.operand), expr.pattern, expr.negated)
    if isinstance(expr, Between):
        return Between(
            rewrite(expr.operand), rewrite(expr.low), rewrite(expr.high), expr.negated
        )
    raise PlanError(f"cannot rewrite post-aggregation expression {expr!r}")
