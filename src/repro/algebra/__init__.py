"""Logical algebra: plan operators, AST->plan builder, rewrites, join graph."""

from .builder import BindError, build_plan
from .joingraph import (
    JoinGraph,
    JoinGraphError,
    extract_join_graph,
    is_join_region,
    rebuild_region,
    transform_join_regions,
)
from .logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalLimit,
    LogicalNarrow,
    LogicalPlan,
    LogicalProject,
    LogicalSort,
    PlanError,
    leaves,
)
from .rewrite import prune_columns, push_down_predicates, rewrite

__all__ = [
    "BindError", "build_plan", "JoinGraph", "JoinGraphError",
    "extract_join_graph", "is_join_region", "rebuild_region",
    "transform_join_regions", "LogicalAggregate", "LogicalDistinct",
    "LogicalFilter", "LogicalGet", "LogicalJoin", "LogicalLimit",
    "LogicalNarrow", "LogicalPlan", "LogicalProject", "LogicalSort",
    "PlanError", "leaves", "prune_columns", "push_down_predicates", "rewrite",
]
