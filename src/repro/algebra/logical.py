"""Logical plan operators.

A logical plan is a tree of relational operators with resolved schemas but
no physical decisions (no access paths, join algorithms or orders).  The
optimizer and baseline planners consume logical plans and emit physical
plans (:mod:`repro.physical`).

Operators: Get, Filter, Project, Join (inner/cross), Aggregate, Sort,
Limit, Distinct.  Nodes are immutable; rewrites construct new trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..catalog import TableInfo
from ..expr import AggCall, Expr
from ..types import Column, DataType, Schema


class PlanError(Exception):
    """Raised when a plan is malformed."""


class LogicalPlan:
    """Base class.  ``schema`` is the operator's output schema."""

    schema: Schema

    def children(self) -> Tuple["LogicalPlan", ...]:
        return ()

    def label(self) -> str:
        return type(self).__name__.replace("Logical", "")

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:  # pragma: no cover - overridden
        return self.label()


@dataclass(frozen=True, eq=False)
class LogicalGet(LogicalPlan):
    """Scan of a base table under a binding name (alias)."""

    table: TableInfo
    binding: str
    schema: Schema = field(compare=False)

    def __init__(self, table: TableInfo, binding: Optional[str] = None):
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "binding", binding or table.name)
        object.__setattr__(self, "schema", table.schema.renamed(self.binding))

    def describe(self) -> str:
        if self.binding != self.table.name:
            return f"Get({self.table.name} AS {self.binding})"
        return f"Get({self.table.name})"


@dataclass(frozen=True, eq=False)
class LogicalFilter(LogicalPlan):
    child: LogicalPlan
    predicate: Expr
    schema: Schema = field(init=False, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "schema", self.child.schema)

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Filter({self.predicate})"


@dataclass(frozen=True, eq=False)
class LogicalProject(LogicalPlan):
    """Projection to computed expressions with output names."""

    child: LogicalPlan
    exprs: Tuple[Expr, ...]
    names: Tuple[str, ...]
    schema: Schema = field(compare=False)

    def __init__(
        self,
        child: LogicalPlan,
        exprs: Tuple[Expr, ...],
        names: Tuple[str, ...],
        dtypes: Optional[Tuple[DataType, ...]] = None,
    ):
        if len(exprs) != len(names):
            raise PlanError("projection exprs/names length mismatch")
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "exprs", tuple(exprs))
        object.__setattr__(self, "names", tuple(names))
        if dtypes is None:
            from ..expr import infer_expr_type

            dtypes = tuple(
                infer_expr_type(e, child.schema) for e in exprs
            )
        schema = Schema(
            Column(name, dtype, None) for name, dtype in zip(names, dtypes)
        )
        object.__setattr__(self, "schema", schema)

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        parts = ", ".join(
            f"{e} AS {n}" if str(e) != n else str(e)
            for e, n in zip(self.exprs, self.names)
        )
        return f"Project({parts})"


@dataclass(frozen=True, eq=False)
class LogicalJoin(LogicalPlan):
    """Inner join; ``condition=None`` is a cross product."""

    left: LogicalPlan
    right: LogicalPlan
    condition: Optional[Expr]
    schema: Schema = field(init=False, compare=False)

    def __post_init__(self):
        object.__setattr__(
            self, "schema", self.left.schema.concat(self.right.schema)
        )

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        if self.condition is None:
            return "CrossJoin"
        return f"Join({self.condition})"


@dataclass(frozen=True, eq=False)
class LogicalAggregate(LogicalPlan):
    """Grouped aggregation.

    Output schema: one column per group expression (named ``group_names``),
    then one column per aggregate call (named ``str(agg)``).
    """

    child: LogicalPlan
    group_exprs: Tuple[Expr, ...]
    group_names: Tuple[str, ...]
    aggs: Tuple[AggCall, ...]
    schema: Schema = field(compare=False)

    def __init__(
        self,
        child: LogicalPlan,
        group_exprs: Tuple[Expr, ...],
        group_names: Tuple[str, ...],
        aggs: Tuple[AggCall, ...],
    ):
        from ..expr import AggFunc, infer_expr_type

        object.__setattr__(self, "child", child)
        object.__setattr__(self, "group_exprs", tuple(group_exprs))
        object.__setattr__(self, "group_names", tuple(group_names))
        object.__setattr__(self, "aggs", tuple(aggs))
        cols: List[Column] = []
        for name, expr in zip(group_names, group_exprs):
            cols.append(Column(name, infer_expr_type(expr, child.schema), None))
        for agg in aggs:
            if agg.func is AggFunc.COUNT:
                dtype = DataType.INT
            elif agg.func is AggFunc.AVG:
                dtype = DataType.FLOAT
            else:
                dtype = infer_expr_type(agg.arg, child.schema)
            cols.append(Column(str(agg), dtype, None))
        object.__setattr__(self, "schema", Schema(cols))

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        groups = ", ".join(str(g) for g in self.group_exprs) or "()"
        aggs = ", ".join(str(a) for a in self.aggs)
        return f"Aggregate(by {groups}: {aggs})"


@dataclass(frozen=True, eq=False)
class LogicalNarrow(LogicalPlan):
    """Column-subset projection that *preserves* column identity.

    Unlike :class:`LogicalProject` (which computes expressions and outputs
    unqualified columns), Narrow keeps a subset of the child's columns with
    their qualifiers intact, so names keep resolving above it.  Inserted by
    projection pruning.
    """

    child: LogicalPlan
    positions: Tuple[int, ...]
    schema: Schema = field(compare=False)

    def __init__(self, child: LogicalPlan, positions: Tuple[int, ...]):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "positions", tuple(positions))
        object.__setattr__(
            self, "schema", Schema(child.schema[i] for i in positions)
        )

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        names = ", ".join(c.qualified_name for c in self.schema)
        return f"Narrow({names})"


@dataclass(frozen=True, eq=False)
class LogicalSort(LogicalPlan):
    child: LogicalPlan
    keys: Tuple[Tuple[Expr, bool], ...]  # (expr, ascending)
    schema: Schema = field(init=False, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "schema", self.child.schema)

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(
            f"{e} {'ASC' if asc else 'DESC'}" for e, asc in self.keys
        )
        return f"Sort({keys})"


@dataclass(frozen=True, eq=False)
class LogicalLimit(LogicalPlan):
    child: LogicalPlan
    count: int
    schema: Schema = field(init=False, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "schema", self.child.schema)

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit({self.count})"


@dataclass(frozen=True, eq=False)
class LogicalDistinct(LogicalPlan):
    child: LogicalPlan
    schema: Schema = field(init=False, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "schema", self.child.schema)

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return "Distinct"


def leaves(plan: LogicalPlan) -> List[LogicalGet]:
    """All base-table scans under *plan*, left to right."""
    if isinstance(plan, LogicalGet):
        return [plan]
    out: List[LogicalGet] = []
    for child in plan.children():
        out.extend(leaves(child))
    return out
