"""Logical rewrite rules.

Two classic heuristic rewrites that run before cost-based optimization
(every planner benefits from them; E9 measures their impact):

* **Predicate pushdown** — move each WHERE conjunct to the lowest operator
  whose schema covers its columns: single-table conjuncts drop onto their
  scan, join conjuncts attach to the lowest join that sees both sides.
* **Projection pruning** — insert :class:`LogicalNarrow` operators so scans
  carry only columns some ancestor actually uses.

Both preserve semantics exactly; tests verify result-set equality with
rewrites on and off.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..expr import (
    ColumnRef,
    Expr,
    conjoin,
    normalize,
    referenced_columns,
    split_conjuncts,
)
from ..types import Schema
from .logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalLimit,
    LogicalNarrow,
    LogicalPlan,
    LogicalProject,
    LogicalSort,
)


def rewrite(plan: LogicalPlan, pushdown: bool = True, prune: bool = True) -> LogicalPlan:
    """Apply the standard rewrite pipeline."""
    if pushdown:
        plan = push_down_predicates(plan)
    if prune:
        plan = prune_columns(plan)
    return plan


# -- predicate pushdown ----------------------------------------------------------


def push_down_predicates(plan: LogicalPlan) -> LogicalPlan:
    return _push(plan, [])


def _covers(schema: Schema, conjunct: Expr) -> bool:
    return all(schema.has_column(name) for name in referenced_columns(conjunct))


def _push(plan: LogicalPlan, pending: List[Expr]) -> LogicalPlan:
    """Rebuild *plan* with *pending* conjuncts placed as low as possible."""
    if isinstance(plan, LogicalFilter):
        return _push(plan.child, pending + split_conjuncts(plan.predicate))

    if isinstance(plan, LogicalJoin):
        conjuncts = list(pending)
        conjuncts.extend(split_conjuncts(plan.condition))
        left_schema, right_schema = plan.left.schema, plan.right.schema
        to_left: List[Expr] = []
        to_right: List[Expr] = []
        stay: List[Expr] = []
        for c in conjuncts:
            if _covers(left_schema, c):
                to_left.append(c)
            elif _covers(right_schema, c):
                to_right.append(c)
            else:
                stay.append(c)
        left = _push(plan.left, to_left)
        right = _push(plan.right, to_right)
        return LogicalJoin(left, right, conjoin(stay))

    if isinstance(plan, LogicalGet):
        predicate = conjoin(pending)
        if predicate is None:
            return plan
        return LogicalFilter(plan, normalize(predicate))

    if isinstance(plan, LogicalProject):
        # Push conjuncts through when every referenced output column is a
        # plain pass-through of an input column.
        passthrough = {}
        for expr, name in zip(plan.exprs, plan.names):
            if isinstance(expr, ColumnRef):
                passthrough[name] = expr
        pushable: List[Expr] = []
        stay = []
        for c in pending:
            refs = referenced_columns(c)
            if refs and all(r in passthrough for r in refs):
                pushable.append(_substitute(c, passthrough))
            else:
                stay.append(c)
        child = _push(plan.child, pushable)
        out: LogicalPlan = LogicalProject(child, plan.exprs, plan.names)
        return _wrap(out, stay)

    if isinstance(plan, (LogicalSort, LogicalDistinct, LogicalNarrow)):
        # Filters commute with sort/distinct/narrow (narrow: only if covered,
        # which it must be since the conjunct resolved against this schema).
        child = _push(plan.children()[0], pending)
        return _rebuild_unary(plan, child)

    if isinstance(plan, (LogicalLimit, LogicalAggregate)):
        # Never push through LIMIT (changes results) or Aggregate (HAVING
        # semantics differ from WHERE).
        child = _push(plan.children()[0], [])
        return _wrap(_rebuild_unary(plan, child), pending)

    if not plan.children():
        return _wrap(plan, pending)
    raise TypeError(f"unhandled operator {type(plan).__name__}")


def _wrap(plan: LogicalPlan, conjuncts: Sequence[Expr]) -> LogicalPlan:
    predicate = conjoin(list(conjuncts))
    if predicate is None:
        return plan
    return LogicalFilter(plan, normalize(predicate))


def _rebuild_unary(plan: LogicalPlan, child: LogicalPlan) -> LogicalPlan:
    if isinstance(plan, LogicalSort):
        return LogicalSort(child, plan.keys)
    if isinstance(plan, LogicalDistinct):
        return LogicalDistinct(child)
    if isinstance(plan, LogicalLimit):
        return LogicalLimit(child, plan.count)
    if isinstance(plan, LogicalNarrow):
        positions = tuple(
            child.schema.index_of(c.qualified_name) for c in plan.schema
        )
        return LogicalNarrow(child, positions)
    if isinstance(plan, LogicalAggregate):
        return LogicalAggregate(
            child, plan.group_exprs, plan.group_names, plan.aggs
        )
    raise TypeError(f"not unary: {type(plan).__name__}")


def _substitute(expr: Expr, mapping) -> Expr:
    """Replace column references by name through a projection."""
    from ..expr import (
        Arithmetic,
        Between,
        BoolOp,
        Comparison,
        InList,
        IsNull,
        Like,
        Literal,
        Negate,
        Not,
    )

    if isinstance(expr, ColumnRef):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Literal):
        return expr
    sub = lambda e: _substitute(e, mapping)
    if isinstance(expr, Comparison):
        return Comparison(expr.op, sub(expr.left), sub(expr.right))
    if isinstance(expr, Arithmetic):
        return Arithmetic(expr.op, sub(expr.left), sub(expr.right))
    if isinstance(expr, BoolOp):
        return BoolOp(expr.kind, tuple(sub(o) for o in expr.operands))
    if isinstance(expr, Not):
        return Not(sub(expr.operand))
    if isinstance(expr, Negate):
        return Negate(sub(expr.operand))
    if isinstance(expr, IsNull):
        return IsNull(sub(expr.operand), expr.negated)
    if isinstance(expr, InList):
        return InList(sub(expr.operand), tuple(sub(i) for i in expr.items), expr.negated)
    if isinstance(expr, Like):
        return Like(sub(expr.operand), expr.pattern, expr.negated)
    if isinstance(expr, Between):
        return Between(sub(expr.operand), sub(expr.low), sub(expr.high), expr.negated)
    raise TypeError(f"cannot substitute in {expr!r}")


# -- projection pruning ----------------------------------------------------------------


def prune_columns(plan: LogicalPlan) -> LogicalPlan:
    """Insert Narrow operators so subtrees carry only needed columns."""
    return _prune(plan, None)


def _prune(plan: LogicalPlan, needed: Optional[Set[str]]) -> LogicalPlan:
    """*needed* is the set of qualified column names required above, or
    ``None`` meaning "everything" (e.g. below SELECT *)."""
    if isinstance(plan, LogicalProject):
        required: Set[str] = set()
        for expr in plan.exprs:
            required |= _qualified_refs(expr, plan.child.schema)
        child = _prune(plan.child, required)
        return LogicalProject(child, plan.exprs, plan.names)

    if isinstance(plan, LogicalAggregate):
        required = set()
        for expr in plan.group_exprs:
            required |= _qualified_refs(expr, plan.child.schema)
        for agg in plan.aggs:
            if agg.arg is not None:
                required |= _qualified_refs(agg.arg, plan.child.schema)
        child = _prune(plan.child, required)
        return LogicalAggregate(child, plan.group_exprs, plan.group_names, plan.aggs)

    if isinstance(plan, LogicalFilter):
        if needed is None:
            child = _prune(plan.child, None)
            return LogicalFilter(child, plan.predicate)
        required = set(needed) | _qualified_refs(plan.predicate, plan.child.schema)
        child = _prune(plan.child, required)
        out: LogicalPlan = LogicalFilter(child, plan.predicate)
        return _narrow_to(out, needed)

    if isinstance(plan, LogicalJoin):
        if needed is None:
            left = _prune(plan.left, None)
            right = _prune(plan.right, None)
            return LogicalJoin(left, right, plan.condition)
        required = set(needed)
        if plan.condition is not None:
            required |= _qualified_refs(plan.condition, plan.schema)
        left_needed = {
            n for n in required if plan.left.schema.has_column(n)
        }
        right_needed = {
            n for n in required if plan.right.schema.has_column(n)
        }
        left = _prune(plan.left, left_needed)
        right = _prune(plan.right, right_needed)
        out = LogicalJoin(left, right, plan.condition)
        return _narrow_to(out, needed)

    if isinstance(plan, LogicalGet):
        if needed is None:
            return plan
        return _narrow_to(plan, needed)

    if isinstance(plan, LogicalSort):
        if needed is None:
            return LogicalSort(_prune(plan.child, None), plan.keys)
        required = set(needed)
        for expr, _ in plan.keys:
            required |= _qualified_refs(expr, plan.child.schema)
        child = _prune(plan.child, required)
        out = LogicalSort(child, plan.keys)
        return _narrow_to(out, needed)

    if isinstance(plan, (LogicalLimit, LogicalDistinct, LogicalNarrow)):
        child = _prune(plan.children()[0], needed if not isinstance(plan, LogicalNarrow) else None)
        return _rebuild_unary(plan, child)

    raise TypeError(f"unhandled operator {type(plan).__name__}")


def _qualified_refs(expr: Expr, schema: Schema) -> Set[str]:
    """Column references in *expr*, resolved to qualified names."""
    out: Set[str] = set()
    for name in referenced_columns(expr):
        out.add(schema.column(name).qualified_name)
    return out


def _narrow_to(plan: LogicalPlan, needed: Set[str]) -> LogicalPlan:
    """Wrap *plan* with a Narrow keeping only *needed* columns (in schema
    order).  No-op when nothing would be dropped."""
    keep: List[int] = [
        i
        for i, column in enumerate(plan.schema)
        if column.qualified_name in needed
    ]
    if len(keep) == len(plan.schema):
        return plan
    if not keep:
        # Keep one column: zero-column tuples break downstream operators,
        # and COUNT(*)-style queries still need row multiplicity.
        keep = [0]
    return LogicalNarrow(plan, tuple(keep))
