"""Physical plan operators.

A physical plan fixes every execution decision: access paths, join
algorithms, join order, sort placement.  Planners annotate each node with
estimated cardinality (``est_rows``) and estimated cost (``est_cost``, a
``repro.optimizer.cost.Cost``); the executor turns the tree into iterators
and fills in nothing — actual metrics come from the buffer pool and disk.

EXPLAIN output renders this tree with both estimates and (after execution)
actuals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..catalog import IndexInfo, TableInfo
from ..expr import AggCall, Expr
from ..types import Column, DataType, Schema


class PhysicalError(Exception):
    """Raised on malformed physical plans."""


@dataclass
class RangeBound:
    """One side of an index range: value + inclusivity.  ``None`` = open."""

    value: Any = None
    inclusive: bool = True
    unbounded: bool = True

    @classmethod
    def at(cls, value: Any, inclusive: bool) -> "RangeBound":
        return cls(value, inclusive, False)

    @classmethod
    def open(cls) -> "RangeBound":
        return cls()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.unbounded:
            return "*"
        return f"{'=' if self.inclusive else ''}{self.value!r}"


class PhysicalPlan:
    """Base class for physical operators."""

    schema: Schema
    est_rows: float = 0.0
    est_cost: Any = None  # repro.optimizer.cost.Cost, untyped to avoid cycle
    #: estimation-target key stamped by the optimizer at pricing time;
    #: execution actuals harvested under it feed the FeedbackStore
    feedback_key: Optional[str] = None
    # -- actuals, filled by instrumented execution --------------------------
    actual_rows: Optional[int] = None
    actual_loops: int = 0  # times this node's iterator was (re)started
    actual_time_ms: Optional[float] = None  # inclusive, FULL level only
    actual_hits: Optional[int] = None  # buffer-pool hits attributed here
    actual_reads: Optional[int] = None  # disk page reads attributed here
    actual_writes: Optional[int] = None  # disk page writes attributed here

    def children(self) -> Tuple["PhysicalPlan", ...]:
        return ()

    def describe(self) -> str:  # pragma: no cover - overridden
        return type(self).__name__

    # -- actuals protocol (the executor's only write interface) -------------

    def reset_actuals(self) -> None:
        """Clear this subtree's actuals before a fresh execution.

        ``actual_rows`` stays ``None`` at OFF instrumentation; the other
        fields are only filled at FULL.
        """
        self.actual_rows = None
        self.actual_loops = 0
        self.actual_time_ms = None
        self.actual_hits = None
        self.actual_reads = None
        self.actual_writes = None
        for child in self.children():
            child.reset_actuals()

    def start_loop(self) -> None:
        """Record one (re)start of this node's iteration (a nested loop's
        inner side starts once per outer block)."""
        self.actual_loops += 1

    def accumulate_actuals(
        self,
        rows: int = 0,
        time_ms: Optional[float] = None,
        hits: Optional[int] = None,
        reads: Optional[int] = None,
        writes: Optional[int] = None,
    ) -> None:
        """Fold one batch's measurements into the running totals.

        Totals accumulate across rescans; the first call flips the
        ``None`` sentinels to real counters so partially-executed nodes
        (LIMIT-abandoned subtrees, mid-operator errors) still report what
        they did.
        """
        self.actual_rows = (self.actual_rows or 0) + rows
        if time_ms is not None:
            self.actual_time_ms = (self.actual_time_ms or 0.0) + time_ms
        if hits is not None:
            self.actual_hits = (self.actual_hits or 0) + hits
        if reads is not None:
            self.actual_reads = (self.actual_reads or 0) + reads
        if writes is not None:
            self.actual_writes = (self.actual_writes or 0) + writes

    def q_error(self) -> Optional[float]:
        """Cardinality estimation error (≥ 1) once actuals are known.
        Zero rows on either side count as one; a non-finite estimate
        reports ``inf`` rather than propagating NaN."""
        if self.actual_rows is None:
            return None
        if not math.isfinite(self.est_rows):
            return math.inf
        est = max(self.est_rows, 1.0)
        act = max(float(self.actual_rows), 1.0)
        return max(est / act, act / est)

    def _actuals_note(self) -> str:
        """PostgreSQL-style ``(actual time=.. rows=.. loops=..)`` block."""
        parts = []
        if self.actual_time_ms is not None:
            parts.append(f"time={self.actual_time_ms:.3f}ms")
        parts.append(f"rows={self.actual_rows}")
        if self.actual_loops:
            parts.append(f"loops={self.actual_loops}")
        if self.actual_hits is not None:
            parts.append(f"hits={self.actual_hits}")
        if self.actual_reads is not None:
            parts.append(f"reads={self.actual_reads}")
        if self.actual_writes:
            parts.append(f"writes={self.actual_writes}")
        q = self.q_error()
        if q is not None:
            parts.append(f"q-err={q:.2f}")
        return " (actual " + " ".join(parts) + ")"

    def pretty(self, indent: int = 0, actuals: bool = False) -> str:
        cost = self.est_cost
        note = f"  (rows≈{self.est_rows:.0f}"
        if cost is not None:
            note += f", cost≈{cost.total:.1f}"
        note += ")"
        if actuals and self.actual_rows is not None:
            note += self._actuals_note()
        lines = ["  " * indent + self.describe() + note]
        for child in self.children():
            lines.append(child.pretty(indent + 1, actuals))
        return "\n".join(lines)

    def total_est_cost(self) -> float:
        return self.est_cost.total if self.est_cost is not None else 0.0


@dataclass
class PSeqScan(PhysicalPlan):
    """Full heap scan.  With ``parallel=True`` the scan is the partition
    point of an enclosing exchange: each worker scans only its contiguous
    page-range slice of the heap (serial execution ignores the flag)."""

    table: TableInfo
    binding: str
    predicate: Optional[Expr] = None
    parallel: bool = False
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = self.table.schema.renamed(self.binding)

    def describe(self) -> str:
        suffix = f" filter {self.predicate}" if self.predicate is not None else ""
        par = " parallel" if self.parallel else ""
        return f"SeqScan({self.table.name} AS {self.binding}{par}){suffix}"


@dataclass
class PIndexScan(PhysicalPlan):
    """B+-tree range scan (or hash probe when ``low == high`` equality and
    the index is a hash index), fetching heap rows by RID."""

    table: TableInfo
    binding: str
    index: IndexInfo
    low: RangeBound = field(default_factory=RangeBound.open)
    high: RangeBound = field(default_factory=RangeBound.open)
    residual: Optional[Expr] = None
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = self.table.schema.renamed(self.binding)

    @property
    def is_equality(self) -> bool:
        return (
            not self.low.unbounded
            and not self.high.unbounded
            and self.low.value == self.high.value
            and self.low.inclusive
            and self.high.inclusive
        )

    def describe(self) -> str:
        kind = self.index.kind.value
        clustered = " clustered" if self.index.clustered else ""
        rng = f"[{self.low} .. {self.high}]"
        suffix = f" filter {self.residual}" if self.residual is not None else ""
        return (
            f"IndexScan({self.table.name} AS {self.binding} via "
            f"{self.index.name}:{kind}{clustered} {rng}){suffix}"
        )


@dataclass
class PIndexOnlyScan(PhysicalPlan):
    """Answer directly from index entries (key column only, no heap I/O)."""

    table: TableInfo
    binding: str
    index: IndexInfo
    low: RangeBound = field(default_factory=RangeBound.open)
    high: RangeBound = field(default_factory=RangeBound.open)
    schema: Schema = field(init=False)

    def __post_init__(self):
        column = self.table.schema.column(self.index.column)
        self.schema = Schema(
            [Column(column.name, column.dtype, self.binding, column.nullable)]
        )

    def describe(self) -> str:
        return (
            f"IndexOnlyScan({self.table.name} AS {self.binding} via "
            f"{self.index.name} [{self.low} .. {self.high}])"
        )


@dataclass
class PFilter(PhysicalPlan):
    child: PhysicalPlan
    predicate: Expr
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = self.child.schema

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Filter({self.predicate})"


@dataclass
class PProject(PhysicalPlan):
    child: PhysicalPlan
    exprs: Tuple[Expr, ...]
    names: Tuple[str, ...]
    dtypes: Tuple[DataType, ...]
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = Schema(
            Column(n, t, None) for n, t in zip(self.names, self.dtypes)
        )

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Project({', '.join(self.names)})"


@dataclass
class PNarrow(PhysicalPlan):
    child: PhysicalPlan
    positions: Tuple[int, ...]
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = Schema(self.child.schema[i] for i in self.positions)

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Narrow({', '.join(c.qualified_name for c in self.schema)})"


@dataclass
class PNestedLoopJoin(PhysicalPlan):
    """Block nested-loop join: outer read once in blocks sized to the work
    memory, inner rescanned per block.  ``block_pages=1`` degenerates to
    the classic tuple-at-a-time nested loop."""

    left: PhysicalPlan
    right: PhysicalPlan
    condition: Optional[Expr]
    block_pages: int = 1
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = self.left.schema.concat(self.right.schema)

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        cond = self.condition if self.condition is not None else "TRUE"
        return f"NestedLoopJoin(on {cond}, block={self.block_pages}p)"


@dataclass
class PIndexNLJoin(PhysicalPlan):
    """Index nested-loop: for each outer row, probe an index on the inner
    table with the value of ``outer_key``."""

    left: PhysicalPlan
    table: TableInfo
    binding: str
    index: IndexInfo
    outer_key: Expr
    residual: Optional[Expr] = None
    schema: Schema = field(init=False)

    def __post_init__(self):
        inner_schema = self.table.schema.renamed(self.binding)
        self.schema = self.left.schema.concat(inner_schema)

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left,)

    def describe(self) -> str:
        suffix = f" filter {self.residual}" if self.residual is not None else ""
        return (
            f"IndexNLJoin({self.table.name} AS {self.binding} via "
            f"{self.index.name} on {self.outer_key}){suffix}"
        )


@dataclass
class PSortMergeJoin(PhysicalPlan):
    """Merge join on equality keys; inputs must already be sorted on the
    keys (the planner inserts PSort where required)."""

    left: PhysicalPlan
    right: PhysicalPlan
    left_key: Expr
    right_key: Expr
    residual: Optional[Expr] = None
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = self.left.schema.concat(self.right.schema)

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        suffix = f" filter {self.residual}" if self.residual is not None else ""
        return f"SortMergeJoin({self.left_key} = {self.right_key}){suffix}"


@dataclass
class PHashJoin(PhysicalPlan):
    """Hash join building on the right input; falls back to Grace
    partitioning through temp files when the build side exceeds work
    memory."""

    left: PhysicalPlan
    right: PhysicalPlan
    left_key: Expr
    right_key: Expr
    residual: Optional[Expr] = None
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = self.left.schema.concat(self.right.schema)

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        suffix = f" filter {self.residual}" if self.residual is not None else ""
        return f"HashJoin({self.left_key} = {self.right_key}, build=right){suffix}"


@dataclass
class PSort(PhysicalPlan):
    """External merge sort through temp files when input exceeds work
    memory."""

    child: PhysicalPlan
    keys: Tuple[Tuple[Expr, bool], ...]
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = self.child.schema

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(f"{e} {'ASC' if a else 'DESC'}" for e, a in self.keys)
        return f"Sort({keys})"

    @property
    def sort_columns(self) -> Tuple[str, ...]:
        """Qualified column names if all keys are plain ascending columns."""
        from ..expr import ColumnRef

        out: List[str] = []
        for expr, asc in self.keys:
            if not asc or not isinstance(expr, ColumnRef):
                return ()
            out.append(expr.name)
        return tuple(out)


@dataclass
class PAggregate(PhysicalPlan):
    """Hash aggregation (or stream aggregation when ``streaming`` and the
    input is sorted on the group keys).

    ``mode`` supports two-phase parallel aggregation: ``"single"`` is the
    classic one-shot aggregate; ``"partial"`` emits mergeable accumulator
    states (run inside exchange workers); ``"final"`` consumes partial
    state rows and produces the real results.  Partial and final phases
    use the same ``group_exprs``/``aggs``; a final node's child must be a
    partial node's output (group columns first, one state per agg after).
    """

    child: PhysicalPlan
    group_exprs: Tuple[Expr, ...]
    group_names: Tuple[str, ...]
    aggs: Tuple[AggCall, ...]
    schema: Schema
    streaming: bool = False
    mode: str = "single"

    def __post_init__(self):
        if self.mode not in ("single", "partial", "final"):
            raise PhysicalError(f"bad aggregate mode {self.mode!r}")

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        mode = "stream" if self.streaming else "hash"
        if self.mode != "single":
            mode += f" {self.mode}"
        groups = ", ".join(str(g) for g in self.group_exprs) or "()"
        aggs = ", ".join(str(a) for a in self.aggs)
        return f"Aggregate[{mode}](by {groups}: {aggs})"


@dataclass
class PDistinct(PhysicalPlan):
    child: PhysicalPlan
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = self.child.schema

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return "Distinct"


@dataclass
class PLimit(PhysicalPlan):
    child: PhysicalPlan
    count: int
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = self.child.schema

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit({self.count})"


@dataclass
class PMaterialize(PhysicalPlan):
    """Cache the child's rows in memory for repeated scans (inner of a
    nested loop over a non-table subplan)."""

    child: PhysicalPlan
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = self.child.schema

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return "Materialize"


@dataclass
class PPartitionFilter(PhysicalPlan):
    """Keep only the rows of the current worker's hash partition.

    ``hash(key) % degree == worker`` (NULL keys go to partition 0), with
    worker/degree taken from the execution context at runtime.  Serial
    execution (no partition context) passes everything through.  Placing
    one of these on both inputs of a hash join co-partitions it: equal
    keys always land in the same worker.
    """

    child: PhysicalPlan
    key: Expr
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = self.child.schema

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"PartitionFilter(hash {self.key})"


#: name of the hidden ordinal column appended by POrdinal
ORDINAL_COLUMN = "__ord"


@dataclass
class POrdinal(PhysicalPlan):
    """Append the child's running row number as a hidden trailing column.

    Placed *below* a hash-partition filter on a join's probe side, the
    ordinal records each row's position in the deterministic serial scan
    order; the gather node k-way-merges worker streams on it (and strips
    it), restoring exact serial output order for co-partitioned joins.
    """

    child: PhysicalPlan
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = self.child.schema.concat(
            Schema([Column(ORDINAL_COLUMN, DataType.INT, None, False)])
        )

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return "Ordinal"


@dataclass
class PExchange(PhysicalPlan):
    """Parallel region marker: execute ``child`` once per worker.

    Each of ``degree`` workers runs the child subplan against its own
    partition (``mode='pages'``: a marked scan reads a contiguous page
    slice; ``mode='hash'``: partition filters select a hash partition).
    The node itself never executes as an operator — the gather above it
    launches the workers — but it carries the merged per-worker actuals
    so EXPLAIN ANALYZE stays exact.
    """

    child: PhysicalPlan
    degree: int
    mode: str = "pages"
    schema: Schema = field(init=False)

    def __post_init__(self):
        if self.degree < 1:
            raise PhysicalError("exchange degree must be at least 1")
        if self.mode not in ("pages", "hash"):
            raise PhysicalError(f"bad exchange mode {self.mode!r}")
        self.schema = self.child.schema

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Exchange({self.mode} x{self.degree})"


@dataclass
class PGather(PhysicalPlan):
    """Deterministic merge of an exchange's worker streams.

    Merge strategies (in priority order):

    * ``ordinal is not None`` — k-way merge on the hidden ordinal column
      at that position, which is then stripped (restores serial order for
      co-partitioned hash joins);
    * ``merge_keys`` — k-way merge on the sort keys with worker index as
      tie-break (order-preserving gather over per-worker sorts: equal to
      the serial stable sort bit-for-bit);
    * otherwise — concatenation in worker order (equals serial order for
      page-range partitions).
    """

    child: PExchange
    merge_keys: Tuple[Tuple[Expr, bool], ...] = ()
    ordinal: Optional[int] = None
    schema: Schema = field(init=False)

    def __post_init__(self):
        schema = self.child.schema
        if self.ordinal is not None:
            columns = list(schema)
            if not 0 <= self.ordinal < len(columns):
                raise PhysicalError("gather ordinal position out of range")
            del columns[self.ordinal]
            schema = Schema(columns)
        self.schema = schema

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    @property
    def degree(self) -> int:
        return self.child.degree

    def describe(self) -> str:
        if self.ordinal is not None:
            merge = "merge=ordinal"
        elif self.merge_keys:
            keys = ", ".join(
                f"{e} {'ASC' if a else 'DESC'}" for e, a in self.merge_keys
            )
            merge = f"merge=({keys})"
        else:
            merge = "merge=concat"
        return f"Gather({merge}, workers={self.degree})"


def walk_plan(plan: PhysicalPlan):
    """Pre-order traversal."""
    yield plan
    for child in plan.children():
        yield from walk_plan(child)


def contains_parallel(plan: PhysicalPlan) -> bool:
    """Does *plan* contain a parallel (gather/exchange) region?"""
    return any(isinstance(node, PGather) for node in walk_plan(plan))
