"""Physical plan operators with cost/cardinality annotations."""

from .plan import (
    ORDINAL_COLUMN,
    PAggregate,
    PDistinct,
    PExchange,
    PFilter,
    PGather,
    PHashJoin,
    PIndexNLJoin,
    PIndexOnlyScan,
    PIndexScan,
    PLimit,
    PMaterialize,
    PNarrow,
    PNestedLoopJoin,
    POrdinal,
    PPartitionFilter,
    PProject,
    PSeqScan,
    PSort,
    PSortMergeJoin,
    PhysicalError,
    PhysicalPlan,
    RangeBound,
    contains_parallel,
    walk_plan,
)

__all__ = [
    "ORDINAL_COLUMN", "PAggregate", "PDistinct", "PExchange", "PFilter",
    "PGather", "PHashJoin", "PIndexNLJoin", "PIndexOnlyScan", "PIndexScan",
    "PLimit", "PMaterialize", "PNarrow", "PNestedLoopJoin", "POrdinal",
    "PPartitionFilter", "PProject", "PSeqScan", "PSort", "PSortMergeJoin",
    "PhysicalError", "PhysicalPlan", "RangeBound", "contains_parallel",
    "walk_plan",
]
