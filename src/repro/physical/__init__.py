"""Physical plan operators with cost/cardinality annotations."""

from .plan import (
    PAggregate,
    PDistinct,
    PFilter,
    PHashJoin,
    PIndexNLJoin,
    PIndexOnlyScan,
    PIndexScan,
    PLimit,
    PMaterialize,
    PNarrow,
    PNestedLoopJoin,
    PProject,
    PSeqScan,
    PSort,
    PSortMergeJoin,
    PhysicalError,
    PhysicalPlan,
    RangeBound,
    walk_plan,
)

__all__ = [
    "PAggregate", "PDistinct", "PFilter", "PHashJoin", "PIndexNLJoin",
    "PIndexOnlyScan", "PIndexScan", "PLimit", "PMaterialize", "PNarrow",
    "PNestedLoopJoin", "PProject", "PSeqScan", "PSort", "PSortMergeJoin",
    "PhysicalError", "PhysicalPlan", "RangeBound", "walk_plan",
]
