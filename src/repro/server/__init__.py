"""Client/server layer: a socket server over the embedded engine.

``DatabaseServer`` wraps a :class:`~repro.engine.Database` and serves a
4-byte-length-prefixed JSON protocol (:mod:`.protocol`), one thread and
one engine session per connection.  ``Client`` is the matching blocking
client.  The server exists for the concurrency and crash tests — and to
make the transaction machinery observable from more than one session.
"""

from .client import Client, ClientResult, ServerError
from .protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    recv_message,
    send_message,
)
from .server import DatabaseServer

__all__ = [
    "Client",
    "ClientResult",
    "ServerError",
    "MAX_MESSAGE_BYTES",
    "ProtocolError",
    "recv_message",
    "send_message",
    "DatabaseServer",
]
