"""A thin blocking client for :class:`~repro.server.DatabaseServer`."""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .protocol import recv_message, send_message


class ServerError(Exception):
    """An error raised engine-side and relayed over the wire."""

    def __init__(self, message: str, error_type: str = "Exception"):
        super().__init__(message)
        self.error_type = error_type


@dataclass
class ClientResult:
    """Rows as tuples, like the embedded API returns them.

    ``trace_id`` identifies the server-side request trace (empty when the
    server runs untraced); ``trace`` is the span tree as nested dicts,
    present only when the request asked for it with ``trace=True``.
    """

    rows: List[Tuple[Any, ...]]
    columns: List[str]
    in_transaction: bool = False
    trace_id: str = ""
    trace: Optional[Dict[str, Any]] = field(default=None, repr=False)

    @property
    def rowcount(self) -> int:
        return len(self.rows)


class Client:
    """One connection = one server-side session (transaction state
    included); close it to roll back whatever was left open."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def execute(
        self,
        sql: str,
        trace_id: Optional[str] = None,
        trace: bool = False,
    ) -> ClientResult:
        """Run one statement.  Pass *trace_id* to stamp the server-side
        request trace with a caller-chosen id (end-to-end correlation
        across services); pass ``trace=True`` to get the finished span
        tree back on the result."""
        request: Dict[str, Any] = {"sql": sql}
        if trace_id is not None:
            request["trace_id"] = trace_id
        if trace:
            request["trace"] = True
        send_message(self._sock, request)
        reply = recv_message(self._sock)
        if not reply.get("ok"):
            raise ServerError(
                reply.get("error", "unknown server error"),
                reply.get("error_type", "Exception"),
            )
        return ClientResult(
            rows=[tuple(row) for row in reply.get("rows", [])],
            columns=list(reply.get("columns", [])),
            in_transaction=bool(reply.get("in_transaction")),
            trace_id=str(reply.get("trace_id", "")),
            trace=reply.get("trace"),
        )

    query = execute

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            send_message(self._sock, {"op": "close"})
            recv_message(self._sock)
        except (OSError, ConnectionError):
            pass
        finally:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
