"""Wire protocol: 4-byte big-endian length prefix + UTF-8 JSON body.

One message per statement in each direction.  Requests are
``{"sql": "..."}``; responses are ``{"ok": true, "columns": [...],
"rows": [[...], ...]}`` or ``{"ok": false, "error": "...",
"error_type": "EngineError"}``.  JSON keeps the protocol inspectable
with ``nc``/``tcpdump`` and the framing makes message boundaries exact
regardless of TCP segmentation.

Distributed-tracing extensions (all optional, ignored by old peers):
a request may carry ``"trace_id"`` (a client-chosen id propagated into
the server-side request trace) and ``"trace": true`` (ship the span tree
back in the response).  Responses carry ``"trace_id"`` whenever tracing
is enabled server-side, and ``"trace"`` (the span tree as nested dicts)
when asked for.
"""

from __future__ import annotations

import json
import socket
import struct
import time
from typing import Any, Dict, Tuple

#: refuse absurd frames (a corrupted length prefix would otherwise make
#: the reader try to allocate gigabytes)
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class ProtocolError(Exception):
    """Malformed frame or JSON on the wire."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """One framed message as raw bytes (length prefix included)."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message too large ({len(body)} bytes)")
    return _LEN.pack(len(body)) + body


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    sock.sendall(encode_message(message))


def send_frame(sock: socket.socket, frame: bytes) -> None:
    """Send bytes already framed by :func:`encode_message` (lets the
    server time encoding separately from the socket write)."""
    sock.sendall(frame)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Dict[str, Any]:
    """Read one framed message; raises ``ConnectionError`` on a clean
    close *between* messages too (callers treat that as disconnect)."""
    header = sock.recv(_LEN.size)
    if not header:
        raise ConnectionError("peer disconnected")
    if len(header) < _LEN.size:
        header += _recv_exact(sock, _LEN.size - len(header))
    (length,) = _LEN.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame length {length} exceeds maximum")
    body = _recv_exact(sock, length)
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad message body: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def recv_message_timed(
    sock: socket.socket,
) -> Tuple[Dict[str, Any], float]:
    """Like :func:`recv_message`, plus the seconds spent reading and
    decoding *after the frame header arrived* — i.e. excluding the idle
    wait for the next request, so the server can report it as the
    request's ``protocol.decode`` span."""
    header = sock.recv(_LEN.size)
    if not header:
        raise ConnectionError("peer disconnected")
    start = time.perf_counter()
    if len(header) < _LEN.size:
        header += _recv_exact(sock, _LEN.size - len(header))
    (length,) = _LEN.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame length {length} exceeds maximum")
    body = _recv_exact(sock, length)
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad message body: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message, time.perf_counter() - start
