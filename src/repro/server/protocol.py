"""Wire protocol: 4-byte big-endian length prefix + UTF-8 JSON body.

One message per statement in each direction.  Requests are
``{"sql": "..."}``; responses are ``{"ok": true, "columns": [...],
"rows": [[...], ...]}`` or ``{"ok": false, "error": "...",
"error_type": "EngineError"}``.  JSON keeps the protocol inspectable
with ``nc``/``tcpdump`` and the framing makes message boundaries exact
regardless of TCP segmentation.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict

#: refuse absurd frames (a corrupted length prefix would otherwise make
#: the reader try to allocate gigabytes)
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class ProtocolError(Exception):
    """Malformed frame or JSON on the wire."""


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message too large ({len(body)} bytes)")
    sock.sendall(_LEN.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Dict[str, Any]:
    """Read one framed message; raises ``ConnectionError`` on a clean
    close *between* messages too (callers treat that as disconnect)."""
    header = sock.recv(_LEN.size)
    if not header:
        raise ConnectionError("peer disconnected")
    if len(header) < _LEN.size:
        header += _recv_exact(sock, _LEN.size - len(header))
    (length,) = _LEN.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame length {length} exceeds maximum")
    body = _recv_exact(sock, length)
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad message body: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message
