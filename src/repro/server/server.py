"""A threaded socket server wrapping one :class:`~repro.engine.Database`.

One OS thread and one engine :class:`~repro.engine.session.Session` per
connection — so every connection gets independent transaction state
(``BEGIN``/``COMMIT``/``ROLLBACK``), shows up in ``sys_stat_activity``
under its session id, and a dropped connection rolls its open
transaction back.  The engine serializes statement bodies internally;
concurrency still pays off because lock waits and COMMIT fsyncs happen
outside the statement lock (group commit).

Every request runs under its own request trace (when the database has
tracing on): a ``request`` root span with ``protocol.decode`` →
``session.dispatch`` (the engine's whole span tree, lock waits, WAL
appends, fsyncs, worker spans included) → ``protocol.encode`` children.
Clients may supply their own ``trace_id`` for end-to-end correlation and
ask for the span tree back with ``"trace": true``; the finished trace is
also captured engine-side (``Database.last_request_trace``, the
slow-trace ring, ``sys_stat_traces``).
"""

from __future__ import annotations

import socket
import threading
from typing import List, Optional, Tuple

from ..obs import Tracer, activate_tracer
from .protocol import (
    ProtocolError,
    encode_message,
    recv_message_timed,
    send_frame,
    send_message,
)


class DatabaseServer:
    """Serve a database over TCP; ``port=0`` picks a free port."""

    def __init__(self, db, host: str = "127.0.0.1", port: int = 0):
        self.db = db
        self.host = host
        self.port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._workers: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._guard = threading.Lock()
        self._running = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("server not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "DatabaseServer":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self._listener = listener
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        if self._listener is not None:
            # shutdown() wakes a thread blocked in accept(); close() alone
            # leaves it parked on the old fd until the join times out
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._guard:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        for worker in list(self._workers):
            worker.join(timeout=5)

    def __enter__(self) -> "DatabaseServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- connection handling ---------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            with self._guard:
                self._conns.append(conn)
            worker = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-server-conn",
                daemon=True,
            )
            self._workers.append(worker)
            worker.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        session = self.db.create_session()
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                try:
                    request, decode_s = recv_message_timed(conn)
                except (ConnectionError, OSError):
                    return
                except ProtocolError as exc:
                    self._send_safe(
                        conn,
                        {
                            "ok": False,
                            "error": str(exc),
                            "error_type": "ProtocolError",
                        },
                    )
                    return
                if request.get("op") == "close":
                    self._send_safe(conn, {"ok": True, "closed": True})
                    return
                sql = request.get("sql")
                if not isinstance(sql, str):
                    self._send_safe(
                        conn,
                        {
                            "ok": False,
                            "error": "request must carry a 'sql' string",
                            "error_type": "ProtocolError",
                        },
                    )
                    continue
                frame = self._handle_request(session, sql, request, decode_s)
                try:
                    send_frame(conn, frame)
                except OSError:
                    return
        finally:
            session.close()  # rolls back any open transaction
            try:
                conn.close()
            except OSError:
                pass
            with self._guard:
                if conn in self._conns:
                    self._conns.remove(conn)

    def _handle_request(
        self, session, sql: str, request: dict, decode_s: float
    ) -> bytes:
        """Run one SQL request under a request-scoped trace and return
        the already-encoded response frame.

        The span tree shipped back to the client (``"trace": true``) is
        snapshotted *before* ``protocol.encode`` — a tree cannot contain
        its own final encoding — but the full tree, encode span
        included, is captured engine-side as the last request trace.
        """
        trace_id = request.get("trace_id")
        tracer = Tracer(
            enabled=self.db.obs.trace,
            trace_id=trace_id if isinstance(trace_id, str) else None,
        )
        with activate_tracer(tracer):
            with tracer.span("request") as root:
                root.set_attr("session", str(session.id))
                tracer.record_span("protocol.decode", decode_s * 1000.0)
                with tracer.span("session.dispatch"):
                    response = self._run(session, sql, tracer)
                if tracer.enabled:
                    response["trace_id"] = tracer.trace_id
                    if request.get("trace"):
                        # provisional duration: the root is still open
                        # (it cannot contain its own final encoding), so
                        # stamp elapsed-so-far for the client's copy
                        root.duration_ms = tracer.now_ms() - root.start_ms
                        response["trace"] = tracer.root.to_dict()
                with tracer.span("protocol.encode") as sp:
                    try:
                        frame = encode_message(response)
                    except ProtocolError as exc:
                        frame = encode_message(
                            {
                                "ok": False,
                                "error": str(exc),
                                "error_type": "ProtocolError",
                            }
                        )
                    sp.add("bytes", float(len(frame)))
        self.db.capture_trace(tracer, sql, session_id=session.id)
        return frame

    def _run(self, session, sql: str, tracer=None) -> dict:
        try:
            result = session.execute(sql, tracer=tracer)
        except Exception as exc:  # engine errors travel as payloads
            return {
                "ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
            }
        return {
            "ok": True,
            "columns": list(result.columns),
            "rows": [list(row) for row in result.rows],
            "in_transaction": session.in_transaction,
        }

    @staticmethod
    def _send_safe(conn: socket.socket, message: dict) -> None:
        try:
            send_message(conn, message)
        except (OSError, ProtocolError):
            pass
