"""SQL front-end: lexer, AST, recursive-descent parser."""

from .ast import (
    AnalyzeStmt,
    BeginStmt,
    CheckpointStmt,
    ColumnDef,
    CommitStmt,
    CreateIndexStmt,
    CreateTableStmt,
    CreateViewStmt,
    DeleteStmt,
    DropTableStmt,
    DropViewStmt,
    ExplainStmt,
    InsertStmt,
    JoinClause,
    OrderItem,
    RollbackStmt,
    SelectItem,
    SelectStmt,
    Statement,
    TableRef,
    UpdateStmt,
)
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse, parse_expression

__all__ = [
    "AnalyzeStmt", "BeginStmt", "CheckpointStmt", "ColumnDef",
    "CommitStmt", "CreateIndexStmt", "CreateTableStmt",
    "CreateViewStmt", "DeleteStmt", "DropTableStmt", "DropViewStmt",
    "ExplainStmt", "InsertStmt", "JoinClause", "OrderItem",
    "RollbackStmt", "SelectItem", "SelectStmt", "Statement", "TableRef",
    "UpdateStmt",
    "LexError", "Token", "tokenize", "ParseError", "parse", "parse_expression",
]
