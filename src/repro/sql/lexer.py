"""SQL tokenizer.

Produces a flat token stream for the recursive-descent parser.  Token kinds:
KEYWORD (upper-cased), IDENT (case-preserved), NUMBER (int/float literal),
STRING (single-quoted, '' escapes), SYMBOL (punctuation/operators), EOF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "AS", "JOIN", "INNER",
    "ON", "GROUP", "BY", "HAVING", "ORDER", "ASC", "DESC", "LIMIT",
    "DISTINCT", "INSERT", "INTO", "VALUES", "CREATE", "TABLE", "INDEX",
    "UNIQUE", "CLUSTERED", "USING", "BTREE", "HASH", "ANALYZE", "EXPLAIN",
    "NULL", "TRUE", "FALSE", "IS", "IN", "LIKE", "BETWEEN", "COUNT", "SUM",
    "AVG", "MIN", "MAX", "PRIMARY", "KEY", "DROP", "CROSS", "DELETE",
    "UPDATE", "SET", "EXISTS", "VIEW", "ANALYSE", "VERBOSE", "SEARCH",
    "DIFF", "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION", "WORK",
    "CHECKPOINT",
}

SYMBOLS = [
    "<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*", "+", "-",
    "/", "%", ".", ";",
]


class LexError(Exception):
    """Raised on characters the tokenizer cannot interpret."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at offset {position})")
        self.position = position


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD | IDENT | NUMBER | STRING | SYMBOL | EOF
    value: object
    position: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}({self.value!r})"


def tokenize(sql: str) -> List[Token]:
    return list(_tokens(sql))


def _tokens(sql: str) -> Iterator[Token]:
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            nl = sql.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if ch == "'":
            value, i = _string(sql, i)
            yield Token("STRING", value, i)
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and sql[i + 1].isdigit()
        ):
            value, i = _number(sql, i)
            yield Token("NUMBER", value, i)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token("KEYWORD", upper, start)
            else:
                yield Token("IDENT", word, start)
            continue
        matched = False
        for sym in SYMBOLS:
            if sql.startswith(sym, i):
                canonical = "<>" if sym == "!=" else sym
                yield Token("SYMBOL", canonical, i)
                i += len(sym)
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {ch!r}", i)
    yield Token("EOF", None, n)


def _string(sql: str, i: int):
    out = []
    i += 1  # skip opening quote
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise LexError("unterminated string literal", i)


def _number(sql: str, i: int):
    start = i
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            nxt = sql[i + 1] if i + 1 < n else ""
            if nxt.isdigit() or (
                nxt in "+-" and i + 2 < n and sql[i + 2].isdigit()
            ):
                seen_exp = True
                i += 2 if nxt in "+-" else 1
            else:
                break
        else:
            break
    text = sql[start:i]
    if seen_dot or seen_exp:
        return float(text), i
    return int(text), i
