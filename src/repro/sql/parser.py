"""Recursive-descent SQL parser.

Expression precedence (loosest to tightest)::

    OR < AND < NOT < comparison | IS | IN | LIKE | BETWEEN < + - < * / % < unary

The parser emits engine expressions (:mod:`repro.expr.nodes`) directly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..expr.nodes import (
    AggCall,
    AggFunc,
    Arithmetic,
    ArithOp,
    Between,
    CmpOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    SubqueryExpr,
    and_,
    or_,
)
from ..types import parse_type
from .ast import (
    AnalyzeStmt,
    BeginStmt,
    CheckpointStmt,
    ColumnDef,
    CommitStmt,
    RollbackStmt,
    CreateIndexStmt,
    CreateTableStmt,
    CreateViewStmt,
    DeleteStmt,
    DropTableStmt,
    DropViewStmt,
    ExplainStmt,
    InsertStmt,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStmt,
    Statement,
    TableRef,
    UpdateStmt,
)
from .lexer import Token, tokenize

_AGG_KEYWORDS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}

_CMP_SYMBOLS = {
    "=": CmpOp.EQ,
    "<>": CmpOp.NE,
    "<": CmpOp.LT,
    "<=": CmpOp.LE,
    ">": CmpOp.GT,
    ">=": CmpOp.GE,
}


class ParseError(Exception):
    """Raised on syntax errors, with the offending token position."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} (near offset {token.position})")
        self.token = token


def parse(sql: str) -> Statement:
    """Parse one SQL statement (trailing ``;`` allowed)."""
    parser = _Parser(tokenize(sql))
    stmt = parser.statement()
    parser.accept_symbol(";")
    parser.expect_eof()
    return stmt


def parse_expression(sql: str) -> Expr:
    """Parse a standalone scalar expression (used by tests and the REPL)."""
    parser = _Parser(tokenize(sql))
    expr = parser.expression()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ---------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.current
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def at_keyword(self, *words: str) -> bool:
        return self.current.kind == "KEYWORD" and self.current.value in words

    def accept_keyword(self, *words: str) -> bool:
        if self.at_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise ParseError(f"expected {word}, got {self.current}", self.current)

    def at_symbol(self, sym: str) -> bool:
        return self.current.kind == "SYMBOL" and self.current.value == sym

    def accept_symbol(self, sym: str) -> bool:
        if self.at_symbol(sym):
            self.advance()
            return True
        return False

    def expect_symbol(self, sym: str) -> None:
        if not self.accept_symbol(sym):
            raise ParseError(
                f"expected {sym!r}, got {self.current}", self.current
            )

    def expect_ident(self) -> str:
        if self.current.kind == "IDENT":
            return str(self.advance().value)
        raise ParseError(f"expected identifier, got {self.current}", self.current)

    def expect_eof(self) -> None:
        if self.current.kind != "EOF":
            raise ParseError(f"unexpected trailing {self.current}", self.current)

    # -- statements --------------------------------------------------------------

    def statement(self) -> Statement:
        if self.at_keyword("SELECT"):
            return self.select()
        if self.at_keyword("EXPLAIN"):
            self.advance()
            return self._explain_tail()
        if self.at_keyword("CREATE"):
            return self.create()
        if self.at_keyword("DROP"):
            self.advance()
            if self.accept_keyword("VIEW"):
                return DropViewStmt(self.expect_ident())
            self.expect_keyword("TABLE")
            return DropTableStmt(self.expect_ident())
        if self.at_keyword("INSERT"):
            return self.insert()
        if self.at_keyword("DELETE"):
            self.advance()
            self.expect_keyword("FROM")
            table = self.expect_ident()
            where = None
            if self.accept_keyword("WHERE"):
                where = self.expression()
            return DeleteStmt(table, where)
        if self.at_keyword("UPDATE"):
            return self.update()
        if self.at_keyword("ANALYZE"):
            self.advance()
            if self.current.kind == "IDENT":
                return AnalyzeStmt(self.expect_ident())
            return AnalyzeStmt(None)
        if self.accept_keyword("BEGIN"):
            self.accept_keyword("TRANSACTION", "WORK")
            return BeginStmt()
        if self.accept_keyword("COMMIT"):
            self.accept_keyword("TRANSACTION", "WORK")
            return CommitStmt()
        if self.accept_keyword("ROLLBACK"):
            self.accept_keyword("TRANSACTION", "WORK")
            return RollbackStmt()
        if self.accept_keyword("CHECKPOINT"):
            return CheckpointStmt()
        raise ParseError(f"unexpected {self.current}", self.current)

    def _explain_tail(self) -> ExplainStmt:
        """EXPLAIN options: parenthesized PostgreSQL-style list
        ``EXPLAIN (ANALYZE, VERBOSE, SEARCH)`` or the bare keyword form
        ``EXPLAIN ANALYZE VERBOSE SEARCH`` — both precede the SELECT."""
        analyze = verbose = search = diff = False

        def accept_option() -> bool:
            nonlocal analyze, verbose, search, diff
            if self.accept_keyword("ANALYZE", "ANALYSE"):
                analyze = True
            elif self.accept_keyword("VERBOSE"):
                verbose = True
            elif self.accept_keyword("SEARCH"):
                search = True
            elif self.accept_keyword("DIFF"):
                diff = True
            else:
                return False
            return True

        if self.accept_symbol("("):
            first = True
            while not self.at_symbol(")"):
                if not first:
                    self.accept_symbol(",")  # separator is optional
                if not accept_option():
                    raise ParseError(
                        f"unknown EXPLAIN option {self.current}", self.current
                    )
                first = False
            self.expect_symbol(")")
        else:
            while accept_option():
                pass
        inner = self.select()
        return ExplainStmt(
            inner, analyze, verbose=verbose, search=search, diff=diff
        )

    def select(self) -> SelectStmt:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items = [self.select_item()]
        while self.accept_symbol(","):
            items.append(self.select_item())
        stmt = SelectStmt(items=items, distinct=distinct)
        if self.accept_keyword("FROM"):
            stmt.from_tables.append(self.table_ref())
            while True:
                if self.accept_symbol(","):
                    stmt.from_tables.append(self.table_ref())
                    continue
                if self.at_keyword("JOIN", "INNER", "CROSS"):
                    cross = self.accept_keyword("CROSS")
                    self.accept_keyword("INNER")
                    self.expect_keyword("JOIN")
                    table = self.table_ref()
                    condition = None
                    if not cross and self.accept_keyword("ON"):
                        condition = self.expression()
                    elif not cross:
                        raise ParseError(
                            "JOIN requires ON (use CROSS JOIN otherwise)",
                            self.current,
                        )
                    stmt.joins.append(JoinClause(table, condition))
                    continue
                break
        if self.accept_keyword("WHERE"):
            stmt.where = self.expression()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            stmt.group_by.append(self.expression())
            while self.accept_symbol(","):
                stmt.group_by.append(self.expression())
        if self.accept_keyword("HAVING"):
            stmt.having = self.expression()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            stmt.order_by.append(self.order_item())
            while self.accept_symbol(","):
                stmt.order_by.append(self.order_item())
        if self.accept_keyword("LIMIT"):
            tok = self.current
            if tok.kind != "NUMBER" or not isinstance(tok.value, int):
                raise ParseError("LIMIT expects an integer", tok)
            self.advance()
            stmt.limit = tok.value
        return stmt

    def select_item(self) -> SelectItem:
        if self.accept_symbol("*"):
            return SelectItem(None)
        # t.* : IDENT '.' '*'
        if (
            self.current.kind == "IDENT"
            and self.pos + 2 < len(self.tokens)
            and self.tokens[self.pos + 1].kind == "SYMBOL"
            and self.tokens[self.pos + 1].value == "."
            and self.tokens[self.pos + 2].kind == "SYMBOL"
            and self.tokens[self.pos + 2].value == "*"
        ):
            qualifier = self.expect_ident()
            self.advance()  # .
            self.advance()  # *
            return SelectItem(None, star_qualifier=qualifier)
        expr = self.expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "IDENT":
            alias = self.expect_ident()
        return SelectItem(expr, alias)

    def table_ref(self) -> TableRef:
        table = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "IDENT":
            alias = self.expect_ident()
        return TableRef(table, alias)

    def order_item(self) -> OrderItem:
        expr = self.expression()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return OrderItem(expr, ascending)

    def create(self) -> Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self.create_table()
        if self.accept_keyword("VIEW"):
            name = self.expect_ident()
            self.expect_keyword("AS")
            start = self.current.position
            inner = self.select()
            return CreateViewStmt(name, inner)
        clustered = self.accept_keyword("CLUSTERED")
        unique = self.accept_keyword("UNIQUE")  # parsed, treated as plain
        del unique
        if self.accept_keyword("INDEX"):
            return self.create_index(clustered)
        raise ParseError(f"expected TABLE or INDEX, got {self.current}", self.current)

    def create_table(self) -> CreateTableStmt:
        table = self.expect_ident()
        self.expect_symbol("(")
        columns = [self.column_def()]
        while self.accept_symbol(","):
            columns.append(self.column_def())
        self.expect_symbol(")")
        return CreateTableStmt(table, columns)

    def column_def(self) -> ColumnDef:
        name = self.expect_ident()
        tok = self.advance()
        if tok.kind not in ("IDENT", "KEYWORD"):
            raise ParseError(f"expected type name, got {tok}", tok)
        dtype = parse_type(str(tok.value))
        nullable = True
        primary_key = False
        while True:
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                nullable = False
                continue
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                primary_key = True
                nullable = False
                continue
            break
        return ColumnDef(name, dtype, nullable, primary_key)

    def create_index(self, clustered: bool) -> CreateIndexStmt:
        name = self.expect_ident()
        self.expect_keyword("ON")
        table = self.expect_ident()
        self.expect_symbol("(")
        columns = [self.expect_ident()]
        while self.accept_symbol(","):
            columns.append(self.expect_ident())
        self.expect_symbol(")")
        using = "btree"
        if self.accept_keyword("USING"):
            tok = self.advance()
            word = str(tok.value).lower()
            if word not in ("btree", "hash"):
                raise ParseError(f"unknown index kind {tok.value!r}", tok)
            using = word
        return CreateIndexStmt(name, table, columns, using, clustered)

    def insert(self) -> InsertStmt:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: Optional[List[str]] = None
        if self.accept_symbol("("):
            columns = [self.expect_ident()]
            while self.accept_symbol(","):
                columns.append(self.expect_ident())
            self.expect_symbol(")")
        self.expect_keyword("VALUES")
        rows: List[Tuple[Expr, ...]] = [self.value_row()]
        while self.accept_symbol(","):
            rows.append(self.value_row())
        return InsertStmt(table, columns, rows)

    def update(self) -> "UpdateStmt":
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = [self.assignment()]
        while self.accept_symbol(","):
            assignments.append(self.assignment())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expression()
        return UpdateStmt(table, assignments, where)

    def assignment(self) -> Tuple[str, Expr]:
        column = self.expect_ident()
        self.expect_symbol("=")
        return column, self.expression()

    def value_row(self) -> Tuple[Expr, ...]:
        self.expect_symbol("(")
        values = [self.expression()]
        while self.accept_symbol(","):
            values.append(self.expression())
        self.expect_symbol(")")
        return tuple(values)

    # -- expressions ------------------------------------------------------------------

    def expression(self) -> Expr:
        return self.or_expr()

    def or_expr(self) -> Expr:
        left = self.and_expr()
        while self.accept_keyword("OR"):
            left = or_(left, self.and_expr())
        return left

    def and_expr(self) -> Expr:
        left = self.not_expr()
        while self.accept_keyword("AND"):
            left = and_(left, self.not_expr())
        return left

    def not_expr(self) -> Expr:
        if self.accept_keyword("NOT"):
            inner = self.not_expr()
            if isinstance(inner, SubqueryExpr) and inner.kind == "exists":
                return SubqueryExpr(
                    "exists", None, inner.payload, not inner.negated
                )
            return Not(inner)
        if self.at_keyword("EXISTS"):
            self.advance()
            self.expect_symbol("(")
            sub = self.select()
            self.expect_symbol(")")
            return SubqueryExpr("exists", None, sub)
        return self.predicate()

    def predicate(self) -> Expr:
        left = self.additive()
        tok = self.current
        if tok.kind == "SYMBOL" and tok.value in _CMP_SYMBOLS:
            self.advance()
            right = self.additive()
            return Comparison(_CMP_SYMBOLS[str(tok.value)], left, right)
        if self.accept_keyword("IS"):
            negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return IsNull(left, negated)
        negated = False
        if self.at_keyword("NOT"):
            nxt = self.tokens[self.pos + 1]
            if nxt.kind == "KEYWORD" and nxt.value in ("IN", "LIKE", "BETWEEN"):
                self.advance()
                negated = True
        if self.accept_keyword("IN"):
            self.expect_symbol("(")
            if self.at_keyword("SELECT"):
                inner = self.select()
                self.expect_symbol(")")
                return SubqueryExpr("in", left, inner, negated)
            items = [self.expression()]
            while self.accept_symbol(","):
                items.append(self.expression())
            self.expect_symbol(")")
            return InList(left, tuple(items), negated)
        if self.accept_keyword("LIKE"):
            tok = self.current
            if tok.kind != "STRING":
                raise ParseError("LIKE expects a string literal", tok)
            self.advance()
            return Like(left, str(tok.value), negated)
        if self.accept_keyword("BETWEEN"):
            low = self.additive()
            self.expect_keyword("AND")
            high = self.additive()
            return Between(left, low, high, negated)
        return left

    def additive(self) -> Expr:
        left = self.multiplicative()
        while True:
            if self.accept_symbol("+"):
                left = Arithmetic(ArithOp.ADD, left, self.multiplicative())
            elif self.accept_symbol("-"):
                left = Arithmetic(ArithOp.SUB, left, self.multiplicative())
            else:
                return left

    def multiplicative(self) -> Expr:
        left = self.unary()
        while True:
            if self.accept_symbol("*"):
                left = Arithmetic(ArithOp.MUL, left, self.unary())
            elif self.accept_symbol("/"):
                left = Arithmetic(ArithOp.DIV, left, self.unary())
            elif self.accept_symbol("%"):
                left = Arithmetic(ArithOp.MOD, left, self.unary())
            else:
                return left

    def unary(self) -> Expr:
        if self.accept_symbol("-"):
            inner = self.unary()
            if isinstance(inner, Literal) and isinstance(
                inner.value, (int, float)
            ):
                return Literal(-inner.value)
            return Negate(inner)
        if self.accept_symbol("+"):
            return self.unary()
        return self.primary()

    def primary(self) -> Expr:
        tok = self.current
        if tok.kind == "NUMBER":
            self.advance()
            return Literal(tok.value)
        if tok.kind == "STRING":
            self.advance()
            return Literal(tok.value)
        if tok.kind == "KEYWORD":
            if tok.value == "NULL":
                self.advance()
                return Literal(None)
            if tok.value == "TRUE":
                self.advance()
                return Literal(True)
            if tok.value == "FALSE":
                self.advance()
                return Literal(False)
            if tok.value in _AGG_KEYWORDS:
                return self.agg_call()
        if tok.kind == "SYMBOL" and tok.value == "(":
            self.advance()
            if self.at_keyword("SELECT"):
                sub = self.select()
                self.expect_symbol(")")
                return SubqueryExpr("scalar", None, sub)
            inner = self.expression()
            self.expect_symbol(")")
            return inner
        if tok.kind == "IDENT":
            name = self.expect_ident()
            if self.accept_symbol("."):
                part = self.expect_ident()
                return ColumnRef(f"{name}.{part}")
            return ColumnRef(name)
        raise ParseError(f"unexpected {tok}", tok)

    def agg_call(self) -> Expr:
        func = AggFunc(str(self.advance().value))
        self.expect_symbol("(")
        if func is AggFunc.COUNT and self.accept_symbol("*"):
            self.expect_symbol(")")
            return AggCall(AggFunc.COUNT, None)
        distinct = self.accept_keyword("DISTINCT")
        arg = self.expression()
        self.expect_symbol(")")
        return AggCall(func, arg, distinct)
