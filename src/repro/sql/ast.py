"""AST node definitions for the supported SQL subset.

Statements: SELECT (with joins, WHERE, GROUP BY/HAVING, ORDER BY, LIMIT,
DISTINCT), CREATE TABLE, CREATE INDEX, INSERT ... VALUES, ANALYZE, EXPLAIN,
DROP TABLE.  Scalar expressions reuse :mod:`repro.expr.nodes` directly —
the parser emits engine expressions, there is no separate parse-tree layer
to convert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..expr.nodes import Expr
from ..types import DataType


class Statement:
    """Base class for parsed statements."""


@dataclass(frozen=True)
class TableRef:
    """A table in FROM, with optional alias: ``orders o``."""

    table: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this table is referenced by in the query."""
        return self.alias or self.table


@dataclass(frozen=True)
class JoinClause:
    """An explicit ``JOIN t ON cond`` (INNER only; CROSS has cond=None)."""

    table: TableRef
    condition: Optional[Expr]


@dataclass(frozen=True)
class SelectItem:
    """One projection item.  ``expr=None`` means ``*`` (or ``t.*`` via
    qualifier)."""

    expr: Optional[Expr]
    alias: Optional[str] = None
    star_qualifier: Optional[str] = None

    @property
    def is_star(self) -> bool:
        return self.expr is None


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass
class SelectStmt(Statement):
    items: List[SelectItem]
    from_tables: List[TableRef] = field(default_factory=list)
    joins: List[JoinClause] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class ColumnDef:
    name: str
    dtype: DataType
    nullable: bool = True
    primary_key: bool = False


@dataclass
class CreateTableStmt(Statement):
    table: str
    columns: List[ColumnDef]


@dataclass
class CreateIndexStmt(Statement):
    name: str
    table: str
    column: "str | List[str]"  # one name or an ordered composite key list
    using: str = "btree"  # btree | hash
    clustered: bool = False

    @property
    def columns(self) -> List[str]:
        if isinstance(self.column, str):
            return [self.column]
        return list(self.column)


@dataclass
class DropTableStmt(Statement):
    table: str


@dataclass
class InsertStmt(Statement):
    table: str
    columns: Optional[List[str]]  # None = schema order
    rows: List[Tuple[Expr, ...]]  # literal expressions only


@dataclass
class CreateViewStmt(Statement):
    name: str
    select: "SelectStmt"
    sql: str = ""


@dataclass
class DropViewStmt(Statement):
    name: str


@dataclass
class DeleteStmt(Statement):
    table: str
    where: Optional[Expr] = None


@dataclass
class UpdateStmt(Statement):
    table: str
    assignments: List[Tuple[str, Expr]] = field(default_factory=list)
    where: Optional[Expr] = None


@dataclass
class AnalyzeStmt(Statement):
    table: Optional[str] = None  # None = all tables


@dataclass
class BeginStmt(Statement):
    """``BEGIN [TRANSACTION | WORK]`` — open an explicit transaction."""


@dataclass
class CommitStmt(Statement):
    """``COMMIT [TRANSACTION | WORK]`` — make the open transaction durable."""


@dataclass
class RollbackStmt(Statement):
    """``ROLLBACK [TRANSACTION | WORK]`` — undo the open transaction."""


@dataclass
class CheckpointStmt(Statement):
    """``CHECKPOINT`` — snapshot the page store and truncate the WAL."""


@dataclass
class ExplainStmt(Statement):
    inner: SelectStmt
    analyze: bool = False
    verbose: bool = False  # more detail in whatever sections are shown
    search: bool = False  # append the optimizer's SearchTrace
    diff: bool = False  # diff the plan against the stored baseline
