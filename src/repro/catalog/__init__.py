"""Catalog: table/index metadata and ANALYZE statistics."""

from .catalog import (
    Catalog,
    CatalogError,
    IndexInfo,
    IndexKind,
    TableAccessStats,
    TableInfo,
)
from .stats import (
    ColumnStats,
    Histogram,
    HistogramKind,
    TableStats,
    analyze_column,
    build_equi_depth,
    build_equi_width,
)

__all__ = [
    "Catalog",
    "CatalogError",
    "IndexInfo",
    "IndexKind",
    "TableAccessStats",
    "TableInfo",
    "ColumnStats",
    "Histogram",
    "HistogramKind",
    "TableStats",
    "analyze_column",
    "build_equi_depth",
    "build_equi_width",
]
