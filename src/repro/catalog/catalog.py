"""The catalog: tables, indexes, and their statistics.

The catalog is the optimizer's entire view of the database.  Everything the
cost model and estimator consume — row counts, page counts, index heights,
clusteredness, histograms — lives here, refreshed by :meth:`Catalog.analyze`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..index import BPlusTree, HashIndex
from ..storage import BufferPool, HeapFile, ZoneMaps
from ..types import Column, Schema
from .stats import ColumnStats, HistogramKind, TableStats, analyze_column


class CatalogError(Exception):
    """Raised for unknown/duplicate tables or indexes."""


class IndexKind(enum.Enum):
    BTREE = "btree"
    HASH = "hash"


@dataclass
class IndexInfo:
    """Metadata + structure for one index.

    ``columns`` is the ordered key column list (bare names); single-column
    indexes store scalar keys, composite indexes store tuples.  ``column``
    remains the *leading* column — the one that determines sort order and
    sargability of the first key part.
    """

    name: str
    table: str
    column: str  # leading bare column name
    kind: IndexKind
    clustered: bool
    structure: Any  # BPlusTree | HashIndex
    #: pages occupied by leaf level (btree) or buckets (hash); set by ANALYZE
    leaf_pages: int = 0
    columns: Sequence[str] = ()

    def __post_init__(self):
        if not self.columns:
            self.columns = (self.column,)
        self.columns = tuple(self.columns)

    @property
    def is_composite(self) -> bool:
        return len(self.columns) > 1

    @property
    def height(self) -> int:
        if self.kind is IndexKind.BTREE:
            return self.structure.height
        return 1

    @property
    def supports_range(self) -> bool:
        return self.kind is IndexKind.BTREE


@dataclass
class TableAccessStats:
    """Cumulative access counters for one table (``sys_stat_tables``).

    Maintained by the scan operators — every sequential scan start, index
    scan start, row produced and page touched on behalf of this table is
    counted here, in the parent process (parallel workers ship their
    deltas back with the rest of their accounting).  ``pages_skipped``
    counts pages a columnar scan proved empty from zone maps and never
    fixed into the buffer pool: for any one scan,
    ``pages_hit + pages_read + pages_skipped`` equals the pages the scan
    would otherwise have touched.
    """

    seq_scans: int = 0
    index_scans: int = 0
    rows_read: int = 0
    pages_hit: int = 0
    pages_read: int = 0
    pages_skipped: int = 0

    def snapshot(self) -> Tuple[int, int, int, int, int, int]:
        return (
            self.seq_scans,
            self.index_scans,
            self.rows_read,
            self.pages_hit,
            self.pages_read,
            self.pages_skipped,
        )

    def add(self, delta: Sequence[int]) -> None:
        seq, idx, rows, hits, reads, skipped = delta
        self.seq_scans += seq
        self.index_scans += idx
        self.rows_read += rows
        self.pages_hit += hits
        self.pages_read += reads
        self.pages_skipped += skipped

    def delta(
        self, earlier: Sequence[int]
    ) -> Tuple[int, int, int, int, int, int]:
        now = self.snapshot()
        return tuple(n - e for n, e in zip(now, earlier))  # type: ignore[return-value]


@dataclass
class TableInfo:
    """Metadata + storage for one table."""

    name: str
    schema: Schema
    heap: HeapFile
    indexes: Dict[str, IndexInfo] = field(default_factory=dict)  # by column
    stats: Optional[TableStats] = None
    access: TableAccessStats = field(default_factory=TableAccessStats)
    #: page-level (min, max) bounds, built by ANALYZE, widened on writes
    zones: Optional[ZoneMaps] = None

    @property
    def num_rows(self) -> int:
        return self.heap.num_rows

    @property
    def num_pages(self) -> int:
        return self.heap.num_pages

    def index_on(self, column: str) -> Optional[IndexInfo]:
        return self.indexes.get(column)

    def column_stats(self, column: str) -> Optional[ColumnStats]:
        if self.stats is None:
            return None
        return self.stats.column(column)


#: a system-table provider: () -> (schema, rows), snapshotted on reference
SystemTableProvider = Callable[[], Tuple[Schema, List[Tuple[Any, ...]]]]


class Catalog:
    """All tables and indexes of one database instance."""

    def __init__(self, pool: BufferPool):
        self.pool = pool
        self._tables: Dict[str, TableInfo] = {}
        self._system_tables: Dict[str, SystemTableProvider] = {}
        #: transaction manager whose hooks new heaps report mutations to
        #: (attached by the engine; None = no transaction support)
        self.txn = None

    # -- tables ----------------------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> TableInfo:
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        qualified = schema.renamed(name) if any(
            c.table != name for c in schema
        ) else schema
        heap = HeapFile(self.pool, qualified, name)
        heap.hooks = self.txn
        info = TableInfo(name, qualified, heap)
        self._tables[key] = info
        return info

    def drop_table(self, name: str) -> None:
        info = self.table(name)
        self.pool.discard_file(info.heap.file_id)
        self.pool.disk.drop_file(info.heap.file_id)
        for index in info.indexes.values():
            self.pool.discard_file(index.structure.file_id)
            self.pool.disk.drop_file(index.structure.file_id)
        del self._tables[name.lower()]

    def table(self, name: str) -> TableInfo:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no such table: {name}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> List[TableInfo]:
        return list(self._tables.values())

    # -- system (virtual) tables -------------------------------------------------

    def register_system_table(
        self, name: str, provider: SystemTableProvider
    ) -> None:
        """Register a read-only virtual table.

        System tables are *providers*, not storage: referencing one in a
        query makes the engine call the provider, snapshot the returned
        rows into a transient heap table of the same name, and plan the
        statement against that — so every planner and executor feature
        (filters, joins, ORDER BY, parallelism) composes with them, and
        the optimizer prices them like the tiny freshly-ANALYZEd scans
        they are.  A user table of the same name shadows the provider.
        """
        key = name.lower()
        if key in self._system_tables:
            raise CatalogError(f"system table {name!r} already registered")
        self._system_tables[key] = provider

    def is_system_table(self, name: str) -> bool:
        """True when *name* resolves to a provider (and no user table
        shadows it)."""
        key = name.lower()
        return key in self._system_tables and key not in self._tables

    def system_table_names(self) -> List[str]:
        return sorted(self._system_tables)

    def system_table_rows(
        self, name: str
    ) -> Tuple[Schema, List[Tuple[Any, ...]]]:
        """Snapshot one system table: its schema and current rows."""
        try:
            provider = self._system_tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no such system table: {name}") from None
        return provider()

    # -- rows ---------------------------------------------------------------------

    def insert_rows(self, name: str, rows: Sequence[Sequence[Any]]) -> int:
        """Insert rows, maintaining every index on the table."""
        info = self.table(name)
        count = 0
        for row in rows:
            rid = info.heap.insert(row)
            if info.zones is not None:
                info.zones.widen(rid[0], info.schema.validate_row(row))
            if info.indexes:
                stored = info.heap.fetch(rid)
                for index in info.indexes.values():
                    positions = [
                        info.schema.index_of(c) for c in index.columns
                    ]
                    value = self._index_key(stored, positions)
                    if value is None and index.kind is IndexKind.HASH:
                        continue  # hash indexes do not store NULLs
                    index.structure.insert(value, rid)
            count += 1
        return count

    # -- indexes ---------------------------------------------------------------------

    def create_index(
        self,
        index_name: str,
        table: str,
        column,
        kind: IndexKind = IndexKind.BTREE,
        clustered: bool = False,
    ) -> IndexInfo:
        """Build an index over existing rows.

        *column* is one bare column name or an ordered list of names (a
        composite B+-tree key; hash indexes are single-column).
        ``clustered=True`` records that the heap is physically ordered by
        the leading column; the cost model prices clustered range scans as
        sequential page runs.  One index per *leading* column, and one
        clustered index per table.
        """
        info = self.table(table)
        columns: List[str] = (
            [column] if isinstance(column, str) else list(column)
        )
        if not columns:
            raise CatalogError("index needs at least one column")
        leading = columns[0]
        cols: List[Column] = [info.schema.column(c) for c in columns]
        if leading in info.indexes:
            raise CatalogError(f"index already exists on {table}.{leading}")
        if clustered and any(ix.clustered for ix in info.indexes.values()):
            raise CatalogError(f"table {table} already has a clustered index")
        if kind is IndexKind.HASH and len(columns) > 1:
            raise CatalogError("hash indexes are single-column")
        if kind is IndexKind.BTREE:
            dtype = (
                cols[0].dtype
                if len(cols) == 1
                else tuple(c.dtype for c in cols)
            )
            structure: Any = BPlusTree(self.pool, dtype, index_name)
        else:
            buckets = max(16, info.num_pages * 2)
            structure = HashIndex(self.pool, cols[0].dtype, index_name, buckets)
        positions = [info.schema.index_of(c) for c in columns]
        for rid, row in info.heap.scan():
            value = self._index_key(row, positions)
            if value is None and kind is IndexKind.HASH:
                continue
            structure.insert(value, rid)
        index = IndexInfo(
            index_name, info.name, leading, kind, clustered, structure,
            columns=tuple(columns),
        )
        index.leaf_pages = self._measure_leaf_pages(index)
        info.indexes[leading] = index
        return index

    @staticmethod
    def _index_key(row: Sequence[Any], positions: Sequence[int]) -> Any:
        if len(positions) == 1:
            return row[positions[0]]
        return tuple(row[p] for p in positions)

    def _measure_leaf_pages(self, index: IndexInfo) -> int:
        if index.kind is IndexKind.BTREE:
            if index.structure.num_entries == 0:
                return 1
            return index.structure.num_leaf_pages()
        return index.structure.num_pages

    # -- statistics ----------------------------------------------------------------------

    def analyze(
        self,
        name: str,
        histogram: HistogramKind = HistogramKind.EQUI_DEPTH,
        num_buckets: int = 32,
        num_mcvs: int = 8,
    ) -> TableStats:
        """Scan a table once and compute statistics for every column —
        including fresh page-level zone maps (the scan is page-aware, so
        the (min, max) bounds come for free)."""
        info = self.table(name)
        columns: Dict[str, List[Any]] = {c.name: [] for c in info.schema}
        zones = ZoneMaps(len(info.schema))
        num_rows = 0
        for (page_no, _slot), row in info.heap.scan():
            num_rows += 1
            zones.widen(page_no, row)
            for c, v in zip(info.schema, row):
                columns[c.name].append(v)
        zones._page(max(0, info.num_pages - 1))  # cover trailing empty pages
        info.zones = zones
        stats = TableStats(num_rows=num_rows, num_pages=info.num_pages)
        for c in info.schema:
            stats.columns[c.name] = analyze_column(
                c.dtype,
                columns[c.name],
                histogram=histogram,
                num_buckets=num_buckets,
                num_mcvs=num_mcvs,
            )
        info.stats = stats
        for index in info.indexes.values():
            index.leaf_pages = self._measure_leaf_pages(index)
        return stats

    def analyze_all(self, **kwargs: Any) -> None:
        for info in self.tables():
            self.analyze(info.name, **kwargs)
