"""Column statistics: the raw material of selectivity estimation.

The estimator (``repro.optimizer.estimate``) supports three fidelity tiers,
which experiment E6 compares:

1. **Uniform** — row count, distinct count, min/max only (the 1977 default:
   selectivity of ``a = c`` is ``1/V(a)``, ranges interpolate linearly).
2. **Histogram** — equi-width or equi-depth buckets over the value
   distribution.
3. **Histogram + MCV** — most-common values priced exactly, histogram over
   the remainder.

All numeric math happens on the real-line mapping of values
(:func:`repro.types.value_to_float`), so TEXT and DATE columns participate
in range estimation too.
"""

from __future__ import annotations

import enum
from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..types import DataType, value_to_float


class HistogramKind(enum.Enum):
    NONE = "none"
    EQUI_WIDTH = "equi_width"
    EQUI_DEPTH = "equi_depth"


@dataclass
class Histogram:
    """Bucketed distribution over the real-line mapping of a column.

    ``bounds`` has ``len(counts) + 1`` entries; bucket *i* covers
    ``[bounds[i], bounds[i+1])`` except the last, which is closed.
    ``distinct`` holds per-bucket distinct-value counts (for equality
    estimates inside a bucket).
    """

    kind: HistogramKind
    bounds: List[float]
    counts: List[int]
    distinct: List[int]

    @property
    def total(self) -> int:
        return sum(self.counts)

    def fraction_below(self, x: float, inclusive: bool) -> float:
        """Fraction of values ``< x`` (or ``<= x``).

        Within a bucket, linear interpolation — the classic uniform-within-
        bucket assumption.
        """
        total = self.total
        if total == 0:
            return 0.0
        if x < self.bounds[0]:
            return 0.0
        if x > self.bounds[-1]:
            return 1.0
        acc = 0
        for i, count in enumerate(self.counts):
            lo, hi = self.bounds[i], self.bounds[i + 1]
            if x >= hi and not (i == len(self.counts) - 1 and x == hi):
                acc += count
                continue
            width = hi - lo
            if width <= 0:
                # Degenerate single-value bucket.
                frac = 1.0 if (inclusive and x >= hi) else 0.0
            else:
                frac = (x - lo) / width
                if inclusive:
                    # add roughly one distinct value's worth for equality
                    d = max(1, self.distinct[i])
                    frac = min(1.0, frac + 1.0 / (2 * d))
            acc += count * frac
            break
        return min(1.0, acc / total)

    def fraction_between(
        self,
        low: Optional[float],
        high: Optional[float],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        hi_frac = 1.0 if high is None else self.fraction_below(high, high_inclusive)
        lo_frac = (
            0.0 if low is None else self.fraction_below(low, not low_inclusive)
        )
        return max(0.0, hi_frac - lo_frac)

    def fraction_equal(self, x: float) -> float:
        """Estimated fraction of values equal to *x*."""
        total = self.total
        if total == 0 or x < self.bounds[0] or x > self.bounds[-1]:
            return 0.0
        if self.kind is HistogramKind.EQUI_WIDTH:
            lo, hi = self.bounds[0], self.bounds[-1]
            width = (hi - lo) / len(self.counts) if hi > lo else 0.0
            i = (
                min(len(self.counts) - 1, int((x - lo) / width))
                if width > 0
                else 0
            )
        else:
            # Equi-depth buckets end at their last (possibly duplicated)
            # value: a value equal to a bucket's upper bound belongs to the
            # bucket that ends there, not the one that starts there.
            i = max(0, min(len(self.counts) - 1, bisect_left(self.bounds, x) - 1))
        d = max(1, self.distinct[i])
        return (self.counts[i] / d) / total


def build_equi_width(
    values: Sequence[float], num_buckets: int
) -> Optional[Histogram]:
    if not values:
        return None
    lo, hi = min(values), max(values)
    if lo == hi:
        return Histogram(
            HistogramKind.EQUI_WIDTH, [lo, hi], [len(values)], [1]
        )
    bounds = [lo + (hi - lo) * i / num_buckets for i in range(num_buckets + 1)]
    bounds[-1] = hi
    counts = [0] * num_buckets
    uniq: List[set] = [set() for _ in range(num_buckets)]
    width = (hi - lo) / num_buckets
    for v in values:
        i = min(num_buckets - 1, int((v - lo) / width))
        counts[i] += 1
        uniq[i].add(v)
    return Histogram(
        HistogramKind.EQUI_WIDTH, bounds, counts, [len(u) for u in uniq]
    )


def build_equi_depth(
    values: Sequence[float], num_buckets: int
) -> Optional[Histogram]:
    if not values:
        return None
    ordered = sorted(values)
    n = len(ordered)
    num_buckets = min(num_buckets, n)
    bounds = [ordered[0]]
    counts: List[int] = []
    distinct: List[int] = []
    start = 0
    for b in range(num_buckets):
        end = ((b + 1) * n) // num_buckets
        if end <= start:
            continue
        # extend to include duplicates of the boundary value so bucket
        # boundaries always fall between distinct values
        while end < n and ordered[end] == ordered[end - 1]:
            end += 1
        chunk = ordered[start:end]
        bounds.append(chunk[-1])
        counts.append(len(chunk))
        distinct.append(len(set(chunk)))
        start = end
        if start >= n:
            break
    return Histogram(HistogramKind.EQUI_DEPTH, bounds, counts, distinct)


@dataclass
class ColumnStats:
    """Statistics for one column, produced by ANALYZE."""

    dtype: DataType
    num_rows: int
    null_count: int
    num_distinct: int
    min_value: Optional[Any] = None
    max_value: Optional[Any] = None
    #: real-line images of min/max
    min_float: Optional[float] = None
    max_float: Optional[float] = None
    histogram: Optional[Histogram] = None
    #: most-common values: (value, real-line image, frequency)
    mcvs: List[Tuple[Any, float, int]] = field(default_factory=list)

    @property
    def null_fraction(self) -> float:
        return self.null_count / self.num_rows if self.num_rows else 0.0

    @property
    def nonnull_rows(self) -> int:
        return self.num_rows - self.null_count

    def mcv_fraction(self) -> float:
        """Fraction of non-null rows covered by the MCV list."""
        if not self.mcvs or not self.nonnull_rows:
            return 0.0
        return sum(f for _, _, f in self.mcvs) / self.nonnull_rows

    def mcv_lookup(self, value: Any) -> Optional[float]:
        """Exact frequency fraction if *value* is an MCV, else None."""
        if not self.nonnull_rows:
            return None
        for v, _, freq in self.mcvs:
            if v == value:
                return freq / self.nonnull_rows
        return None


def analyze_column(
    dtype: DataType,
    values: Sequence[Any],
    histogram: HistogramKind = HistogramKind.EQUI_DEPTH,
    num_buckets: int = 32,
    num_mcvs: int = 8,
) -> ColumnStats:
    """Compute full statistics for a column's value list."""
    num_rows = len(values)
    nonnull = [v for v in values if v is not None]
    null_count = num_rows - len(nonnull)
    if not nonnull:
        return ColumnStats(dtype, num_rows, null_count, 0)
    counter = Counter(nonnull)
    num_distinct = len(counter)
    min_value = min(nonnull)
    max_value = max(nonnull)
    stats = ColumnStats(
        dtype=dtype,
        num_rows=num_rows,
        null_count=null_count,
        num_distinct=num_distinct,
        min_value=min_value,
        max_value=max_value,
        min_float=value_to_float(min_value, dtype),
        max_float=value_to_float(max_value, dtype),
    )
    # MCVs: only values meaningfully more frequent than average qualify.
    if num_mcvs > 0 and num_distinct > 1:
        avg_freq = len(nonnull) / num_distinct
        common = [
            (v, c) for v, c in counter.most_common(num_mcvs) if c > 1.5 * avg_freq
        ]
        stats.mcvs = [(v, value_to_float(v, dtype), c) for v, c in common]
    mcv_set = {v for v, _, _ in stats.mcvs}
    rest = [value_to_float(v, dtype) for v in nonnull if v not in mcv_set]
    if histogram is HistogramKind.EQUI_WIDTH:
        stats.histogram = build_equi_width(rest, num_buckets)
    elif histogram is HistogramKind.EQUI_DEPTH:
        stats.histogram = build_equi_depth(rest, num_buckets)
    return stats


@dataclass
class TableStats:
    """Statistics for one table."""

    num_rows: int
    num_pages: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)
