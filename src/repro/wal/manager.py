"""Transaction manager: txn lifecycle, undo, table locks, WAL hooks.

This is the seam between the engine and durability.  It works with or
without a WAL writer attached:

* **Always** (even for a purely in-memory database): transaction ids,
  per-transaction *undo* logs (logical inverse operations applied on
  ROLLBACK, with index maintenance), strict table write locks held to
  transaction end, shared statement-scoped read locks, and the
  no-steal eviction guard.
* **With a writer** (``Database(data_dir=...)``): every heap mutation is
  also appended to the WAL as a physiological redo record, COMMIT
  fsyncs (group-batched), and dirty pages are tracked with the LSN of
  their latest record so the buffer pool can enforce WAL-before-data on
  writeback.

Concurrency model (documented in docs/RECOVERY.md): writers take a
table-exclusive lock at first touch and hold it to COMMIT/ROLLBACK
(strict two-phase locking), so a transaction's uncommitted rows are
never read *or overwritten* by another writer.  Readers do **not**
lock: every mutation hook also hangs the row's pre-image on the
:class:`~repro.wal.mvcc.VersionStore`, and a SELECT runs against a
:class:`~repro.wal.mvcc.Snapshot` (commit-timestamp read view) — see
``mvcc.py``.  Statement snapshots give read-committed, transaction
snapshots give repeatable reads, and readers never block on writers.
Lock waits (writer/writer only) are bounded by ``lock_timeout`` — a
timeout aborts the waiting statement rather than deadlocking.

For fuzzy checkpoints the manager also tracks, per dirty page, the LSN
that *first* dirtied it since it was last written back (its recLSN):
the checkpoint's redo start point is the minimum recLSN over pages
still dirty after the checkpoint's flush pass.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..obs.trace import trace_span
from .log import WalWriter
from .mvcc import Snapshot, VersionStore
from .records import WalRecordType

PageId = Tuple[int, int]


class TxnError(Exception):
    """Transaction protocol violations (nested BEGIN, DDL in txn, ...)."""


class LockTimeout(TxnError):
    """A table lock could not be acquired within ``lock_timeout``."""


@dataclass
class Transaction:
    """One transaction's book-keeping."""

    id: int
    session_id: int = 0
    explicit: bool = False
    #: logical inverse ops, applied in reverse on rollback
    undo: List[Tuple[Any, ...]] = field(default_factory=list)
    #: table -> number of writes this txn made (applied to the engine's
    #: write epochs at COMMIT, discarded at ROLLBACK)
    pending_epochs: Dict[str, int] = field(default_factory=dict)
    locked_tables: Set[str] = field(default_factory=set)
    #: True once this txn has appended at least one WAL record
    logged: bool = False
    #: read view pinned at the txn's first SELECT (repeatable reads);
    #: released when the transaction resolves
    snapshot: Optional[Snapshot] = None
    #: commit timestamp assigned by the VersionStore (None: wrote nothing)
    commit_ts: Optional[int] = None


class _TableLock:
    """A reader-writer lock with writer owner tracking.

    Carries its own cumulative statistics (acquisitions, contended
    acquisitions, total wait) so ``sys_stat_locks`` can serve a per-table
    contention view without a second registry.
    """

    __slots__ = (
        "cond",
        "readers",
        "writer",
        "writer_waiting",
        "acquisitions",
        "contended",
        "wait_seconds",
    )

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.readers = 0
        self.writer: Optional[int] = None  # owning txn id
        self.writer_waiting = 0
        self.acquisitions = 0
        self.contended = 0
        self.wait_seconds = 0.0


class TxnManager:
    """Transaction lifecycle + locking + (optional) WAL logging."""

    def __init__(
        self,
        writer: Optional[WalWriter] = None,
        waits=None,
        lock_timeout: float = 10.0,
    ):
        self.writer = writer
        self.waits = waits
        self.lock_timeout = lock_timeout
        self.versions = VersionStore()
        self._next_txn_id = 1
        self._id_lock = threading.Lock()
        self._tls = threading.local()
        self._locks: Dict[str, _TableLock] = {}
        self._locks_guard = threading.Lock()
        #: dirty page -> (owning active txn id, LSN of its latest record);
        #: the buffer pool's no-steal guard consults this
        self._page_txn: Dict[PageId, Tuple[int, int]] = {}
        #: dirty page -> LSN that first dirtied it since last writeback
        #: (ARIES recLSN; cleared by the buffer pool's clean hook)
        self._page_rec_lsn: Dict[PageId, int] = {}
        self._page_guard = threading.Lock()
        #: transactions begun but not yet finished (checkpoint ATT)
        self._active: Dict[int, float] = {}

    # -- txn lifecycle --------------------------------------------------------

    @property
    def next_txn_id(self) -> int:
        return self._next_txn_id

    def set_next_txn_id(self, value: int) -> None:
        with self._id_lock:
            self._next_txn_id = max(self._next_txn_id, value)

    def begin(self, session_id: int = 0, explicit: bool = False) -> Transaction:
        with self._id_lock:
            txn_id = self._next_txn_id
            self._next_txn_id += 1
            self._active[txn_id] = time.monotonic()
        return Transaction(txn_id, session_id, explicit)

    def current(self) -> Optional[Transaction]:
        """The transaction active on *this thread*, if any."""
        return getattr(self._tls, "txn", None)

    def activate(self, txn: Optional[Transaction]) -> "_Activation":
        """Context manager binding *txn* to the current thread, so heap
        mutations on this thread log/undo under it."""
        return _Activation(self._tls, txn)

    def commit(self, txn: Transaction) -> None:
        """Make *txn* durable (WAL COMMIT + fsync) and release its locks.

        The commit timestamp is stamped *before* the table locks drop,
        so the next writer of any row this txn touched is guaranteed a
        later timestamp — version chains stay in commit order.
        """
        if self.writer is not None and txn.logged:
            lsn = self.writer.append(WalRecordType.COMMIT, txn.id)
            self.writer.flush_to(lsn)
        txn.commit_ts = self.versions.commit(txn.id)
        self._finish(txn)

    def rollback(self, txn: Transaction, catalog) -> None:
        """Undo every change *txn* made, then release its locks.

        Undo runs with no transaction bound to the thread, so the
        compensating heap mutations are neither WAL-logged nor re-undone
        — recovery never redoes an uncommitted transaction, so its
        compensations must not be redone either.
        """
        with self.activate(None):
            for op in reversed(txn.undo):
                self._undo_one(catalog, op)
        txn.undo.clear()
        txn.pending_epochs.clear()
        if self.writer is not None and txn.logged:
            self.writer.append(WalRecordType.ABORT, txn.id)
        self.versions.rollback(txn.id)
        self._finish(txn)

    def _finish(self, txn: Transaction) -> None:
        if txn.snapshot is not None:
            self.versions.release(txn.snapshot)
            txn.snapshot = None
        with self._page_guard:
            doomed = [
                pid
                for pid, (owner, _) in self._page_txn.items()
                if owner == txn.id
            ]
            for pid in doomed:
                del self._page_txn[pid]
        for table in sorted(txn.locked_tables):
            self._release_write(txn, table)
        txn.locked_tables.clear()
        with self._id_lock:
            self._active.pop(txn.id, None)

    # -- undo -----------------------------------------------------------------

    @staticmethod
    def _index_key(info, row, index) -> Any:
        positions = [info.schema.index_of(c) for c in index.columns]
        if len(positions) == 1:
            return row[positions[0]]
        return tuple(row[p] for p in positions)

    def _undo_one(self, catalog, op: Tuple[Any, ...]) -> None:
        from ..storage.record import deserialize_row

        kind, table = op[0], op[1]
        if not catalog.has_table(table):
            return  # table dropped after the write (DDL autocommits)
        info = catalog.table(table)
        if kind == "insert":
            _, _, rid = op
            row = info.heap.fetch(rid)
            if row is None:
                return
            info.heap.delete(rid)
            self._index_remove(info, row, rid)
        elif kind == "delete":
            _, _, rid, old_bytes = op
            row = deserialize_row(info.schema, old_bytes)
            new_rid = info.heap.restore(rid, row)
            if info.zones is not None:
                info.zones.widen(new_rid[0], row)
            self._index_add(info, row, new_rid)
        elif kind == "update":
            # an in-place update: the current (new) row sits at *rid*.
            # Tombstone + restore keeps the RID stable even when the old
            # record is longer than the shrunk slot footprint.
            _, _, rid, old_bytes = op
            old_row = deserialize_row(info.schema, old_bytes)
            new_row = info.heap.fetch(rid)
            if new_row is not None:
                self._index_remove(info, new_row, rid)
                info.heap.delete(rid)
            restored = info.heap.restore(rid, old_row)
            if info.zones is not None:
                info.zones.widen(restored[0], old_row)
            self._index_add(info, old_row, restored)
        else:  # pragma: no cover - defensive
            raise TxnError(f"unknown undo op {kind!r}")

    def _index_add(self, info, row, rid) -> None:
        from ..catalog import IndexKind

        for index in info.indexes.values():
            value = self._index_key(info, row, index)
            if value is None and index.kind is IndexKind.HASH:
                continue
            index.structure.insert(value, rid)

    def _index_remove(self, info, row, rid) -> None:
        from ..catalog import IndexKind

        for index in info.indexes.values():
            value = self._index_key(info, row, index)
            if value is None and index.kind is IndexKind.HASH:
                continue
            index.structure.delete(value, rid)

    # -- mutation hooks (called by HeapFile under an active transaction) ------
    #
    # Each hook does two jobs: record the logical *undo* op on the active
    # transaction (needed with or without a WAL — rollback is always
    # supported), and, when a writer is attached, append the physiological
    # *redo* record.  With no transaction bound to the thread (transient
    # tables, recovery replay, undo itself) the hooks are no-ops.

    def _ensure_begin(self, txn: Transaction) -> None:
        if not txn.logged:
            txn.logged = True
            self.writer.append(WalRecordType.BEGIN, txn.id)

    def _note_page(self, txn: Transaction, page_id: PageId, lsn: int) -> None:
        with self._page_guard:
            self._page_txn[page_id] = (txn.id, lsn)
            self._page_rec_lsn.setdefault(page_id, lsn)

    def on_alloc(self, table: str, page_id: PageId) -> None:
        txn = self.current()
        if txn is None:
            return
        # no undo: page allocation is physical and non-transactional
        # (rollback tombstones rows but keeps the page)
        if self.writer is not None:
            self._ensure_begin(txn)
            lsn = self.writer.append(
                WalRecordType.ALLOC, txn.id, table, page_id[1]
            )
            self._note_page(txn, page_id, lsn)

    def on_insert(
        self, table: str, page_id: PageId, slot_no: int, record: bytes
    ) -> None:
        txn = self.current()
        if txn is None:
            return
        txn.undo.append(("insert", table, (page_id[1], slot_no)))
        self.versions.record(table, (page_id[1], slot_no), txn.id, None)
        if self.writer is not None:
            self._ensure_begin(txn)
            lsn = self.writer.append(
                WalRecordType.INSERT, txn.id, table, page_id[1], slot_no, record
            )
            self._note_page(txn, page_id, lsn)

    def on_update(
        self,
        table: str,
        page_id: PageId,
        slot_no: int,
        record: bytes,
        old_record: bytes,
    ) -> None:
        txn = self.current()
        if txn is None:
            return
        txn.undo.append(("update", table, (page_id[1], slot_no), old_record))
        self.versions.record(table, (page_id[1], slot_no), txn.id, old_record)
        if self.writer is not None:
            self._ensure_begin(txn)
            lsn = self.writer.append(
                WalRecordType.UPDATE, txn.id, table, page_id[1], slot_no, record
            )
            self._note_page(txn, page_id, lsn)

    def on_delete(
        self, table: str, page_id: PageId, slot_no: int, old_record: bytes
    ) -> None:
        txn = self.current()
        if txn is None:
            return
        txn.undo.append(("delete", table, (page_id[1], slot_no), old_record))
        self.versions.record(table, (page_id[1], slot_no), txn.id, old_record)
        if self.writer is not None:
            self._ensure_begin(txn)
            lsn = self.writer.append(
                WalRecordType.DELETE, txn.id, table, page_id[1], slot_no
            )
            self._note_page(txn, page_id, lsn)

    def log_ddl(self, payload: bytes) -> None:
        """Log one autocommitted DDL statement under the current txn."""
        txn = self.current()
        if txn is None or self.writer is None:
            return
        self._ensure_begin(txn)
        self.writer.append(WalRecordType.DDL, txn.id, payload=payload)

    # -- buffer-pool integration (no-steal, WAL-before-data) ------------------

    def may_evict(self, page_id: PageId) -> bool:
        """No-steal: a page dirtied by an *active* transaction must stay
        in the pool until that transaction resolves."""
        with self._page_guard:
            return page_id not in self._page_txn

    def before_page_write(self, page_id: PageId) -> None:
        """WAL-before-data: the log must be durable up to the LSN of the
        page's latest record before the page image goes down."""
        if self.writer is None:
            return
        with self._page_guard:
            entry = self._page_txn.get(page_id)
        if entry is not None:
            self.writer.flush_to(entry[1])

    def page_clean(self, page_id: PageId) -> None:
        """The buffer pool wrote this page back: its recLSN resets (the
        next record to touch it starts a fresh dirty interval)."""
        with self._page_guard:
            self._page_rec_lsn.pop(page_id, None)

    # -- fuzzy-checkpoint bookkeeping ----------------------------------------

    def active_txn_ids(self) -> List[int]:
        """Transactions begun but not yet resolved (checkpoint ATT)."""
        with self._id_lock:
            return sorted(self._active)

    def dirty_page_table(self) -> Dict[PageId, int]:
        """page -> recLSN for every page dirtied since its last writeback."""
        with self._page_guard:
            return dict(self._page_rec_lsn)

    def min_rec_lsn(self) -> Optional[int]:
        """The redo start point: no record below this LSN is needed to
        rebuild any page still dirty in the pool."""
        with self._page_guard:
            if not self._page_rec_lsn:
                return None
            return min(self._page_rec_lsn.values())

    # -- table locks ----------------------------------------------------------

    def _lock_for(self, table: str) -> _TableLock:
        key = table.lower()
        with self._locks_guard:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = _TableLock()
            return lock

    def _timed_wait(self, lock: _TableLock, ready, table: str) -> float:
        """Wait on *lock.cond* until ``ready()``; record contended time.
        Returns the seconds spent waiting."""
        deadline = time.monotonic() + self.lock_timeout
        start = time.monotonic()
        try:
            while not ready():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise LockTimeout(
                        f"timeout waiting for lock on table {table!r} "
                        f"({self.lock_timeout:.0f}s)"
                    )
                lock.cond.wait(min(remaining, 0.5))
        finally:
            waited = time.monotonic() - start
            if self.waits is not None and waited > 0.0005:
                self.waits.record("lock.table", waited)
        return waited

    def lock_table(self, txn: Transaction, table: str) -> None:
        """Acquire *table* exclusively for *txn* (held until txn end)."""
        key = table.lower()
        if key in txn.locked_tables:
            return
        lock = self._lock_for(key)
        with trace_span("lock.acquire") as sp:
            sp.set_attr("table", key)
            sp.set_attr("mode", "exclusive")
            with lock.cond:
                lock.writer_waiting += 1
                contended = lock.writer is not None or lock.readers > 0
                try:
                    waited = self._timed_wait(
                        lock,
                        lambda: lock.writer is None and lock.readers == 0,
                        table,
                    )
                    lock.writer = txn.id
                    lock.acquisitions += 1
                    lock.wait_seconds += waited
                    if contended:
                        lock.contended += 1
                        sp.add("wait_ms", waited * 1000.0)
                finally:
                    lock.writer_waiting -= 1
        txn.locked_tables.add(key)

    def _release_write(self, txn: Transaction, table: str) -> None:
        lock = self._lock_for(table)
        with lock.cond:
            if lock.writer == txn.id:
                lock.writer = None
                lock.cond.notify_all()

    def lock_tables_shared(
        self, tables, txn: Optional[Transaction] = None
    ) -> List[str]:
        """Statement-scoped shared locks for a reader.  Returns the keys
        to pass to :meth:`unlock_shared`.  A reader inside a transaction
        that holds the write lock passes through (it reads its own
        uncommitted rows); pass *txn* explicitly for readers that run
        without thread activation (the SELECT path)."""
        if txn is None:
            txn = self.current()
        acquired: List[str] = []
        try:
            for table in sorted({t.lower() for t in tables}):
                lock = self._lock_for(table)
                with trace_span("lock.acquire") as sp:
                    sp.set_attr("table", table)
                    sp.set_attr("mode", "shared")
                    with lock.cond:
                        if txn is not None and lock.writer == txn.id:
                            continue  # our own write lock covers the read
                        contended = lock.writer is not None
                        waited = self._timed_wait(
                            lock, lambda lk=lock: lk.writer is None, table
                        )
                        lock.readers += 1
                        lock.acquisitions += 1
                        lock.wait_seconds += waited
                        if contended:
                            lock.contended += 1
                            sp.add("wait_ms", waited * 1000.0)
                acquired.append(table)
        except BaseException:
            self.unlock_shared(acquired)
            raise
        return acquired

    def unlock_shared(self, acquired: List[str]) -> None:
        for table in acquired:
            lock = self._lock_for(table)
            with lock.cond:
                lock.readers -= 1
                if lock.readers == 0:
                    lock.cond.notify_all()

    def lock_rows(self) -> List[Dict[str, Any]]:
        """Point-in-time view of every table lock ever touched, for
        ``sys_stat_locks``: current holder/waiters plus cumulative
        acquisition and contention statistics."""
        with self._locks_guard:
            items = sorted(self._locks.items())
        rows: List[Dict[str, Any]] = []
        for table, lock in items:
            with lock.cond:
                rows.append(
                    {
                        "table": table,
                        "holder_txn": lock.writer or 0,
                        "readers": lock.readers,
                        "writers_waiting": lock.writer_waiting,
                        "acquisitions": lock.acquisitions,
                        "contended": lock.contended,
                        "wait_ms": lock.wait_seconds * 1000.0,
                    }
                )
        return rows


class _Activation:
    """Bind/unbind a transaction to the current thread."""

    __slots__ = ("_tls", "_txn", "_prev")

    def __init__(self, tls, txn: Optional[Transaction]):
        self._tls = tls
        self._txn = txn
        self._prev: Optional[Transaction] = None

    def __enter__(self) -> Optional[Transaction]:
        self._prev = getattr(self._tls, "txn", None)
        self._tls.txn = self._txn
        return self._txn

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tls.txn = self._prev
