"""Checkpoints: an atomic on-disk snapshot of the whole page store.

The simulated disk lives in memory, so durability is *snapshot + log*:
a checkpoint writes every table's heap pages plus the catalog metadata
(schemas, index definitions, views, LSN/txn counters) to
``<data_dir>/checkpoint.bin``, and the WAL carries everything since.
Recovery = load the last installed checkpoint, redo the WAL's committed
suffix.

The file is installed atomically: written to a temp name, fsynced,
``rename(2)``d over the old one.  A crash mid-checkpoint therefore leaves
the *previous* checkpoint + the full WAL — strictly recoverable, just a
longer redo.  Because the WAL is only truncated *after* the install, a
crash between install and truncate leaves records the snapshot already
contains; redo skips them by LSN (`meta["last_lsn"]`).

Layout::

    [8B magic "RPCKPT1\\n"][u32 meta_len][meta JSON][pages...][u32 crc32]

where ``pages`` is, per table in meta order, ``num_pages * page_size``
raw bytes, and the CRC covers everything before it.

Failpoint site: ``checkpoint.page`` — one hit per page image written.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Dict, List, Optional, Tuple

from ..qa import faults

CHECKPOINT_FILE = "checkpoint.bin"
_MAGIC = b"RPCKPT1\n"


class CheckpointError(Exception):
    """Raised on unreadable/corrupt checkpoint files."""


def checkpoint_path(data_dir: str) -> str:
    return os.path.join(data_dir, CHECKPOINT_FILE)


def collect_meta(
    db,
    last_lsn: int,
    next_txn_id: int,
    redo_lsn: Optional[int] = None,
    active_txns: Optional[List[int]] = None,
) -> Dict[str, Any]:
    """The catalog metadata one checkpoint carries (JSON-safe)."""
    tables: List[Dict[str, Any]] = []
    for info in db.catalog.tables():
        tables.append(
            {
                "name": info.name,
                "columns": [
                    [c.name, c.dtype.name, c.nullable] for c in info.schema
                ],
                "pages": info.heap.num_pages,
                "num_rows": info.heap.num_rows,
                "analyzed": info.stats is not None,
                "indexes": [
                    {
                        "name": ix.name,
                        "columns": list(ix.columns),
                        "kind": ix.kind.value,
                        "clustered": ix.clustered,
                    }
                    for ix in info.indexes.values()
                ],
            }
        )
    meta = {
        "version": 2,
        "page_size": db.disk.page_size,
        "last_lsn": last_lsn,
        "next_txn_id": next_txn_id,
        "tables": tables,
        "views": [
            {"name": v.name, "sql": v.sql} for v in db.views.values()
        ],
    }
    if redo_lsn is not None:
        # fuzzy checkpoint: the snapshot's page images may be *stale* for
        # pages the flush pass had to skip (no-steal); redo must start at
        # the minimum recLSN of those pages, not at last_lsn + 1
        meta["redo_lsn"] = redo_lsn
    if active_txns:
        meta["active_txns"] = list(active_txns)
    return meta


def write_checkpoint(
    db,
    data_dir: str,
    last_lsn: int,
    next_txn_id: int,
    redo_lsn: Optional[int] = None,
    active_txns: Optional[List[int]] = None,
) -> str:
    """Snapshot *db* into ``checkpoint.bin`` (atomic install).

    The caller must have flushed the buffer pool's *committed* dirty
    pages first.  Quiesced callers guarantee no transaction is in
    flight, so the images are current and redo starts after
    ``last_lsn``.  Fuzzy callers may leave transaction-owned pages
    unflushed (no-steal keeps uncommitted bytes out of the snapshot
    either way); they pass ``redo_lsn`` — the minimum recLSN over pages
    still dirty — so recovery's redo pass starts early enough to rebuild
    the stale images.
    """
    meta = collect_meta(db, last_lsn, next_txn_id, redo_lsn, active_txns)
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    final = checkpoint_path(data_dir)
    tmp = final + ".tmp"
    crc = 0
    with open(tmp, "wb") as f:
        def emit(chunk: bytes) -> None:
            nonlocal crc
            crc = zlib.crc32(chunk, crc)
            f.write(chunk)

        emit(_MAGIC)
        emit(struct.pack(">I", len(meta_bytes)))
        emit(meta_bytes)
        for table in meta["tables"]:
            info = db.catalog.table(table["name"])
            for page in db.disk.page_images(info.heap.file_id):
                action = faults.FAILPOINTS.hit("checkpoint.page")
                if action == "partial":
                    f.write(bytes(page)[: db.disk.page_size // 2])
                    f.flush()
                    os.fsync(f.fileno())
                    faults.crash()
                emit(bytes(page))
                if action == "after":
                    f.flush()
                    os.fsync(f.fileno())
                    faults.crash()
        f.write(struct.pack(">I", crc))
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, final)
    _fsync_dir(data_dir)
    return final


def load_checkpoint(
    data_dir: str,
) -> Optional[Tuple[Dict[str, Any], Dict[str, List[bytes]]]]:
    """Load the installed checkpoint, or ``None`` if none exists.

    Returns ``(meta, {table_name: [page bytes, ...]})``.  A stale
    ``.tmp`` from a crashed checkpoint is ignored (and cleaned up).
    """
    tmp = checkpoint_path(data_dir) + ".tmp"
    if os.path.exists(tmp):
        os.unlink(tmp)  # a checkpoint that never installed
    path = checkpoint_path(data_dir)
    if not os.path.exists(path):
        return None
    with open(path, "rb") as f:
        buf = f.read()
    if len(buf) < len(_MAGIC) + 8 or buf[: len(_MAGIC)] != _MAGIC:
        raise CheckpointError("bad checkpoint magic")
    if zlib.crc32(buf[:-4]) != struct.unpack(">I", buf[-4:])[0]:
        raise CheckpointError("checkpoint CRC mismatch")
    pos = len(_MAGIC)
    (meta_len,) = struct.unpack_from(">I", buf, pos)
    pos += 4
    meta = json.loads(buf[pos : pos + meta_len].decode("utf-8"))
    pos += meta_len
    page_size = meta["page_size"]
    pages: Dict[str, List[bytes]] = {}
    for table in meta["tables"]:
        images = []
        for _ in range(table["pages"]):
            images.append(buf[pos : pos + page_size])
            pos += page_size
        pages[table["name"]] = images
    return meta, pages


def _fsync_dir(path: str) -> None:
    """Make a rename durable (best effort on platforms that allow it)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
