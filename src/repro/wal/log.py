"""The write-ahead log file: append, group-commit fsync, tail scan.

One :class:`WalWriter` owns ``<data_dir>/wal.log``.  Appends go through a
single lock that assigns dense LSNs; durability is a separate step so
commits can *batch*: every committer appends its COMMIT record, then asks
``flush_to(lsn)`` — whichever committer grabs the flush lock first fsyncs
the whole appended tail, and the ones behind it find their LSN already
durable and skip the fsync entirely.  ``fsyncs``/``appends`` counters make
the batching measurable (bench E18).

Failpoint sites (see :mod:`repro.qa.faults`):

* ``wal.append`` — one hit per record append.  ``partial`` mode writes a
  prefix of the encoded record, fsyncs it (so the torn bytes really reach
  the file) and dies: recovery must discard exactly this tail.
* ``wal.fsync`` — one hit per physical fsync.
"""

from __future__ import annotations

import os
import threading
import time
from typing import List, Optional, Tuple

from ..obs.trace import trace_span
from ..qa import faults
from .records import (
    WalRecord,
    WalRecordType,
    encode_record,
    valid_prefix,
)

WAL_FILE = "wal.log"


class WalWriter:
    """Append-only writer over one WAL file (thread-safe)."""

    def __init__(
        self,
        path: str,
        start_lsn: int = 1,
        waits=None,
        sync: bool = True,
    ):
        self.path = path
        #: LSN the next append will receive
        self.next_lsn = start_lsn
        #: highest LSN known durable (flushed + fsynced)
        self.flushed_lsn = start_lsn - 1
        #: wait-event registry for ``wal.write`` / ``wal.fsync`` (optional)
        self.waits = waits
        #: ``sync=False`` skips fsync (bench ablation; commits may be lost)
        self.sync = sync
        self.appends = 0
        self.fsyncs = 0
        self._append_lock = threading.Lock()
        self._flush_lock = threading.Lock()
        self._file = open(path, "ab")
        #: highest LSN appended (may be ahead of flushed_lsn)
        self._appended_lsn = start_lsn - 1

    # -- appending ------------------------------------------------------------

    def append(
        self,
        rec_type: WalRecordType,
        txn_id: int,
        table: str = "",
        page_no: int = -1,
        slot_no: int = -1,
        payload: bytes = b"",
    ) -> int:
        """Append one record; returns its LSN.  Not yet durable."""
        with trace_span("wal.append", merge=True), self._append_lock:
            lsn = self.next_lsn
            self.next_lsn += 1
            data = encode_record(
                WalRecord(lsn, rec_type, txn_id, table, page_no, slot_no, payload)
            )
            action = faults.FAILPOINTS.hit("wal.append")
            if action == "partial":
                # A torn write: half the frame reaches disk, then the
                # plug is pulled.  fsync first so the torn bytes are
                # really there for recovery to trip over.
                self._file.write(data[: max(1, len(data) // 2)])
                self._file.flush()
                os.fsync(self._file.fileno())
                faults.crash()
            start = time.perf_counter() if self.waits is not None else 0.0
            self._file.write(data)
            if self.waits is not None:
                self.waits.record("wal.write", time.perf_counter() - start)
            self.appends += 1
            self._appended_lsn = lsn
            if action == "after":
                self._file.flush()
                os.fsync(self._file.fileno())
                faults.crash()
            return lsn

    # -- durability -----------------------------------------------------------

    def flush_to(self, lsn: int) -> None:
        """Make every record up to *lsn* durable (group-commit batching).

        Committers that arrive while another commit's fsync is in flight
        block on the flush lock, then discover their LSN already covered
        and return without a second fsync.
        """
        if self.flushed_lsn >= lsn:
            return
        with self._flush_lock:
            if self.flushed_lsn >= lsn:
                return  # a concurrent committer's fsync covered us
            with self._append_lock:
                target = self._appended_lsn
                self._file.flush()
            action = faults.FAILPOINTS.hit("wal.fsync")
            if action == "before":  # pragma: no cover - hit() exits first
                faults.crash()
            start = time.perf_counter() if self.waits is not None else 0.0
            if self.sync:
                # One wal.fsync span per real fsync: the skip paths above
                # (already covered by a concurrent committer) record
                # nothing, so span counts reconcile exactly with the
                # ``fsyncs`` counter even under group commit.
                with trace_span("wal.fsync") as sp:
                    os.fsync(self._file.fileno())
                    self.fsyncs += 1
                    sp.add("covered_lsn", float(target))
            if self.waits is not None:
                self.waits.record("wal.fsync", time.perf_counter() - start)
            self.flushed_lsn = target
            if action == "after":
                faults.crash()

    def flush_all(self) -> None:
        with self._append_lock:
            appended = self._appended_lsn
        self.flush_to(appended)

    def close(self) -> None:
        try:
            self.flush_all()
        finally:
            self._file.close()

    # -- maintenance ----------------------------------------------------------

    def reset(self, start_lsn: int) -> None:
        """Truncate the log (post-checkpoint) and restart LSNs."""
        with self._append_lock, self._flush_lock:
            self._file.close()
            self._file = open(self.path, "wb")
            self._file.flush()
            os.fsync(self._file.fileno())
            self.next_lsn = start_lsn
            self._appended_lsn = start_lsn - 1
            self.flushed_lsn = start_lsn - 1

    def retain_from(self, redo_lsn: int) -> int:
        """Drop the log prefix below *redo_lsn* (fuzzy checkpoint GC).

        Unlike :meth:`reset`, records at or above *redo_lsn* survive —
        they may belong to transactions still in flight or to dirty
        pages the checkpoint could not flush — and the LSN counters keep
        counting.  The rewrite is atomic (tmp + fsync + rename), so a
        crash at any point leaves either the old log or the new one.
        Returns the number of records dropped.
        """
        with self._append_lock, self._flush_lock:
            self._file.flush()
            if self.sync:
                os.fsync(self._file.fileno())
            with open(self.path, "rb") as f:
                buf = f.read()
            records, _ = valid_prefix(buf)
            kept = [rec for rec in records if rec.lsn >= redo_lsn]
            dropped = len(records) - len(kept)
            if dropped == 0:
                return 0
            tmp = self.path + ".tmp"
            with open(tmp, "wb") as f:
                for rec in kept:
                    f.write(encode_record(rec))
                f.flush()
                os.fsync(f.fileno())
            self._file.close()
            os.replace(tmp, self.path)
            self._file = open(self.path, "ab")
            return dropped


def read_wal(path: str) -> Tuple[List[WalRecord], int, int]:
    """Read the valid prefix of the WAL at *path*.

    Returns ``(records, valid_bytes, torn_bytes)`` where ``torn_bytes``
    is the length of the discarded tail (0 for a clean log).
    """
    if not os.path.exists(path):
        return [], 0, 0
    with open(path, "rb") as f:
        buf = f.read()
    records, end = valid_prefix(buf)
    return records, end, len(buf) - end


def truncate_wal(path: str, valid_bytes: int) -> None:
    """Discard the torn tail in place (called once by recovery)."""
    with open(path, "r+b") as f:
        f.truncate(valid_bytes)
        f.flush()
        os.fsync(f.fileno())


def committed_txns(records) -> set:
    """Transaction ids with a durable COMMIT record in *records*."""
    return {
        rec.txn_id
        for rec in records
        if rec.type is WalRecordType.COMMIT
    }


def open_wal(
    data_dir: str, start_lsn: int, waits=None, sync: bool = True
) -> WalWriter:
    return WalWriter(
        os.path.join(data_dir, WAL_FILE), start_lsn, waits=waits, sync=sync
    )
