"""Crash recovery: checkpoint load + committed-suffix WAL redo.

``recover(db, data_dir)`` rebuilds a database's state on open:

1. **Load the checkpoint** (if one exists): recreate every table from the
   snapshot metadata and install its raw page images; remember which
   tables were ANALYZEd and which indexes existed.
2. **Scan the WAL's valid prefix** and truncate the torn tail in place
   (a crash mid-append leaves a short or CRC-broken final frame; the
   record it belonged to was never acknowledged, so discarding it is
   correct, not lossy).
3. **Redo pass** over records with ``lsn >= checkpoint.redo_lsn`` (a
   fuzzy checkpoint's redo point is the minimum recLSN over pages it
   could not flush; quiesced/legacy checkpoints have none and default to
   ``last_lsn + 1``):
   * page ALLOCs replay for *every* transaction — allocation is physical
     and survives rollback, and later committed records address pages by
     number, so the page space must match the original timeline;
   * INSERT/UPDATE/DELETE replay only for transactions with a durable
     COMMIT record, verbatim at their logged (page, slot);
   * DDL records (committed only) re-execute logically: CREATE/DROP
     TABLE and VIEW apply immediately (later records may reference
     them); CREATE INDEX and ANALYZE are *deferred*, because replayed
     heap mutations do not maintain index structures or statistics.
4. **Rebuild**: recount rows, build every surviving index definition
   from the recovered heaps, re-ANALYZE every table that had statistics.

No undo pass exists: uncommitted transactions' records are simply never
redone.  This stays sound under *fuzzy* checkpoints because the flush
pass honours no-steal — a page owned by an in-flight transaction is
skipped, so snapshots never contain uncommitted data; the price is that
skipped pages are stale in the snapshot, which is exactly what the
early ``redo_lsn`` plus idempotent replay repairs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Set

from ..sql import (
    AnalyzeStmt,
    CreateIndexStmt,
    CreateTableStmt,
    CreateViewStmt,
    DropTableStmt,
    DropViewStmt,
    parse,
)
from ..types import Column, DataType, Schema
from .checkpoint import load_checkpoint
from .log import WAL_FILE, committed_txns, read_wal, truncate_wal
from .records import WalRecordType


class RecoveryError(Exception):
    """Raised when the log and the recovered state contradict each other."""


@dataclass
class RecoveryReport:
    """What one recovery pass found and did."""

    checkpoint_found: bool = False
    tables_restored: int = 0
    records_scanned: int = 0
    records_applied: int = 0
    committed_txns: int = 0
    uncommitted_txns: int = 0
    torn_bytes: int = 0
    indexes_rebuilt: int = 0
    tables_analyzed: int = 0
    next_lsn: int = 1
    next_txn_id: int = 1
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"checkpoint={'yes' if self.checkpoint_found else 'no'} "
            f"tables={self.tables_restored} wal_records={self.records_scanned} "
            f"applied={self.records_applied} committed={self.committed_txns} "
            f"discarded_txns={self.uncommitted_txns} "
            f"torn_bytes={self.torn_bytes} indexes={self.indexes_rebuilt}"
        )


def _schema_from_meta(name: str, columns: List[List[Any]]) -> Schema:
    return Schema(
        Column(cname, DataType[dtype], name, nullable)
        for cname, dtype, nullable in columns
    )


def recover(db, data_dir: str) -> RecoveryReport:
    """Rebuild *db* (freshly constructed, empty) from *data_dir*."""
    from ..engine.views import ViewDef

    report = RecoveryReport()
    #: index definitions to build after replay: (name, table, columns,
    #: kind value, clustered)
    pending_indexes: List[Dict[str, Any]] = []
    analyzed: Set[str] = set()

    base_lsn = 0
    redo_lsn = 1
    loaded = load_checkpoint(data_dir)
    if loaded is not None:
        meta, pages = loaded
        report.checkpoint_found = True
        base_lsn = int(meta["last_lsn"])
        # quiesced/legacy checkpoints carry no redo_lsn: their images are
        # fully current, so redo starts right after the snapshot
        redo_lsn = int(meta.get("redo_lsn", base_lsn + 1))
        report.next_txn_id = int(meta["next_txn_id"])
        if meta["page_size"] != db.disk.page_size:
            raise RecoveryError(
                f"checkpoint page size {meta['page_size']} != "
                f"database page size {db.disk.page_size}"
            )
        for t in meta["tables"]:
            schema = _schema_from_meta(t["name"], t["columns"])
            info = db.catalog.create_table(t["name"], schema)
            db.disk.restore_pages(info.heap.file_id, pages[t["name"]])
            if t.get("analyzed"):
                analyzed.add(t["name"].lower())
            for ix in t["indexes"]:
                pending_indexes.append({**ix, "table": t["name"]})
        for v in meta.get("views", []):
            stmt = parse(v["sql"])
            if isinstance(stmt, CreateViewStmt):
                db.views[v["name"].lower()] = ViewDef(
                    v["name"], stmt.select, v["sql"]
                )
        report.tables_restored = len(meta["tables"])

    wal_path = os.path.join(data_dir, WAL_FILE)
    records, valid_bytes, torn = read_wal(wal_path)
    if torn:
        truncate_wal(wal_path, valid_bytes)
        report.torn_bytes = torn
        report.notes.append(f"discarded {torn} torn tail bytes")
    report.records_scanned = len(records)

    committed = committed_txns(records)
    seen_txns = {r.txn_id for r in records if r.lsn >= redo_lsn and r.txn_id}
    report.committed_txns = len(committed & seen_txns)
    report.uncommitted_txns = len(seen_txns - committed)

    catalog = db.catalog
    for rec in records:
        if rec.lsn < redo_lsn:
            continue  # the checkpoint snapshot already contains this
        if rec.type is WalRecordType.ALLOC:
            if catalog.has_table(rec.table):
                catalog.table(rec.table).heap.replay_alloc(rec.page_no)
                report.records_applied += 1
            continue
        if rec.type is WalRecordType.DDL:
            if rec.txn_id in committed:
                _replay_ddl(db, rec.payload, pending_indexes, analyzed)
                report.records_applied += 1
            continue
        if not rec.is_physiological:
            continue  # BEGIN/COMMIT/ABORT/CHECKPOINT markers
        if rec.txn_id not in committed:
            continue
        if not catalog.has_table(rec.table):
            continue  # table dropped later in the log
        heap = catalog.table(rec.table).heap
        if rec.type is WalRecordType.INSERT:
            heap.replay_insert(rec.page_no, rec.slot_no, rec.payload)
        elif rec.type is WalRecordType.UPDATE:
            heap.replay_update(rec.page_no, rec.slot_no, rec.payload)
        elif rec.type is WalRecordType.DELETE:
            heap.replay_delete(rec.page_no, rec.slot_no)
        report.records_applied += 1

    # -- rebuild derived state -------------------------------------------------
    for info in catalog.tables():
        info.heap.recount()
    from ..catalog import IndexKind

    for ix in pending_indexes:
        table = ix["table"]
        if not catalog.has_table(table):
            continue
        columns = list(ix["columns"])
        info = catalog.table(table)
        if columns[0] in info.indexes:
            continue  # already built (duplicate definition in the log)
        catalog.create_index(
            ix["name"],
            table,
            columns if len(columns) > 1 else columns[0],
            IndexKind(ix["kind"]),
            bool(ix["clustered"]),
        )
        report.indexes_rebuilt += 1
    for name in sorted(analyzed):
        if catalog.has_table(name):
            catalog.analyze(name)
            report.tables_analyzed += 1

    max_lsn = records[-1].lsn if records else 0
    report.next_lsn = max(base_lsn, max_lsn) + 1
    max_txn = max((r.txn_id for r in records), default=0)
    report.next_txn_id = max(report.next_txn_id, max_txn + 1)
    return report


def _replay_ddl(
    db,
    payload: bytes,
    pending_indexes: List[Dict[str, Any]],
    analyzed: Set[str],
) -> None:
    """Logically re-apply one committed DDL record."""
    from ..engine.views import ViewDef

    sql = json.loads(payload.decode("utf-8"))["sql"]
    stmt = parse(sql)
    catalog = db.catalog
    if isinstance(stmt, CreateTableStmt):
        if catalog.has_table(stmt.table):
            return  # fuzzy redo: the snapshot already carries this table
        schema = Schema(
            Column(c.name, c.dtype, stmt.table, c.nullable)
            for c in stmt.columns
        )
        catalog.create_table(stmt.table, schema)
        for c in stmt.columns:
            if c.primary_key:
                pending_indexes.append(
                    {
                        "name": f"pk_{stmt.table}_{c.name}",
                        "table": stmt.table,
                        "columns": [c.name],
                        "kind": "btree",
                        "clustered": True,
                    }
                )
    elif isinstance(stmt, DropTableStmt):
        if catalog.has_table(stmt.table):
            catalog.drop_table(stmt.table)
        key = stmt.table.lower()
        pending_indexes[:] = [
            ix for ix in pending_indexes if ix["table"].lower() != key
        ]
        analyzed.discard(key)
    elif isinstance(stmt, CreateIndexStmt):
        pending_indexes.append(
            {
                "name": stmt.name,
                "table": stmt.table,
                "columns": stmt.columns,
                "kind": "btree" if stmt.using == "btree" else "hash",
                "clustered": stmt.clustered,
            }
        )
    elif isinstance(stmt, CreateViewStmt):
        db.views[stmt.name.lower()] = ViewDef(stmt.name, stmt.select, sql)
    elif isinstance(stmt, DropViewStmt):
        db.views.pop(stmt.name.lower(), None)
    elif isinstance(stmt, AnalyzeStmt):
        if stmt.table is None:
            analyzed.update(info.name.lower() for info in catalog.tables())
        else:
            analyzed.add(stmt.table.lower())
    else:
        raise RecoveryError(f"unexpected DDL record: {sql!r}")
