"""Multi-version concurrency control for readers.

The heap mutates in place (strict 2PL serializes *writers*), so versions
are kept as **pre-images**: whenever a transaction first touches a row,
the row's prior state is hung off an in-memory version chain keyed by
``(table, rid)``.  A reader acquires a :class:`Snapshot` — a commit
timestamp ``ts`` — and reconstructs, per chain, the newest state whose
writer committed at or before ``ts`` (or its own uncommitted state).
SELECTs therefore never take table locks and never block on writers;
DML keeps strict two-phase locking unchanged.

Chain shape (newest writer first)::

    chain[0].pre  = row state before the *latest* writer
    chain[i].pre  = row state before writer i  (= state after writer i+1)

``chain[i].commit_ts`` is the commit timestamp of writer *i*, or ``None``
while that writer is still active.  Because writers to one table hold the
table-exclusive lock until commit, chain order equals commit-timestamp
order, which makes both visibility and pruning a single forward walk.

Pruning: a committed version visible to *every* active snapshot (and to
all future ones, since timestamps only grow) will never be dereferenced
— the visibility walk stops *before* reading its ``pre`` — so it and
everything older can be dropped.  With no snapshots open, chains
collapse to at most one uncommitted entry.

All structures are guarded by one leaf lock; no callbacks run under it.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

RID = Tuple[int, int]


class _Version:
    """Pre-image of one row, recorded by one writer transaction."""

    __slots__ = ("txn_id", "commit_ts", "pre")

    def __init__(self, txn_id: int, pre: Optional[bytes]):
        self.txn_id = txn_id
        #: stamped at commit; ``None`` while the writer is active
        self.commit_ts: Optional[int] = None
        #: serialized row state *before* the writer touched it;
        #: ``None`` means the row did not exist (the writer inserted it)
        self.pre = pre

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Version(txn={self.txn_id}, ts={self.commit_ts})"


class Snapshot:
    """A frozen read view: everything committed at acquisition time.

    ``ts`` is the commit timestamp of the latest committed transaction;
    ``txn_id`` makes the owning transaction's *own* uncommitted writes
    visible (read-your-own-writes).  Statement snapshots pass
    ``txn_id=0`` (no transaction ever has id 0).
    """

    __slots__ = ("ts", "txn_id", "store", "acquired_at")

    def __init__(self, ts: int, txn_id: int, store: "VersionStore"):
        self.ts = ts
        self.txn_id = txn_id
        self.store = store
        self.acquired_at: float = 0.0

    def visible(self, version: _Version) -> bool:
        if version.txn_id == self.txn_id:
            return True
        ts = version.commit_ts
        return ts is not None and ts <= self.ts

    def scan_overlay(self, info) -> Optional[
        Tuple[Dict[RID, Optional[Tuple]], Dict[RID, Tuple]]
    ]:
        """What this snapshot must see differently from the live heap.

        Returns ``None`` when the heap already reflects this snapshot for
        every row of *info*'s table (the overwhelmingly common fast
        path), else ``(replace, ghosts)``:

        * ``replace[rid]`` — the row to yield *instead of* the heap row at
          ``rid`` (``None``: suppress it — the row did not exist yet)
        * ``ghosts[rid]`` — rows deleted from the heap after the snapshot
          began, to be resurrected into the scan

        Decoding happens here (with *info*'s schema), outside the store
        lock, so scans deal only in row tuples.
        """
        raw = self.store.raw_overlay(info.name, self)
        if raw is None:
            return None
        from ..storage.record import deserialize_row

        replace: Dict[RID, Optional[Tuple]] = {}
        ghosts: Dict[RID, Tuple] = {}
        heap = info.heap
        for rid, pre in raw.items():
            row = None if pre is None else deserialize_row(info.schema, pre)
            if heap.fetch(rid) is not None:
                replace[rid] = row
            elif row is not None:
                ghosts[rid] = row
        if not replace and not ghosts:
            return None
        return replace, ghosts


class VersionStore:
    """Version chains + snapshot registry + commit-timestamp authority."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: table -> rid -> chain (newest writer first)
        self._chains: Dict[str, Dict[RID, List[_Version]]] = {}
        #: active writer txn -> chains it contributed to
        self._by_txn: Dict[int, List[Tuple[str, RID]]] = {}
        #: commit timestamp of the latest committed *writing* transaction
        self.last_commit_ts = 0
        #: open snapshots: id(snapshot) -> ts
        self._snapshots: Dict[int, int] = {}
        self.versions_recorded = 0
        self.versions_pruned = 0
        self.snapshots_taken = 0

    # -- recording (called from TxnManager mutation hooks) --------------------

    def record(
        self, table: str, rid: RID, txn_id: int, pre: Optional[bytes]
    ) -> None:
        """Hang the pre-image of *rid* onto its chain for writer *txn_id*.

        Only the *first* touch per (txn, rid) matters: later writes by the
        same transaction overwrite its own uncommitted state, which no
        snapshot can ever need.
        """
        key = table.lower()
        with self._lock:
            chain = self._chains.setdefault(key, {}).setdefault(rid, [])
            if chain and chain[0].txn_id == txn_id and chain[0].commit_ts is None:
                return
            chain.insert(0, _Version(txn_id, pre))
            self._by_txn.setdefault(txn_id, []).append((key, rid))
            self.versions_recorded += 1

    # -- txn resolution -------------------------------------------------------

    def commit(self, txn_id: int) -> Optional[int]:
        """Stamp *txn_id*'s versions with the next commit timestamp.

        Returns the timestamp, or ``None`` for transactions that wrote
        nothing (read-only transactions don't advance the clock).
        """
        with self._lock:
            touched = self._by_txn.pop(txn_id, None)
            if not touched:
                return None
            self.last_commit_ts += 1
            ts = self.last_commit_ts
            for key, rid in touched:
                chain = self._chains.get(key, {}).get(rid)
                if not chain:
                    continue
                for version in chain:
                    if version.txn_id == txn_id and version.commit_ts is None:
                        version.commit_ts = ts
                self._prune_chain(key, rid)
            return ts

    def rollback(self, txn_id: int) -> None:
        """Drop *txn_id*'s uncommitted versions (the heap was undone)."""
        with self._lock:
            touched = self._by_txn.pop(txn_id, None)
            if not touched:
                return
            for key, rid in touched:
                table = self._chains.get(key)
                if table is None:
                    continue
                chain = table.get(rid)
                if not chain:
                    continue
                chain[:] = [
                    v
                    for v in chain
                    if not (v.txn_id == txn_id and v.commit_ts is None)
                ]
                if not chain:
                    del table[rid]

    # -- snapshots ------------------------------------------------------------

    def acquire(self, txn_id: int = 0) -> Snapshot:
        with self._lock:
            snap = Snapshot(self.last_commit_ts, txn_id, self)
            snap.acquired_at = time.monotonic()
            self._snapshots[id(snap)] = snap.ts
            self.snapshots_taken += 1
            return snap

    def release(self, snap: Optional[Snapshot]) -> None:
        if snap is None:
            return
        with self._lock:
            was_min = self._snapshots.pop(id(snap), None)
            if was_min is None:
                return
            floor = min(self._snapshots.values(), default=None)
            if floor is None or floor > was_min:
                self._prune_all()

    def oldest_snapshot_ts(self) -> Optional[int]:
        with self._lock:
            return min(self._snapshots.values(), default=None)

    def active_snapshots(self) -> int:
        with self._lock:
            return len(self._snapshots)

    # -- visibility -----------------------------------------------------------

    def raw_overlay(
        self, table: str, snap: Snapshot
    ) -> Optional[Dict[RID, Optional[bytes]]]:
        """Per-rid serialized state *snap* must see instead of the heap.

        ``None`` (no entry needed anywhere) is the fast path: every chain
        head is visible to *snap*, so the live heap is already correct.
        """
        key = table.lower()
        with self._lock:
            chains = self._chains.get(key)
            if not chains:
                return None
            out: Dict[RID, Optional[bytes]] = {}
            for rid, chain in chains.items():
                image: Optional[bytes] = None
                rewound = False
                for version in chain:
                    if snap.visible(version):
                        break
                    image = version.pre
                    rewound = True
                if rewound:
                    out[rid] = image
            return out or None

    # -- pruning --------------------------------------------------------------

    def _prune_chain(self, key: str, rid: RID) -> None:
        """Drop the chain suffix no current or future snapshot can read.

        Must hold ``_lock``.  The boundary is the newest committed
        version visible to the oldest open snapshot: its ``pre`` (and
        everything older) is only read by walks that pass *through* it,
        which visibility makes impossible.
        """
        table = self._chains.get(key)
        if table is None:
            return
        chain = table.get(rid)
        if not chain:
            return
        floor = min(self._snapshots.values(), default=None)
        for i, version in enumerate(chain):
            ts = version.commit_ts
            if ts is not None and (floor is None or ts <= floor):
                dropped = len(chain) - i
                del chain[i:]
                self.versions_pruned += dropped
                break
        if not chain:
            del table[rid]
            if not table:
                del self._chains[key]

    def _prune_all(self) -> None:
        for key in list(self._chains):
            for rid in list(self._chains.get(key, ())):
                self._prune_chain(key, rid)

    # -- maintenance ----------------------------------------------------------

    def drop_table(self, table: str) -> None:
        """Forget every version of a dropped table (a later table with
        the same name must not inherit stale chains)."""
        key = table.lower()
        with self._lock:
            gone = self._chains.pop(key, None)
            if gone:
                self.versions_pruned += sum(len(c) for c in gone.values())
            for touched in self._by_txn.values():
                touched[:] = [(k, r) for k, r in touched if k != key]

    def live_versions(self) -> int:
        with self._lock:
            return sum(
                len(chain)
                for table in self._chains.values()
                for chain in table.values()
            )

    def tables_with_versions(self) -> Iterable[str]:
        with self._lock:
            return list(self._chains)
