"""WAL record catalog and binary codec.

Every record is a self-describing, self-verifying frame::

    [u32 body_len][u32 crc32(body)][body]
    body = [u64 lsn][u8 type][u64 txn_id]
           [u16 table_len][table utf-8][i32 page_no][i32 slot_no]
           [payload bytes...]

The CRC covers the whole body, so recovery can tell a torn tail (short
frame or bad CRC — stop, truncate) from corruption mid-log (bad CRC with
valid frames after it — impossible for an append-only log that is only
ever torn at the end, so recovery treats the first bad frame as the
tail).  LSNs are assigned densely by the writer; the checkpoint stores
the last LSN it covers, and redo skips records at or below it.

Record types (the *physiological* ones carry a page/slot address and a
byte payload that redo applies verbatim):

==============  ==========================================================
``BEGIN``       transaction start (debugging aid; redo keys off COMMIT)
``COMMIT``      transaction end — the durability point (fsynced)
``ABORT``       transaction rolled back (its records are never redone)
``ALLOC``       heap page *page_no* of *table* allocated + formatted
``INSERT``      record bytes placed at (*page_no*, *slot_no*) of *table*
``UPDATE``      record bytes overwritten in place at (*page_no*, *slot_no*)
``DELETE``      slot (*page_no*, *slot_no*) of *table* tombstoned
``DDL``         JSON payload: a logically-replayed statement (CREATE/DROP
                TABLE, CREATE INDEX, CREATE/DROP VIEW, ANALYZE)
``CHECKPOINT``  JSON payload: marker written after a quiesced checkpoint
                install (legacy; kept so old logs stay readable)

``CHECKPOINT_BEGIN``  JSON payload: the fuzzy checkpoint's view of the
                world as it starts — active-transaction table (ATT) and
                dirty-page table (DPT, page -> recLSN)
``CHECKPOINT_END``    JSON payload: the fuzzy checkpoint installed; carries
                ``redo_lsn`` (where recovery's redo pass starts) and the
                ``last_lsn`` the snapshot covers
==============  ==========================================================
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

_FRAME = struct.Struct(">II")  # body_len, crc
_BODY = struct.Struct(">QBQH")  # lsn, type, txn_id, table_len
_ADDR = struct.Struct(">ii")  # page_no, slot_no (-1 = not applicable)

FRAME_HEADER_SIZE = _FRAME.size

#: hard cap on one record's body; a frame claiming more is torn/corrupt
MAX_BODY_LEN = 16 * 1024 * 1024


class WalCodecError(Exception):
    """Raised on malformed record frames (bad CRC, short body, bad type)."""


class WalRecordType(enum.IntEnum):
    BEGIN = 1
    COMMIT = 2
    ABORT = 3
    ALLOC = 4
    INSERT = 5
    UPDATE = 6
    DELETE = 7
    DDL = 8
    CHECKPOINT = 9
    CHECKPOINT_BEGIN = 10
    CHECKPOINT_END = 11


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL record."""

    lsn: int
    type: WalRecordType
    txn_id: int
    table: str = ""
    page_no: int = -1
    slot_no: int = -1
    payload: bytes = b""

    @property
    def is_physiological(self) -> bool:
        return self.type in (
            WalRecordType.ALLOC,
            WalRecordType.INSERT,
            WalRecordType.UPDATE,
            WalRecordType.DELETE,
        )


def encode_record(rec: WalRecord) -> bytes:
    """Serialize *rec* to one framed, CRC-protected byte string."""
    table = rec.table.encode("utf-8")
    body = (
        _BODY.pack(rec.lsn, int(rec.type), rec.txn_id, len(table))
        + table
        + _ADDR.pack(rec.page_no, rec.slot_no)
        + rec.payload
    )
    return _FRAME.pack(len(body), zlib.crc32(body)) + body


def decode_record(buf: bytes, offset: int = 0) -> Tuple[WalRecord, int]:
    """Decode one record at *offset*; returns ``(record, next_offset)``.

    Raises :class:`WalCodecError` on a short frame, CRC mismatch or
    unknown type — all of which recovery treats as the torn tail.
    """
    end = len(buf)
    if offset + FRAME_HEADER_SIZE > end:
        raise WalCodecError("short frame header")
    body_len, crc = _FRAME.unpack_from(buf, offset)
    if body_len < _BODY.size + _ADDR.size or body_len > MAX_BODY_LEN:
        raise WalCodecError(f"implausible body length {body_len}")
    body_start = offset + FRAME_HEADER_SIZE
    if body_start + body_len > end:
        raise WalCodecError("short body")
    body = bytes(buf[body_start : body_start + body_len])
    if zlib.crc32(body) != crc:
        raise WalCodecError("CRC mismatch")
    lsn, type_code, txn_id, table_len = _BODY.unpack_from(body, 0)
    try:
        rec_type = WalRecordType(type_code)
    except ValueError:
        raise WalCodecError(f"unknown record type {type_code}") from None
    pos = _BODY.size
    if pos + table_len + _ADDR.size > body_len:
        raise WalCodecError("table name overruns body")
    table = body[pos : pos + table_len].decode("utf-8")
    pos += table_len
    page_no, slot_no = _ADDR.unpack_from(body, pos)
    pos += _ADDR.size
    return (
        WalRecord(lsn, rec_type, txn_id, table, page_no, slot_no, body[pos:]),
        body_start + body_len,
    )


def iter_records(buf: bytes) -> Iterator[Tuple[WalRecord, int]]:
    """Yield ``(record, end_offset)`` for the valid prefix of *buf*.

    Stops silently at the first torn/corrupt frame; the last yielded
    ``end_offset`` is where the log should be truncated.
    """
    offset = 0
    while offset < len(buf):
        try:
            rec, offset = decode_record(buf, offset)
        except WalCodecError:
            return
        yield rec, offset


def valid_prefix(buf: bytes) -> Tuple[list, int]:
    """All records in the valid prefix, plus its byte length."""
    records = []
    end = 0
    for rec, off in iter_records(buf):
        records.append(rec)
        end = off
    return records, end


def last_record(buf: bytes) -> Optional[WalRecord]:
    rec = None
    for rec, _ in iter_records(buf):
        pass
    return rec
