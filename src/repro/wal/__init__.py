"""Durability subsystem: write-ahead logging, checkpoints, recovery.

The simulated disk lives in memory, so durability is *snapshot + log*:
an opt-in ``Database(data_dir=...)`` opens a real on-disk WAL
(:mod:`.log`, record format in :mod:`.records`), snapshots the page
store atomically on CHECKPOINT (:mod:`.checkpoint`), and replays the
committed WAL suffix on open (:mod:`.recovery`).  The transaction
manager (:mod:`.manager`) is the engine-facing seam: transaction
lifecycle, logical undo on rollback, strict table write locks, and the
per-mutation hooks that emit redo records.  Those same hooks feed the
MVCC version store (:mod:`.mvcc`), which gives readers lock-free
snapshot isolation; checkpoints are *fuzzy* — writers stay live, and
recovery redoes from the checkpoint's recorded ``redo_lsn``.
"""

from .checkpoint import (
    CHECKPOINT_FILE,
    CheckpointError,
    checkpoint_path,
    load_checkpoint,
    write_checkpoint,
)
from .log import (
    WAL_FILE,
    WalWriter,
    committed_txns,
    open_wal,
    read_wal,
    truncate_wal,
)
from .manager import LockTimeout, Transaction, TxnError, TxnManager
from .mvcc import Snapshot, VersionStore
from .records import (
    WalCodecError,
    WalRecord,
    WalRecordType,
    decode_record,
    encode_record,
    iter_records,
    valid_prefix,
)
from .recovery import RecoveryError, RecoveryReport, recover

__all__ = [
    "CHECKPOINT_FILE",
    "CheckpointError",
    "checkpoint_path",
    "load_checkpoint",
    "write_checkpoint",
    "WAL_FILE",
    "WalWriter",
    "committed_txns",
    "open_wal",
    "read_wal",
    "truncate_wal",
    "LockTimeout",
    "Snapshot",
    "Transaction",
    "TxnError",
    "TxnManager",
    "VersionStore",
    "WalCodecError",
    "WalRecord",
    "WalRecordType",
    "decode_record",
    "encode_record",
    "iter_records",
    "valid_prefix",
    "RecoveryError",
    "RecoveryReport",
    "recover",
]
