"""Plan-search tracing: what the optimizer considered, not just what won.

A :class:`SearchTrace` records, per join region, every candidate the
enumerator priced — access paths per base relation, join candidates per
memo subset, why each was kept or pruned — plus the ranked alternatives
for the full relation set next to the chosen plan.  The engine surfaces
it via ``EXPLAIN (VERBOSE SEARCH)`` and the REPL ``\\search`` command.

Everything here is engine-independent and duck-typed against physical
plan nodes (``describe()``/``children()``/``binding``), mirroring
:func:`.querylog.plan_fingerprint`, and round-trips through JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: per-region cap on recorded candidates (big searches stay bounded);
#: overflow is counted in ``RegionSearch.truncated``, never silent.
MAX_ALTS_PER_REGION = 1024


def plan_shape(node: Any) -> str:
    """Compact join-order expression of a plan subtree: base relations by
    binding, joins as parenthesized pairs — ``((a b) c)``."""
    kids = node.children()
    binding = getattr(node, "binding", None)
    if not kids:
        return binding if binding is not None else type(node).__name__
    parts = [plan_shape(child) for child in kids]
    if binding is not None:  # index nested-loop: inner relation is inline
        parts.append(binding)
    if len(parts) == 1:
        return parts[0]
    return "(" + " ".join(parts) + ")"


@dataclass
class PathAlt:
    """One candidate the search priced: an access path (single-relation
    subset) or a join candidate (multi-relation subset)."""

    subset: Tuple[str, ...]  # sorted bindings this candidate covers
    description: str  # the root operator's describe() line
    shape: str  # join-order expression, e.g. ``((a b) c)``
    rows: float
    cost: float
    order: Optional[str]  # interesting order delivered, if any
    kept: bool
    reason: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "subset": list(self.subset),
            "description": self.description,
            "shape": self.shape,
            "rows": self.rows,
            "cost": self.cost,
            "order": self.order,
            "kept": self.kept,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PathAlt":
        return cls(
            subset=tuple(data["subset"]),
            description=data["description"],
            shape=data.get("shape", ""),
            rows=data["rows"],
            cost=data["cost"],
            order=data.get("order"),
            kept=data["kept"],
            reason=data.get("reason", ""),
        )


@dataclass
class RegionSearch:
    """The search over one join region (one strategy invocation)."""

    strategy: str
    relations: Tuple[str, ...]
    alts: List[PathAlt] = field(default_factory=list)
    truncated: int = 0  # candidates dropped past MAX_ALTS_PER_REGION
    chosen_shape: Optional[str] = None
    chosen_description: Optional[str] = None
    chosen_cost: Optional[float] = None

    def record(
        self,
        subset: Tuple[str, ...],
        plan: Any,
        rows: float,
        cost: float,
        order: Optional[str],
        kept: bool,
        reason: str,
    ) -> None:
        if len(self.alts) >= MAX_ALTS_PER_REGION:
            self.truncated += 1
            return
        self.alts.append(
            PathAlt(
                subset=tuple(sorted(subset)),
                description=plan.describe(),
                shape=plan_shape(plan),
                rows=rows,
                cost=cost,
                order=order,
                kept=kept,
                reason=reason,
            )
        )

    def mark_chosen(self, plan: Any, cost: float) -> None:
        self.chosen_shape = plan_shape(plan)
        self.chosen_description = plan.describe()
        self.chosen_cost = cost

    # -- derived views ----------------------------------------------------------

    def access_paths(self) -> Dict[str, List[PathAlt]]:
        """Single-relation candidates grouped by binding."""
        out: Dict[str, List[PathAlt]] = {}
        for alt in self.alts:
            if len(alt.subset) == 1:
                out.setdefault(alt.subset[0], []).append(alt)
        return out

    def finalists(self, limit: int = 0) -> List[PathAlt]:
        """Candidates covering the full relation set, ranked by cost."""
        full = tuple(sorted(self.relations))
        pool = [a for a in self.alts if a.subset == full]
        if len(self.relations) == 1:
            pool = list(self.alts)
        pool.sort(key=lambda a: a.cost)
        return pool[:limit] if limit else pool

    def is_chosen(self, alt: PathAlt) -> bool:
        return (
            self.chosen_description is not None
            and alt.description == self.chosen_description
            and self.chosen_cost is not None
            and abs(alt.cost - self.chosen_cost) < 1e-9
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "relations": list(self.relations),
            "alts": [a.as_dict() for a in self.alts],
            "truncated": self.truncated,
            "chosen_shape": self.chosen_shape,
            "chosen_description": self.chosen_description,
            "chosen_cost": self.chosen_cost,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RegionSearch":
        region = cls(
            strategy=data["strategy"],
            relations=tuple(data["relations"]),
            alts=[PathAlt.from_dict(a) for a in data.get("alts", [])],
            truncated=data.get("truncated", 0),
        )
        region.chosen_shape = data.get("chosen_shape")
        region.chosen_description = data.get("chosen_description")
        region.chosen_cost = data.get("chosen_cost")
        return region


class SearchTrace:
    """One planning pass's search record: a list of region searches."""

    def __init__(self) -> None:
        self.regions: List[RegionSearch] = []

    def new_region(self, strategy: str, relations) -> RegionSearch:
        region = RegionSearch(strategy, tuple(sorted(relations)))
        self.regions.append(region)
        return region

    def __len__(self) -> int:
        return len(self.regions)

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"regions": [r.as_dict() for r in self.regions]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SearchTrace":
        trace = cls()
        trace.regions = [
            RegionSearch.from_dict(r) for r in data.get("regions", [])
        ]
        return trace

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SearchTrace":
        return cls.from_dict(json.loads(text))

    # -- rendering ---------------------------------------------------------------

    def render(self, verbose: bool = False, top: int = 8) -> str:
        """Human-readable search report.  Non-verbose shows access paths and
        the ranked full-set alternatives; verbose adds the whole memo."""
        if not self.regions:
            return "(no search trace recorded)"
        lines: List[str] = []
        for i, region in enumerate(self.regions, 1):
            considered = len(region.alts) + region.truncated
            kept = sum(1 for a in region.alts if a.kept)
            lines.append(
                f"Search region {i}: strategy={region.strategy}, "
                f"{len(region.relations)} relation(s) "
                f"({', '.join(region.relations)}), "
                f"{considered} candidate(s) considered, {kept} kept"
            )
            if region.truncated:
                lines.append(
                    f"  [trace truncated: {region.truncated} candidate(s) "
                    f"beyond the first {MAX_ALTS_PER_REGION} not recorded]"
                )
            paths = region.access_paths()
            if paths:
                lines.append("  access paths:")
                for binding in sorted(paths):
                    for alt in sorted(paths[binding], key=lambda a: a.cost):
                        lines.append(
                            "    " + _alt_line(alt, with_shape=False)
                        )
            finalists = region.finalists()
            if len(region.relations) > 1 and finalists:
                lines.append(
                    f"  ranked alternatives for "
                    f"{{{', '.join(region.relations)}}}:"
                )
                shown = finalists if verbose else finalists[:top]
                for rank, alt in enumerate(shown, 1):
                    marker = "  <= chosen" if region.is_chosen(alt) else ""
                    lines.append(
                        f"    {rank:2d}. {alt.shape}  "
                        f"{alt.description}  cost={alt.cost:.1f} "
                        f"rows≈{alt.rows:.0f}"
                        + (f" order={alt.order}" if alt.order else "")
                        + marker
                    )
                if not verbose and len(finalists) > top:
                    lines.append(
                        f"    ... {len(finalists) - top} more "
                        "(EXPLAIN (VERBOSE SEARCH) shows all)"
                    )
            if region.chosen_shape is not None:
                lines.append(
                    f"  chosen: {region.chosen_shape}  "
                    f"cost={region.chosen_cost:.1f}"
                )
            if verbose:
                interior = [
                    a
                    for a in region.alts
                    if 1 < len(a.subset) < len(region.relations)
                ]
                if interior:
                    lines.append("  memo (intermediate subsets):")
                    for alt in interior:
                        lines.append(
                            f"    {{{', '.join(alt.subset)}}}: "
                            + _alt_line(alt)
                        )
        return "\n".join(lines)


def _alt_line(alt: PathAlt, with_shape: bool = True) -> str:
    status = "kept" if alt.kept else "pruned"
    reason = f": {alt.reason}" if alt.reason else ""
    shape = f"{alt.shape}  " if with_shape and alt.shape else ""
    return (
        f"{shape}{alt.description}  cost={alt.cost:.1f} "
        f"rows≈{alt.rows:.0f}"
        + (f" order={alt.order}" if alt.order else "")
        + f"  [{status}{reason}]"
    )
