"""Operator-tree diffing for plan-change events (``EXPLAIN DIFF``).

Renders a unified-diff-style view of two physical plans' structural
shapes so a plan change reads like a code review: unchanged operators
keep their indentation, dropped operators are prefixed ``-``, new ones
``+``.  Accepts live plan objects (anything with ``describe()`` /
``children()``) or pre-rendered shape text, so baseline shapes that were
persisted as strings diff against freshly planned trees.
"""

from __future__ import annotations

import difflib
from typing import Any, List, Optional


def plan_shape_lines(plan: Any) -> List[str]:
    """Indented ``describe()`` lines for a plan tree — the structural text
    that both plan fingerprints and plan diffs are computed over."""
    lines: List[str] = []

    def walk(node: Any, depth: int) -> None:
        lines.append("  " * depth + node.describe())
        for child in node.children():
            walk(child, depth + 1)

    walk(plan, 0)
    return lines


def plan_shape_text(plan: Any) -> str:
    return "\n".join(plan_shape_lines(plan))


def _as_lines(plan: Any) -> List[str]:
    if plan is None:
        return []
    if isinstance(plan, str):
        return plan.splitlines()
    return plan_shape_lines(plan)


def plan_diff(
    old: Any,
    new: Any,
    old_cost: Optional[float] = None,
    new_cost: Optional[float] = None,
) -> str:
    """Line diff of two plans' operator trees.

    ``old``/``new`` may be physical plan nodes or shape text.  Identical
    plans render as the shape prefixed with spaces and a ``(plans are
    identical)`` note; otherwise removed lines get ``-`` and added lines
    ``+``, with a cost-delta header when both costs are supplied.
    """
    old_lines = _as_lines(old)
    new_lines = _as_lines(new)
    out: List[str] = []
    if old_cost is not None and new_cost is not None:
        delta = new_cost - old_cost
        sign = "+" if delta >= 0 else ""
        out.append(
            f"cost: {old_cost:.1f} -> {new_cost:.1f} ({sign}{delta:.1f})"
        )
    if old_lines == new_lines:
        out.extend("  " + line for line in old_lines)
        out.append("(plans are identical)")
        return "\n".join(out)
    matcher = difflib.SequenceMatcher(a=old_lines, b=new_lines, autojunk=False)
    for op, a0, a1, b0, b1 in matcher.get_opcodes():
        if op == "equal":
            out.extend("  " + line for line in old_lines[a0:a1])
        else:
            out.extend("- " + line for line in old_lines[a0:a1])
            out.extend("+ " + line for line in new_lines[b0:b1])
    return "\n".join(out)
