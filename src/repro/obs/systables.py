"""SQL-queryable system statistics: the database observing itself.

The classic operational question — "which statements are hot, where is
time going, which table is getting hammered?" — is answered in industrial
engines by *system views* (``pg_stat_statements``, ``pg_stat_user_tables``,
``v$session``) queried with the engine's own SQL.  This module provides
those tables for this engine:

* ``sys_stat_statements`` — per normalized statement: calls, total/mean/
  p95 latency, rows, buffer hits/page reads, plan-change count
  (aggregated from the query log on every reference);
* ``sys_stat_tables``     — per table: sequential/index scan starts, rows
  read, pages hit/read (from the scan operators' access counters);
* ``sys_stat_waits``      — the wait-event registry: where time goes
  (I/O, lock, CPU, exchange), wait_count/total/mean per event;
* ``sys_stat_metrics``    — every registry instrument as rows (histograms
  expand to count/sum/mean/p50/p95/p99);
* ``sys_stat_activity``   — live in-flight statements with a progress
  snapshot: phase, current operator, rows produced, elapsed;
* ``sys_stat_traces``     — the slow-trace ring: one row per captured
  request trace (trace id, statement, duration, span count, and the
  slowest non-root span with its share of the request);
* ``sys_stat_locks``      — the table-lock registry: current holder and
  reader counts plus cumulative acquisition/contention/wait totals.

Each is registered with the catalog as a *provider*; when a query
references one, the engine snapshots the provider's rows into a transient
table of the same name and plans against that — so ordinary SELECTs with
filters, joins and ORDER BY all compose, and snapshots are consistent at
statement start (a statement observing ``sys_stat_statements`` does not
see itself).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from ..types import Column, DataType, Schema
from .baseline import normalize_statement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine wires us)
    from ..engine.database import Database

Rows = List[Tuple[Any, ...]]

#: names of every system table this module registers
SYSTEM_TABLE_NAMES = (
    "sys_stat_statements",
    "sys_stat_tables",
    "sys_stat_waits",
    "sys_stat_metrics",
    "sys_stat_activity",
    "sys_stat_traces",
    "sys_stat_locks",
)


def _schema(table: str, *cols: Tuple[str, DataType]) -> Schema:
    return Schema(Column(name, dtype, table, True) for name, dtype in cols)


# -- live-query activity ------------------------------------------------------


@dataclass
class ActivityEntry:
    """One in-flight statement's progress snapshot."""

    query_id: int
    sql: str
    phase: str = "planning"  # planning -> executing -> done
    current_operator: str = ""
    rows_produced: int = 0
    started: float = field(default_factory=time.perf_counter)
    session_id: int = 0
    #: the MVCC read view this statement runs under (None: no snapshot —
    #: DML, or a database opened with mvcc=False)
    snapshot_ts: Any = None
    snapshot_acquired: float = 0.0

    @property
    def elapsed_ms(self) -> float:
        return (time.perf_counter() - self.started) * 1000.0


class ActivityRegistry:
    """Thread-safe registry of in-flight statements (``sys_stat_activity``).

    The engine begins an entry when a user statement arrives and finishes
    it when the statement completes; the executor's run loop updates the
    progress fields batch by batch.  Reads take a snapshot, so observers
    never block execution.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._live: Dict[int, ActivityEntry] = {}
        self._next_id = 0

    def begin(self, sql: str, session_id: int = 0) -> ActivityEntry:
        with self._lock:
            self._next_id += 1
            entry = ActivityEntry(self._next_id, sql, session_id=session_id)
            self._live[entry.query_id] = entry
            return entry

    def finish(self, entry: ActivityEntry) -> None:
        with self._lock:
            self._live.pop(entry.query_id, None)

    def live(self) -> List[ActivityEntry]:
        with self._lock:
            return sorted(self._live.values(), key=lambda e: e.query_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._live)


# -- providers ----------------------------------------------------------------


def _exact_percentile(values: List[float], p: float) -> float:
    """Exact percentile (nearest-rank) of a small value list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, round(p * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _stat_statements(db: "Database") -> Tuple[Schema, Rows]:
    schema = _schema(
        "sys_stat_statements",
        ("statement", DataType.TEXT),
        ("calls", DataType.INT),
        ("total_ms", DataType.FLOAT),
        ("mean_ms", DataType.FLOAT),
        ("p95_ms", DataType.FLOAT),
        ("rows", DataType.INT),
        ("buffer_hits", DataType.INT),
        ("pages_read", DataType.INT),
        ("pages_written", DataType.INT),
        ("plan_changes", DataType.INT),
        ("plan_cache_hits", DataType.INT),
        ("result_cache_hits", DataType.INT),
    )
    groups: Dict[str, List[Any]] = {}
    for record in db.query_log.entries():
        statement = normalize_statement(record.sql)
        group = groups.get(statement)
        if group is None:
            group = groups[statement] = [[], 0, 0, 0, 0, 0, 0, 0]
        group[0].append(record.execution_ms)
        group[1] += record.actual_rows
        group[2] += record.buffer_hits
        group[3] += record.actual_reads
        group[4] += record.actual_writes
        group[5] += 1 if record.plan_changed else 0
        group[6] += 1 if record.plan_cache_hit else 0
        group[7] += 1 if record.result_cache_hit else 0
    rows: Rows = []
    for statement, (
        times,
        nrows,
        hits,
        reads,
        writes,
        changes,
        plan_hits,
        result_hits,
    ) in sorted(groups.items()):
        total = sum(times)
        rows.append(
            (
                statement,
                len(times),
                total,
                total / len(times),
                _exact_percentile(times, 0.95),
                nrows,
                hits,
                reads,
                writes,
                changes,
                plan_hits,
                result_hits,
            )
        )
    return schema, rows


def _stat_tables(db: "Database") -> Tuple[Schema, Rows]:
    schema = _schema(
        "sys_stat_tables",
        ("table_name", DataType.TEXT),
        ("num_rows", DataType.INT),
        ("num_pages", DataType.INT),
        ("seq_scans", DataType.INT),
        ("index_scans", DataType.INT),
        ("rows_read", DataType.INT),
        ("pages_hit", DataType.INT),
        ("pages_read", DataType.INT),
        ("pages_skipped", DataType.INT),
    )
    rows: Rows = []
    for info in sorted(db.catalog.tables(), key=lambda t: t.name):
        # skip this statement's own transient materializations (system
        # snapshots, decorrelated subqueries): they are not user tables
        if info.name.startswith("__"):
            continue
        if info.name.lower() in db.catalog.system_table_names():
            continue
        access = info.access
        rows.append(
            (
                info.name,
                info.num_rows,
                info.num_pages,
                access.seq_scans,
                access.index_scans,
                access.rows_read,
                access.pages_hit,
                access.pages_read,
                access.pages_skipped,
            )
        )
    return schema, rows


def _stat_waits(db: "Database") -> Tuple[Schema, Rows]:
    schema = _schema(
        "sys_stat_waits",
        ("event", DataType.TEXT),
        ("wait_class", DataType.TEXT),
        # "count" would collide with the COUNT() keyword in queries
        ("wait_count", DataType.INT),
        ("total_ms", DataType.FLOAT),
        ("mean_ms", DataType.FLOAT),
    )
    rows: Rows = [
        (event, event.split(".", 1)[0], count, total_ms, mean_ms)
        for event, count, total_ms, mean_ms in db.waits.rows()
    ]
    return schema, rows


def _stat_metrics(db: "Database") -> Tuple[Schema, Rows]:
    schema = _schema(
        "sys_stat_metrics",
        ("name", DataType.TEXT),
        ("kind", DataType.TEXT),
        ("value", DataType.FLOAT),
    )
    snap = db.metrics.snapshot()
    rows: Rows = []
    for name, value in sorted(snap["counters"].items()):
        rows.append((name, "counter", float(value)))
    for name, value in sorted(snap["gauges"].items()):
        rows.append((name, "gauge", float(value)))
    for name, hist in sorted(snap["histograms"].items()):
        for part in ("count", "sum", "mean", "p50", "p95", "p99"):
            rows.append((f"{name}.{part}", "histogram", float(hist[part])))
    return schema, rows


def _stat_activity(db: "Database") -> Tuple[Schema, Rows]:
    """Live statements plus one row per idle session, so connections are
    visible even between statements (the columns new in this shape —
    ``session_id``, ``state`` — sit at the end, after the originals)."""
    schema = _schema(
        "sys_stat_activity",
        ("query_id", DataType.INT),
        ("phase", DataType.TEXT),
        ("current_operator", DataType.TEXT),
        ("rows_produced", DataType.INT),
        ("elapsed_ms", DataType.FLOAT),
        ("sql", DataType.TEXT),
        ("session_id", DataType.INT),
        ("state", DataType.TEXT),
        ("snapshot_ts", DataType.INT),
        ("snapshot_age_ms", DataType.FLOAT),
    )
    now = time.monotonic()

    def _age(acquired: float) -> float:
        return max(0.0, (now - acquired) * 1000.0)

    rows: Rows = [
        (
            entry.query_id,
            entry.phase,
            entry.current_operator,
            entry.rows_produced,
            entry.elapsed_ms,
            " ".join(entry.sql.split())[:200],
            entry.session_id,
            "active",
            entry.snapshot_ts,
            _age(entry.snapshot_acquired)
            if entry.snapshot_ts is not None
            else None,
        )
        for entry in db.activity.live()
    ]
    busy = {row[6] for row in rows}
    for session in getattr(db, "sessions", list)():
        if session.id in busy:
            continue
        state = "idle in transaction" if session.in_transaction else "idle"
        # an idle-in-transaction session may still pin a repeatable-read
        # snapshot — exactly the thing that blocks version pruning, so
        # exactly the thing an operator needs to see
        snap = session.txn.snapshot if session.txn is not None else None
        rows.append(
            (
                0, "", "", 0, 0.0, "", session.id, state,
                snap.ts if snap is not None else None,
                _age(snap.acquired_at) if snap is not None else None,
            )
        )
    return schema, rows


def _stat_traces(db: "Database") -> Tuple[Schema, Rows]:
    """The slow-trace ring as rows, newest last.  ``top_span``/``top_ms``
    name the slowest non-root span in each tree — usually the first
    thing an operator wants to know about a slow request."""
    schema = _schema(
        "sys_stat_traces",
        ("trace_id", DataType.TEXT),
        ("sql", DataType.TEXT),
        ("session_id", DataType.INT),
        ("duration_ms", DataType.FLOAT),
        ("spans", DataType.INT),
        ("top_span", DataType.TEXT),
        ("top_ms", DataType.FLOAT),
        ("top_share", DataType.FLOAT),
        ("captured_at", DataType.FLOAT),
    )
    rows: Rows = []
    for trace in db.traces.entries():
        top_name, top_ms = "", 0.0
        if trace.root is not None:
            for span in trace.root.walk():
                if span is trace.root:
                    continue
                if span.duration_ms > top_ms:
                    top_name, top_ms = span.name, span.duration_ms
        share = top_ms / trace.duration_ms if trace.duration_ms > 0 else 0.0
        rows.append(
            (
                trace.trace_id,
                " ".join(trace.sql.split())[:200],
                trace.session_id or 0,
                trace.duration_ms,
                trace.span_count(),
                top_name,
                top_ms,
                share,
                trace.captured_at,
            )
        )
    return schema, rows


def _stat_locks(db: "Database") -> Tuple[Schema, Rows]:
    schema = _schema(
        "sys_stat_locks",
        ("table_name", DataType.TEXT),
        ("holder_txn", DataType.INT),
        ("readers", DataType.INT),
        ("writers_waiting", DataType.INT),
        ("acquisitions", DataType.INT),
        ("contended", DataType.INT),
        ("wait_ms", DataType.FLOAT),
    )
    rows: Rows = [
        (
            lock["table"],
            lock["holder_txn"],
            lock["readers"],
            lock["writers_waiting"],
            lock["acquisitions"],
            lock["contended"],
            lock["wait_ms"],
        )
        for lock in db.txn.lock_rows()
    ]
    return schema, rows


def register_system_tables(db: "Database") -> None:
    """Register every ``sys_stat_*`` provider with *db*'s catalog."""
    providers = {
        "sys_stat_statements": _stat_statements,
        "sys_stat_tables": _stat_tables,
        "sys_stat_waits": _stat_waits,
        "sys_stat_metrics": _stat_metrics,
        "sys_stat_activity": _stat_activity,
        "sys_stat_traces": _stat_traces,
        "sys_stat_locks": _stat_locks,
    }
    for name in SYSTEM_TABLE_NAMES:
        provider = providers[name]
        db.catalog.register_system_table(
            name, lambda p=provider: p(db)
        )
