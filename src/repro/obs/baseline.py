"""Plan baselines and plan-change (regression) detection.

The operational failure mode of a cost-based optimizer is not a slow
plan — it is a *different* plan than yesterday's for the same statement.
A :class:`PlanBaselineStore` remembers, per normalized statement
(:func:`statement_fingerprint`), the plan the optimizer last chose: its
structural fingerprint, estimated cost, shape text and observed latency.
On every execution the engine calls :meth:`PlanBaselineStore.observe`;
when the chosen plan's fingerprint differs from the baseline, a
:class:`PlanChange` event is produced carrying the estimated-cost and
measured-latency deltas, the query log marks the record
``plan_changed=True``, and the ``plan_regressions_total`` metric counts
changes whose estimated cost went *up*.
"""

from __future__ import annotations

import hashlib
import json
import re
from collections import deque
from dataclasses import asdict, dataclass
from typing import Any, Deque, Dict, List, Optional

_STRING = re.compile(r"'(?:[^']|'')*'")
_NUMBER = re.compile(r"\b\d+(?:\.\d+)?(?:e[+-]?\d+)?\b", re.IGNORECASE)
_WS = re.compile(r"\s+")


def normalize_statement(sql: str) -> str:
    """Literal-free, whitespace-collapsed, lower-cased statement text.

    ``EXPLAIN`` prefixes (with any option list) are stripped so an
    ``EXPLAIN ANALYZE SELECT ...`` shares its fingerprint with the bare
    SELECT it wraps.
    """
    text = _STRING.sub("?", sql)
    text = _NUMBER.sub("?", text)
    text = _WS.sub(" ", text).strip().lower().rstrip(";").strip()
    if text.startswith("explain"):
        idx = text.find("select")
        if idx > 0:
            text = text[idx:]
    return text


def statement_fingerprint(sql: str) -> str:
    """Stable hash of the normalized statement: the baseline-store key."""
    return hashlib.sha1(normalize_statement(sql).encode("utf-8")).hexdigest()[
        :12
    ]


@dataclass
class PlanBaseline:
    """The remembered plan for one normalized statement."""

    statement_fp: str
    sql: str  # one example statement text
    plan_fp: str
    est_cost: float
    plan_shape: str  # structural pretty text (describe lines)
    best_ms: float = float("inf")
    last_ms: float = 0.0
    seen: int = 0

    def note_run(self, execution_ms: float) -> None:
        self.seen += 1
        self.last_ms = execution_ms
        if execution_ms < self.best_ms:
            self.best_ms = execution_ms

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class PlanChange:
    """One plan-change event: the same statement picked a new plan."""

    statement_fp: str
    sql: str
    old_plan_fp: str
    new_plan_fp: str
    old_cost: float
    new_cost: float
    old_best_ms: float
    new_ms: float
    old_shape: str
    new_shape: str

    @property
    def cost_delta(self) -> float:
        return self.new_cost - self.old_cost

    @property
    def latency_delta_ms(self) -> float:
        if self.old_best_ms == float("inf"):
            return 0.0
        return self.new_ms - self.old_best_ms

    @property
    def is_regression(self) -> bool:
        """A change the cost model itself thinks got worse."""
        return self.cost_delta > 0

    def as_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["cost_delta"] = self.cost_delta
        out["latency_delta_ms"] = self.latency_delta_ms
        out["is_regression"] = self.is_regression
        return out


class PlanBaselineStore:
    """Baselines by statement fingerprint + a bounded ring of changes."""

    def __init__(self, change_capacity: int = 128):
        self._baselines: Dict[str, PlanBaseline] = {}
        self._changes: Deque[PlanChange] = deque(maxlen=max(1, change_capacity))

    def observe(
        self,
        statement_fp: str,
        sql: str,
        plan_fp: str,
        est_cost: float,
        plan_shape: str,
        execution_ms: float,
    ) -> Optional[PlanChange]:
        """Record one planned-and-executed statement.  Returns the change
        event when the plan differs from the stored baseline (which is then
        advanced to the new plan, so a stable new plan fires once)."""
        baseline = self._baselines.get(statement_fp)
        if baseline is None:
            baseline = PlanBaseline(
                statement_fp, sql, plan_fp, est_cost, plan_shape
            )
            self._baselines[statement_fp] = baseline
            baseline.note_run(execution_ms)
            return None
        if baseline.plan_fp == plan_fp:
            baseline.est_cost = est_cost
            baseline.note_run(execution_ms)
            return None
        change = PlanChange(
            statement_fp=statement_fp,
            sql=sql,
            old_plan_fp=baseline.plan_fp,
            new_plan_fp=plan_fp,
            old_cost=baseline.est_cost,
            new_cost=est_cost,
            old_best_ms=baseline.best_ms,
            new_ms=execution_ms,
            old_shape=baseline.plan_shape,
            new_shape=plan_shape,
        )
        self._changes.append(change)
        baseline.plan_fp = plan_fp
        baseline.est_cost = est_cost
        baseline.plan_shape = plan_shape
        baseline.note_run(execution_ms)
        return change

    def get(self, statement_fp: str) -> Optional[PlanBaseline]:
        return self._baselines.get(statement_fp)

    def baseline_for(self, sql: str) -> Optional[PlanBaseline]:
        return self.get(statement_fingerprint(sql))

    def changes(self) -> List[PlanChange]:
        return list(self._changes)

    def regressions(self) -> List[PlanChange]:
        return [c for c in self._changes if c.is_regression]

    def __len__(self) -> int:
        return len(self._baselines)

    def clear(self) -> None:
        self._baselines.clear()
        self._changes.clear()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "baselines": {
                fp: b.as_dict() for fp, b in sorted(self._baselines.items())
            },
            "changes": [c.as_dict() for c in self._changes],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent)
