"""Wait-event accounting: where does query time actually go?

Industrial engines answer "is this workload CPU-bound, I/O-bound or
lock-bound?" with a cumulative wait-event registry (PostgreSQL's
``pg_stat_activity.wait_event``, Oracle's wait interface).  This module is
that registry: a process-wide, thread-safe map of *event name* → (count,
total seconds), fed by instrumentation hooks in the storage, executor and
exchange layers:

* ``io.read`` / ``io.write`` — time inside the simulated disk, attributed
  at the buffer pool (every page read/writeback is timed once);
* ``lock.buffer`` — contended acquisitions of the buffer pool's lock
  (uncontended acquires are not timed, so the hot path stays cheap);
* ``exec.cpu`` — per-query executor time *minus* the I/O and lock waits
  that accrued during it (computed by the engine, so
  ``exec.cpu + io.* + lock.*`` reconciles with measured execution time);
* ``exchange.startup`` / ``exchange.send`` / ``exchange.recv`` — parallel
  worker lifecycle: fork-to-first-work latency, pipe transfer time on the
  worker side, and parent time blocked draining worker pipes.

Workers ship their wait deltas back to the parent exactly like per-node
actuals, so parallel queries account identically to serial ones.

Event names are dotted, coarse-grained on purpose: the first segment is
the wait *class* (``io``, ``lock``, ``exec``, ``exchange``), which is how
``sys_stat_waits`` groups and how dashboards slice.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

#: snapshot form: event name -> (count, total_seconds)
WaitSnapshot = Dict[str, Tuple[int, float]]


class WaitEventStats:
    """Cumulative per-event wait counters (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # event -> [count, total_seconds]; lists so record() mutates in place
        self._events: Dict[str, List[float]] = {}

    # -- recording -----------------------------------------------------------

    def record(self, event: str, seconds: float, count: int = 1) -> None:
        """Add one (or *count*) occurrences of *event* totalling *seconds*."""
        with self._lock:
            cell = self._events.get(event)
            if cell is None:
                self._events[event] = [count, seconds]
            else:
                cell[0] += count
                cell[1] += seconds

    @contextmanager
    def timer(self, event: str) -> Iterator[None]:
        """Time a block and record it as one occurrence of *event*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(event, time.perf_counter() - start)

    # -- reading -------------------------------------------------------------

    def snapshot(self) -> WaitSnapshot:
        with self._lock:
            return {
                event: (int(cell[0]), cell[1])
                for event, cell in self._events.items()
            }

    def delta(self, earlier: WaitSnapshot) -> WaitSnapshot:
        """Events accumulated since *earlier* (a prior :meth:`snapshot`)."""
        out: WaitSnapshot = {}
        for event, (count, seconds) in self.snapshot().items():
            c0, s0 = earlier.get(event, (0, 0.0))
            if count - c0 or seconds - s0:
                out[event] = (count - c0, seconds - s0)
        return out

    def merge(self, deltas: WaitSnapshot) -> None:
        """Fold another registry's deltas in (worker → parent shipping)."""
        for event, (count, seconds) in deltas.items():
            self.record(event, seconds, count)

    def total_seconds(self, prefix: str = "") -> float:
        """Summed wait time, optionally restricted to one event class
        (``prefix="io."`` sums reads and writes)."""
        return sum(
            seconds
            for event, (_, seconds) in self.snapshot().items()
            if event.startswith(prefix)
        )

    def count(self, event: str) -> int:
        with self._lock:
            cell = self._events.get(event)
            return int(cell[0]) if cell else 0

    def seconds(self, event: str) -> float:
        with self._lock:
            cell = self._events.get(event)
            return cell[1] if cell else 0.0

    def rows(self) -> List[Tuple[str, int, float, float]]:
        """``(event, count, total_ms, mean_ms)`` rows, sorted by event —
        the exact shape ``sys_stat_waits`` exposes."""
        out = []
        for event, (count, seconds) in sorted(self.snapshot().items()):
            total_ms = seconds * 1000.0
            out.append(
                (event, count, total_ms, total_ms / count if count else 0.0)
            )
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def reset(self) -> None:
        with self._lock:
            self._events.clear()

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            event: {"count": count, "seconds": seconds}
            for event, (count, seconds) in sorted(self.snapshot().items())
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "WaitEventStats":
        stats = cls()
        for event, cell in json.loads(text).items():
            stats.record(event, cell["seconds"], int(cell["count"]))
        return stats
