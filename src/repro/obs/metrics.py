"""Process-wide metrics: counters, gauges and histograms by name.

A :class:`MetricsRegistry` is a flat namespace of lazily-created
instruments::

    reg = MetricsRegistry()
    reg.counter("queries_total").inc()
    reg.histogram("planning_ms").observe(1.7)
    reg.gauge("buffer_hit_ratio").set(0.93)
    snap = reg.snapshot()   # plain dicts, JSON-safe

Histograms use fixed bucket upper bounds (default: a log-ish ladder in
milliseconds) plus exact count/sum/min/max, so percentile estimates come
from bucket interpolation-free upper bounds — coarse but allocation-free
and stable under heavy traffic.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram ladder (latencies in milliseconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: Exposition help text for well-known instruments; anything else gets a
#: generated line.  Deliberately a flat table — instruments are created
#: lazily at call sites all over the engine, and threading help strings
#: through every call would couple those sites to the exporter.
HELP_TEXTS: Dict[str, str] = {
    "queries_total": "SELECT statements executed",
    "rows_returned_total": "rows returned to clients",
    "pages_read_total": "disk pages read on behalf of queries",
    "pages_written_total": "disk pages written on behalf of queries",
    "spills_total": "work-memory spill events",
    "temp_files_total": "temporary files created by spilling operators",
    "parallel_queries_total": "queries that ran with exchange parallelism",
    "parallel_workers_total": "exchange workers launched",
    "plan_changes_total": "statements whose plan differed from the baseline",
    "plan_regressions_total": "plan changes whose estimated cost went up",
    "slow_queries_captured_total": "statements captured by auto_explain",
    "cache_plan_hits_total": "statements planned from the plan cache",
    "cache_plan_misses_total": "cacheable statements that missed the plan cache",
    "cache_result_hits_total": "statements answered from the result cache",
    "cache_result_misses_total": "cacheable statements that missed the result cache",
    "cache_invalidations_total": "plan/result cache invalidation events",
    "pages_skipped_total": "heap pages skipped by zone-map pruning",
    "planning_ms": "statement planning latency",
    "execution_ms": "statement execution latency",
    "buffer_hit_ratio": "buffer pool hit rate since startup",
    "buffer_pool_hits": "buffer pool page hits",
    "buffer_pool_misses": "buffer pool page misses",
    "buffer_pool_evictions": "buffer pool frame evictions",
    "buffer_pool_dirty_writebacks": "dirty frames written back on eviction",
    "buffer_pool_hit_rate": "buffer pool hit rate since startup",
    "disk_reads": "pages read from the simulated disk",
    "disk_writes": "pages written to the simulated disk",
    "disk_seq_reads": "sequential page reads",
    "disk_allocations": "pages allocated",
    "query_log_entries": "records currently in the query log ring",
    "feedback_entries": "cardinality-feedback keys learned",
    "plan_baselines": "statements with a stored plan baseline",
    "wait_events_total": "distinct wait events observed",
    "dml_statements_total": "INSERT/UPDATE/DELETE statements executed",
    "rows_modified_total": "rows inserted, updated, or deleted",
    "dml_execution_ms": "DML statement execution latency",
    "traces_captured_total": "request traces captured into the slow-trace ring",
    "trace_spans_total": "spans recorded across captured request traces",
    "statement_latency_ms": (
        "per-fingerprint statement latency quantiles "
        "(log-bucketed; labels: fingerprint, quantile)"
    ),
    "statement_latency_fingerprints": (
        "fingerprints currently tracked by the latency store"
    ),
}


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (last write wins; thread-safe)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-bucket distribution with exact count/sum/min/max.

    ``observe`` is thread-safe: concurrent updates (metrics feeding from
    helper threads, stress tests mirroring the forked-worker fold-in)
    never lose counts or leave ``sum`` inconsistent with ``count``.
    """

    __slots__ = (
        "bounds", "bucket_counts", "count", "sum", "min", "max", "_lock"
    )

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the p-th percentile
        observation (p in [0, 1]).  Exact max for the overflow bucket."""
        if not self.count:
            return 0.0
        target = max(1, math.ceil(p * self.count))
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= target:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max
        return self.max  # pragma: no cover - unreachable

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class StatementLatency:
    """Per-fingerprint latency distributions on a log-bucket ladder.

    One :class:`Histogram` per statement fingerprint, capped at
    *max_fingerprints* — once full, new fingerprints are dropped (and
    counted) rather than evicting hot ones, so the exposition stays
    bounded under adversarial workloads.  ``quantiles()`` returns the
    sorted, deterministic view the Prometheus exporter renders as
    ``statement_latency_ms{fingerprint=...,quantile=...}`` samples.
    """

    def __init__(
        self,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_fingerprints: int = 128,
    ):
        self.buckets = tuple(buckets)
        self.max_fingerprints = max_fingerprints
        self._hists: Dict[str, Histogram] = {}
        self._lock = threading.Lock()
        self.dropped = 0

    def observe(self, fingerprint: str, value_ms: float) -> None:
        hist = self._hists.get(fingerprint)
        if hist is None:
            with self._lock:
                hist = self._hists.get(fingerprint)
                if hist is None:
                    if len(self._hists) >= self.max_fingerprints:
                        self.dropped += 1
                        return
                    hist = Histogram(self.buckets)
                    self._hists[fingerprint] = hist
        hist.observe(value_ms)

    def __len__(self) -> int:
        return len(self._hists)

    def quantiles(self) -> List[Tuple[str, str, float]]:
        """Sorted ``(fingerprint, quantile, value_ms)`` samples."""
        out: List[Tuple[str, str, float]] = []
        with self._lock:
            items = sorted(self._hists.items())
        for fingerprint, hist in items:
            for label, p in (("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)):
                out.append((fingerprint, label, hist.percentile(p)))
        return out

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            items = sorted(self._hists.items())
        return {fp: h.snapshot() for fp, h in items}


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        # guards lazy instrument creation under concurrent first use
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            with self._lock:
                inst = self._counters.setdefault(name, Counter())
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            with self._lock:
                inst = self._gauges.setdefault(name, Gauge())
        return inst

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            with self._lock:
                inst = self._histograms.setdefault(
                    name,
                    Histogram(
                        buckets if buckets is not None else DEFAULT_BUCKETS
                    ),
                )
        return inst

    def names(self) -> List[str]:
        return sorted(
            list(self._counters)
            + list(self._gauges)
            + list(self._histograms)
        )

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict view of every instrument (JSON-safe)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }

    def render_prometheus(
        self,
        prefix: str = "repro_",
        extras: Optional[Dict[str, float]] = None,
        labeled: Optional[
            List[Tuple[str, str, List[Tuple[str, float]]]]
        ] = None,
    ) -> str:
        """Prometheus text exposition of every instrument.

        Each metric family renders as a ``# HELP`` line, a ``# TYPE``
        line, then its samples — counters and gauges as one sample,
        histograms as cumulative ``_bucket{le="..."}`` series ending in
        ``+Inf`` plus ``_sum`` and ``_count``.  Families are emitted in
        one global sort by metric name regardless of kind, so the
        exposition is byte-stable across runs with the same values —
        scrape diffing never sees spurious reorderings.  ``extras``
        (plain name→value pairs, e.g. derived ratios the engine computes
        at scrape time) render as gauges in the same ordering.

        ``labeled`` supplies families with label sets the registry does
        not model itself (e.g. per-fingerprint latency quantiles): each
        entry is ``(name, kind, [(label_body, value), ...])`` where
        *label_body* is the pre-rendered ``key="value",...`` interior of
        the braces.  Samples are sorted by label body so the exposition
        stays byte-stable.
        """
        families: List[Tuple[str, str, List[str]]] = []

        def fam(name: str, kind: str, samples: List[str]) -> None:
            families.append((name, kind, samples))

        if labeled:
            for name, kind, pairs in labeled:
                full = prefix + name
                fam(
                    name,
                    kind,
                    [
                        f"{full}{{{body}}} {_fmt(value)}"
                        for body, value in sorted(pairs)
                    ],
                )

        for name, counter in self._counters.items():
            full = prefix + name
            fam(name, "counter", [f"{full} {_fmt(counter.value)}"])
        for name, gauge in self._gauges.items():
            full = prefix + name
            fam(name, "gauge", [f"{full} {_fmt(gauge.value)}"])
        if extras:
            for name, value in extras.items():
                full = prefix + name
                fam(name, "gauge", [f"{full} {_fmt(value)}"])
        for name, hist in self._histograms.items():
            full = prefix + name
            samples = []
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.bucket_counts):
                cumulative += count
                samples.append(
                    f'{full}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                )
            samples.append(f'{full}_bucket{{le="+Inf"}} {hist.count}')
            samples.append(f"{full}_sum {_fmt(hist.sum)}")
            samples.append(f"{full}_count {hist.count}")
            fam(name, "histogram", samples)

        lines: List[str] = []
        for name, kind, samples in sorted(families):
            full = prefix + name
            help_text = HELP_TEXTS.get(name, f"{name.replace('_', ' ')}")
            lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} {kind}")
            lines.extend(samples)
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def _fmt(value: float) -> str:
    """Prometheus-style number: integral values without the trailing .0."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
