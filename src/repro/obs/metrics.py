"""Process-wide metrics: counters, gauges and histograms by name.

A :class:`MetricsRegistry` is a flat namespace of lazily-created
instruments::

    reg = MetricsRegistry()
    reg.counter("queries_total").inc()
    reg.histogram("planning_ms").observe(1.7)
    reg.gauge("buffer_hit_ratio").set(0.93)
    snap = reg.snapshot()   # plain dicts, JSON-safe

Histograms use fixed bucket upper bounds (default: a log-ish ladder in
milliseconds) plus exact count/sum/min/max, so percentile estimates come
from bucket interpolation-free upper bounds — coarse but allocation-free
and stable under heavy traffic.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram ladder (latencies in milliseconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket distribution with exact count/sum/min/max."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the p-th percentile
        observation (p in [0, 1]).  Exact max for the overflow bucket."""
        if not self.count:
            return 0.0
        target = max(1, math.ceil(p * self.count))
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= target:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max
        return self.max  # pragma: no cover - unreachable

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter()
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge()
        return inst

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(
                buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return inst

    def names(self) -> List[str]:
        return sorted(
            list(self._counters)
            + list(self._gauges)
            + list(self._histograms)
        )

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict view of every instrument (JSON-safe)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }

    def render_prometheus(
        self,
        prefix: str = "repro_",
        extras: Optional[Dict[str, float]] = None,
    ) -> str:
        """Prometheus text exposition of every instrument.

        Counters render as ``<prefix><name>`` with a TYPE comment; gauges
        likewise; histograms as cumulative ``_bucket{le="..."}`` series
        ending in ``+Inf`` plus ``_sum`` and ``_count``, which is what a
        Prometheus scraper expects.  ``extras`` (plain name→value pairs,
        e.g. derived ratios the engine computes on demand) render as
        gauges.
        """
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            full = prefix + name
            lines.append(f"# TYPE {full} counter")
            lines.append(f"{full} {_fmt(counter.value)}")
        gauges: List[Tuple[str, float]] = [
            (name, g.value) for name, g in sorted(self._gauges.items())
        ]
        if extras:
            gauges.extend(sorted(extras.items()))
        for name, value in gauges:
            full = prefix + name
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {_fmt(value)}")
        for name, hist in sorted(self._histograms.items()):
            full = prefix + name
            lines.append(f"# TYPE {full} histogram")
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.bucket_counts):
                cumulative += count
                lines.append(
                    f'{full}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                )
            lines.append(f'{full}_bucket{{le="+Inf"}} {hist.count}')
            lines.append(f"{full}_sum {_fmt(hist.sum)}")
            lines.append(f"{full}_count {hist.count}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def _fmt(value: float) -> str:
    """Prometheus-style number: integral values without the trailing .0."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
