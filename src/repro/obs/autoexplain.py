"""auto_explain: capture the full story of statements that ran slow.

A latency regression investigated tomorrow needs evidence recorded today.
When enabled, every user statement whose execution time crosses
``threshold_ms`` is captured — SQL text, planning/execution latency, I/O,
the full EXPLAIN ANALYZE tree (per-node actuals), and a one-line summary
of the optimizer's search — into a bounded in-memory ring mirrored to an
on-disk JSONL file, so slow-query evidence survives the process.

The capture log is bounded both ways: the ring keeps the most recent
``capacity`` captures, and the JSONL file is compacted back to the ring's
contents once appends exceed twice the capacity — the file never grows
without bound.

``analyze=True`` (the default) runs statements at FULL instrumentation
while auto_explain is enabled, so a capture carries real per-node timing;
the cost is the FULL-level overhead on every statement (see E13), which
is the same trade PostgreSQL's ``auto_explain.log_analyze`` makes.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional


@dataclass
class AutoExplainConfig:
    """Dials for the slow-statement capture hook."""

    enabled: bool = False
    threshold_ms: float = 100.0  # capture statements at or above this
    path: Optional[str] = None  # JSONL mirror; None = in-memory only
    capacity: int = 64  # captures kept (ring + compacted file)
    analyze: bool = True  # run at FULL instrumentation while enabled


class AutoExplain:
    """Bounded capture log of slow statements (see module docstring)."""

    def __init__(self, config: Optional[AutoExplainConfig] = None):
        self.config = config or AutoExplainConfig()
        self._entries: Deque[Dict[str, Any]] = deque(
            maxlen=max(1, self.config.capacity)
        )
        self._appends_since_compact = 0
        self.captured_total = 0

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    @property
    def threshold_ms(self) -> float:
        return self.config.threshold_ms

    def configure(self, **kwargs: Any) -> None:
        """Update config fields in place (``enabled=True, threshold_ms=5``)."""
        for key, value in kwargs.items():
            if not hasattr(self.config, key):
                raise ValueError(f"unknown auto_explain option {key!r}")
            setattr(self.config, key, value)
        if self.config.capacity != self._entries.maxlen:
            self._entries = deque(
                self._entries, maxlen=max(1, self.config.capacity)
            )

    # -- capture -------------------------------------------------------------

    def maybe_capture(
        self,
        sql: str,
        execution_ms: float,
        planning_ms: float,
        rows: int,
        plan_text: str,
        reads: int = 0,
        writes: int = 0,
        search_summary: Optional[str] = None,
    ) -> Optional[Dict[str, Any]]:
        """Capture one statement if it crossed the threshold.

        Returns the capture entry, or None when below threshold or
        disabled.  The entry is appended to the ring and (when ``path``
        is set) to the JSONL file.
        """
        if not self.config.enabled or execution_ms < self.config.threshold_ms:
            return None
        entry: Dict[str, Any] = {
            "captured_at": time.time(),
            "sql": sql,
            "execution_ms": execution_ms,
            "planning_ms": planning_ms,
            "rows": rows,
            "reads": reads,
            "writes": writes,
            "threshold_ms": self.config.threshold_ms,
            "plan": plan_text,
        }
        if search_summary:
            entry["search"] = search_summary
        self._entries.append(entry)
        self.captured_total += 1
        self._persist(entry)
        return entry

    def _persist(self, entry: Dict[str, Any]) -> None:
        path = self.config.path
        if path is None:
            return
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
        self._appends_since_compact += 1
        if self._appends_since_compact > 2 * max(1, self.config.capacity):
            self._compact()

    def _compact(self) -> None:
        """Rewrite the JSONL file down to the ring's contents."""
        path = self.config.path
        if path is None:
            return
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for entry in self._entries:
                handle.write(json.dumps(entry) + "\n")
        os.replace(tmp, path)
        self._appends_since_compact = 0

    # -- reading -------------------------------------------------------------

    def entries(self) -> List[Dict[str, Any]]:
        """Captures currently in the ring, oldest first."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._appends_since_compact = 0
        if self.config.path is not None and os.path.exists(self.config.path):
            os.remove(self.config.path)

    @staticmethod
    def load(path: str) -> List[Dict[str, Any]]:
        """Read a capture file back (one JSON object per line)."""
        entries = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
        return entries
