"""Lightweight span trees for tracing the planner and query lifecycle.

A :class:`Tracer` records a tree of named :class:`Span`\\ s — one per
pipeline phase (parse → view expansion → decorrelation → rewrite → join
enumeration → costing → execute) — each with a start offset, a duration,
and a free-form counter map (plans considered, rewrites fired, ...).

Spans nest by dynamic scope::

    tracer = Tracer()
    with tracer.span("query"):
        with tracer.span("plan") as sp:
            sp.add("plans_considered", 42)
    root = tracer.root            # the finished tree
    text = root.to_json()         # round-trips via Span.from_json

Every child's interval lies inside its parent's, measured with the same
clock, so the sum of child durations never exceeds the parent duration.
A disabled tracer costs one attribute check per ``span()`` call and
records nothing.

Request-scoped tracing adds identity on top of the tree shape: every
span carries a ``span_id``/``parent_id`` pair and the tracer carries a
``trace_id`` shared by every span it opens, so spans produced in forked
exchange workers (serialized over the pipe, re-attached with
:meth:`Tracer.graft`) stay linked to the request that spawned them.
Deep layers — the WAL writer, the lock manager, MVCC — reach the
request's tracer through a thread-local set by :func:`activate_tracer`
and open spans with :func:`trace_span` without any signature threading.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed phase: offset + duration (ms), counters, children."""

    __slots__ = (
        "name",
        "start_ms",
        "duration_ms",
        "counters",
        "children",
        "span_id",
        "parent_id",
        "attrs",
    )

    def __init__(
        self,
        name: str,
        start_ms: float = 0.0,
        span_id: int = 0,
        parent_id: int = 0,
    ):
        self.name = name
        self.start_ms = start_ms
        self.duration_ms = 0.0
        self.counters: Dict[str, float] = {}
        self.children: List["Span"] = []
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs: Optional[Dict[str, str]] = None

    def add(self, name: str, value: float = 1.0) -> None:
        """Accumulate a counter on this span."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def set_attr(self, name: str, value: str) -> None:
        """Attach a string attribute (lock name, table, worker id...)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[name] = str(value)

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for the first span named *name*."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def find_all(self, name: str) -> List["Span"]:
        """Every span named *name*, in walk order."""
        return [s for s in self.walk() if s.name == name]

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def child_time_ms(self) -> float:
        return sum(c.duration_ms for c in self.children)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "start_ms": self.start_ms,
            "duration_ms": self.duration_ms,
        }
        if self.span_id:
            out["span_id"] = self.span_id
        if self.parent_id:
            out["parent_id"] = self.parent_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(
            data["name"],
            data.get("start_ms", 0.0),
            span_id=data.get("span_id", 0),
            parent_id=data.get("parent_id", 0),
        )
        span.duration_ms = data.get("duration_ms", 0.0)
        span.counters = dict(data.get("counters", {}))
        attrs = data.get("attrs")
        span.attrs = dict(attrs) if attrs else None
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Span":
        return cls.from_dict(json.loads(text))

    def pretty(self, indent: int = 0) -> str:
        attrs = (
            " [" + " ".join(f"{k}={v}" for k, v in self.attrs.items()) + "]"
            if self.attrs
            else ""
        )
        counters = (
            "  " + " ".join(f"{k}={v:g}" for k, v in self.counters.items())
            if self.counters
            else ""
        )
        lines = [
            "  " * indent
            + f"{self.name}: {self.duration_ms:.3f} ms{attrs}{counters}"
        ]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_ms:.3f}ms, "
            f"{len(self.children)} children)"
        )


class _NullSpan:
    """Shared sink for disabled tracers: accepts counters, keeps nothing."""

    __slots__ = ()

    def add(self, name: str, value: float = 1.0) -> None:
        pass

    def set_attr(self, name: str, value: str) -> None:
        pass


NULL_SPAN = _NullSpan()


def new_trace_id() -> str:
    """A 16-hex-digit request trace id."""
    return uuid.uuid4().hex[:16]


class Tracer:
    """Builds one span tree per traced activity.

    The first ``span()`` entered becomes the root; later spans nest under
    whichever span is currently open.  ``root`` stays valid (and keeps
    being filled in) until the outermost span exits.

    *trace_id* names the request this tree belongs to (generated when
    omitted); *id_base* offsets the span-id counter so trees built in
    forked workers never collide with the parent's ids; *t0* pins the
    zero point of the clock so a worker's offsets land on the same
    timeline as the parent's (``perf_counter`` is CLOCK_MONOTONIC, valid
    across fork).
    """

    def __init__(
        self,
        enabled: bool = True,
        trace_id: Optional[str] = None,
        id_base: int = 0,
        t0: Optional[float] = None,
    ):
        self.enabled = enabled
        self.trace_id = trace_id or (new_trace_id() if enabled else "")
        self.root: Optional[Span] = None
        self._stack: List[Span] = []
        self._next_id = id_base + 1
        if t0 is not None:
            self._t0 = t0
            self._t0_pinned = True
        else:
            self._t0 = 0.0
            self._t0_pinned = False

    def _alloc_id(self) -> int:
        sid = self._next_id
        self._next_id += 1
        return sid

    def now_ms(self) -> float:
        """Milliseconds since this tracer's zero point."""
        return (time.perf_counter() - self._t0) * 1000.0

    @contextmanager
    def span(self, name: str, merge: bool = False):
        """Open a child span under the innermost open span.

        With ``merge=True``, a closed sibling of the same name (the
        previous child of the current parent) absorbs this interval
        instead of appending a new node: its duration accumulates and a
        ``count`` counter tracks how many intervals were folded in.
        Per-record hot paths (``wal.append`` during a bulk load) use it
        to keep trees bounded.
        """
        if not self.enabled:
            yield NULL_SPAN
            return
        now = time.perf_counter()
        if self.root is None and not self._t0_pinned:
            self._t0 = now
        if merge and self._stack:
            siblings = self._stack[-1].children
            if siblings and siblings[-1].name == name:
                prior = siblings[-1]
                t_in = time.perf_counter()
                try:
                    yield prior
                finally:
                    prior.duration_ms += (
                        (time.perf_counter() - t_in) * 1000.0
                    )
                    prior.add("count", 1.0)
                return
        span = Span(name, (now - self._t0) * 1000.0, span_id=self._alloc_id())
        if self._stack:
            parent = self._stack[-1]
            span.parent_id = parent.span_id
            parent.children.append(span)
        elif self.root is None:
            self.root = span
        else:
            # a second top-level span: keep the tree connected
            span.parent_id = self.root.span_id
            self.root.children.append(span)
        self._stack.append(span)
        try:
            if merge:
                span.add("count", 1.0)
            yield span
        finally:
            self._stack.pop()
            span.duration_ms = (
                (time.perf_counter() - self._t0) * 1000.0 - span.start_ms
            )

    def record_span(
        self,
        name: str,
        duration_ms: float,
        start_ms: Optional[float] = None,
        attrs: Optional[Dict[str, str]] = None,
    ) -> Optional[Span]:
        """Attach a pre-measured interval (e.g. timed before the tracer
        existed, like protocol decode) under the current span."""
        if not self.enabled:
            return None
        now_ms = (time.perf_counter() - self._t0) * 1000.0
        # clamp: an interval measured before the root opened (protocol
        # decode) would otherwise start at a negative offset
        start = now_ms - duration_ms if start_ms is None else start_ms
        span = Span(name, max(0.0, start), span_id=self._alloc_id())
        span.duration_ms = duration_ms
        if attrs:
            for k, v in attrs.items():
                span.set_attr(k, v)
        if self._stack:
            parent = self._stack[-1]
            span.parent_id = parent.span_id
            parent.children.append(span)
        elif self.root is not None:
            span.parent_id = self.root.span_id
            self.root.children.append(span)
        else:
            self.root = span
        return span

    def graft(self, span: Span) -> None:
        """Attach an externally built subtree (a forked worker's spans,
        deserialized from the pipe) under the innermost open span."""
        if not self.enabled or span is None:
            return
        if self._stack:
            parent = self._stack[-1]
        elif self.root is not None:
            parent = self.root
        else:
            self.root = span
            return
        span.parent_id = parent.span_id
        parent.children.append(span)

    def current(self):
        """The innermost open span (NULL_SPAN when disabled or idle)."""
        if self.enabled and self._stack:
            return self._stack[-1]
        return NULL_SPAN

    def add(self, name: str, value: float = 1.0) -> None:
        """Counter on the innermost open span."""
        self.current().add(name, value)


class RequestTrace:
    """One captured request: identity, statement, and the finished tree."""

    __slots__ = (
        "trace_id",
        "sql",
        "session_id",
        "root",
        "duration_ms",
        "captured_at",
    )

    def __init__(
        self,
        trace_id: str,
        sql: str,
        root: Span,
        session_id: Optional[int] = None,
        captured_at: float = 0.0,
    ):
        self.trace_id = trace_id
        self.sql = sql
        self.session_id = session_id
        self.root = root
        self.duration_ms = root.duration_ms if root is not None else 0.0
        self.captured_at = captured_at or time.time()

    def span_count(self) -> int:
        return sum(1 for _ in self.root.walk()) if self.root else 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "sql": self.sql,
            "session_id": self.session_id,
            "duration_ms": self.duration_ms,
            "captured_at": self.captured_at,
            "root": self.root.to_dict() if self.root else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RequestTrace":
        root = data.get("root")
        trace = cls(
            data["trace_id"],
            data.get("sql", ""),
            Span.from_dict(root) if root else Span("request"),
            session_id=data.get("session_id"),
            captured_at=data.get("captured_at", 0.0),
        )
        trace.duration_ms = data.get("duration_ms", trace.duration_ms)
        return trace

    def pretty(self) -> str:
        head = f"trace {self.trace_id}  {self.duration_ms:.3f} ms"
        if self.sql:
            head += f"  {self.sql!r}"
        return head + "\n" + (self.root.pretty(1) if self.root else "")


# -- thread-local active tracer -----------------------------------------------
#
# The request's tracer is installed for the duration of Database.execute
# (and for a forked worker's drain loop); deep layers that never see the
# request — WalWriter.flush_to, TxnManager.lock_table, VersionStore —
# open spans through trace_span() and pay one thread-local read when no
# trace is active.

_ACTIVE = threading.local()


def active_tracer() -> Optional[Tracer]:
    """The tracer installed on this thread, if any (enabled or not)."""
    return getattr(_ACTIVE, "tracer", None)


@contextmanager
def activate_tracer(tracer: Optional[Tracer]):
    """Install *tracer* as this thread's active tracer for the scope."""
    prev = getattr(_ACTIVE, "tracer", None)
    _ACTIVE.tracer = tracer
    try:
        yield tracer
    finally:
        _ACTIVE.tracer = prev


@contextmanager
def trace_span(name: str, merge: bool = False):
    """Open *name* on the thread's active tracer; NULL_SPAN when idle."""
    tracer = getattr(_ACTIVE, "tracer", None)
    if tracer is None or not tracer.enabled:
        yield NULL_SPAN
        return
    with tracer.span(name, merge=merge) as sp:
        yield sp
