"""Lightweight span trees for tracing the planner and query lifecycle.

A :class:`Tracer` records a tree of named :class:`Span`\\ s — one per
pipeline phase (parse → view expansion → decorrelation → rewrite → join
enumeration → costing → execute) — each with a start offset, a duration,
and a free-form counter map (plans considered, rewrites fired, ...).

Spans nest by dynamic scope::

    tracer = Tracer()
    with tracer.span("query"):
        with tracer.span("plan") as sp:
            sp.add("plans_considered", 42)
    root = tracer.root            # the finished tree
    text = root.to_json()         # round-trips via Span.from_json

Every child's interval lies inside its parent's, measured with the same
clock, so the sum of child durations never exceeds the parent duration.
A disabled tracer costs one attribute check per ``span()`` call and
records nothing.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed phase: offset + duration (ms), counters, children."""

    __slots__ = ("name", "start_ms", "duration_ms", "counters", "children")

    def __init__(self, name: str, start_ms: float = 0.0):
        self.name = name
        self.start_ms = start_ms
        self.duration_ms = 0.0
        self.counters: Dict[str, float] = {}
        self.children: List["Span"] = []

    def add(self, name: str, value: float = 1.0) -> None:
        """Accumulate a counter on this span."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for the first span named *name*."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def child_time_ms(self) -> float:
        return sum(c.duration_ms for c in self.children)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "start_ms": self.start_ms,
            "duration_ms": self.duration_ms,
        }
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(data["name"], data.get("start_ms", 0.0))
        span.duration_ms = data.get("duration_ms", 0.0)
        span.counters = dict(data.get("counters", {}))
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Span":
        return cls.from_dict(json.loads(text))

    def pretty(self, indent: int = 0) -> str:
        counters = (
            "  " + " ".join(f"{k}={v:g}" for k, v in self.counters.items())
            if self.counters
            else ""
        )
        lines = [
            "  " * indent
            + f"{self.name}: {self.duration_ms:.3f} ms{counters}"
        ]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_ms:.3f}ms, "
            f"{len(self.children)} children)"
        )


class _NullSpan:
    """Shared sink for disabled tracers: accepts counters, keeps nothing."""

    __slots__ = ()

    def add(self, name: str, value: float = 1.0) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Builds one span tree per traced activity.

    The first ``span()`` entered becomes the root; later spans nest under
    whichever span is currently open.  ``root`` stays valid (and keeps
    being filled in) until the outermost span exits.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.root: Optional[Span] = None
        self._stack: List[Span] = []
        self._t0 = 0.0

    @contextmanager
    def span(self, name: str):
        if not self.enabled:
            yield NULL_SPAN
            return
        now = time.perf_counter()
        if self.root is None:
            self._t0 = now
        span = Span(name, (now - self._t0) * 1000.0)
        if self._stack:
            self._stack[-1].children.append(span)
        elif self.root is None:
            self.root = span
        else:
            # a second top-level span: keep the tree connected
            self.root.children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.duration_ms = (
                (time.perf_counter() - self._t0) * 1000.0 - span.start_ms
            )

    def current(self):
        """The innermost open span (NULL_SPAN when disabled or idle)."""
        if self.enabled and self._stack:
            return self._stack[-1]
        return NULL_SPAN

    def add(self, name: str, value: float = 1.0) -> None:
        """Counter on the innermost open span."""
        self.current().add(name, value)
