"""Feedback-driven cardinality correction (the LEO idea, miniature).

Every instrumented execution leaves estimated-vs-actual row counts on the
plan tree.  :meth:`FeedbackStore.harvest` folds those pairs into per-key
aggregates, where a key identifies *what was being estimated*: the set of
relations joined plus a literal-free fingerprint of the predicates applied
(:func:`feedback_key`).  The planner annotates every scan and join
candidate with its key at pricing time (``PhysicalPlan.feedback_key``), so
harvesting is a plain tree walk and — crucially — the key the estimator
looks up during later planning is byte-identical to the key the actuals
were recorded under.

A correction is the geometric mean of observed ``actual / estimated``
ratios, clamped to ``[1/clamp, clamp]``.  Corrections only ever adjust
*estimates*; plans change, results cannot (the differential property test
pins this).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence


def normalized_predicate(expr: Any) -> str:
    """Literal-free text of one predicate: constants become ``'?'`` so the
    same query shape with different constants shares a feedback key."""
    from ..expr import Literal, map_expr

    stripped = map_expr(
        expr, lambda e: Literal("?") if isinstance(e, Literal) else e
    )
    return str(stripped)


def feedback_key(tables: Iterable[str], conjuncts: Sequence[Any]) -> str:
    """Stable key for one estimation target: sorted relation identifiers +
    sorted literal-free predicate fingerprints."""
    parts = sorted(str(t) for t in tables)
    preds = sorted(normalized_predicate(c) for c in conjuncts)
    raw = "|".join(parts) + "::" + "&".join(preds)
    return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]


def scan_key(table_name: str, binding: str, conjuncts: Sequence[Any]) -> str:
    """Feedback key for one base-relation scan (all access paths for the
    same binding+filters share it)."""
    return feedback_key([f"{table_name} AS {binding}"], conjuncts)


@dataclass
class FeedbackEntry:
    """Aggregated est-vs-actual evidence for one key."""

    samples: int = 0
    log_ratio_sum: float = 0.0  # sum of ln(actual/est)
    est_sum: float = 0.0
    actual_sum: float = 0.0
    worst_q: float = 1.0

    def observe(self, estimated: float, actual: float) -> None:
        est = max(float(estimated), 1.0)
        act = max(float(actual), 1.0)
        self.samples += 1
        self.log_ratio_sum += math.log(act / est)
        self.est_sum += est
        self.actual_sum += act
        self.worst_q = max(self.worst_q, est / act, act / est)

    @property
    def ratio(self) -> float:
        """Geometric mean of actual/estimated (> 1 = underestimation)."""
        if not self.samples:
            return 1.0
        return math.exp(self.log_ratio_sum / self.samples)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "samples": self.samples,
            "log_ratio_sum": self.log_ratio_sum,
            "est_sum": self.est_sum,
            "actual_sum": self.actual_sum,
            "worst_q": self.worst_q,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FeedbackEntry":
        return cls(
            samples=data.get("samples", 0),
            log_ratio_sum=data.get("log_ratio_sum", 0.0),
            est_sum=data.get("est_sum", 0.0),
            actual_sum=data.get("actual_sum", 0.0),
            worst_q=data.get("worst_q", 1.0),
        )


@dataclass
class FeedbackStore:
    """Keyed est-vs-actual aggregates plus the correction lookup.

    ``clamp`` bounds how far one learned factor may move an estimate
    (default 64x either way); ``min_samples`` is the evidence threshold
    before a correction applies.
    """

    clamp: float = 64.0
    min_samples: int = 1
    _entries: Dict[str, FeedbackEntry] = field(default_factory=dict)

    def record(self, key: str, estimated: float, actual: float) -> None:
        if not (
            math.isfinite(estimated)
            and math.isfinite(actual)
            and estimated >= 0
            and actual >= 0
        ):
            return
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = FeedbackEntry()
        entry.observe(estimated, actual)

    def correction(self, key: Optional[str]) -> float:
        """Learned multiplier for *key* (1.0 = no evidence / no change)."""
        if key is None:
            return 1.0
        entry = self._entries.get(key)
        if entry is None or entry.samples < self.min_samples:
            return 1.0
        return min(self.clamp, max(1.0 / self.clamp, entry.ratio))

    def has(self, key: Optional[str]) -> bool:
        entry = self._entries.get(key) if key is not None else None
        return entry is not None and entry.samples >= self.min_samples

    def harvest(self, plan: Any) -> int:
        """Fold one executed plan's per-node actuals into the store.

        Nodes count when the planner stamped a ``feedback_key`` and the
        executor filled ``actual_rows``; rescanned nodes (loops > 1)
        contribute their per-loop average, matching the per-scan estimate.
        Returns the number of observations recorded.
        """
        recorded = 0
        stack = [plan]
        while stack:
            node = stack.pop()
            stack.extend(node.children())
            key = getattr(node, "feedback_key", None)
            actual = getattr(node, "actual_rows", None)
            if key is None or actual is None:
                continue
            loops = max(1, getattr(node, "actual_loops", 1) or 1)
            self.record(key, float(node.est_rows), actual / loops)
            recorded += 1
        return recorded

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Dict[str, FeedbackEntry]:
        return dict(self._entries)

    def worst(self, n: int = 10) -> List[Any]:
        """(key, entry) pairs with the largest observed q-error."""
        ranked = sorted(
            self._entries.items(), key=lambda kv: kv[1].worst_q, reverse=True
        )
        return ranked[:n]

    def clear(self) -> None:
        self._entries.clear()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "clamp": self.clamp,
            "min_samples": self.min_samples,
            "entries": {k: e.as_dict() for k, e in self._entries.items()},
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FeedbackStore":
        store = cls(
            clamp=data.get("clamp", 64.0),
            min_samples=data.get("min_samples", 1),
        )
        for key, entry in data.get("entries", {}).items():
            store._entries[key] = FeedbackEntry.from_dict(entry)
        return store

    @classmethod
    def from_json(cls, text: str) -> "FeedbackStore":
        return cls.from_dict(json.loads(text))
