"""Observability configuration: what the engine records, and how deeply.

Two independent dials:

* :class:`InstrumentLevel` — how much the executor measures per operator.
  ``ROWS`` (the default) annotates actual row counts and loop counts, the
  historical behaviour of this engine.  ``FULL`` additionally times every
  ``next()`` call and attributes buffer/disk traffic to the operator that
  caused it — what ``EXPLAIN ANALYZE`` uses.  ``OFF`` runs the bare
  iterator tree with zero bookkeeping.
* :class:`ObsConfig` — which subsystems are live on a
  :class:`~repro.engine.Database`: planner span tracing, the metrics
  registry, and the structured query log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from .autoexplain import AutoExplainConfig


class InstrumentLevel(enum.IntEnum):
    """Per-operator measurement depth for one execution."""

    OFF = 0  # no per-node annotation at all
    ROWS = 1  # actual_rows + actual_loops (cheap; the default)
    FULL = 2  # + per-next() timing and attributed buffer/disk I/O


@dataclass
class ObsConfig:
    """Which observability subsystems a Database keeps live.

    The defaults are cheap enough to leave on: tracing adds a handful of
    clock reads per query, metrics a few dict updates.  ``ObsConfig.off()``
    restores the uninstrumented baseline (row counting stays on — plan
    actuals predate this subsystem and the experiments rely on them).
    """

    trace: bool = True
    metrics: bool = True
    query_log_size: int = 256
    instrument: InstrumentLevel = InstrumentLevel.ROWS
    baselines: bool = True  # plan-baseline store + plan-change detection
    feedback: bool = True  # harvest est-vs-actual into the FeedbackStore
    waits: bool = True  # wait-event accounting (I/O, lock, CPU, exchange)
    system_tables: bool = True  # register the sys_stat_* virtual tables
    #: inter-query plan cache (normalize_statement-keyed physical plans);
    #: EXPLAIN ANALYZE always bypasses it so actuals reflect a cold plan
    plan_cache: bool = True
    plan_cache_size: int = 128
    #: invalidation-aware result cache for read-only statements; off by
    #: default (turning it on trades staleness tracking for latency)
    result_cache: bool = False
    result_cache_size: int = 64
    result_cache_max_rows: int = 10_000
    #: slow-statement capture; disabled by default (set ``enabled=True``
    #: or call ``Database.auto_explain.configure(enabled=True, ...)``)
    auto_explain: Optional[AutoExplainConfig] = field(default=None)
    #: capacity of the slow-trace ring (request traces captured when
    #: auto_explain is enabled and the request crosses its threshold;
    #: served by ``sys_stat_traces``)
    trace_ring_size: int = 64
    #: fingerprints tracked by the per-statement latency store (the
    #: ``statement_latency_ms`` quantile families in the Prometheus
    #: exposition); new fingerprints beyond the cap are dropped
    latency_fingerprints: int = 128

    @classmethod
    def off(cls) -> "ObsConfig":
        """Disable tracing, metrics, the query log, baselines, feedback,
        wait accounting, auto_explain and both query caches (system
        tables stay registered — they simply report empty/zero
        statistics)."""
        return cls(
            trace=False,
            metrics=False,
            query_log_size=0,
            instrument=InstrumentLevel.ROWS,
            baselines=False,
            feedback=False,
            waits=False,
            auto_explain=AutoExplainConfig(enabled=False),
            plan_cache=False,
            result_cache=False,
        )
