"""Query-lifecycle and optimizer observability.

The pieces (all engine-independent; the engine threads them through):

* :class:`InstrumentLevel` / :class:`ObsConfig` — measurement depth and
  which subsystems are live (``config``).
* :class:`Tracer` / :class:`Span` — planner/query span trees with JSON
  round-tripping (``trace``).
* :class:`MetricsRegistry` — process-wide counters, gauges, latency
  histograms, with a Prometheus text exporter (``metrics``).
* :class:`QueryLog` / :func:`plan_fingerprint` — the per-query feedback
  store: est vs. actual cardinality, cost, latency (``querylog``).
* :class:`SearchTrace` — what the optimizer *considered*: memo entries,
  pruning decisions, ranked alternatives per join region (``search``).
* :class:`PlanBaselineStore` — plan-change/regression detection keyed by
  normalized statement fingerprint (``baseline``), rendered by
  :func:`plan_diff` (``plandiff``).
* :class:`FeedbackStore` — LEO-style est-vs-actual aggregates keyed by
  (relation set, predicate fingerprint), driving opt-in estimate
  correction (``feedback``).
* :class:`WaitEventStats` — cumulative wait-event accounting: where time
  goes (I/O vs. lock vs. CPU vs. exchange), fed by storage/executor/
  exchange instrumentation (``waits``).
* :func:`register_system_tables` / :class:`ActivityRegistry` — the
  ``sys_stat_*`` virtual tables the engine serves through its own SQL,
  and the live-statement registry behind ``sys_stat_activity``
  (``systables``).
* :class:`AutoExplain` — slow-statement capture: full EXPLAIN ANALYZE
  trees persisted to a bounded JSONL log (``autoexplain``).
"""

from .autoexplain import AutoExplain, AutoExplainConfig
from .baseline import (
    PlanBaseline,
    PlanBaselineStore,
    PlanChange,
    normalize_statement,
    statement_fingerprint,
)
from .config import InstrumentLevel, ObsConfig
from .feedback import (
    FeedbackEntry,
    FeedbackStore,
    feedback_key,
    normalized_predicate,
    scan_key,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatementLatency,
)
from .plandiff import plan_diff, plan_shape_lines, plan_shape_text
from .querylog import QueryLog, QueryLogRecord, plan_fingerprint, q_error
from .search import PathAlt, RegionSearch, SearchTrace, plan_shape
from .systables import (
    SYSTEM_TABLE_NAMES,
    ActivityEntry,
    ActivityRegistry,
    register_system_tables,
)
from .trace import (
    NULL_SPAN,
    RequestTrace,
    Span,
    Tracer,
    activate_tracer,
    active_tracer,
    new_trace_id,
    trace_span,
)
from .traceexport import (
    TraceRing,
    chrome_trace_events,
    export_chrome_trace,
    validate_chrome_trace,
)
from .waits import WaitEventStats

__all__ = [
    "AutoExplain",
    "AutoExplainConfig",
    "WaitEventStats",
    "ActivityEntry",
    "ActivityRegistry",
    "register_system_tables",
    "SYSTEM_TABLE_NAMES",
    "InstrumentLevel",
    "ObsConfig",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "QueryLog",
    "QueryLogRecord",
    "plan_fingerprint",
    "q_error",
    "Span",
    "Tracer",
    "NULL_SPAN",
    "RequestTrace",
    "new_trace_id",
    "active_tracer",
    "activate_tracer",
    "trace_span",
    "TraceRing",
    "chrome_trace_events",
    "export_chrome_trace",
    "validate_chrome_trace",
    "StatementLatency",
    "SearchTrace",
    "RegionSearch",
    "PathAlt",
    "plan_shape",
    "PlanBaseline",
    "PlanBaselineStore",
    "PlanChange",
    "normalize_statement",
    "statement_fingerprint",
    "plan_diff",
    "plan_shape_lines",
    "plan_shape_text",
    "FeedbackStore",
    "FeedbackEntry",
    "feedback_key",
    "scan_key",
    "normalized_predicate",
]
