"""Query-lifecycle observability: instrumentation, tracing, metrics, log.

The pieces (all engine-independent; the engine threads them through):

* :class:`InstrumentLevel` / :class:`ObsConfig` — measurement depth and
  which subsystems are live (``config``).
* :class:`Tracer` / :class:`Span` — planner/query span trees with JSON
  round-tripping (``trace``).
* :class:`MetricsRegistry` — process-wide counters, gauges, latency
  histograms (``metrics``).
* :class:`QueryLog` / :func:`plan_fingerprint` — the per-query feedback
  store: est vs. actual cardinality, cost, latency (``querylog``).
"""

from .config import InstrumentLevel, ObsConfig
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .querylog import QueryLog, QueryLogRecord, plan_fingerprint, q_error
from .trace import NULL_SPAN, Span, Tracer

__all__ = [
    "InstrumentLevel",
    "ObsConfig",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "QueryLog",
    "QueryLogRecord",
    "plan_fingerprint",
    "q_error",
    "Span",
    "Tracer",
    "NULL_SPAN",
]
