"""Chrome trace-event export for request traces.

Converts a :class:`~repro.obs.trace.RequestTrace` (or a bare
:class:`~repro.obs.trace.Span` tree) into the Chrome trace-event JSON
format — the ``{"traceEvents": [...]}`` object that ``chrome://tracing``
and Perfetto (https://ui.perfetto.dev) load directly.  Each span becomes
one complete ("ph": "X") event with microsecond ``ts``/``dur``; spans
grafted from forked exchange workers carry a ``worker`` attribute and
are placed on their own track (``tid``) so lock waits, fsyncs, and
per-worker execution render as parallel lanes under the request.

:func:`validate_chrome_trace` is the structural validator the tests and
the CI smoke step hold exported files to — a cheap schema check, not a
full re-implementation of the viewer's parser.

:class:`TraceRing` is the bounded ring of recently captured slow
requests behind ``sys_stat_traces``.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Dict, List, Optional, Union

from .trace import RequestTrace, Span

_DEFAULT_PID = 1


def _span_tid(span: Span, inherited: int) -> int:
    """Workers get their own track; everything else stays on the parent's."""
    if span.attrs and "worker" in span.attrs:
        try:
            return 2 + int(span.attrs["worker"])
        except ValueError:
            return inherited
    return inherited


def chrome_trace_events(
    trace: Union[RequestTrace, Span],
    process_name: str = "repro",
) -> Dict[str, Any]:
    """Render a span tree as a Chrome trace-event JSON object."""
    if isinstance(trace, RequestTrace):
        root, trace_id, sql = trace.root, trace.trace_id, trace.sql
    else:
        root, trace_id, sql = trace, "", ""
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": _DEFAULT_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]

    def emit(span: Span, tid: int) -> None:
        tid = _span_tid(span, tid)
        args: Dict[str, Any] = {}
        if span.counters:
            args.update(span.counters)
        if span.attrs:
            args.update(span.attrs)
        if span is root:
            if trace_id:
                args["trace_id"] = trace_id
            if sql:
                args["sql"] = sql
        event: Dict[str, Any] = {
            "ph": "X",
            "pid": _DEFAULT_PID,
            "tid": tid,
            "name": span.name,
            "ts": round(span.start_ms * 1000.0, 3),
            "dur": round(max(span.duration_ms, 0.0) * 1000.0, 3),
        }
        if args:
            event["args"] = args
        events.append(event)
        for child in span.children:
            emit(child, tid)

    if root is not None:
        emit(root, 1)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(obj: Any) -> List[str]:
    """Structurally validate a Chrome trace-event object.

    Returns a list of problems (empty means valid).  Checks the shape
    Perfetto's legacy-JSON importer requires: a ``traceEvents`` list of
    dicts, every event with a string ``name``, a known phase, integer
    ``pid``/``tid``, and — for complete events — non-negative numeric
    ``ts`` and ``dur``.
    """
    problems: List[str] = []
    if not isinstance(obj, dict):
        return ["top-level value is not an object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "B", "E", "M", "i", "C"):
            problems.append(f"{where}: unknown phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: {key} is not an int")
        if ph == "X":
            for key in ("ts", "dur"):
                value = ev.get(key)
                if not isinstance(value, (int, float)):
                    problems.append(f"{where}: {key} is not a number")
                elif value < 0:
                    problems.append(f"{where}: {key} is negative")
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"{where}: args is not an object")
    return problems


def export_chrome_trace(
    trace: Union[RequestTrace, Span],
    path: Optional[str] = None,
) -> str:
    """Render to JSON text; optionally write the file Perfetto opens."""
    text = json.dumps(chrome_trace_events(trace), indent=1)
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text


class TraceRing:
    """Bounded, thread-safe ring of recently captured request traces."""

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.captured = 0

    def record(self, trace: RequestTrace) -> None:
        with self._lock:
            self._ring.append(trace)
            self.captured += 1

    def entries(self) -> List[RequestTrace]:
        with self._lock:
            return list(self._ring)

    def last(self) -> Optional[RequestTrace]:
        with self._lock:
            return self._ring[-1] if self._ring else None

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
