"""Structured query log: the per-query feedback record.

Every user-facing statement — SELECTs and, since PR 10, DML — leaves one
:class:`QueryLogRecord` in a bounded ring buffer: the SQL text, a
structural *plan fingerprint* (stable across literal changes), estimated
vs. actual cardinality and the resulting q-error, modeled cost vs.
measured I/O, planning/execution latency, and session/transaction
attribution (``kind``/``session_id``/``txn_id``).

This is the feedback store estimator-correction work needs: group records
by fingerprint, compare ``est_rows`` with ``actual_rows``, and you have
the classic observed-cardinality training signal without rerunning
anything.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections import deque
from dataclasses import asdict, dataclass, fields
from typing import Any, Deque, Dict, List, Optional


def q_error(estimated: float, actual: float) -> float:
    """The standard cardinality-estimation error metric (always ≥ 1).

    Edge cases are defined, not accidental: zero (or negative) counts on
    either side are clamped to one row before the ratio — so ``est=0,
    act=0`` is a perfect 1.0, and ``est=0, act=100`` scores the same 100x
    as ``est=1, act=100`` instead of dividing by zero.  Non-finite inputs
    (NaN/inf from broken estimates) return ``inf`` so they sort to the
    top of :meth:`QueryLog.top_misestimates` rather than poisoning the
    ordering with NaN comparisons.
    """
    if not (math.isfinite(estimated) and math.isfinite(actual)):
        return math.inf
    est = max(estimated, 1.0)
    act = max(actual, 1.0)
    return max(est / act, act / est)


def plan_fingerprint(plan: Any) -> str:
    """Structural hash of a physical plan: operator kinds, shapes, and the
    tables/indexes they touch — but not predicate literals, so the same
    plan shape for different constants shares a fingerprint."""
    parts: List[str] = []

    def visit(node: Any, depth: int) -> None:
        label = type(node).__name__
        table = getattr(node, "table", None)
        if table is not None:
            label += f":{getattr(table, 'name', table)}"
        index = getattr(node, "index", None)
        if index is not None:
            label += f":{getattr(index, 'name', index)}"
        parts.append(f"{depth}/{label}")
        for child in node.children():
            visit(child, depth + 1)

    visit(plan, 0)
    return hashlib.sha1("|".join(parts).encode("utf-8")).hexdigest()[:12]


@dataclass
class QueryLogRecord:
    """One executed query's feedback row."""

    sql: str
    fingerprint: str
    est_rows: float
    actual_rows: int
    q_error: float
    est_cost: float
    actual_reads: int
    actual_writes: int
    planning_ms: float
    execution_ms: float
    spills: int = 0
    temp_files: int = 0
    parallel_workers: int = 0
    plan_changed: bool = False  # chosen plan differs from the baseline
    baseline_cost_delta: float = 0.0  # new est_cost - baseline est_cost
    buffer_hits: int = 0  # pages served from the buffer pool
    plan_cache_hit: bool = False  # physical plan reused from the plan cache
    result_cache_hit: bool = False  # rows served from the result cache
    kind: str = "select"  # select | insert | update | delete
    session_id: int = 0  # owning session (0 = direct Database call)
    txn_id: int = 0  # transaction the statement ran in (0 = autocommit)

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QueryLogRecord":
        """Inverse of :meth:`as_dict`.  Unknown keys are rejected (a
        field added to the dataclass but missing here would silently
        drop data — the round-trip tests enumerate ``fields()`` so any
        serialization omission fails loudly); absent optional fields take
        their defaults, so logs persisted by older versions still load."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown QueryLogRecord fields: {sorted(unknown)}")
        return cls(**data)


class QueryLog:
    """Bounded ring of :class:`QueryLogRecord`; capacity 0 disables it."""

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._records: Deque[QueryLogRecord] = deque(
            maxlen=capacity if capacity > 0 else 1
        )

    def record(self, entry: QueryLogRecord) -> None:
        if self.capacity > 0:
            self._records.append(entry)

    def __len__(self) -> int:
        return len(self._records) if self.capacity > 0 else 0

    def entries(self) -> List[QueryLogRecord]:
        return list(self._records) if self.capacity > 0 else []

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [r.as_dict() for r in self.entries()]

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dicts(), indent=indent)

    @classmethod
    def from_json(cls, text: str, capacity: int = 256) -> "QueryLog":
        """Rebuild a log from :meth:`to_json` output (round-trip)."""
        log = cls(capacity)
        for data in json.loads(text):
            log.record(QueryLogRecord.from_dict(data))
        return log

    def worst_estimates(self, n: int = 10) -> List[QueryLogRecord]:
        """The n records with the largest cardinality q-error — where the
        estimator most needs correcting.  NaN q-errors (which no longer
        occur for new records, but may exist in persisted logs) sort as
        infinite so the ordering stays total."""

        def sort_key(r: QueryLogRecord) -> float:
            return r.q_error if not math.isnan(r.q_error) else math.inf

        return sorted(self.entries(), key=sort_key, reverse=True)[:n]

    #: Alias: the operational name for the same ranking.
    top_misestimates = worst_estimates

    def plan_changes(self) -> List[QueryLogRecord]:
        """Records whose chosen plan differed from the stored baseline."""
        return [r for r in self.entries() if r.plan_changed]

    def by_fingerprint(self) -> Dict[str, List[QueryLogRecord]]:
        out: Dict[str, List[QueryLogRecord]] = {}
        for entry in self.entries():
            out.setdefault(entry.fingerprint, []).append(entry)
        return out

    def clear(self) -> None:
        self._records.clear()
