"""System-R style dynamic-programming join enumeration.

The enumerator works bottom-up over connected subsets of the join graph,
keeping — per subset — the cheapest subplan *per interesting order* (the
classic refinement that lets a costlier-but-sorted subplan survive because
it saves a sort at a merge join or ORDER BY above).

Join methods considered when combining two subplans:

* block nested loop (always applicable),
* index nested loop (right side is a single base relation with an index on
  its join column),
* sort-merge (equi-joins; sorts inserted as needed, orders propagate),
* hash join (equi-joins; build side = right).

Modes: ``left_deep`` (the 1977-era search space) and bushy.  Cross products
are avoided unless the graph is disconnected (or ``allow_cross=True``).

Planning-effort counters (subsets and plans considered) feed experiment E5.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..algebra import JoinGraph
from ..expr import (
    ColEqCol,
    ColumnRef,
    Expr,
    classify_conjunct,
    conjoin,
)
from ..obs import RegionSearch, feedback_key, scan_key
from ..physical import PHashJoin, PIndexNLJoin, PNestedLoopJoin, PSort, PSortMergeJoin, PhysicalPlan
from ..types import Schema
from .access import access_paths
from .cost import Cost, CostModel
from .estimate import Estimator, pages_for


@dataclass
class SubPlan:
    """A priced physical plan for a subset of relations."""

    plan: PhysicalPlan
    cost: Cost
    rows: float
    order: Optional[str]  # qualified column name the output is sorted on
    relations: FrozenSet[str]

    @property
    def schema(self) -> Schema:
        return self.plan.schema

    def pages(self, page_size: int = 4096) -> float:
        return pages_for(self.rows, self.schema.estimated_row_bytes(), page_size)


@dataclass
class PlannerStats:
    """Search-effort counters for the planning-time experiments."""

    subsets: int = 0
    plans_considered: int = 0
    plans_kept: int = 0


class DPPlanner:
    """Cost-based join-order enumeration over a join graph."""

    def __init__(
        self,
        graph: JoinGraph,
        estimator: Estimator,
        model: CostModel,
        left_deep: bool = True,
        use_interesting_orders: bool = True,
        allow_cross: bool = False,
        interesting_orders: Optional[Set[str]] = None,
        page_size: int = 4096,
        needed_columns: Optional[Dict[str, Set[str]]] = None,
        search: Optional[RegionSearch] = None,
    ):
        self.graph = graph
        self.estimator = estimator
        self.model = model
        self.left_deep = left_deep
        self.use_interesting_orders = use_interesting_orders
        self.allow_cross = allow_cross or graph.has_cross_product()
        self.page_size = page_size
        #: per-binding qualified columns required above the scan; enables
        #: index-only access paths when an index covers them.
        self.needed_columns = needed_columns or {}
        self.stats = PlannerStats()
        #: optional RegionSearch the enumeration is recorded into
        self.search = search
        self._rows_memo: Dict[FrozenSet[str], float] = {}
        self._key_memo: Dict[FrozenSet[str], str] = {}
        self._interesting = interesting_orders
        if self._interesting is None:
            self._interesting = self._default_interesting_orders()

    # -- public entry -------------------------------------------------------------

    def plan(self) -> SubPlan:
        """Return the overall cheapest full plan (ignoring output order)."""
        table = self.plan_all_orders()
        return min(table.values(), key=lambda sp: sp.cost.total)

    def plan_all_orders(self) -> Dict[Optional[str], SubPlan]:
        """Best plan per interesting order for the full relation set."""
        bindings = list(self.graph.relations)
        n = len(bindings)
        best: Dict[FrozenSet[str], Dict[Optional[str], SubPlan]] = {}

        for binding in bindings:
            subset = frozenset([binding])
            best[subset] = self._base_plans(binding)
            self.stats.subsets += 1

        for size in range(2, n + 1):
            for combo in itertools.combinations(bindings, size):
                subset = frozenset(combo)
                if not self.allow_cross and not self.graph.is_connected_subset(
                    set(subset)
                ):
                    continue
                entry: Dict[Optional[str], SubPlan] = {}
                self.stats.subsets += 1
                for left_set, right_set in self._splits(subset):
                    left_plans = best.get(left_set)
                    right_plans = best.get(right_set)
                    if not left_plans or not right_plans:
                        continue
                    if not self.allow_cross and not self._connects(
                        left_set, right_set
                    ):
                        continue
                    for lp in left_plans.values():
                        for rp in right_plans.values():
                            for cand in self.join_candidates(lp, rp):
                                kept, reason = self._consider(entry, cand)
                                if self.search is not None:
                                    self.search.record(
                                        tuple(subset),
                                        cand.plan,
                                        cand.rows,
                                        cand.cost.total,
                                        cand.order,
                                        kept,
                                        reason,
                                    )
                if entry:
                    best[subset] = entry
        full = frozenset(bindings)
        if full not in best:
            raise RuntimeError(
                "no plan found — disconnected graph without allow_cross"
            )
        return best[full]

    # -- base relations ------------------------------------------------------------

    def _base_plans(self, binding: str) -> Dict[Optional[str], SubPlan]:
        get = self.graph.relations[binding]
        conjuncts = self.graph.filter_conjuncts(binding)
        cands = access_paths(
            get.table,
            binding,
            conjuncts,
            self.estimator,
            self.model,
            needed_columns=self.needed_columns.get(binding),
        )
        entry: Dict[Optional[str], SubPlan] = {}
        for cand in cands:
            sub = SubPlan(
                cand.plan,
                cand.cost,
                cand.rows,
                self._norm_order(cand.order),
                frozenset([binding]),
            )
            kept, reason = self._consider(entry, sub)
            if self.search is not None:
                self.search.record(
                    (binding,),
                    sub.plan,
                    sub.rows,
                    sub.cost.total,
                    sub.order,
                    kept,
                    reason,
                )
        return entry

    # -- join combination ---------------------------------------------------------------

    def join_candidates(self, left: SubPlan, right: SubPlan) -> List[SubPlan]:
        """All priced ways to join two subplans (left outer, right inner)."""
        conjuncts = self.graph.join_conjuncts_between(
            set(left.relations), set(right.relations)
        )
        combined = left.relations | right.relations
        hyper = self._hyper_conjuncts(combined, left.relations, right.relations)
        out_rows = self._subset_rows(combined)
        model = self.model
        results: List[SubPlan] = []
        left_pages = left.pages(self.page_size)
        right_pages = right.pages(self.page_size)
        all_conjuncts = conjuncts + hyper

        # -- block nested loop (always applicable)
        bnl = PNestedLoopJoin(
            left.plan,
            right.plan,
            conjoin(all_conjuncts),
            block_pages=max(1, model.work_mem_pages - 2),
        )
        bnl_cost = left.cost + model.block_nested_loop(
            left_pages, left.rows, right.cost, right.rows,
            inner_pages=right_pages,
        )
        bnl.est_rows, bnl.est_cost = out_rows, bnl_cost
        results.append(SubPlan(bnl, bnl_cost, out_rows, None, combined))

        # -- methods requiring an equi-join conjunct
        equis = self._split_equis(conjuncts, left.schema, right.schema)
        if equis:
            (lcol, rcol), rest = equis
            residual = conjoin(rest + hyper)
            lkey, rkey = ColumnRef(lcol), ColumnRef(rcol)

            # hash join (build = right)
            hj = PHashJoin(left.plan, right.plan, lkey, rkey, residual)
            hj_cost = (
                left.cost
                + right.cost
                + model.hash_join(
                    left_pages, left.rows, right_pages, right.rows, out_rows
                )
            )
            hj_order = (
                left.order if right_pages <= model.work_mem_pages else None
            )
            hj.est_rows, hj.est_cost = out_rows, hj_cost
            results.append(SubPlan(hj, hj_cost, out_rows, hj_order, combined))

            # sort-merge join
            lq = left.schema.column(lcol).qualified_name
            rq = right.schema.column(rcol).qualified_name
            lplan, lcost = self._sorted_input(left, lq, lkey, left_pages)
            rplan, rcost = self._sorted_input(right, rq, rkey, right_pages)
            smj = PSortMergeJoin(lplan, rplan, lkey, rkey, residual)
            smj_cost = (
                lcost + rcost + model.merge_join(left.rows, right.rows, out_rows)
            )
            smj.est_rows, smj.est_cost = out_rows, smj_cost
            results.append(
                SubPlan(smj, smj_cost, out_rows, self._norm_order(lq), combined)
            )

            # index nested loop (right must be a single indexed relation)
            inl = self._index_nl(left, right, lcol, rcol, rest + hyper, out_rows)
            if inl is not None:
                results.append(inl)

        fb_key = self._subset_key(combined)
        for sub in results:
            sub.plan.feedback_key = fb_key
        self.stats.plans_considered += len(results)
        return results

    def _sorted_input(
        self, side: SubPlan, qualified: str, key: ColumnRef, pages: float
    ) -> Tuple[PhysicalPlan, Cost]:
        if side.order == qualified:
            return side.plan, side.cost
        sort = PSort(side.plan, ((key, True),))
        cost = side.cost + self.model.sort(pages, side.rows)
        sort.est_rows, sort.est_cost = side.rows, cost
        return sort, cost

    def _index_nl(
        self,
        left: SubPlan,
        right: SubPlan,
        lcol: str,
        rcol: str,
        residual: List[Expr],
        out_rows: float,
    ) -> Optional[SubPlan]:
        if len(right.relations) != 1:
            return None
        (binding,) = right.relations
        get = self.graph.relations[binding]
        bare = rcol.split(".")[-1]
        index = get.table.index_on(bare)
        if index is None:
            return None
        # composite indexes are probed on their leading component, which
        # must be the join column (index_on already keys by leading column)
        filters = self.graph.filter_conjuncts(binding)
        residual_all = residual + filters
        matches = self.estimator.matches_per_probe(
            rcol, float(get.table.num_rows)
        )
        plan = PIndexNLJoin(
            left.plan,
            get.table,
            binding,
            index,
            ColumnRef(lcol),
            conjoin(residual_all),
        )
        cost = left.cost + self.model.index_nested_loop(
            left.rows,
            index,
            get.table.num_pages,
            float(get.table.num_rows),
            matches,
        )
        if residual_all:
            probe_out = left.rows * matches
            cost = cost + self.model.filter(probe_out, len(residual_all))
        combined = left.relations | right.relations
        plan.est_rows, plan.est_cost = out_rows, cost
        return SubPlan(plan, cost, out_rows, left.order, combined)

    # -- pruning ----------------------------------------------------------------------

    def _consider(
        self, entry: Dict[Optional[str], SubPlan], cand: SubPlan
    ) -> Tuple[bool, str]:
        """Keep the cheapest subplan per interesting order.  Returns the
        decision + a human-readable reason for the search trace."""
        order = cand.order if self.use_interesting_orders else None
        if not self.use_interesting_orders and cand.order is not None:
            cand = SubPlan(
                cand.plan, cand.cost, cand.rows, None, cand.relations
            )
        slot = f"order {order}" if order is not None else "unordered"
        existing = entry.get(order)
        if existing is None:
            entry[order] = cand
            self.stats.plans_kept += 1
            return True, f"first plan for {slot}"
        if cand.cost.total < existing.cost.total:
            entry[order] = cand
            self.stats.plans_kept += 1
            return True, (
                f"beats incumbent for {slot} "
                f"({cand.cost.total:.1f} < {existing.cost.total:.1f})"
            )
        return False, (
            f"dominated for {slot} "
            f"({cand.cost.total:.1f} >= {existing.cost.total:.1f})"
        )

    def _norm_order(self, order: Optional[str]) -> Optional[str]:
        if order is None or not self.use_interesting_orders:
            return None
        return order if order in (self._interesting or ()) else None

    # -- graph helpers -----------------------------------------------------------------------

    def _splits(self, subset: FrozenSet[str]):
        """(left, right) partitions of *subset*.  Left-deep: right side is a
        single relation; bushy: all 2-partitions (right smaller or equal,
        dedup by canonical form)."""
        items = sorted(subset)
        if self.left_deep:
            for r in items:
                yield subset - {r}, frozenset([r])
            return
        n = len(items)
        for mask in range(1, 2 ** n - 1):
            right = frozenset(
                items[i] for i in range(n) if mask & (1 << i)
            )
            left = subset - right
            if len(left) >= 1 and len(right) >= 1:
                yield left, right

    def _connects(self, left: FrozenSet[str], right: FrozenSet[str]) -> bool:
        if self.graph.join_conjuncts_between(set(left), set(right)):
            return True
        combined = left | right
        for tables, _ in self.graph.hyper:
            if tables <= combined and tables & left and tables & right:
                return True
        return False

    def _hyper_conjuncts(
        self,
        combined: FrozenSet[str],
        left: FrozenSet[str],
        right: FrozenSet[str],
    ) -> List[Expr]:
        out = []
        for tables, conjunct in self.graph.hyper:
            if tables <= combined and not tables <= left and not tables <= right:
                out.append(conjunct)
        return out

    def _split_equis(
        self, conjuncts: Sequence[Expr], left_schema: Schema, right_schema: Schema
    ) -> Optional[Tuple[Tuple[str, str], List[Expr]]]:
        """Find an equi-join conjunct usable as the join key, returning
        ``((left_col, right_col), other_conjuncts)`` or None."""
        key: Optional[Tuple[str, str]] = None
        rest: List[Expr] = []
        for conjunct in conjuncts:
            classified = classify_conjunct(conjunct)
            if key is None and isinstance(classified, ColEqCol):
                a, b = classified.left, classified.right
                if left_schema.has_column(a) and right_schema.has_column(b):
                    key = (a, b)
                    continue
                if left_schema.has_column(b) and right_schema.has_column(a):
                    key = (b, a)
                    continue
            rest.append(conjunct)
        if key is None:
            return None
        return key, rest

    # -- cardinalities ----------------------------------------------------------------------------

    def _subset_rows(self, subset: FrozenSet[str]) -> float:
        """Estimated rows of the join of *subset* — a property of the set,
        not of any particular plan shape (keeps DP consistent).

        With a feedback store attached: a direct observation for this
        exact subset overrides everything (learned factor × the *raw*
        model estimate, since that is what the factor was learned
        against); otherwise per-scan corrections propagate upward through
        the usual selectivity product.
        """
        memo = self._rows_memo.get(subset)
        if memo is not None:
            return memo
        raw = 1.0
        corrected = 1.0
        for binding in subset:
            get = self.graph.relations[binding]
            scan = max(
                1.0,
                self.estimator.scan_rows(
                    get.table, self.graph.filter_conjuncts(binding)
                ),
            )
            raw *= scan
            corrected *= max(
                1.0,
                self.estimator.feedback_rows(
                    self._scan_feedback_key(binding), scan
                ),
            )
        sel = 1.0
        for pair, conjuncts in self.graph.edges.items():
            if pair <= subset:
                sel *= self.estimator.join_selectivity(conjuncts)
        for tables, conjunct in self.graph.hyper:
            if tables <= subset:
                sel *= self.estimator.selectivity(conjunct)
        rows = max(1.0, corrected * sel)
        direct = self.estimator.apply_feedback(
            self._subset_key(subset), max(1.0, raw * sel)
        )
        if direct is not None:
            rows = direct
        self._rows_memo[subset] = rows
        return rows

    # -- feedback keys --------------------------------------------------------------

    def _scan_feedback_key(self, binding: str) -> str:
        get = self.graph.relations[binding]
        return scan_key(
            get.table.name, binding, self.graph.filter_conjuncts(binding)
        )

    def _subset_key(self, subset: FrozenSet[str]) -> str:
        """Feedback key of the join of *subset*: its relations plus every
        filter/join/hyper conjunct fully contained in it — the same key
        regardless of which plan shape produced the rows."""
        memo = self._key_memo.get(subset)
        if memo is not None:
            return memo
        tables = []
        conjuncts: List[Expr] = []
        for binding in sorted(subset):
            get = self.graph.relations[binding]
            tables.append(f"{get.table.name} AS {binding}")
            conjuncts.extend(self.graph.filter_conjuncts(binding))
        for pair, edge_conjuncts in self.graph.edges.items():
            if pair <= subset:
                conjuncts.extend(edge_conjuncts)
        for hyper_tables, conjunct in self.graph.hyper:
            if hyper_tables <= subset:
                conjuncts.append(conjunct)
        key = feedback_key(tables, conjuncts)
        self._key_memo[subset] = key
        return key

    # -- interesting orders ----------------------------------------------------------------------

    def _default_interesting_orders(self) -> Set[str]:
        """Columns appearing in equi-join conjuncts (qualified)."""
        out: Set[str] = set()
        for pair, conjuncts in self.graph.edges.items():
            for conjunct in conjuncts:
                classified = classify_conjunct(conjunct)
                if isinstance(classified, ColEqCol):
                    for name in (classified.left, classified.right):
                        out.add(self._qualify(name))
        return out

    def _qualify(self, name: str) -> str:
        if "." in name:
            return name
        for binding, get in self.graph.relations.items():
            if get.schema.has_column(name):
                return get.schema.column(name).qualified_name
        return name

    def add_interesting_order(self, qualified: str) -> None:
        if self._interesting is None:
            self._interesting = set()
        self._interesting.add(qualified)


def count_dp_subsets(n: int, shape: str = "chain") -> int:
    """Analytic count of connected subsets for reference in E5."""
    if shape == "chain":
        return n * (n + 1) // 2
    if shape == "star":
        # hub + any subset of spokes, plus singletons
        return (2 ** (n - 1)) + n - 1
    if shape == "clique":
        return 2 ** n - 1
    raise ValueError(f"unknown shape {shape!r}")
