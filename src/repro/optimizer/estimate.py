"""Cardinality and selectivity estimation.

Implements the classic estimation rules with three switchable fidelity
tiers (experiment E6 sweeps them):

* uniform:    ``sel(a = c) = 1/V(a)``; ranges interpolate on [min, max];
  the famous magic constants when no statistics exist (1/10 equality,
  1/3 inequality, 1/4 between).
* histograms: bucket interpolation for ranges and equality.
* MCVs:       exact frequencies for the most common values.

Join selectivity of an equi-join is ``1 / max(V(a), V(b))``; conjuncts
multiply (attribute-independence assumption).  These assumptions — and
where they break on skewed/correlated data — are exactly what E6 measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from ..algebra import JoinGraph
from ..catalog import ColumnStats, TableInfo
from ..expr import (
    BoolKind,
    BoolOp,
    CmpOp,
    ColCmpConst,
    ColEqCol,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    classify_conjunct,
)
from ..types import DataType, Schema, value_to_float

#: Magic default selectivities (the 1977-era guesses, still in textbooks).
DEFAULT_EQ_SEL = 0.1
DEFAULT_RANGE_SEL = 1.0 / 3.0
DEFAULT_LIKE_SEL = 0.05
DEFAULT_GUESS_SEL = 0.25
DEFAULT_JOIN_SEL = 0.1


@dataclass
class EstimatorConfig:
    """Fidelity switches for the ablation experiments."""

    use_histograms: bool = True
    use_mcvs: bool = True
    use_distinct: bool = True  # False = always magic constants


@dataclass
class ColumnBinding:
    """Resolution of a column reference inside a join region."""

    binding: str
    table: TableInfo
    column: str
    dtype: DataType

    @property
    def stats(self) -> Optional[ColumnStats]:
        return self.table.column_stats(self.column)


class StatsResolver:
    """Maps (possibly qualified) column names to tables + statistics using
    the join region's schema."""

    def __init__(self, graph: JoinGraph):
        self.graph = graph
        self._schemas: Dict[str, Schema] = {
            binding: get.schema for binding, get in graph.relations.items()
        }

    def resolve(self, name: str) -> Optional[ColumnBinding]:
        if "." in name:
            binding = name.split(".", 1)[0]
            schema = self._schemas.get(binding)
            if schema is not None and schema.has_column(name):
                column = schema.column(name)
                return ColumnBinding(
                    binding,
                    self.graph.relations[binding].table,
                    column.name,
                    column.dtype,
                )
        hits = [
            (binding, schema.column(name))
            for binding, schema in self._schemas.items()
            if schema.has_column(name)
        ]
        if len(hits) == 1:
            binding, column = hits[0]
            return ColumnBinding(
                binding, self.graph.relations[binding].table, column.name, column.dtype
            )
        return None


class Estimator:
    """Selectivity/cardinality estimation over a join graph.

    When a :class:`~repro.obs.FeedbackStore` is attached (opt-in via
    ``PlannerOptions(use_feedback=True)``), learned est-vs-actual
    correction factors are applied *on top of* the model estimates by the
    callers that know the feedback key — access-path selection and the
    join enumerator — via :meth:`apply_feedback` / :meth:`feedback_rows`.
    The base estimation rules below stay untouched, so corrections are
    auditable as a separate multiplier.
    """

    def __init__(
        self,
        resolver: StatsResolver,
        config: Optional[EstimatorConfig] = None,
        feedback: Optional[Any] = None,
    ):
        self.resolver = resolver
        self.config = config or EstimatorConfig()
        #: optional FeedbackStore (duck-typed: has/correction)
        self.feedback = feedback

    # -- single predicates ----------------------------------------------------------

    def selectivity(self, conjunct: Expr) -> float:
        """Selectivity of one conjunct (assumed single-table or join-free)."""
        sel = self._selectivity(conjunct)
        return min(1.0, max(0.0, sel))

    def _selectivity(self, conjunct: Expr) -> float:
        classified = classify_conjunct(conjunct)
        if isinstance(classified, ColCmpConst):
            return self._col_const(classified)
        if isinstance(classified, ColEqCol):
            return self._col_eq_col(classified)
        if isinstance(conjunct, BoolOp):
            sels = [self.selectivity(o) for o in conjunct.operands]
            if conjunct.kind is BoolKind.AND:
                out = 1.0
                for s in sels:
                    out *= s
                return out
            # OR via inclusion-exclusion under independence
            out = 0.0
            for s in sels:
                out = out + s - out * s
            return out
        if isinstance(conjunct, Not):
            return 1.0 - self.selectivity(conjunct.operand)
        if isinstance(conjunct, IsNull):
            return self._is_null(conjunct)
        if isinstance(conjunct, InList):
            return self._in_list(conjunct)
        if isinstance(conjunct, Like):
            return self._like(conjunct)
        if isinstance(conjunct, Literal):
            if conjunct.value is True:
                return 1.0
            if conjunct.value is False:
                return 0.0
        if isinstance(conjunct, Comparison):
            return DEFAULT_RANGE_SEL
        return DEFAULT_GUESS_SEL

    def _col_const(self, pred: ColCmpConst) -> float:
        resolved = self.resolver.resolve(pred.column)
        if resolved is None or resolved.stats is None:
            return (
                DEFAULT_EQ_SEL
                if pred.op in (CmpOp.EQ, CmpOp.NE)
                else DEFAULT_RANGE_SEL
            )
        stats = resolved.stats
        if stats.num_rows == 0:
            return 0.0
        nonnull_frac = 1.0 - stats.null_fraction
        if pred.op is CmpOp.EQ:
            return nonnull_frac * self._eq_fraction(stats, resolved.dtype, pred.value)
        if pred.op is CmpOp.NE:
            eq = self._eq_fraction(stats, resolved.dtype, pred.value)
            return nonnull_frac * (1.0 - eq)
        return nonnull_frac * self._range_fraction(stats, resolved.dtype, pred)

    def _eq_fraction(self, stats: ColumnStats, dtype: DataType, value: Any) -> float:
        if self.config.use_mcvs and stats.mcvs:
            exact = stats.mcv_lookup(value)
            if exact is not None:
                return exact
            # not an MCV: spread the remaining mass over remaining distincts
            rest_frac = 1.0 - stats.mcv_fraction()
            rest_distinct = max(1, stats.num_distinct - len(stats.mcvs))
            return rest_frac / rest_distinct
        if self.config.use_histograms and stats.histogram is not None:
            try:
                x = value_to_float(value, dtype)
            except Exception:
                return DEFAULT_EQ_SEL
            frac = stats.histogram.fraction_equal(x)
            if frac > 0.0:
                return frac
        if self.config.use_distinct and stats.num_distinct > 0:
            return 1.0 / stats.num_distinct
        return DEFAULT_EQ_SEL

    def _range_fraction(
        self, stats: ColumnStats, dtype: DataType, pred: ColCmpConst
    ) -> float:
        try:
            x = value_to_float(pred.value, dtype)
        except Exception:
            return DEFAULT_RANGE_SEL
        if self.config.use_histograms and stats.histogram is not None:
            hist = stats.histogram
            if pred.op is CmpOp.LT:
                base = hist.fraction_below(x, inclusive=False)
            elif pred.op is CmpOp.LE:
                base = hist.fraction_below(x, inclusive=True)
            elif pred.op is CmpOp.GT:
                base = 1.0 - hist.fraction_below(x, inclusive=True)
            else:  # GE
                base = 1.0 - hist.fraction_below(x, inclusive=False)
            # account for MCV mass outside the histogram
            mcv_mass = stats.mcv_fraction() if self.config.use_mcvs else 0.0
            mcv_in_range = 0.0
            if stats.mcvs and stats.nonnull_rows:
                for _, vx, freq in stats.mcvs:
                    if _value_in_range(vx, x, pred.op):
                        mcv_in_range += freq / stats.nonnull_rows
            return base * (1.0 - mcv_mass) + mcv_in_range
        if (
            self.config.use_distinct
            and stats.min_float is not None
            and stats.max_float is not None
        ):
            lo, hi = stats.min_float, stats.max_float
            if hi <= lo:
                return 1.0 if _value_in_range(lo, x, pred.op) else 0.0
            if pred.op in (CmpOp.LT, CmpOp.LE):
                frac = (x - lo) / (hi - lo)
            else:
                frac = (hi - x) / (hi - lo)
            return min(1.0, max(0.0, frac))
        return DEFAULT_RANGE_SEL

    def _col_eq_col(self, pred: ColEqCol) -> float:
        left = self.resolver.resolve(pred.left)
        right = self.resolver.resolve(pred.right)
        v_left = self._distinct_of(left)
        v_right = self._distinct_of(right)
        if v_left is None and v_right is None:
            return DEFAULT_JOIN_SEL
        v = max(v for v in (v_left, v_right) if v is not None)
        return 1.0 / max(1, v)

    def _distinct_of(self, resolved: Optional[ColumnBinding]) -> Optional[int]:
        if not self.config.use_distinct:
            return None
        if resolved is None or resolved.stats is None:
            return None
        return resolved.stats.num_distinct or None

    def _is_null(self, pred: IsNull) -> float:
        if isinstance(pred.operand, ColumnRef):
            resolved = self.resolver.resolve(pred.operand.name)
            if resolved is not None and resolved.stats is not None:
                frac = resolved.stats.null_fraction
                return (1.0 - frac) if pred.negated else frac
        return 0.9 if pred.negated else 0.1

    def _in_list(self, pred: InList) -> float:
        if not isinstance(pred.operand, ColumnRef):
            return DEFAULT_GUESS_SEL
        total = 0.0
        for item in pred.items:
            if isinstance(item, Literal) and item.value is not None:
                total += self._col_const(
                    ColCmpConst(pred.operand.name, CmpOp.EQ, item.value)
                )
        total = min(1.0, total)
        return (1.0 - total) if pred.negated else total

    def _like(self, pred: Like) -> float:
        prefix = _like_prefix(pred.pattern)
        if prefix and isinstance(pred.operand, ColumnRef):
            resolved = self.resolver.resolve(pred.operand.name)
            if (
                resolved is not None
                and resolved.stats is not None
                and resolved.dtype is DataType.TEXT
            ):
                # prefix match == range [prefix, prefix + \xff)
                lo = ColCmpConst(pred.operand.name, CmpOp.GE, prefix)
                hi = ColCmpConst(
                    pred.operand.name, CmpOp.LT, prefix + "￿"
                )
                sel = self._col_const(lo) + self._col_const(hi) - 1.0
                sel = max(0.0, min(1.0, sel))
                if pred.pattern != prefix + "%":
                    sel *= 0.5  # extra wildcards halve it (heuristic)
                return (1.0 - sel) if pred.negated else max(sel, 1e-6)
        sel = DEFAULT_LIKE_SEL
        return (1.0 - sel) if pred.negated else sel

    # -- relations -------------------------------------------------------------------

    def scan_selectivity(self, conjuncts: Sequence[Expr]) -> float:
        sel = 1.0
        for c in conjuncts:
            sel *= self.selectivity(c)
        return sel

    def scan_rows(self, table: TableInfo, conjuncts: Sequence[Expr]) -> float:
        base = float(
            table.stats.num_rows if table.stats is not None else table.num_rows
        )
        return base * self.scan_selectivity(conjuncts)

    def join_selectivity(self, conjuncts: Sequence[Expr]) -> float:
        """Combined selectivity of the join conjuncts between two sides."""
        sel = 1.0
        for c in conjuncts:
            sel *= self.selectivity(c)
        return sel

    def join_rows(
        self, left_rows: float, right_rows: float, conjuncts: Sequence[Expr]
    ) -> float:
        if not conjuncts:
            return left_rows * right_rows
        return left_rows * right_rows * self.join_selectivity(conjuncts)

    # -- helpers for access-path selection ----------------------------------------------

    def matches_per_probe(self, column: str, fallback_rows: float) -> float:
        """Average inner rows matching one equality probe on *column*."""
        resolved = self.resolver.resolve(column)
        if resolved is not None and resolved.stats is not None:
            distinct = resolved.stats.num_distinct
            if distinct:
                return max(1.0, resolved.stats.nonnull_rows / distinct)
        return max(1.0, fallback_rows * DEFAULT_EQ_SEL)

    def distinct_values(self, column: str) -> Optional[int]:
        resolved = self.resolver.resolve(column)
        if resolved is None or resolved.stats is None:
            return None
        return resolved.stats.num_distinct or None

    # -- feedback corrections -------------------------------------------------------

    def apply_feedback(self, key: Optional[str], rows: float) -> Optional[float]:
        """Corrected row count for *key*, or ``None`` when no feedback
        store is attached / no evidence exists for the key."""
        if self.feedback is None or key is None:
            return None
        if not self.feedback.has(key):
            return None
        return max(1.0, rows * self.feedback.correction(key))

    def feedback_rows(self, key: Optional[str], rows: float) -> float:
        """Like :meth:`apply_feedback` but falling back to *rows*."""
        corrected = self.apply_feedback(key, rows)
        return corrected if corrected is not None else rows


def _value_in_range(vx: float, bound: float, op: CmpOp) -> bool:
    if op is CmpOp.LT:
        return vx < bound
    if op is CmpOp.LE:
        return vx <= bound
    if op is CmpOp.GT:
        return vx > bound
    return vx >= bound


def _like_prefix(pattern: str) -> str:
    out = []
    for ch in pattern:
        if ch in ("%", "_"):
            break
        out.append(ch)
    return "".join(out)


def pages_for(rows: float, row_bytes: int, page_size: int = 4096) -> float:
    """Estimated pages an intermediate result of *rows* occupies."""
    if rows <= 0:
        return 1.0
    per_page = max(1, page_size // max(1, row_bytes))
    return max(1.0, math.ceil(rows / per_page))
