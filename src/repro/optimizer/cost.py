"""The cost model.

Era-faithful structure: ``cost = page_fetches + W * cpu_operations`` — page
I/O dominates and CPU is folded in with a small weight, exactly the form the
foundational access-path-selection work used.  All formulas are in units of
page I/Os; CPU terms count tuple touches/comparisons.

Key formulas:

* **Unclustered index fetch** — Cardenas' approximation for the number of
  distinct pages touched by ``k`` random record fetches over ``n`` pages:
  ``n * (1 - (1 - 1/n)^k)``.  Classic, and the reason unclustered index
  scans lose to sequential scans at surprisingly low selectivity (E2).
* **External sort** — run formation plus merge passes:
  ``2 * pages * (1 + ceil(log_{B-1}(ceil(pages/B))))`` I/Os when the input
  exceeds work memory ``B``.
* **Block nested loop** — ``pages(L) + ceil(pages(L)/(B-2)) * pages(R)``.
* **Grace hash join** — ``3 * (pages(L) + pages(R))`` when the build side
  exceeds memory (partition write + read for both sides), else just the
  two input reads.

The model prices *subplans* via :class:`Cost` accumulation: each operator's
cost includes its inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..catalog import IndexInfo, IndexKind


@dataclass(frozen=True)
class Cost:
    """Additive cost: page I/Os + weighted CPU operations."""

    io: float = 0.0
    cpu: float = 0.0
    cpu_weight: float = 0.01

    @property
    def total(self) -> float:
        return self.io + self.cpu_weight * self.cpu

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.io + other.io, self.cpu + other.cpu, self.cpu_weight)

    def __lt__(self, other: "Cost") -> bool:
        return self.total < other.total

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cost(io={self.io:.1f}, cpu={self.cpu:.0f}, total={self.total:.1f})"


def cardenas_pages(pages: float, fetches: float) -> float:
    """Expected distinct pages touched by *fetches* uniform random record
    accesses over *pages* pages (Cardenas 1975)."""
    if pages <= 0 or fetches <= 0:
        return 0.0
    if pages == 1:
        return 1.0
    return pages * (1.0 - (1.0 - 1.0 / pages) ** fetches)


class CostModel:
    """Prices every access path and join method the planner considers.

    ``work_mem_pages`` must mirror the executor's setting for the model's
    crossovers to land where execution lands (E3 validates this).
    """

    def __init__(
        self,
        work_mem_pages: int = 64,
        cpu_weight: float = 0.01,
        buffer_pages: Optional[int] = None,
        parallel_setup_cpu: float = 10_000.0,
        parallel_transfer_cpu: float = 0.5,
        vector_cpu_factor: float = 1.0,
    ):
        if work_mem_pages < 3:
            raise ValueError("work memory must be at least 3 pages")
        self.work_mem_pages = work_mem_pages
        self.cpu_weight = cpu_weight
        #: per-row CPU discount for operators the columnar engine
        #: vectorizes (scans, filters, projections, hash joins,
        #: aggregation).  1.0 prices the row engine; a columnar Database
        #: passes ~0.25, shifting crossovers toward CPU-heavy plans.
        #: Row-at-a-time paths (index fetches, sorts, nested loops) are
        #: deliberately not discounted.
        self.vector_cpu_factor = vector_cpu_factor
        #: total buffer-pool frames; used to price repeated random fetches
        #: against tables larger than the pool.  None = assume ample.
        self.buffer_pages = buffer_pages
        #: CPU-op equivalent of starting one parallel worker (process fork,
        #: context setup) and of moving one row through a gather
        self.parallel_setup_cpu = parallel_setup_cpu
        self.parallel_transfer_cpu = parallel_transfer_cpu

    def _cost(self, io: float, cpu: float) -> Cost:
        return Cost(io, cpu, self.cpu_weight)

    def _vcost(self, io: float, cpu: float) -> Cost:
        """Cost for a vectorizable operator: per-row CPU discounted by
        ``vector_cpu_factor``."""
        return Cost(io, cpu * self.vector_cpu_factor, self.cpu_weight)

    def zero(self) -> Cost:
        return self._cost(0.0, 0.0)

    # -- access paths --------------------------------------------------------------

    def seq_scan(self, pages: int, rows: float) -> Cost:
        return self._vcost(float(max(1, pages)), rows)

    def index_scan(
        self,
        index: IndexInfo,
        table_pages: int,
        table_rows: float,
        matching_rows: float,
    ) -> Cost:
        """Index probe + RID fetches into the heap."""
        matching_rows = max(0.0, min(matching_rows, table_rows))
        descent = float(index.height)
        if table_rows > 0:
            leaf_fraction = matching_rows / table_rows
        else:
            leaf_fraction = 0.0
        leaf_io = max(1.0, math.ceil(leaf_fraction * max(1, index.leaf_pages)))
        if index.kind is IndexKind.HASH:
            # bucket chain read replaces descent+leaf walk
            descent, leaf_io = 1.0, 0.0
        if index.clustered:
            data_io = math.ceil(leaf_fraction * max(1, table_pages))
        else:
            data_io = self.random_fetch_pages(table_pages, matching_rows)
        # Each qualifying row costs an entry decode plus a record fetch —
        # roughly twice the per-row work of a sequential scan.  Without this
        # asymmetry a full-range index scan under-prices a filtered seq scan.
        return self._cost(descent + leaf_io + data_io, 2.0 * matching_rows)

    def random_fetch_pages(
        self,
        table_pages: int,
        fetches: float,
        buffer_pages: Optional[int] = None,
    ) -> float:
        """Expected page I/Os for *fetches* random record accesses.

        When the table fits in the buffer pool, each page is fetched at most
        once (Cardenas).  When it does not, steady-state LRU misses dominate:
        roughly ``fetches * (1 - buffer/table)`` after a warmup that fills
        the pool.  *buffer_pages* overrides the pool size (used when part of
        the pool is pinned by another structure in the same plan).
        """
        pages = float(max(1, table_pages))
        base = cardenas_pages(pages, fetches)
        buffer = self.buffer_pages if buffer_pages is None else buffer_pages
        if buffer is None or pages <= buffer:
            return base
        miss_fraction = 1.0 - buffer / pages
        steady = fetches * miss_fraction + min(float(buffer), fetches)
        return max(base, min(fetches, steady))

    def index_only_scan(
        self, index: IndexInfo, table_rows: float, matching_rows: float
    ) -> Cost:
        matching_rows = max(0.0, min(matching_rows, table_rows))
        fraction = matching_rows / table_rows if table_rows > 0 else 0.0
        leaf_io = max(1.0, math.ceil(fraction * max(1, index.leaf_pages)))
        return self._cost(float(index.height) + leaf_io, matching_rows)

    # -- sorting ---------------------------------------------------------------------

    def sort(self, pages: float, rows: float) -> Cost:
        """External merge sort of an intermediate result already in the
        pipeline (input read cost excluded; spill I/O included)."""
        pages = max(1.0, pages)
        cmp_cost = rows * max(1.0, math.log2(max(2.0, rows)))
        if pages <= self.work_mem_pages:
            return self._cost(0.0, cmp_cost)
        runs = math.ceil(pages / self.work_mem_pages)
        fan_in = max(2, self.work_mem_pages - 1)
        passes = max(1, math.ceil(math.log(runs, fan_in)))
        io = 2.0 * pages * passes
        return self._cost(io, cmp_cost)

    # -- joins -----------------------------------------------------------------------

    def block_nested_loop(
        self,
        outer_pages: float,
        outer_rows: float,
        inner_rescan: Cost,
        inner_rows: float,
        block_pages: Optional[int] = None,
        inner_pages: Optional[float] = None,
    ) -> Cost:
        """Cost *added* by a BNL join given the outer is already streaming
        and the inner costs ``inner_rescan`` per pass.

        When the inner's pages are known to fit in the buffer pool alongside
        the outer block, rescans hit cache and cost no I/O.
        """
        block = max(1, block_pages or (self.work_mem_pages - 2))
        blocks = max(1.0, math.ceil(max(1.0, outer_pages) / block))
        rescan_io = inner_rescan.io
        if (
            inner_pages is not None
            and self.buffer_pages is not None
            and inner_pages <= max(0, self.buffer_pages - block - 1)
        ):
            rescan_io = 0.0
        io = (blocks - 1.0) * rescan_io  # first inner pass paid below
        cpu = (blocks - 1.0) * inner_rescan.cpu + outer_rows * inner_rows
        return self._cost(io, cpu) + inner_rescan

    def index_nested_loop(
        self,
        outer_rows: float,
        index: IndexInfo,
        inner_pages: int,
        inner_rows: float,
        matches_per_probe: float,
    ) -> Cost:
        """Per-outer-row index probes into a base table.

        Upper index levels and hot leaves are assumed to cache (they are a
        few pages); leaf and heap traffic is priced with the buffer-aware
        random-fetch formula over the whole probe stream.
        """
        outer_rows = max(0.0, outer_rows)
        descent = float(index.height)  # paid once to warm the upper levels
        leaf_pages = max(1, index.leaf_pages)
        leaf_buffer = None
        data_buffer = None
        if self.buffer_pages is not None:
            # The probe stream cycles through index leaves AND heap pages;
            # neither sees the whole pool.  Charge each against the pool
            # minus the other structure's (capped) share.
            leaf_buffer = max(
                3, self.buffer_pages - min(inner_pages, self.buffer_pages // 2)
            )
            data_buffer = max(
                3, self.buffer_pages - min(leaf_pages, self.buffer_pages // 2)
            )
        leaf_io = self.random_fetch_pages(leaf_pages, outer_rows, leaf_buffer)
        total_matches = outer_rows * max(0.0, matches_per_probe)
        data_io = self.random_fetch_pages(inner_pages, total_matches, data_buffer)
        cpu = outer_rows + total_matches
        return self._cost(descent + leaf_io + data_io, cpu)

    def merge_join(
        self, left_rows: float, right_rows: float, output_rows: float
    ) -> Cost:
        """Merge phase only (sorts priced separately)."""
        return self._cost(0.0, left_rows + right_rows + output_rows)

    def hash_join(
        self,
        left_pages: float,
        left_rows: float,
        right_pages: float,
        right_rows: float,
        output_rows: float,
    ) -> Cost:
        """Added cost of hashing: zero extra I/O if the build (right) side
        fits in memory, Grace partitioning otherwise."""
        cpu = left_rows + right_rows + output_rows
        if right_pages <= self.work_mem_pages:
            return self._vcost(0.0, cpu)
        io = 2.0 * (max(1.0, left_pages) + max(1.0, right_pages))
        return self._cost(io, cpu * 1.5)

    # -- parallelism -----------------------------------------------------------------------

    def exchange(
        self,
        serial: Cost,
        degree: int,
        rows_out: float,
        replicated: Optional[Cost] = None,
    ) -> Cost:
        """Response-time cost of running *serial* across *degree* workers.

        The model is wall-clock, not resource-use: work that partitions
        divides by the degree, while the *replicated* share (a replicated
        hash-join build side; both sides' full scans in a hash-partitioned
        join) is paid by every worker concurrently, so it stays whole.
        Each worker adds a fixed startup charge and every output row pays
        a transfer charge through the gather — the terms that keep tiny
        queries serial.
        """
        if degree <= 1:
            return serial
        rep = replicated if replicated is not None else self.zero()
        io = rep.io + max(0.0, serial.io - rep.io) / degree
        cpu = (
            rep.cpu
            + max(0.0, serial.cpu - rep.cpu) / degree
            + degree * self.parallel_setup_cpu
            + max(0.0, rows_out) * self.parallel_transfer_cpu
        )
        return self._cost(io, cpu)

    # -- other operators --------------------------------------------------------------------

    def filter(self, rows: float, num_conjuncts: int = 1) -> Cost:
        return self._vcost(0.0, rows * max(1, num_conjuncts))

    def project(self, rows: float, width: int = 1) -> Cost:
        return self._vcost(0.0, rows)

    def aggregate(self, input_rows: float, groups: float) -> Cost:
        return self._vcost(0.0, input_rows + groups)

    def distinct(self, rows: float) -> Cost:
        return self._cost(0.0, rows)

    def materialize(self, pages: float, rows: float) -> Cost:
        if pages <= self.work_mem_pages:
            return self._cost(0.0, rows)
        return self._cost(2.0 * pages, rows)
