"""Baseline join-order planners.

The foils the evaluation compares the DP optimizer against (E4, E5):

* :class:`SyntacticPlanner` — joins in FROM-clause order (left-deep),
  choosing the locally cheapest join method at each step.  Represents a
  pre-cost-based system that trusts the query author.
* :class:`NaiveNLPlanner` — FROM order, sequential scans, tuple nested
  loops only.  The no-optimizer strawman.
* :class:`GreedyPlanner` — classic greedy heuristic: start from the
  smallest (estimated) relation, repeatedly join the neighbour producing
  the smallest intermediate result.
* :class:`ExhaustivePlanner` — enumerate every left-deep permutation
  (O(n!)); optimal within left-deep space, used to show DP matches it at a
  fraction of the effort.
* :class:`RandomPlanner` — a seeded random connected order; the expected
  badness of an arbitrary plan.

All baselines share access-path and join-method pricing with the DP
planner, so differences measure *join order* quality alone.
"""

from __future__ import annotations

import itertools
import random
from typing import List, Optional, Sequence

from ..algebra import JoinGraph
from ..expr import conjoin
from ..physical import PNestedLoopJoin, PSeqScan
from .cost import CostModel
from .dp import DPPlanner, PlannerStats, SubPlan
from .estimate import Estimator


class OrderPlanner:
    """Shared machinery: price a given left-deep join order."""

    def __init__(
        self,
        graph: JoinGraph,
        estimator: Estimator,
        model: CostModel,
    ):
        self.graph = graph
        self.estimator = estimator
        self.model = model
        # Reuse the DP planner's access-path and join pricing; interesting
        # orders off so each step keeps a single best plan.
        self._dp = DPPlanner(
            graph,
            estimator,
            model,
            left_deep=True,
            use_interesting_orders=False,
            allow_cross=True,
        )
        self.stats = PlannerStats()

    def base_plan(self, binding: str) -> SubPlan:
        plans = self._dp._base_plans(binding)
        self.stats.plans_considered += len(plans)
        return min(plans.values(), key=lambda sp: sp.cost.total)

    def extend(self, left: SubPlan, binding: str) -> SubPlan:
        right = self.base_plan(binding)
        candidates = self._dp.join_candidates(left, right)
        self.stats.plans_considered += len(candidates)
        return min(candidates, key=lambda sp: sp.cost.total)

    def plan_order(self, order: Sequence[str]) -> SubPlan:
        """Price the left-deep plan that joins relations in *order*."""
        plan = self.base_plan(order[0])
        for binding in order[1:]:
            plan = self.extend(plan, binding)
        return plan


class SyntacticPlanner(OrderPlanner):
    """FROM-clause order with locally best join methods."""

    def plan(self) -> SubPlan:
        return self.plan_order(self.graph.bindings())


class NaiveNLPlanner(OrderPlanner):
    """FROM order, sequential scans, tuple nested loops.  No optimizer."""

    def plan(self) -> SubPlan:
        order = self.graph.bindings()
        plan = self._seq_scan_plan(order[0])
        placed = {order[0]}
        for binding in order[1:]:
            right = self._seq_scan_plan(binding)
            conjuncts = self.graph.join_conjuncts_between(placed, {binding})
            placed.add(binding)
            hyper = [
                conjunct
                for tables, conjunct in self.graph.hyper
                if tables <= placed and binding in tables
            ]
            node = PNestedLoopJoin(
                plan.plan, right.plan, conjoin(conjuncts + hyper), block_pages=1
            )
            out_rows = self._dp._subset_rows(frozenset(placed))
            cost = plan.cost + self.model.block_nested_loop(
                plan.pages(), plan.rows, right.cost, right.rows,
                block_pages=1,
            )
            node.est_rows, node.est_cost = out_rows, cost
            plan = SubPlan(node, cost, out_rows, None, frozenset(placed))
        return plan

    def _seq_scan_plan(self, binding: str) -> SubPlan:
        get = self.graph.relations[binding]
        conjuncts = self.graph.filter_conjuncts(binding)
        scan = PSeqScan(get.table, binding, conjoin(conjuncts))
        rows = self.estimator.scan_rows(get.table, conjuncts)
        base_rows = float(get.table.num_rows)
        cost = self.model.seq_scan(get.table.num_pages, base_rows)
        if conjuncts:
            cost = cost + self.model.filter(base_rows, len(conjuncts))
        scan.est_rows, scan.est_cost = rows, cost
        return SubPlan(scan, cost, rows, None, frozenset([binding]))


class GreedyPlanner(OrderPlanner):
    """Smallest-relation-first, then smallest-intermediate-result."""

    def plan(self) -> SubPlan:
        remaining = set(self.graph.bindings())
        start = min(
            remaining,
            key=lambda b: self.estimator.scan_rows(
                self.graph.relations[b].table, self.graph.filter_conjuncts(b)
            ),
        )
        order = [start]
        remaining.discard(start)
        placed = {start}
        while remaining:
            connected = [
                b for b in remaining if self.graph.join_conjuncts_between(placed, {b})
            ]
            pool = connected or sorted(remaining)
            nxt = min(
                pool,
                key=lambda b: self._dp._subset_rows(frozenset(placed | {b})),
            )
            order.append(nxt)
            placed.add(nxt)
            remaining.discard(nxt)
        return self.plan_order(order)


class ExhaustivePlanner(OrderPlanner):
    """Every left-deep permutation.  Only sane for small n."""

    def __init__(self, *args, max_relations: int = 9, **kwargs):
        super().__init__(*args, **kwargs)
        self.max_relations = max_relations

    def plan(self) -> SubPlan:
        bindings = self.graph.bindings()
        if len(bindings) > self.max_relations:
            raise ValueError(
                f"{len(bindings)} relations exceeds exhaustive limit "
                f"{self.max_relations}"
            )
        best: Optional[SubPlan] = None
        for perm in itertools.permutations(bindings):
            if not self._avoids_cross(perm):
                continue
            candidate = self.plan_order(list(perm))
            if best is None or candidate.cost.total < best.cost.total:
                best = candidate
        if best is None:  # fully disconnected graph: permit cross products
            for perm in itertools.permutations(bindings):
                candidate = self.plan_order(list(perm))
                if best is None or candidate.cost.total < best.cost.total:
                    best = candidate
        return best

    def _avoids_cross(self, perm) -> bool:
        placed = {perm[0]}
        for binding in perm[1:]:
            if not self.graph.join_conjuncts_between(placed, {binding}):
                return False
            placed.add(binding)
        return True


class RandomPlanner(OrderPlanner):
    """A random connected left-deep order (seeded, reproducible)."""

    def __init__(self, *args, seed: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        self.rng = random.Random(seed)

    def random_order(self) -> List[str]:
        bindings = self.graph.bindings()
        order = [self.rng.choice(bindings)]
        placed = {order[0]}
        remaining = [b for b in bindings if b not in placed]
        while remaining:
            connected = [
                b
                for b in remaining
                if self.graph.join_conjuncts_between(placed, {b})
            ]
            pool = connected or remaining
            nxt = self.rng.choice(pool)
            order.append(nxt)
            placed.add(nxt)
            remaining.remove(nxt)
        return order

    def plan(self) -> SubPlan:
        return self.plan_order(self.random_order())

    def plan_many(self, trials: int) -> List[SubPlan]:
        return [self.plan() for _ in range(trials)]
