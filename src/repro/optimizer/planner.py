"""The end-to-end planner: logical plan -> optimized physical plan.

Pipeline::

    logical plan
      → predicate pushdown                     (rewrite, optional)
      → per join region: join-graph extraction
           → strategy planner (DP / baseline)  → priced physical subtree
      → conversion of the remaining operators (aggregate, sort, project …)
        with order propagation: sorts are skipped when the region already
        delivers the order, streaming aggregation is used on sorted input.

Order propagation uses **equivalence classes**: after an equi-join on
``a.x = b.y`` a plan sorted on ``a.x`` also satisfies ``ORDER BY b.y`` —
the classic System-R refinement that makes interesting orders pay off
above the join region (experiment E7).

``strategy`` selects the join-order algorithm: ``dp`` (System R left-deep,
the default), ``dp-bushy``, ``syntactic``, ``naive``, ``greedy``,
``exhaustive``, ``random``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..algebra import (
    JoinGraph,
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalLimit,
    LogicalNarrow,
    LogicalPlan,
    LogicalProject,
    LogicalSort,
    extract_join_graph,
    is_join_region,
    push_down_predicates,
)
from ..catalog import Catalog
from ..expr import ColumnRef, Expr, conjoin, infer_expr_type
from ..obs import SearchTrace, Tracer
from ..physical import (
    PAggregate,
    PDistinct,
    PFilter,
    PLimit,
    PNarrow,
    PProject,
    PSort,
    PhysicalPlan,
)
from .baselines import (
    ExhaustivePlanner,
    GreedyPlanner,
    NaiveNLPlanner,
    RandomPlanner,
    SyntacticPlanner,
)
from .cost import Cost, CostModel
from .dp import DPPlanner, PlannerStats, SubPlan
from .estimate import Estimator, EstimatorConfig, StatsResolver, pages_for
from .parallel import (
    push_parallel_sort,
    push_partial_aggregate,
    region_alternatives,
)

STRATEGIES = (
    "dp",
    "dp-bushy",
    "syntactic",
    "naive",
    "greedy",
    "exhaustive",
    "random",
)

_EMPTY: FrozenSet[str] = frozenset()


def _resolve_to_base_column(node: LogicalPlan, name: str) -> Optional[str]:
    """Trace a column name down through projections/aggregates to the
    qualified base-table column it passes through, or None if it is
    computed.  This is how ``ORDER BY alias`` learns which base column's
    order would satisfy it."""
    current = node
    while True:
        if isinstance(current, LogicalProject):
            if name not in current.names:
                return None
            expr = current.exprs[current.names.index(name)]
            if not isinstance(expr, ColumnRef):
                return None
            try:
                name = current.child.schema.column(expr.name).qualified_name
            except Exception:
                return None
            current = current.child
            continue
        if isinstance(current, LogicalAggregate):
            if name not in current.group_names:
                return None
            g = current.group_exprs[current.group_names.index(name)]
            if not isinstance(g, ColumnRef):
                return None
            try:
                name = current.child.schema.column(g.name).qualified_name
            except Exception:
                return None
            current = current.child
            continue
        if isinstance(
            current,
            (LogicalFilter, LogicalDistinct, LogicalLimit, LogicalSort,
             LogicalNarrow),
        ):
            current = current.children()[0]
            continue
        try:
            return current.schema.column(name).qualified_name
        except Exception:
            return None


def _qualified_refs(expr: Expr, schema, strict: bool = True) -> Set[str]:
    """Column references of *expr* resolved to qualified names in *schema*.

    With ``strict=False``, references that do not resolve in *schema* are
    skipped (used when projecting a multi-table conjunct onto one side).
    """
    from ..expr import referenced_columns

    out: Set[str] = set()
    for name in referenced_columns(expr):
        try:
            out.add(schema.column(name).qualified_name)
        except Exception:
            if strict:
                raise
    return out


@dataclass
class PlannerOptions:
    strategy: str = "dp"
    pushdown: bool = True
    use_interesting_orders: bool = True
    estimator: Optional[EstimatorConfig] = None
    random_seed: int = 0
    #: worker count for intra-query parallelism; 1 = serial planning
    parallel_degree: int = 1
    #: choose a parallel alternative whenever one exists, ignoring cost —
    #: lets tests exercise parallel shapes on tables too small to win
    force_parallel: bool = False
    #: apply learned est-vs-actual corrections from the Database's
    #: FeedbackStore during estimation (LEO-style; plans may change,
    #: results never do)
    use_feedback: bool = False

    def __post_init__(self):
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; pick from {STRATEGIES}"
            )
        if self.parallel_degree < 1:
            raise ValueError("parallel_degree must be at least 1")


@dataclass
class _Converted:
    """A physical subtree plus the names its output is known sorted on.

    ``order`` holds every column name (in the subtree's output schema)
    equivalent to the *primary* sort key — empty when unordered.
    ``order_seq`` is the full known sort-column sequence (current-schema
    names) when the producer sorts on several columns, e.g. a composite
    index scan; used to satisfy multi-key ORDER BY without a sort.
    """

    plan: PhysicalPlan
    rows: float
    cost: Cost
    order: FrozenSet[str] = _EMPTY
    order_seq: Tuple[str, ...] = ()


@dataclass
class _Desired:
    """Orders the upper plan could exploit, split by how much they're worth:
    a Sort above is worth a full sort; a grouped aggregate is only worth the
    (cheap) difference between hash and stream aggregation."""

    sort_keys: Set[str] = field(default_factory=set)
    group_keys: Set[str] = field(default_factory=set)

    @property
    def all(self) -> Set[str]:
        return self.sort_keys | self.group_keys


class Planner:
    """Plans logical trees against a catalog with a given cost model."""

    def __init__(
        self,
        catalog: Catalog,
        model: Optional[CostModel] = None,
        options: Optional[PlannerOptions] = None,
        tracer: Optional[Tracer] = None,
        feedback: Optional[object] = None,
        search: Optional[SearchTrace] = None,
    ):
        self.catalog = catalog
        self.model = model or CostModel()
        self.options = options or PlannerOptions()
        self.page_size = catalog.pool.disk.page_size
        self.last_stats: Optional[PlannerStats] = None
        self.tracer = tracer or Tracer(enabled=False)
        #: FeedbackStore consulted when ``options.use_feedback`` is on
        self.feedback = feedback
        #: SearchTrace that region enumerations are recorded into
        self.search = search

    # -- entry points ---------------------------------------------------------------

    def plan_logical(self, plan: LogicalPlan) -> PhysicalPlan:
        if self.options.pushdown:
            with self.tracer.span("rewrite"):
                plan = push_down_predicates(plan)
        desired = self._desired_orders(plan)
        self._needed_map: Dict[int, Optional[Set[str]]] = {}
        self._collect_needed(plan, None)
        with self.tracer.span("costing"):
            converted = self._convert(plan, desired)
        return converted.plan

    # -- needed-columns pre-pass ---------------------------------------------------------

    def _collect_needed(
        self, plan: LogicalPlan, needed: Optional[Set[str]]
    ) -> None:
        """Record, for every join-region root, the qualified columns the
        plan above it references (``None`` = everything, e.g. SELECT *).
        Enables covering (index-only) access paths."""
        if is_join_region(plan):
            self._needed_map[id(plan)] = needed
            return
        if isinstance(plan, LogicalProject):
            refs: Set[str] = set()
            for expr in plan.exprs:
                refs |= _qualified_refs(expr, plan.child.schema)
            self._collect_needed(plan.child, refs)
            return
        if isinstance(plan, LogicalAggregate):
            refs = set()
            for expr in plan.group_exprs:
                refs |= _qualified_refs(expr, plan.child.schema)
            for agg in plan.aggs:
                if agg.arg is not None:
                    refs |= _qualified_refs(agg.arg, plan.child.schema)
            self._collect_needed(plan.child, refs)
            return
        if isinstance(plan, LogicalFilter):
            if needed is None:
                self._collect_needed(plan.child, None)
                return
            refs = set(needed) | _qualified_refs(
                plan.predicate, plan.child.schema
            )
            self._collect_needed(plan.child, refs)
            return
        if isinstance(plan, LogicalSort):
            if needed is None:
                self._collect_needed(plan.child, None)
                return
            refs = set(needed)
            for expr, _ in plan.keys:
                refs |= _qualified_refs(expr, plan.child.schema)
            self._collect_needed(plan.child, refs)
            return
        if isinstance(plan, LogicalNarrow):
            refs = {c.qualified_name for c in plan.schema}
            if needed is not None:
                refs &= needed | refs  # narrow already bounds the set
            self._collect_needed(plan.child, refs)
            return
        for child in plan.children():
            self._collect_needed(child, needed)

    # -- desired-order pre-pass --------------------------------------------------------

    def _desired_orders(self, plan: LogicalPlan) -> _Desired:
        desired = _Desired()

        def visit(node: LogicalPlan) -> None:
            if isinstance(node, LogicalSort) and node.keys:
                expr, asc = node.keys[0]
                if asc and isinstance(expr, ColumnRef):
                    resolved = _resolve_to_base_column(node.child, expr.name)
                    if resolved is not None:
                        desired.sort_keys.add(resolved)
            if isinstance(node, LogicalAggregate) and len(node.group_exprs) == 1:
                g = node.group_exprs[0]
                if isinstance(g, ColumnRef):
                    resolved = _resolve_to_base_column(node.child, g.name)
                    if resolved is not None:
                        desired.group_keys.add(resolved)
            for child in node.children():
                visit(child)

        visit(plan)
        return desired

    # -- conversion -------------------------------------------------------------------

    def _convert(self, plan: LogicalPlan, desired: _Desired) -> _Converted:
        if is_join_region(plan):
            return self._plan_region(plan, desired)

        if isinstance(plan, LogicalFilter):
            child = self._convert(plan.child, desired)
            node = PFilter(child.plan, plan.predicate)
            rows = child.rows * 0.5  # post-aggregation filters: coarse guess
            cost = child.cost + self.model.filter(child.rows)
            return self._annotate(
                node, rows, cost, child.order, child.order_seq
            )

        if isinstance(plan, LogicalProject):
            child = self._convert(plan.child, desired)
            dtypes = tuple(
                infer_expr_type(e, child.plan.schema) for e in plan.exprs
            )
            node = PProject(child.plan, plan.exprs, plan.names, dtypes)
            order = self._project_order(child, plan.exprs, plan.names)
            order_seq = self._map_seq_through_project(
                child, plan.exprs, plan.names
            )
            cost = child.cost + self.model.project(child.rows)
            return self._annotate(node, child.rows, cost, order, order_seq)

        if isinstance(plan, LogicalNarrow):
            child = self._convert(plan.child, desired)
            positions = tuple(
                child.plan.schema.index_of(c.qualified_name)
                for c in plan.schema
            )
            node = PNarrow(child.plan, positions)
            survivors = frozenset(
                name
                for name in child.order
                if node.schema.has_column(name)
            )
            seq = []
            for name in child.order_seq:
                if node.schema.has_column(name):
                    seq.append(name)
                else:
                    break
            cost = child.cost + self.model.project(child.rows)
            return self._annotate(
                node, child.rows, cost, survivors, tuple(seq)
            )

        if isinstance(plan, LogicalAggregate):
            return self._convert_aggregate(plan, desired)

        if isinstance(plan, LogicalSort):
            child = self._convert(plan.child, desired)
            if self._order_satisfies(child, plan.keys):
                return child
            pages = pages_for(
                child.rows, child.plan.schema.estimated_row_bytes(), self.page_size
            )
            sort_cost = self.model.sort(pages, child.rows)
            node: PhysicalPlan = PSort(child.plan, plan.keys)
            cost = child.cost + sort_cost
            parallel = self._maybe_parallel_sort(
                child, plan.keys, sort_cost, cost
            )
            if parallel is not None:
                node, cost = parallel
            order = self._sort_order(plan.keys, node.schema)
            seq = []
            for expr, asc in plan.keys:
                if not asc or not isinstance(expr, ColumnRef):
                    break
                if not node.schema.has_column(expr.name):
                    break
                seq.append(node.schema.column(expr.name).qualified_name)
            return self._annotate(node, child.rows, cost, order, tuple(seq))

        if isinstance(plan, LogicalDistinct):
            child = self._convert(plan.child, desired)
            node = PDistinct(child.plan)
            rows = max(1.0, child.rows * 0.9)
            cost = child.cost + self.model.distinct(child.rows)
            return self._annotate(
                node, rows, cost, child.order, child.order_seq
            )

        if isinstance(plan, LogicalLimit):
            child = self._convert(plan.child, desired)
            node = PLimit(child.plan, plan.count)
            rows = min(child.rows, float(plan.count))
            return self._annotate(
                node, rows, child.cost, child.order, child.order_seq
            )

        if isinstance(plan, (LogicalJoin, LogicalGet)):
            # A join/get whose subtree was not a pure region (shouldn't
            # happen from the builder) — treat as its own region.
            return self._plan_region(plan, desired)

        raise TypeError(f"cannot convert {type(plan).__name__}")

    def _annotate(
        self,
        node: PhysicalPlan,
        rows: float,
        cost: Cost,
        order: FrozenSet[str],
        order_seq: Tuple[str, ...] = (),
    ) -> _Converted:
        node.est_rows, node.est_cost = rows, cost
        return _Converted(node, rows, cost, order, order_seq)

    # -- region planning ----------------------------------------------------------------

    def _plan_region(self, region: LogicalPlan, desired: _Desired) -> _Converted:
        graph = extract_join_graph(region)
        post_filters: List[Expr] = []
        if not self.options.pushdown:
            # Ablation mode (E9): single-table predicates stay ABOVE the
            # join, as a pre-pushdown system would evaluate them.
            for binding in graph.bindings():
                post_filters.extend(graph.filters.get(binding, []))
                graph.filters[binding] = []
        resolver = StatsResolver(graph)
        estimator = Estimator(
            resolver,
            self.options.estimator,
            feedback=self.feedback if self.options.use_feedback else None,
        )
        equivalence = graph.order_equivalence()
        if not hasattr(self, "_binding_tables"):
            self._binding_tables = {}
        for binding, get in graph.relations.items():
            self._binding_tables[binding] = get.table
        strategy = self.options.strategy
        region_search = (
            self.search.new_region(strategy, graph.relations)
            if self.search is not None
            else None
        )

        with self.tracer.span("join_enumeration") as span:
            if strategy in ("dp", "dp-bushy"):
                planner = DPPlanner(
                    graph,
                    estimator,
                    self.model,
                    left_deep=strategy == "dp",
                    use_interesting_orders=self.options.use_interesting_orders,
                    page_size=self.page_size,
                    needed_columns=self._needed_per_binding(region, graph),
                    search=region_search,
                )
                wanted = self._wanted_in_region(desired.all, graph, equivalence)
                for name in wanted:
                    planner.add_interesting_order(name)
                table = planner.plan_all_orders()
                sort_wanted = self._wanted_in_region(
                    desired.sort_keys, graph, equivalence
                )
                group_wanted = self._wanted_in_region(
                    desired.group_keys, graph, equivalence
                )
                sub = self._choose_with_orders(table, sort_wanted, group_wanted)
                self.last_stats = planner.stats
            else:
                planner_cls = {
                    "syntactic": SyntacticPlanner,
                    "naive": NaiveNLPlanner,
                    "greedy": GreedyPlanner,
                    "exhaustive": ExhaustivePlanner,
                }.get(strategy)
                if planner_cls is not None:
                    baseline = planner_cls(graph, estimator, self.model)
                else:
                    baseline = RandomPlanner(
                        graph, estimator, self.model, seed=self.options.random_seed
                    )
                sub = baseline.plan()
                self.last_stats = baseline.stats
                if region_search is not None:
                    # Baseline strategies don't enumerate alternatives;
                    # record the single plan they commit to.
                    region_search.record(
                        tuple(sorted(sub.relations)),
                        sub.plan,
                        sub.rows,
                        sub.cost.total,
                        sub.order,
                        True,
                        f"chosen by {strategy} strategy",
                    )
            if region_search is not None:
                region_search.mark_chosen(sub.plan, sub.cost.total)
            span.add("relations", len(graph.relations))
            stats = self.last_stats
            if stats is not None:
                span.add("subsets", stats.subsets)
                span.add("plans_considered", stats.plans_considered)
                span.add("plans_kept", stats.plans_kept)

        order = self._region_order(sub, equivalence)
        order_seq = self._region_order_seq(sub)
        converted = _Converted(sub.plan, sub.rows, sub.cost, order, order_seq)
        converted = self._maybe_parallelize(converted)
        if post_filters:
            node = PFilter(converted.plan, conjoin(post_filters))
            sel = estimator.scan_selectivity(post_filters)
            rows = max(1.0, converted.rows * sel)
            cost = converted.cost + self.model.filter(
                converted.rows, len(post_filters)
            )
            node.est_rows, node.est_cost = rows, cost
            return _Converted(node, rows, cost, order, order_seq)
        return converted

    def _maybe_parallelize(self, conv: _Converted) -> _Converted:
        """Replace a region's serial plan with a gather-over-exchange
        alternative when one exists and wins on cost (or is forced).

        Every alternative produced preserves the serial output order
        exactly (page-order concat, or ordinal merge), so the region's
        known order survives parallelization untouched.
        """
        options = self.options
        if options.parallel_degree <= 1 and not options.force_parallel:
            return conv
        degree = max(1, options.parallel_degree)
        alternatives = region_alternatives(
            conv.plan, conv.rows, self.model, degree, self.page_size
        )
        if not alternatives:
            return conv
        plan, cost = min(alternatives, key=lambda alt: alt[1].total)
        if options.force_parallel or cost.total < conv.cost.total:
            return _Converted(plan, conv.rows, cost, conv.order, conv.order_seq)
        return conv

    def _needed_per_binding(
        self, region: LogicalPlan, graph: JoinGraph
    ) -> Dict[str, Set[str]]:
        """Per-binding qualified columns required above each scan: what the
        upper plan references plus this binding's join-conjunct columns."""
        needed_above = getattr(self, "_needed_map", {}).get(id(region))
        if needed_above is None:
            return {}
        out: Dict[str, Set[str]] = {}
        for binding, get in graph.relations.items():
            columns = {
                name
                for name in needed_above
                if get.schema.has_column(name)
            }
            for pair, conjuncts in graph.edges.items():
                if binding not in pair:
                    continue
                for conjunct in conjuncts:
                    columns |= {
                        name
                        for name in _qualified_refs(conjunct, get.schema, strict=False)
                    }
            for tables, conjunct in graph.hyper:
                if binding in tables:
                    columns |= _qualified_refs(conjunct, get.schema, strict=False)
            out[binding] = columns
        return out

    def _region_order(
        self, sub: SubPlan, equivalence: Dict[str, FrozenSet[str]]
    ) -> FrozenSet[str]:
        """Expand a subplan's order column to its equivalence class, keeping
        only names the region schema can resolve."""
        if sub.order is None:
            return _EMPTY
        names = equivalence.get(sub.order, frozenset([sub.order]))
        schema = sub.plan.schema
        return frozenset(n for n in names if schema.has_column(n)) | {
            sub.order
        }

    def _region_order_seq(self, sub: SubPlan) -> Tuple[str, ...]:
        """Multi-column sort sequence when the region plan is a composite
        B+-tree scan (its output is ordered by the full key)."""
        from ..catalog import IndexKind
        from ..physical import PIndexScan

        plan = sub.plan
        if (
            isinstance(plan, PIndexScan)
            and plan.index.kind is IndexKind.BTREE
        ):
            return tuple(
                f"{plan.binding}.{column}" for column in plan.index.columns
            )
        return (sub.order,) if sub.order is not None else ()

    def _choose_with_orders(
        self,
        table: Dict[Optional[str], SubPlan],
        sort_wanted: Set[str],
        group_wanted: Set[str],
    ) -> SubPlan:
        """Pick between the cheapest plan and an order-providing plan whose
        extra cost is covered by the sort (or aggregation) it saves above."""
        best = min(table.values(), key=lambda sp: sp.cost.total)
        chosen = best
        for order, sub in table.items():
            if order is None or sub is best:
                continue
            if order in sort_wanted:
                # The saved sort usually runs above a projection, on rows
                # narrower than the region's output — budget conservatively
                # with a minimal row width so a pricier ordered plan is only
                # chosen when it beats even a cheap final sort.
                pages = pages_for(best.rows, 16, self.page_size)
                budget = self.model.sort(pages, best.rows).total
            elif order in group_wanted:
                # stream vs hash aggregation: small CPU-side benefit only
                budget = self.model.aggregate(best.rows, best.rows).total * 0.1
            else:
                continue
            if (
                sub.cost.total <= best.cost.total + budget
                and sub.cost.total < chosen.cost.total + budget
            ):
                chosen = sub
        return chosen

    def _wanted_in_region(
        self,
        names: Set[str],
        graph: JoinGraph,
        equivalence: Dict[str, FrozenSet[str]],
    ) -> Set[str]:
        """Resolve desired order columns into the region (qualified), then
        expand through join-key equivalence."""
        out: Set[str] = set()
        for name in names:
            qualified = self._qualify_in_region(name, graph)
            if qualified is None:
                continue
            out |= equivalence.get(qualified, frozenset([qualified]))
        return out

    def _qualify_in_region(
        self, name: str, graph: JoinGraph
    ) -> Optional[str]:
        for binding, get in graph.relations.items():
            if get.schema.has_column(name):
                return get.schema.column(name).qualified_name
        return None

    # -- aggregate conversion ----------------------------------------------------------------

    def _convert_aggregate(
        self, plan: LogicalAggregate, desired: _Desired
    ) -> _Converted:
        child = self._convert(plan.child, desired)
        streaming = False
        if len(plan.group_exprs) == 1 and isinstance(
            plan.group_exprs[0], ColumnRef
        ):
            if self._name_in_order(
                child, plan.group_exprs[0].name
            ):
                streaming = True
        groups = self._estimate_groups(
            child.rows, plan.group_exprs, child.plan.schema
        )
        cost = child.cost + self.model.aggregate(child.rows, groups)
        if not streaming:
            parallel = self._maybe_partial_aggregate(plan, child, groups, cost)
            if parallel is not None:
                return parallel
        node = PAggregate(
            child.plan,
            plan.group_exprs,
            plan.group_names,
            plan.aggs,
            plan.schema,
            streaming=streaming,
        )
        order = (
            frozenset([plan.group_names[0]]) if streaming else _EMPTY
        )
        return self._annotate(node, groups, cost, order)

    def _maybe_parallel_sort(
        self,
        child: _Converted,
        keys,
        sort_cost: Cost,
        serial_total: Cost,
    ) -> Optional[Tuple[PhysicalPlan, Cost]]:
        """Sort inside the workers of a concat gather, key-merge above:
        run formation divides by the degree, the merge touches each row
        once.  Equal to the serial stable sort bit-for-bit."""
        options = self.options
        if options.parallel_degree <= 1 and not options.force_parallel:
            return None
        degree = max(1, options.parallel_degree)
        gather = push_parallel_sort(child.plan, tuple(keys))
        if gather is None:
            return None
        parallel_sort = Cost(
            sort_cost.io / degree,
            sort_cost.cpu / degree + child.rows,
            sort_cost.cpu_weight,
        )
        cost = child.cost + parallel_sort
        if not options.force_parallel and cost.total >= serial_total.total:
            return None
        gather.est_rows, gather.est_cost = child.rows, cost
        return gather, cost

    def _maybe_partial_aggregate(
        self,
        plan: LogicalAggregate,
        child: _Converted,
        groups: float,
        serial_cost: Cost,
    ) -> Optional[_Converted]:
        """Two-phase aggregation through a concat gather: the partial
        phase folds rows down to per-worker group states inside the
        exchange, so only ``degree × groups`` state rows cross the
        gather instead of every input row."""
        options = self.options
        if options.parallel_degree <= 1 and not options.force_parallel:
            return None
        degree = max(1, options.parallel_degree)
        pushed = push_partial_aggregate(
            child.plan,
            plan.group_exprs,
            plan.group_names,
            plan.aggs,
            plan.schema,
            groups,
        )
        if pushed is None:
            return None
        final, _gather = pushed
        model = self.model
        agg = model.aggregate(child.rows, groups)
        # the partial phase divides by the degree; the gather now moves
        # group states, not input rows; the final phase merges them
        delta_cpu = (
            agg.cpu / degree
            + (degree * groups - child.rows) * model.parallel_transfer_cpu
            + model.aggregate(degree * groups, groups).cpu
        )
        cost = Cost(
            child.cost.io, child.cost.cpu + delta_cpu, child.cost.cpu_weight
        )
        if not options.force_parallel and cost.total >= serial_cost.total:
            return None
        return self._annotate(final, groups, cost, _EMPTY)

    def _estimate_groups(self, rows: float, group_exprs, schema) -> float:
        """Group count: product of the group columns' distinct counts when
        statistics know them, capped by the input rows; the coarse
        ``rows^0.75`` rule otherwise."""
        if not group_exprs:
            return 1.0
        product = 1.0
        known = True
        for expr in group_exprs:
            distinct = self._distinct_of(expr, schema)
            if distinct is None:
                known = False
                break
            product *= max(1, distinct)
        if known:
            return max(1.0, min(rows, product))
        return max(1.0, min(rows, rows ** 0.75))

    def _distinct_of(self, expr, schema) -> Optional[int]:
        if not isinstance(expr, ColumnRef):
            return None
        try:
            column = schema.column(expr.name)
        except Exception:
            return None
        binding = column.table
        tables = getattr(self, "_binding_tables", {})
        info = tables.get(binding)
        if info is None:
            return None
        stats = info.column_stats(column.name)
        if stats is None or not stats.num_distinct:
            return None
        return stats.num_distinct + (1 if stats.null_count else 0)

    # -- order helpers ------------------------------------------------------------------------

    def _name_in_order(self, child: _Converted, name: str) -> bool:
        """Does *name* (resolved in the child's schema) match the child's
        known sort order (via equivalence set)?"""
        if not child.order:
            return False
        schema = child.plan.schema
        try:
            qualified = schema.column(name).qualified_name
        except Exception:
            return False
        return qualified in child.order or name in child.order

    def _order_satisfies(self, child: _Converted, keys) -> bool:
        resolved = []
        for expr, asc in keys:
            if not asc or not isinstance(expr, ColumnRef):
                return False
            resolved.append(expr.name)
        if len(resolved) == 1:
            return self._name_in_order(child, resolved[0])
        # multi-key: the sort keys must form a prefix of a known sort
        # sequence (e.g. a composite index's key columns)
        seq = child.order_seq
        if len(seq) < len(resolved):
            return False
        schema = child.plan.schema
        for want, have in zip(resolved, seq):
            try:
                qualified = schema.column(want).qualified_name
            except Exception:
                return False
            if qualified != have and want != have:
                # first key may also match through join equivalence
                if want == resolved[0] and have in child.order:
                    continue
                return False
        return True

    def _map_seq_through_project(
        self, child: _Converted, exprs, names
    ) -> Tuple[str, ...]:
        """A sort sequence survives projection while its columns pass
        through (prefix semantics)."""
        out = []
        mapping = {}
        schema = child.plan.schema
        for expr, name in zip(exprs, names):
            if isinstance(expr, ColumnRef) and schema.has_column(expr.name):
                mapping[schema.column(expr.name).qualified_name] = name
        for source in child.order_seq:
            if source in mapping:
                out.append(mapping[source])
            else:
                break
        return tuple(out)

    def _sort_order(self, keys, schema) -> FrozenSet[str]:
        expr, asc = keys[0]
        if asc and isinstance(expr, ColumnRef) and schema.has_column(expr.name):
            return frozenset([schema.column(expr.name).qualified_name, expr.name])
        return _EMPTY

    def _project_order(
        self, child: _Converted, exprs, names
    ) -> FrozenSet[str]:
        """Order survives projection through pass-through columns, under
        their output names."""
        if not child.order:
            return _EMPTY
        out = set()
        for expr, name in zip(exprs, names):
            if isinstance(expr, ColumnRef) and self._name_in_order(
                child, expr.name
            ):
                out.add(name)
        return frozenset(out)
