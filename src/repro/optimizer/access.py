"""Access path selection.

For one relation (plus its pushed-down filter conjuncts), enumerate every
way to read it — sequential scan, B+-tree range scan, hash probe,
index-only scan — price each with the cost model, and report the
*interesting order* each provides.  The join enumerator keeps the cheapest
candidate per order; experiment E2 sweeps selectivity to locate the
seq-vs-index crossovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..catalog import IndexKind, TableInfo
from ..expr import (
    CmpOp,
    ColCmpConst,
    Expr,
    classify_conjunct,
    conjoin,
)
from ..physical import (
    PIndexOnlyScan,
    PIndexScan,
    PSeqScan,
    PhysicalPlan,
    RangeBound,
)
from ..obs import scan_key
from .cost import Cost, CostModel
from .estimate import Estimator


@dataclass
class ScanCandidate:
    """One priced way to produce a relation's (filtered) rows."""

    plan: PhysicalPlan
    cost: Cost
    rows: float  # output rows after ALL conjuncts
    order: Optional[str] = None  # qualified column the output is sorted on

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.plan.describe()} rows≈{self.rows:.0f} {self.cost}"


@dataclass
class _Bounds:
    low: RangeBound
    high: RangeBound
    used: List[Expr]

    @property
    def is_equality(self) -> bool:
        return (
            not self.low.unbounded
            and not self.high.unbounded
            and self.low.value == self.high.value
            and self.low.inclusive
            and self.high.inclusive
        )

    @property
    def bounded(self) -> bool:
        return not (self.low.unbounded and self.high.unbounded)


def extract_bounds(
    conjuncts: Sequence[Expr], column_names: Set[str]
) -> Tuple[_Bounds, List[Expr]]:
    """Partition *conjuncts* into range bounds on the index column (any of
    its acceptable spellings in *column_names*) and residual predicates."""
    low = RangeBound.open()
    high = RangeBound.open()
    used: List[Expr] = []
    residual: List[Expr] = []
    for conjunct in conjuncts:
        classified = classify_conjunct(conjunct)
        if (
            not isinstance(classified, ColCmpConst)
            or classified.column not in column_names
            or classified.op is CmpOp.NE
        ):
            residual.append(conjunct)
            continue
        value, op = classified.value, classified.op
        if op is CmpOp.EQ:
            low = _tighten_low(low, value, True)
            high = _tighten_high(high, value, True)
        elif op in (CmpOp.GT, CmpOp.GE):
            low = _tighten_low(low, value, op is CmpOp.GE)
        else:  # LT / LE
            high = _tighten_high(high, value, op is CmpOp.LE)
        used.append(conjunct)
    return _Bounds(low, high, used), residual


def _tighten_low(current: RangeBound, value, inclusive: bool) -> RangeBound:
    if current.unbounded:
        return RangeBound.at(value, inclusive)
    if value > current.value or (
        value == current.value and not inclusive and current.inclusive
    ):
        return RangeBound.at(value, inclusive)
    return current


def _tighten_high(current: RangeBound, value, inclusive: bool) -> RangeBound:
    if current.unbounded:
        return RangeBound.at(value, inclusive)
    if value < current.value or (
        value == current.value and not inclusive and current.inclusive
    ):
        return RangeBound.at(value, inclusive)
    return current


def access_paths(
    table: TableInfo,
    binding: str,
    conjuncts: Sequence[Expr],
    estimator: Estimator,
    model: CostModel,
    needed_columns: Optional[Set[str]] = None,
    consider_unbounded_index: bool = True,
) -> List[ScanCandidate]:
    """All priced access paths for one relation."""
    pages = table.num_pages
    base_rows = float(
        table.stats.num_rows if table.stats is not None else table.num_rows
    )
    # The feedback key covers the binding + ALL its filter conjuncts, so
    # every access path for this relation (which all emit the same filtered
    # rows) shares one key; execution-time actuals harvested under it apply
    # uniformly here.
    fb_key = scan_key(table.name, binding, conjuncts)
    out_rows = estimator.feedback_rows(
        fb_key, estimator.scan_rows(table, conjuncts)
    )
    candidates: List[ScanCandidate] = []

    # 1. Sequential scan.
    seq = PSeqScan(table, binding, conjoin(list(conjuncts)))
    seq_cost = model.seq_scan(pages, base_rows)
    if conjuncts:
        seq_cost = seq_cost + model.filter(base_rows, len(conjuncts))
    seq.est_rows, seq.est_cost = out_rows, seq_cost
    candidates.append(ScanCandidate(seq, seq_cost, out_rows, order=None))

    # 2. Index paths.
    for column, index in table.indexes.items():
        qualified = f"{binding}.{column}"
        if index.is_composite:
            candidate = _composite_candidate(
                table, binding, index, conjuncts, estimator, model,
                base_rows, out_rows, pages,
            )
            if candidate is not None:
                candidates.append(candidate)
            continue
        names = {column, qualified}
        bounds, residual = extract_bounds(conjuncts, names)
        order = qualified if index.kind is IndexKind.BTREE else None

        if bounds.bounded and (
            index.kind is IndexKind.BTREE or bounds.is_equality
        ):
            matching = base_rows * estimator.scan_selectivity(bounds.used)
            plan = PIndexScan(
                table,
                binding,
                index,
                bounds.low,
                bounds.high,
                conjoin(residual),
            )
            cost = model.index_scan(index, pages, base_rows, matching)
            if residual:
                cost = cost + model.filter(matching, len(residual))
            plan.est_rows, plan.est_cost = out_rows, cost
            candidates.append(ScanCandidate(plan, cost, out_rows, order))

            # Index-only variant when the key column is all that's needed.
            if (
                needed_columns is not None
                and index.kind is IndexKind.BTREE
                and not residual
                and needed_columns <= {qualified}
            ):
                ionly = PIndexOnlyScan(
                    table, binding, index, bounds.low, bounds.high
                )
                icost = model.index_only_scan(index, base_rows, matching)
                ionly.est_rows, ionly.est_cost = out_rows, icost
                candidates.append(ScanCandidate(ionly, icost, out_rows, order))

        elif (
            consider_unbounded_index
            and index.kind is IndexKind.BTREE
        ):
            # Full index scan: expensive, but delivers sorted output (kept
            # only if its interesting order pays off in the DP).
            plan = PIndexScan(
                table,
                binding,
                index,
                RangeBound.open(),
                RangeBound.open(),
                conjoin(list(conjuncts)),
            )
            cost = model.index_scan(index, pages, base_rows, base_rows)
            if conjuncts:
                cost = cost + model.filter(base_rows, len(conjuncts))
            plan.est_rows, plan.est_cost = out_rows, cost
            candidates.append(ScanCandidate(plan, cost, out_rows, order))

    for cand in candidates:
        cand.plan.feedback_key = fb_key
    return candidates


def _composite_candidate(
    table: TableInfo,
    binding: str,
    index,
    conjuncts: Sequence[Expr],
    estimator: Estimator,
    model: CostModel,
    base_rows: float,
    out_rows: float,
    pages: int,
) -> Optional[ScanCandidate]:
    """Sargability for a composite B+-tree: equality conjuncts on a key
    prefix, optionally a range on the next key column.

    Exclusive/inclusive subtleties of non-final components over-fetch
    slightly, so every conjunct is also re-applied as a residual filter —
    the classic "index filter" discipline.
    """
    from ..index.keys import MAX_KEY

    prefix: List = []
    used: List[Expr] = []
    range_bounds: Optional[_Bounds] = None
    for key_column in index.columns:
        names = {key_column, f"{binding}.{key_column}"}
        bounds, _ = extract_bounds(conjuncts, names)
        if bounds.is_equality:
            prefix.append(bounds.low.value)
            used.extend(bounds.used)
            continue
        if bounds.bounded:
            range_bounds = bounds
            used.extend(bounds.used)
        break
    if not used:
        return None  # nothing sargable on the key prefix

    low_parts = list(prefix)
    high_parts = list(prefix)
    low_inclusive = True
    high_inclusive = True
    if range_bounds is not None:
        if not range_bounds.low.unbounded:
            low_parts.append(range_bounds.low.value)
            low_inclusive = range_bounds.low.inclusive
        if not range_bounds.high.unbounded:
            high_parts.append(range_bounds.high.value)
            high_inclusive = range_bounds.high.inclusive
            if range_bounds.high.inclusive and len(high_parts) < len(
                index.columns
            ):
                high_parts.append(MAX_KEY)
        else:
            high_parts.append(MAX_KEY)
    elif len(prefix) < len(index.columns):
        high_parts.append(MAX_KEY)

    low = RangeBound.at(tuple(low_parts), low_inclusive)
    high = RangeBound.at(tuple(high_parts), high_inclusive)
    matching = base_rows * estimator.scan_selectivity(used)
    plan = PIndexScan(
        table, binding, index, low, high, conjoin(list(conjuncts))
    )
    cost = model.index_scan(index, pages, base_rows, matching)
    if conjuncts:
        cost = cost + model.filter(matching, len(conjuncts))
    plan.est_rows, plan.est_cost = out_rows, cost
    order = f"{binding}.{index.columns[0]}"
    return ScanCandidate(plan, cost, out_rows, order)


def best_per_order(
    candidates: Sequence[ScanCandidate],
) -> List[ScanCandidate]:
    """Prune dominated candidates: keep the cheapest per interesting order,
    dropping ordered candidates that cost more than the cheapest unordered
    one only if their order duplicates another cheaper candidate's."""
    best: dict = {}
    for cand in candidates:
        key = cand.order
        if key not in best or cand.cost.total < best[key].cost.total:
            best[key] = cand
    # An ordered candidate strictly worse than the best unordered one still
    # survives (its order may save a sort later); only same-order dominance
    # prunes.
    return list(best.values())
