"""The cost-based optimizer: estimation, costing, access paths, join enumeration."""

from .access import ScanCandidate, access_paths, best_per_order, extract_bounds
from .baselines import (
    ExhaustivePlanner,
    GreedyPlanner,
    NaiveNLPlanner,
    OrderPlanner,
    RandomPlanner,
    SyntacticPlanner,
)
from .cost import Cost, CostModel, cardenas_pages
from .dp import DPPlanner, PlannerStats, SubPlan, count_dp_subsets
from .estimate import (
    DEFAULT_EQ_SEL,
    DEFAULT_RANGE_SEL,
    Estimator,
    EstimatorConfig,
    StatsResolver,
    pages_for,
)
from .planner import STRATEGIES, Planner, PlannerOptions

__all__ = [
    "ScanCandidate", "access_paths", "best_per_order", "extract_bounds",
    "ExhaustivePlanner", "GreedyPlanner", "NaiveNLPlanner", "OrderPlanner",
    "RandomPlanner", "SyntacticPlanner", "Cost", "CostModel", "cardenas_pages",
    "DPPlanner", "PlannerStats", "SubPlan", "count_dp_subsets",
    "DEFAULT_EQ_SEL", "DEFAULT_RANGE_SEL", "Estimator", "EstimatorConfig",
    "StatsResolver", "pages_for", "STRATEGIES", "Planner", "PlannerOptions",
]
