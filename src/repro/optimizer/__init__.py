"""The cost-based optimizer: estimation, costing, access paths, join enumeration."""

from .access import ScanCandidate, access_paths, best_per_order, extract_bounds
from .baselines import (
    ExhaustivePlanner,
    GreedyPlanner,
    NaiveNLPlanner,
    OrderPlanner,
    RandomPlanner,
    SyntacticPlanner,
)
from .cost import Cost, CostModel, cardenas_pages
from .dp import DPPlanner, PlannerStats, SubPlan, count_dp_subsets
from .estimate import (
    DEFAULT_EQ_SEL,
    DEFAULT_RANGE_SEL,
    Estimator,
    EstimatorConfig,
    StatsResolver,
    pages_for,
)
from .parallel import (
    co_partitioned,
    exactly_mergeable,
    page_partitioned,
    push_parallel_sort,
    push_partial_aggregate,
    region_alternatives,
)
from .planner import STRATEGIES, Planner, PlannerOptions

__all__ = [
    "ScanCandidate", "access_paths", "best_per_order", "extract_bounds",
    "ExhaustivePlanner", "GreedyPlanner", "NaiveNLPlanner", "OrderPlanner",
    "RandomPlanner", "SyntacticPlanner", "Cost", "CostModel", "cardenas_pages",
    "DPPlanner", "PlannerStats", "SubPlan", "count_dp_subsets",
    "DEFAULT_EQ_SEL", "DEFAULT_RANGE_SEL", "Estimator", "EstimatorConfig",
    "StatsResolver", "pages_for", "STRATEGIES", "Planner", "PlannerOptions",
    "co_partitioned", "exactly_mergeable", "page_partitioned",
    "push_parallel_sort", "push_partial_aggregate", "region_alternatives",
]
