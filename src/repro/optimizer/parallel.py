"""Parallel plan alternatives: exchange placement over partitionable shapes.

Three shapes are order-exact (parallel output is bit-identical to serial
execution), and they are the only ones this module produces:

* **Partitioned pipeline** — a chain of row-wise operators
  ({Filter, Project, Narrow}) over a ``PSeqScan``: the scan is marked
  parallel (each worker reads a contiguous page slice) and the gather
  concatenates in worker order, which *is* the serial scan order.
* **Replicated-build join spine** — the pipeline may pass through hash
  joins (probe side) and index nested-loop joins (outer side): the probe
  side partitions by pages, every worker builds the full build side (or
  probes the shared index), and worker-order concatenation restores the
  serial probe order.  Only chosen when the build side is estimated to
  fit in work memory — a spilling (Grace) hash join reorders output and
  would break bit-identity.
* **Co-partitioned hash join** — both inputs pass through hash-partition
  filters on their join keys, so equal keys meet in exactly one worker.
  A hidden ordinal assigned below the probe-side filter records the
  serial probe order; the gather k-way-merges on it and strips it.

Two more transformations push work through an existing concat gather:

* **Two-phase aggregation** — the aggregate splits into a partial phase
  inside the exchange (emitting mergeable accumulator states) and a
  final phase above the gather.  Only for *exactly mergeable* aggregates:
  COUNT/MIN/MAX of anything, SUM/AVG of integers.  Float SUM/AVG stays
  single-phase (float addition is not associative — merging per-worker
  sums would change low-order bits).
* **Parallel sort** — each worker sorts its partition; the gather
  k-way-merges on the sort keys with worker index as tie-break, which
  equals the serial stable sort bit-for-bit.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

from ..expr import AggFunc
from ..physical import (
    PAggregate,
    PExchange,
    PFilter,
    PGather,
    PHashJoin,
    PIndexNLJoin,
    PNarrow,
    POrdinal,
    PPartitionFilter,
    PProject,
    PSeqScan,
    PSort,
    PhysicalPlan,
)
from ..types import DataType
from .cost import Cost, CostModel
from .estimate import pages_for

#: row-wise unary operators that commute with worker-order concatenation
_ROW_WISE = (PFilter, PProject, PNarrow)


def _copy_est(clone: PhysicalPlan, node: PhysicalPlan) -> None:
    clone.est_rows = node.est_rows
    clone.est_cost = node.est_cost


def _annotate(node: PhysicalPlan, rows: float, cost: Cost) -> PhysicalPlan:
    node.est_rows = rows
    node.est_cost = cost
    return node


def _build_fits(
    build: PhysicalPlan, model: CostModel, page_size: int
) -> bool:
    """Is the join's build side estimated to stay in memory?  (A spilled
    build reorders output, which would break parallel bit-identity.)"""
    pages = pages_for(
        build.est_rows, build.schema.estimated_row_bytes(), page_size
    )
    return pages <= model.work_mem_pages


def _parallel_spine(
    plan: PhysicalPlan, model: CostModel, page_size: int
) -> Optional[Tuple[PhysicalPlan, Cost]]:
    """Clone *plan* with its probe-side leaf scan marked parallel.

    Returns ``(clone, replicated)`` where *replicated* is the cost share
    every worker pays in full (build sides), or ``None`` when the shape
    does not page-partition exactly.
    """
    if isinstance(plan, PSeqScan):
        if plan.parallel:
            return None
        clone = replace(plan, parallel=True)
        _copy_est(clone, plan)
        return clone, model.zero()
    if isinstance(plan, _ROW_WISE):
        sub = _parallel_spine(plan.child, model, page_size)
        if sub is None:
            return None
        child, rep = sub
        clone = replace(plan, child=child)
        _copy_est(clone, plan)
        return clone, rep
    if isinstance(plan, PHashJoin):
        if not _build_fits(plan.right, model, page_size):
            return None
        sub = _parallel_spine(plan.left, model, page_size)
        if sub is None:
            return None
        left, rep = sub
        clone = replace(plan, left=left)
        _copy_est(clone, plan)
        build_cost = plan.right.est_cost
        if build_cost is not None:
            rep = rep + build_cost
        return clone, rep
    if isinstance(plan, PIndexNLJoin):
        sub = _parallel_spine(plan.left, model, page_size)
        if sub is None:
            return None
        left, rep = sub
        clone = replace(plan, left=left)
        _copy_est(clone, plan)
        return clone, rep
    return None


def page_partitioned(
    plan: PhysicalPlan,
    rows: float,
    model: CostModel,
    degree: int,
    page_size: int,
) -> Optional[Tuple[PGather, Cost]]:
    """Page-partitioned gather over *plan* (pipeline or replicated-build
    spine), or ``None`` when the shape does not qualify."""
    sub = _parallel_spine(plan, model, page_size)
    if sub is None:
        return None
    clone, rep = sub
    serial = plan.est_cost if plan.est_cost is not None else model.zero()
    cost = model.exchange(serial, degree, rows, replicated=rep)
    exchange = PExchange(clone, degree, mode="pages")
    _annotate(exchange, rows, cost)
    gather = PGather(exchange)
    _annotate(gather, rows, cost)
    return gather, cost


def co_partitioned(
    plan: PhysicalPlan,
    rows: float,
    model: CostModel,
    degree: int,
    page_size: int,
) -> Optional[Tuple[PGather, Cost]]:
    """Hash co-partitioned parallel join over a root ``PHashJoin``.

    Every worker scans both inputs fully but keeps only its hash
    partition of each, so CPU divides by the degree while I/O does not —
    the cost model reflects exactly that.
    """
    if not isinstance(plan, PHashJoin):
        return None
    if not _build_fits(plan.right, model, page_size):
        return None
    probe, build = plan.left, plan.right
    ordinal = POrdinal(probe)
    _copy_est(ordinal, probe)
    probe_part = PPartitionFilter(ordinal, plan.left_key)
    _annotate(probe_part, probe.est_rows / degree, probe.est_cost)
    build_part = PPartitionFilter(build, plan.right_key)
    _annotate(build_part, build.est_rows / degree, build.est_cost)
    join = replace(plan, left=probe_part, right=build_part)
    _copy_est(join, plan)

    serial = plan.est_cost if plan.est_cost is not None else model.zero()
    # partition-filter hashing touches every input row in every worker
    serial = serial + model.filter(probe.est_rows + build.est_rows)
    replicated = Cost(serial.io, 0.0, serial.cpu_weight)
    cost = model.exchange(serial, degree, rows, replicated=replicated)
    exchange = PExchange(join, degree, mode="hash")
    _annotate(exchange, rows, cost)
    # the hidden ordinal sits right after the probe side's own columns
    gather = PGather(exchange, ordinal=len(probe.schema))
    _annotate(gather, rows, cost)
    return gather, cost


def region_alternatives(
    plan: PhysicalPlan,
    rows: float,
    model: CostModel,
    degree: int,
    page_size: int,
) -> List[Tuple[PGather, Cost]]:
    """Every exact parallel alternative for a region's chosen serial plan."""
    out = []
    for builder in (page_partitioned, co_partitioned):
        alt = builder(plan, rows, model, degree, page_size)
        if alt is not None:
            out.append(alt)
    return out


# -- pushing work through an existing concat gather --------------------------


def _concat_gather_chain(
    plan: PhysicalPlan,
) -> Optional[Tuple[PhysicalPlan, PExchange]]:
    """If *plan* is a chain of row-wise operators over a concat-merge
    gather, rebuild the chain *inside* the exchange and return
    ``(inner_pipeline, exchange)``.  Row-wise operators commute with
    worker-order concatenation, so this is an exact rewrite."""
    chain: List[PhysicalPlan] = []
    node = plan
    while isinstance(node, _ROW_WISE):
        chain.append(node)
        node = node.child
    if not isinstance(node, PGather):
        return None
    if node.ordinal is not None or node.merge_keys:
        return None
    exchange = node.child
    inner = exchange.child
    for op in reversed(chain):
        clone = replace(op, child=inner)
        _copy_est(clone, op)
        inner = clone
    return inner, exchange


def exactly_mergeable(aggs, child_schema) -> bool:
    """Can these aggregates split into partial/final phases without
    changing a single bit of the result?  COUNT/MIN/MAX always merge
    exactly; SUM/AVG only over integers (integer addition is associative,
    float addition is not)."""
    from ..expr import infer_expr_type

    for agg in aggs:
        if agg.func in (AggFunc.COUNT, AggFunc.MIN, AggFunc.MAX):
            continue
        if agg.arg is None:
            return False
        try:
            dtype = infer_expr_type(agg.arg, child_schema)
        except Exception:
            return False
        if dtype is not DataType.INT:
            return False
    return True


def push_partial_aggregate(
    plan: PhysicalPlan,
    group_exprs,
    group_names,
    aggs,
    out_schema,
    groups: float,
) -> Optional[Tuple[PhysicalPlan, PGather]]:
    """Split an aggregate over a concat gather into partial (inside the
    exchange) and final (above it).  Returns ``(final_plan, gather)`` or
    ``None`` when the child shape does not allow it.  Caller is
    responsible for checking :func:`exactly_mergeable` and for costing."""
    rebuilt = _concat_gather_chain(plan)
    if rebuilt is None:
        return None
    inner, exchange = rebuilt
    if not exactly_mergeable(aggs, inner.schema):
        return None
    partial = PAggregate(
        inner, group_exprs, group_names, aggs, out_schema, mode="partial"
    )
    new_exchange = PExchange(partial, exchange.degree, exchange.mode)
    gather = PGather(new_exchange)
    final = PAggregate(
        gather, group_exprs, group_names, aggs, out_schema, mode="final"
    )
    _annotate(partial, groups, exchange.est_cost)
    _annotate(new_exchange, groups * exchange.degree, exchange.est_cost)
    _annotate(gather, groups * exchange.degree, exchange.est_cost)
    return final, gather


def push_parallel_sort(
    plan: PhysicalPlan, keys
) -> Optional[PGather]:
    """Sort inside each worker, merge on the keys in the gather (worker
    index breaks ties — equal to the serial stable sort)."""
    rebuilt = _concat_gather_chain(plan)
    if rebuilt is None:
        return None
    inner, exchange = rebuilt
    sort = PSort(inner, keys)
    _annotate(sort, inner.est_rows, inner.est_cost)
    new_exchange = PExchange(sort, exchange.degree, exchange.mode)
    _copy_est(new_exchange, exchange)
    gather = PGather(new_exchange, merge_keys=tuple(keys))
    _copy_est(gather, exchange)
    return gather
